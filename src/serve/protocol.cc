#include "serve/protocol.h"

#include <algorithm>
#include <cstring>

#include "common/crc32c.h"
#include "serial/decoder.h"
#include "serial/encoder.h"

namespace dbpl::serve {

namespace {

bool KnownOp(uint8_t raw) {
  return raw >= static_cast<uint8_t>(ReqOp::kPing) &&
         raw <= static_cast<uint8_t>(ReqOp::kReadChunk);
}

/// True for the ops whose OK payload is a list of dynamics.
bool OpReturnsEntries(ReqOp op) {
  switch (op) {
    case ReqOp::kGet:
    case ReqOp::kGetScan:
    case ReqOp::kGetViaExtent:
    case ReqOp::kGetViaIndex:
    case ReqOp::kGetPackages:
      return true;
    default:
      return false;
  }
}

uint32_t LoadU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

/// Reads and validates the shared `[version][op][id]` message prefix.
Status DecodePrefix(ByteReader* in, ReqOp* op, uint64_t* id,
                    bool allow_none) {
  DBPL_ASSIGN_OR_RETURN(uint8_t version, in->ReadU8());
  if (version != kProtocolVersion) {
    return Status::Unsupported("protocol version " + std::to_string(version) +
                               " (expected " +
                               std::to_string(kProtocolVersion) + ")");
  }
  DBPL_ASSIGN_OR_RETURN(uint8_t raw_op, in->ReadU8());
  if (!KnownOp(raw_op) &&
      !(allow_none && raw_op == static_cast<uint8_t>(ReqOp::kNone))) {
    return Status::InvalidArgument("unknown opcode " + std::to_string(raw_op));
  }
  *op = static_cast<ReqOp>(raw_op);
  DBPL_ASSIGN_OR_RETURN(*id, in->ReadU64());
  return Status::OK();
}

Status RequireDrained(const ByteReader& in, const char* what) {
  if (!in.AtEnd()) {
    return Status::InvalidArgument(
        std::string(what) + ": " + std::to_string(in.remaining()) +
        " trailing bytes after payload");
  }
  return Status::OK();
}

}  // namespace

std::string_view ReqOpName(ReqOp op) {
  switch (op) {
    case ReqOp::kNone:
      return "None";
    case ReqOp::kPing:
      return "Ping";
    case ReqOp::kInsert:
      return "Insert";
    case ReqOp::kGet:
      return "Get";
    case ReqOp::kGetScan:
      return "GetScan";
    case ReqOp::kGetViaExtent:
      return "GetViaExtent";
    case ReqOp::kGetViaIndex:
      return "GetViaIndex";
    case ReqOp::kGetPackages:
      return "GetPackages";
    case ReqOp::kRegisterExtent:
      return "RegisterExtent";
    case ReqOp::kCommit:
      return "Commit";
    case ReqOp::kInfo:
      return "Info";
    case ReqOp::kShipBounds:
      return "ShipBounds";
    case ReqOp::kReadChunk:
      return "ReadChunk";
  }
  return "Unknown";
}

void EncodeRequest(const Request& req, ByteBuffer* out) {
  out->PutU8(kProtocolVersion);
  out->PutU8(static_cast<uint8_t>(req.op));
  out->PutU64(req.id);
  switch (req.op) {
    case ReqOp::kInsert:
      serial::EncodeDynamic(req.entry, out);
      break;
    case ReqOp::kGet:
      out->PutVarint(req.entry_id);
      break;
    case ReqOp::kGetScan:
    case ReqOp::kGetViaExtent:
    case ReqOp::kGetViaIndex:
    case ReqOp::kGetPackages:
      serial::EncodeType(req.type, out);
      break;
    case ReqOp::kRegisterExtent:
      out->PutString(req.extent_name);
      serial::EncodeType(req.type, out);
      break;
    case ReqOp::kReadChunk:
      out->PutU8(static_cast<uint8_t>(req.file));
      out->PutVarint(static_cast<uint64_t>(req.shard));
      out->PutVarint(req.offset);
      out->PutVarint(req.length);
      break;
    default:
      break;  // kPing/kCommit/kInfo/kShipBounds carry no payload.
  }
}

Result<Request> DecodeRequest(const uint8_t* body, size_t n) {
  ByteReader in(body, n);
  Request req;
  DBPL_RETURN_IF_ERROR(DecodePrefix(&in, &req.op, &req.id,
                                    /*allow_none=*/false));
  switch (req.op) {
    case ReqOp::kInsert: {
      DBPL_ASSIGN_OR_RETURN(req.entry, serial::DecodeDynamic(&in));
      break;
    }
    case ReqOp::kGet: {
      DBPL_ASSIGN_OR_RETURN(req.entry_id, in.ReadVarint());
      break;
    }
    case ReqOp::kGetScan:
    case ReqOp::kGetViaExtent:
    case ReqOp::kGetViaIndex:
    case ReqOp::kGetPackages: {
      DBPL_ASSIGN_OR_RETURN(req.type, serial::DecodeType(&in));
      break;
    }
    case ReqOp::kRegisterExtent: {
      DBPL_ASSIGN_OR_RETURN(req.extent_name, in.ReadString());
      DBPL_ASSIGN_OR_RETURN(req.type, serial::DecodeType(&in));
      break;
    }
    case ReqOp::kReadChunk: {
      DBPL_ASSIGN_OR_RETURN(uint8_t kind, in.ReadU8());
      if (kind > static_cast<uint8_t>(ShipFile::kWalSegment)) {
        return Status::InvalidArgument("unknown shipping file kind " +
                                       std::to_string(kind));
      }
      req.file = static_cast<ShipFile>(kind);
      DBPL_ASSIGN_OR_RETURN(uint64_t shard, in.ReadVarint());
      if (shard >= static_cast<uint64_t>(dyndb::Database::kMaxShards)) {
        return Status::InvalidArgument("shipping shard " +
                                       std::to_string(shard) +
                                       " out of range");
      }
      req.shard = static_cast<int>(shard);
      DBPL_ASSIGN_OR_RETURN(req.offset, in.ReadVarint());
      DBPL_ASSIGN_OR_RETURN(req.length, in.ReadVarint());
      if (req.length > kMaxReadChunk) {
        return Status::InvalidArgument(
            "chunk length " + std::to_string(req.length) + " exceeds limit " +
            std::to_string(kMaxReadChunk));
      }
      break;
    }
    default:
      break;
  }
  DBPL_RETURN_IF_ERROR(RequireDrained(in, "request"));
  return req;
}

void EncodeResponse(const Response& resp, ByteBuffer* out) {
  out->PutU8(kProtocolVersion);
  out->PutU8(static_cast<uint8_t>(resp.op));
  out->PutU64(resp.id);
  out->PutU8(WireCodeOf(resp.status.code()));
  out->PutString(resp.status.message());
  if (!resp.status.ok()) return;  // errors carry no payload
  if (resp.op == ReqOp::kInsert) {
    out->PutVarint(resp.entry_id);
  } else if (OpReturnsEntries(resp.op)) {
    out->PutVarint(resp.entries.size());
    for (const dyndb::Dynamic& d : resp.entries) {
      serial::EncodeDynamic(d, out);
    }
  } else if (resp.op == ReqOp::kInfo) {
    out->PutVarint(resp.size);
    out->PutVarint(resp.epoch);
    out->PutVarint(static_cast<uint64_t>(resp.shards));
  } else if (resp.op == ReqOp::kShipBounds) {
    out->PutVarint(resp.ship.generation);
    out->PutVarint(resp.ship.shards.size());
    for (const persist::WalShipper::Bounds& b : resp.ship.shards) {
      out->PutVarint(b.durable_bytes);
      out->PutVarint(b.epoch);
    }
  } else if (resp.op == ReqOp::kReadChunk) {
    out->PutVarint(resp.file_size);
    out->PutString(resp.chunk);
  }
}

Result<Response> DecodeResponse(const uint8_t* body, size_t n) {
  ByteReader in(body, n);
  Response resp;
  DBPL_RETURN_IF_ERROR(DecodePrefix(&in, &resp.op, &resp.id,
                                    /*allow_none=*/true));
  DBPL_ASSIGN_OR_RETURN(uint8_t wire_code, in.ReadU8());
  DBPL_ASSIGN_OR_RETURN(std::string message, in.ReadString());
  StatusCode code = CodeFromWire(wire_code);
  resp.status = code == StatusCode::kOk ? Status::OK()
                                        : Status(code, std::move(message));
  if (!resp.status.ok()) {
    DBPL_RETURN_IF_ERROR(RequireDrained(in, "response"));
    return resp;
  }
  if (resp.op == ReqOp::kInsert) {
    DBPL_ASSIGN_OR_RETURN(resp.entry_id, in.ReadVarint());
  } else if (OpReturnsEntries(resp.op)) {
    DBPL_ASSIGN_OR_RETURN(uint64_t count, in.ReadVarint());
    // Each dynamic consumes bytes or fails, so a hostile count cannot
    // loop past the buffer; only the reservation must not trust it.
    resp.entries.reserve(
        static_cast<size_t>(std::min<uint64_t>(count, in.remaining())));
    for (uint64_t i = 0; i < count; ++i) {
      DBPL_ASSIGN_OR_RETURN(dyndb::Dynamic d, serial::DecodeDynamic(&in));
      resp.entries.push_back(std::move(d));
    }
  } else if (resp.op == ReqOp::kInfo) {
    DBPL_ASSIGN_OR_RETURN(resp.size, in.ReadVarint());
    DBPL_ASSIGN_OR_RETURN(resp.epoch, in.ReadVarint());
    DBPL_ASSIGN_OR_RETURN(uint64_t shards, in.ReadVarint());
    if (shards < 1 ||
        shards > static_cast<uint64_t>(dyndb::Database::kMaxShards)) {
      return Status::Corruption("response shard count " +
                                std::to_string(shards) + " out of range");
    }
    resp.shards = static_cast<int>(shards);
  } else if (resp.op == ReqOp::kShipBounds) {
    DBPL_ASSIGN_OR_RETURN(resp.ship.generation, in.ReadVarint());
    DBPL_ASSIGN_OR_RETURN(uint64_t count, in.ReadVarint());
    if (count > static_cast<uint64_t>(dyndb::Database::kMaxShards)) {
      return Status::Corruption("ship-bounds shard count " +
                                std::to_string(count) + " out of range");
    }
    resp.ship.shards.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      persist::WalShipper::Bounds b;
      DBPL_ASSIGN_OR_RETURN(b.durable_bytes, in.ReadVarint());
      DBPL_ASSIGN_OR_RETURN(b.epoch, in.ReadVarint());
      resp.ship.shards.push_back(b);
    }
  } else if (resp.op == ReqOp::kReadChunk) {
    DBPL_ASSIGN_OR_RETURN(resp.file_size, in.ReadVarint());
    DBPL_ASSIGN_OR_RETURN(resp.chunk, in.ReadString());
  }
  DBPL_RETURN_IF_ERROR(RequireDrained(in, "response"));
  return resp;
}

Status EncodeFrame(const ByteBuffer& body, ByteBuffer* out) {
  if (body.size() > kMaxFrameBody) {
    // Refuse rather than emit: the peer would reject the frame as
    // Corruption and lose framing for good — and past 4 GiB the u32
    // length word would truncate into a CRC-valid lie.
    return Status::ResourceExhausted(
        "frame body of " + std::to_string(body.size()) +
        " bytes exceeds the protocol limit of " +
        std::to_string(kMaxFrameBody));
  }
  out->PutU32(MaskCrc(Crc32c(body.data(), body.size())));
  out->PutU32(static_cast<uint32_t>(body.size()));
  out->PutRaw(body.data(), body.size());
  return Status::OK();
}

FrameStatus InspectFrame(const uint8_t* data, size_t n, size_t* total,
                         std::string* error) {
  if (n < kFrameHeaderBytes) {
    *total = kFrameHeaderBytes;
    return FrameStatus::kNeedMore;
  }
  const uint32_t masked_crc = LoadU32Le(data);
  const uint32_t body_len = LoadU32Le(data + 4);
  if (body_len > kMaxFrameBody) {
    if (error != nullptr) {
      *error = "frame body length " + std::to_string(body_len) +
               " exceeds limit " + std::to_string(kMaxFrameBody);
    }
    return FrameStatus::kBad;
  }
  const size_t frame_total = kFrameHeaderBytes + body_len;
  if (n < frame_total) {
    *total = frame_total;
    return FrameStatus::kNeedMore;
  }
  const uint32_t actual = Crc32c(data + kFrameHeaderBytes, body_len);
  if (MaskCrc(actual) != masked_crc) {
    if (error != nullptr) *error = "frame CRC mismatch";
    return FrameStatus::kBad;
  }
  *total = frame_total;
  return FrameStatus::kFrame;
}

uint8_t WireCodeOf(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kNotFound:
      return 2;
    case StatusCode::kAlreadyExists:
      return 3;
    case StatusCode::kInconsistent:
      return 4;
    case StatusCode::kTypeError:
      return 5;
    case StatusCode::kCorruption:
      return 6;
    case StatusCode::kIoError:
      return 7;
    case StatusCode::kUnsupported:
      return 8;
    case StatusCode::kFailedPrecondition:
      return 9;
    case StatusCode::kDeadlineExceeded:
      return 10;
    case StatusCode::kInternal:
      return 11;
    case StatusCode::kUnavailable:
      return 12;
    case StatusCode::kResourceExhausted:
      return 13;
  }
  return 11;  // out-of-enum input: report as Internal
}

StatusCode CodeFromWire(uint8_t wire) {
  switch (wire) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kNotFound;
    case 3:
      return StatusCode::kAlreadyExists;
    case 4:
      return StatusCode::kInconsistent;
    case 5:
      return StatusCode::kTypeError;
    case 6:
      return StatusCode::kCorruption;
    case 7:
      return StatusCode::kIoError;
    case 8:
      return StatusCode::kUnsupported;
    case 9:
      return StatusCode::kFailedPrecondition;
    case 10:
      return StatusCode::kDeadlineExceeded;
    case 11:
      return StatusCode::kInternal;
    case 12:
      return StatusCode::kUnavailable;
    case 13:
      return StatusCode::kResourceExhausted;
    default:
      return StatusCode::kInternal;
  }
}

}  // namespace dbpl::serve
