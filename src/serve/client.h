#ifndef DBPL_SERVE_CLIENT_H_
#define DBPL_SERVE_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/value.h"
#include "dyndb/database.h"
#include "dyndb/dynamic.h"
#include "serve/protocol.h"
#include "serve/socket.h"
#include "types/type.h"

namespace dbpl::serve {

/// A client for the dbpl-serve wire protocol, shared by the
/// differential tests and the load generator.
///
/// Two usage levels:
///
///  * The typed conveniences (Insert, Get, GetScan, ...) — one
///    request/response round trip each, with the server's typed error
///    mapping surfaced as the call's own Status.
///  * Send/Await for explicit pipelining: queue any number of requests
///    on the socket, then collect the responses, which the server
///    returns strictly in request order (Await verifies the ids
///    actually match).
///
/// Transport failures (peer gone, CRC damage, protocol violations)
/// surface as non-OK Results from Await itself; application-level
/// errors arrive as OK transport results whose Response::status is
/// non-OK. A client is bound to one session and is not thread-safe;
/// concurrency is modeled as one Client per connection.
class Client {
 public:
  /// Wraps an already-connected stream (e.g. a socketpair end).
  explicit Client(Socket sock) : sock_(std::move(sock)) {}

  static Result<Client> Connect(const std::string& host, uint16_t port);

  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;

  bool valid() const { return sock_.valid(); }
  Socket& socket() { return sock_; }

  /// Bounds how long Await (and every typed convenience) may wait for
  /// the server's next response bytes. Zero (the default) waits
  /// forever; with a timeout, a server that stalls mid-frame surfaces
  /// kDeadlineExceeded instead of hanging the caller. After a deadline
  /// the stream may stop mid-frame, so the session should be
  /// abandoned, not resumed.
  void set_await_timeout(std::chrono::milliseconds timeout) {
    sock_.set_recv_timeout(timeout);
  }

  /// Assigns a request id, frames and sends `req`. Returns the id.
  Result<uint64_t> Send(Request req);

  /// Receives the next response. In-order delivery is checked: a
  /// response whose id is not the oldest outstanding request's is a
  /// Corruption (except server-initiated op-kNone errors, e.g. an
  /// admission-control shed, which answer no request and are returned
  /// as-is).
  Result<Response> Await();

  /// Send + Await. If the transport succeeds, the Response carries the
  /// operation's own status.
  Result<Response> Call(Request req);

  // ------------------------------------------------------------------
  // Typed conveniences: one round trip; Response::status is merged
  // into the returned Status/Result.
  // ------------------------------------------------------------------

  Status Ping();
  Result<dyndb::Database::EntryId> Insert(const dyndb::Dynamic& entry);
  Result<dyndb::Database::EntryId> InsertValue(core::Value v) {
    return Insert(dyndb::MakeDynamic(std::move(v)));
  }
  Result<dyndb::Dynamic> Get(dyndb::Database::EntryId id);
  Result<std::vector<core::Value>> GetScan(const types::Type& t);
  Result<std::vector<core::Value>> GetViaExtent(const types::Type& t);
  Result<std::vector<core::Value>> GetViaIndex(const types::Type& t);
  Result<std::vector<dyndb::Dynamic>> GetPackages(const types::Type& t);
  Status RegisterExtent(const std::string& name, const types::Type& t);
  Status Commit();

  struct Info {
    uint64_t size = 0;
    uint64_t epoch = 0;
    int shards = 1;
  };
  Result<Info> GetInfo();

  // ------------------------------------------------------------------
  // WAL shipping (DESIGN.md §9.3): the wire half of the WalShipper
  // seam. serve::RemoteShipper composes these into a persist-side
  // shipper; they are public so tests can probe the ops directly.
  // ------------------------------------------------------------------

  /// The primary's current shippable state.
  Result<persist::WalShipper::ShipState> ShipBounds();

  struct Chunk {
    /// The file's size when the server served the read.
    uint64_t file_size = 0;
    /// The bytes available in the requested range (short at EOF).
    std::string data;
  };
  /// A ranged read of the primary's checkpoint (`shard` ignored) or a
  /// WAL segment. `length` must be ≤ kMaxReadChunk.
  Result<Chunk> ReadChunk(ShipFile file, int shard, uint64_t offset,
                          uint64_t length);

 private:
  /// Strips the value out of each self-describing result entry.
  static std::vector<core::Value> ValuesOf(std::vector<dyndb::Dynamic> ds);
  /// Runs a Get-strategy round trip and unwraps the value list.
  Result<std::vector<core::Value>> CallForValues(ReqOp op,
                                                 const types::Type& t);

  Socket sock_;
  uint64_t next_id_ = 1;
  /// Ids of sent-but-unanswered requests, oldest first.
  std::deque<uint64_t> outstanding_;
};

}  // namespace dbpl::serve

#endif  // DBPL_SERVE_CLIENT_H_
