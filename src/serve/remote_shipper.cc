#include "serve/remote_shipper.h"

#include <algorithm>
#include <cstring>
#include <thread>
#include <utility>

namespace dbpl::serve {

namespace {

constexpr const char* kCheckpointPath = "remote://checkpoint";
constexpr const char* kWalPathPrefix = "remote://wal.";

}  // namespace

// ---------------------------------------------------------------------------
// RemoteFile
// ---------------------------------------------------------------------------

/// A read-only view of one primary-side file, fetched in kReadChunk
/// round trips. LogReader drives this with its own cursor (absolute
/// offsets), and Vfs::ReadFileBytes issues one whole-file ReadAt — so
/// ReadAt internally loops RPCs of at most kMaxReadChunk bytes each.
class RemoteShipper::RemoteFile : public storage::VfsFile {
 public:
  RemoteFile(const RemoteShipper* shipper, ShipFile file, int shard)
      : shipper_(shipper), file_(file), shard_(shard) {}

  Result<size_t> ReadAt(uint64_t offset, void* out, size_t n) override {
    uint8_t* p = static_cast<uint8_t*>(out);
    size_t total = 0;
    while (total < n) {
      const uint64_t want =
          std::min<uint64_t>(n - total, kMaxReadChunk);
      DBPL_ASSIGN_OR_RETURN(
          Client::Chunk chunk,
          shipper_->ReadChunkRpc(file_, shard_, offset + total, want));
      // ReadChunkRpc already rejects over-long chunks; re-check at the
      // copy itself so the memcpy bound never rests on a remote peer.
      if (chunk.data.size() > want) {
        return Status::Corruption("chunk longer than requested");
      }
      std::memcpy(p + total, chunk.data.data(), chunk.data.size());
      total += chunk.data.size();
      // A short chunk is the server's EOF, mirroring local ReadAt.
      if (chunk.data.size() < want) break;
    }
    return total;
  }

  Result<uint64_t> Size() const override {
    // A zero-length read carries the file size for free.
    DBPL_ASSIGN_OR_RETURN(Client::Chunk chunk,
                          shipper_->ReadChunkRpc(file_, shard_, 0, 0));
    return chunk.file_size;
  }

  Status WriteAt(uint64_t, const void*, size_t) override {
    return Status::Unsupported("remote shipping files are read-only");
  }
  Status Append(const void*, size_t) override {
    return Status::Unsupported("remote shipping files are read-only");
  }
  Status Sync() override {
    return Status::Unsupported("remote shipping files are read-only");
  }

 private:
  const RemoteShipper* const shipper_;
  const ShipFile file_;
  const int shard_;
};

// ---------------------------------------------------------------------------
// RemoteVfs
// ---------------------------------------------------------------------------

Status RemoteShipper::ParsePath(const std::string& path, ShipFile* file,
                                int* shard) const {
  if (path == checkpoint_path_) {
    *file = ShipFile::kCheckpoint;
    *shard = 0;
    return Status::OK();
  }
  for (int s = 0; s < shard_count_; ++s) {
    if (path == wal_paths_[static_cast<size_t>(s)]) {
      *file = ShipFile::kWalSegment;
      *shard = s;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("not a path of this remote shipper: " +
                                 path);
}

Result<std::unique_ptr<storage::VfsFile>> RemoteShipper::RemoteVfs::Open(
    const std::string& path, storage::OpenMode mode) {
  if (mode != storage::OpenMode::kRead) {
    return Status::Unsupported("the remote VFS is read-only");
  }
  ShipFile file = ShipFile::kCheckpoint;
  int shard = 0;
  DBPL_RETURN_IF_ERROR(shipper_->ParsePath(path, &file, &shard));
  // Probe now so Open(kRead) of an absent file fails here (the server
  // answers NotFound in-band), matching local VFS semantics.
  DBPL_RETURN_IF_ERROR(
      shipper_->ReadChunkRpc(file, shard, 0, 0).status());
  return std::unique_ptr<storage::VfsFile>(
      new RemoteFile(shipper_, file, shard));
}

bool RemoteShipper::RemoteVfs::Exists(const std::string& path) const {
  ShipFile file = ShipFile::kCheckpoint;
  int shard = 0;
  if (!shipper_->ParsePath(path, &file, &shard).ok()) return false;
  // Absent file or dead transport both read as "not there yet"; the
  // follower retries on its next poll either way.
  return shipper_->ReadChunkRpc(file, shard, 0, 0).ok();
}

Status RemoteShipper::RemoteVfs::Remove(const std::string&) {
  return Status::Unsupported("the remote VFS is read-only");
}
Status RemoteShipper::RemoteVfs::Rename(const std::string&,
                                        const std::string&) {
  return Status::Unsupported("the remote VFS is read-only");
}
Status RemoteShipper::RemoteVfs::CreateDir(const std::string&) {
  return Status::Unsupported("the remote VFS is read-only");
}
Result<std::vector<std::string>> RemoteShipper::RemoteVfs::ListDir(
    const std::string&) const {
  return Status::Unsupported("the remote VFS is read-only");
}

// ---------------------------------------------------------------------------
// RemoteShipper
// ---------------------------------------------------------------------------

Result<std::unique_ptr<RemoteShipper>> RemoteShipper::Connect(
    const std::string& host, uint16_t port, const Options& options) {
  DBPL_ASSIGN_OR_RETURN(Client client, Client::Connect(host, port));
  return Bootstrap(std::move(client), options, host, port,
                   /*can_redial=*/true);
}

Result<std::unique_ptr<RemoteShipper>> RemoteShipper::Connect(
    const std::string& host, uint16_t port) {
  return Connect(host, port, Options());
}

Result<std::unique_ptr<RemoteShipper>> RemoteShipper::Adopt(
    Socket sock, const Options& options) {
  return Bootstrap(Client(std::move(sock)), options, /*host=*/"", /*port=*/0,
                   /*can_redial=*/false);
}

Result<std::unique_ptr<RemoteShipper>> RemoteShipper::Adopt(Socket sock) {
  return Adopt(std::move(sock), Options());
}

Result<std::unique_ptr<RemoteShipper>> RemoteShipper::Bootstrap(
    Client client, const Options& options, std::string host, uint16_t port,
    bool can_redial) {
  client.set_await_timeout(options.recv_timeout);
  Request req;
  req.op = ReqOp::kShipBounds;
  DBPL_ASSIGN_OR_RETURN(Response resp, client.Call(std::move(req)));
  DBPL_RETURN_IF_ERROR(resp.status);

  std::unique_ptr<RemoteShipper> shipper(
      new RemoteShipper(options, std::move(host), port, can_redial));
  shipper->shard_count_ = static_cast<int>(resp.ship.shards.size());
  shipper->checkpoint_path_ = kCheckpointPath;
  shipper->wal_paths_.reserve(resp.ship.shards.size());
  for (int s = 0; s < shipper->shard_count_; ++s) {
    shipper->wal_paths_.push_back(kWalPathPrefix + std::to_string(s));
  }

  MutexLock lock(&shipper->mu_);
  shipper->client_ = std::move(client);
  // Identity bias on the first connection: reported == raw, so a
  // single-socket follower sees exactly the in-process generations.
  shipper->raw_base_ = resp.ship.generation;
  shipper->gen_base_ = resp.ship.generation;
  shipper->last_reported_ = resp.ship.generation;
  shipper->cached_ = std::move(resp.ship);
  return shipper;
}

storage::Vfs* RemoteShipper::vfs() const { return &remote_vfs_; }

RemoteShipper::ShipState RemoteShipper::ship_bounds() const {
  MutexLock lock(&mu_);
  Result<ShipState> state = FetchBoundsLocked();
  if (state.ok()) return *std::move(state);
  // Transport down: report the last known state. The bounds were true
  // once, so tailing *to* them stays safe; a quiesced follower simply
  // stops advancing until the primary answers again.
  return cached_;
}

Result<RemoteShipper::ShipState> RemoteShipper::FetchBoundsLocked() const {
  Request req;
  req.op = ReqOp::kShipBounds;
  DBPL_ASSIGN_OR_RETURN(Response resp, Rpc(std::move(req)));
  DBPL_RETURN_IF_ERROR(resp.status);
  if (static_cast<int>(resp.ship.shards.size()) != shard_count_) {
    return Status::FailedPrecondition(
        "primary shard count changed from " +
        std::to_string(shard_count_) + " to " +
        std::to_string(resp.ship.shards.size()));
  }
  ShipState state = std::move(resp.ship);
  state.generation = gen_base_ + (state.generation - raw_base_);
  last_reported_ = state.generation;
  cached_ = state;
  return state;
}

Result<Client::Chunk> RemoteShipper::ReadChunkRpc(ShipFile file, int shard,
                                                  uint64_t offset,
                                                  uint64_t length) const {
  MutexLock lock(&mu_);
  Request req;
  req.op = ReqOp::kReadChunk;
  req.file = file;
  req.shard = shard;
  req.offset = offset;
  req.length = length;
  DBPL_ASSIGN_OR_RETURN(Response resp, Rpc(std::move(req)));
  DBPL_RETURN_IF_ERROR(resp.status);
  // The frame limit only bounds the chunk at kMaxFrameBody; a hostile
  // or buggy primary could still answer a small read with megabytes.
  // Callers (RemoteFile::ReadAt) memcpy into buffers sized by
  // `length`, so an over-long chunk must die here, not there.
  if (resp.chunk.size() > length) {
    return Status::Corruption(
        "primary answered a " + std::to_string(length) +
        "-byte chunk read with " + std::to_string(resp.chunk.size()) +
        " bytes");
  }
  Client::Chunk chunk;
  chunk.file_size = resp.file_size;
  chunk.data = std::move(resp.chunk);
  return chunk;
}

Result<Response> RemoteShipper::Rpc(Request req) const {
  ++n_rpcs_;
  std::chrono::milliseconds backoff = options_.backoff_initial;
  for (int attempt = 0;; ++attempt) {
    if (!client_.valid()) {
      if (!can_redial_) {
        return Status::Unavailable(
            "transport down and this shipper cannot redial");
      }
      if (attempt > options_.max_reconnect_attempts) {
        return Status::Unavailable(
            "primary unreachable after " +
            std::to_string(options_.max_reconnect_attempts) +
            " reconnect attempts");
      }
      if (attempt > 0) {
        std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, options_.backoff_max);
      }
      Status rc = Reconnect();
      if (!rc.ok()) {
        ++n_transport_errors_;
        // A geometry refusal is permanent — redialing the same primary
        // can only refuse again, so surfacing kUnavailable instead
        // would mask the one error the docs promise (§9.3).
        if (rc.code() == StatusCode::kFailedPrecondition) return rc;
        continue;
      }
      ++n_reconnects_;
      // A chunk read must NOT be replayed across a reconnect: the
      // primary may have restarted and rewritten the file, so stitching
      // a post-reconnect chunk into a ReadAt loop begun before it could
      // splice bytes from two primary incarnations into one logical
      // read. Fail the read instead — the replica resyncs, re-polls
      // bounds, and observes the generation Reconnect() just bumped.
      if (req.op == ReqOp::kReadChunk) {
        return Status::Unavailable(
            "transport re-established mid-read; the requested range is "
            "no longer trusted");
      }
    }
    // Only kShipBounds is re-sent after a reconnect: it is a
    // self-contained fetch, and Reconnect() already re-biased the
    // generation it will report, so the replay cannot leak pre-restart
    // state.
    Result<Response> resp = client_.Call(req);
    if (resp.ok()) return resp;
    ++n_transport_errors_;
    client_ = Client(Socket());
  }
}

Status RemoteShipper::Reconnect() const {
  DBPL_ASSIGN_OR_RETURN(Client fresh, Client::Connect(host_, port_));
  fresh.set_await_timeout(options_.recv_timeout);
  Request req;
  req.op = ReqOp::kShipBounds;
  DBPL_ASSIGN_OR_RETURN(Response resp, fresh.Call(std::move(req)));
  DBPL_RETURN_IF_ERROR(resp.status);
  if (static_cast<int>(resp.ship.shards.size()) != shard_count_) {
    // A primary reopened with different shard geometry is a different
    // database as far as this shipper is concerned; refuse it.
    return Status::FailedPrecondition(
        "reconnected primary has " +
        std::to_string(resp.ship.shards.size()) + " shards, expected " +
        std::to_string(shard_count_));
  }
  client_ = std::move(fresh);
  // Offsets learned before the reconnect cannot be trusted (the
  // primary may have restarted and rewritten its segments), so jump
  // the bias past everything already reported: the next ship_bounds()
  // shows a new generation and the follower re-bootstraps.
  gen_base_ = last_reported_ + 1;
  raw_base_ = resp.ship.generation;
  return Status::OK();
}

RemoteShipper::Stats RemoteShipper::stats() const {
  MutexLock lock(&mu_);
  Stats out;
  out.rpcs = n_rpcs_;
  out.transport_errors = n_transport_errors_;
  out.reconnects = n_reconnects_;
  return out;
}

}  // namespace dbpl::serve
