#include "serve/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace dbpl::serve {

namespace {

constexpr const char* kWouldBlockMsg = "recv would block";

Status ErrnoStatus(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

/// Blocks until `fd` is ready for `events` (POLLIN/POLLOUT).
Status PollFor(int fd, short events) {
  struct pollfd pfd = {fd, events, 0};
  while (true) {
    int rc = ::poll(&pfd, 1, -1);
    if (rc > 0) return Status::OK();
    if (rc < 0 && errno == EINTR) continue;
    return ErrnoStatus("poll");
  }
}

/// As PollFor, but gives up at `deadline` with kDeadlineExceeded.
Status PollUntil(int fd, short events,
                 std::chrono::steady_clock::time_point deadline) {
  struct pollfd pfd = {fd, events, 0};
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Status::DeadlineExceeded("recv deadline expired");
    }
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    // Wait at least 1ms so a sub-millisecond remainder cannot
    // busy-spin, and at most 60s so a huge deadline (> ~24.8 days)
    // cannot overflow the int cast into a negative value that poll(2)
    // reads as "wait forever" — the deadline is re-checked each round,
    // so the cap changes nothing observable.
    const int wait_ms = static_cast<int>(
        std::min<int64_t>(std::max<int64_t>(1, left.count()), 60000));
    int rc = ::poll(&pfd, 1, wait_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) continue;  // timed out this round; deadline re-checked
    if (errno == EINTR) continue;
    return ErrnoStatus("poll");
  }
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::SendAll(const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  size_t left = n;
  while (left > 0) {
    ssize_t sent = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (sent > 0) {
      p += sent;
      left -= static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      DBPL_RETURN_IF_ERROR(PollFor(fd_, POLLOUT));
      continue;
    }
    return ErrnoStatus("send");
  }
  return Status::OK();
}

Result<size_t> Socket::Recv(void* out, size_t n) {
  while (true) {
    ssize_t got = ::recv(fd_, out, n, 0);
    if (got >= 0) return static_cast<size_t>(got);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IoError(kWouldBlockMsg);
    }
    return ErrnoStatus("recv");
  }
}

bool Socket::IsWouldBlock(const Status& s) {
  return s.code() == StatusCode::kIoError && s.message() == kWouldBlockMsg;
}

Status Socket::RecvAll(void* out, size_t n) {
  // The deadline covers the whole read: a peer trickling one byte per
  // timeout interval cannot stretch the wait indefinitely.
  const bool bounded = recv_timeout_.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + recv_timeout_;
  char* p = static_cast<char*>(out);
  size_t left = n;
  while (left > 0) {
    // Poll *before* reading: on a blocking socket recv(2) itself would
    // park forever, so the deadline must gate entry into it. When data
    // is already buffered the poll returns immediately.
    if (bounded) DBPL_RETURN_IF_ERROR(PollUntil(fd_, POLLIN, deadline));
    Result<size_t> got = Recv(p, left);
    if (!got.ok()) {
      if (IsWouldBlock(got.status())) {
        if (!bounded) DBPL_RETURN_IF_ERROR(PollFor(fd_, POLLIN));
        continue;
      }
      return got.status();
    }
    if (*got == 0) return Status::IoError("connection closed by peer");
    p += *got;
    left -= *got;
  }
  return Status::OK();
}

Status Socket::SetNonBlocking(bool enable) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (enable) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd_, F_SETFL, flags) < 0) return ErrnoStatus("fcntl(F_SETFL)");
  return Status::OK();
}

void Socket::SetNoDelay() {
  int one = 1;
  // Best effort: fails harmlessly on non-TCP fds (socketpairs).
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Result<std::pair<Socket, Socket>> Socket::Pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return ErrnoStatus("socketpair");
  }
  return std::make_pair(Socket(fds[0]), Socket(fds[1]));
}

Result<Listener> Listener::Listen(const std::string& host, uint16_t port,
                                  int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Socket sock(fd);

  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return ErrnoStatus("bind");
  }
  if (::listen(fd, backlog) != 0) return ErrnoStatus("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    return ErrnoStatus("getsockname");
  }

  Listener out;
  out.sock_ = std::move(sock);
  out.port_ = ntohs(addr.sin_port);
  return out;
}

Result<Socket> Listener::Accept() {
  while (true) {
    int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return ErrnoStatus("accept");
  }
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Socket sock(fd);

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad connect address: " + host);
  }
  while (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    return ErrnoStatus("connect");
  }
  sock.SetNoDelay();
  return sock;
}

}  // namespace dbpl::serve
