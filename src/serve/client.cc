#include "serve/client.h"

#include <cstring>

namespace dbpl::serve {

namespace {

/// Little-endian u32 at `p` (the frame header words).
uint32_t LoadU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  DBPL_ASSIGN_OR_RETURN(Socket sock, ConnectTcp(host, port));
  return Client(std::move(sock));
}

Result<uint64_t> Client::Send(Request req) {
  req.id = next_id_++;
  ByteBuffer body;
  EncodeRequest(req, &body);
  ByteBuffer frame;
  // An unframeable (oversize) request surfaces here, before any bytes
  // reach the wire — the session stays usable.
  DBPL_RETURN_IF_ERROR(EncodeFrame(body, &frame));
  DBPL_RETURN_IF_ERROR(sock_.SendAll(frame.data(), frame.size()));
  outstanding_.push_back(req.id);
  return req.id;
}

Result<Response> Client::Await() {
  // Read the fixed header, bound the claimed length, read the body,
  // then let InspectFrame re-validate the whole frame (CRC included).
  uint8_t header[kFrameHeaderBytes];
  DBPL_RETURN_IF_ERROR(sock_.RecvAll(header, sizeof(header)));
  const uint32_t body_len = LoadU32Le(header + 4);
  if (body_len > kMaxFrameBody) {
    return Status::Corruption("response frame body length " +
                              std::to_string(body_len) + " exceeds limit");
  }
  std::vector<uint8_t> frame(kFrameHeaderBytes + body_len);
  std::memcpy(frame.data(), header, sizeof(header));
  if (body_len > 0) {
    DBPL_RETURN_IF_ERROR(
        sock_.RecvAll(frame.data() + kFrameHeaderBytes, body_len));
  }
  size_t total = 0;
  std::string error;
  if (InspectFrame(frame.data(), frame.size(), &total, &error) !=
      FrameStatus::kFrame) {
    return Status::Corruption("response frame invalid: " + error);
  }
  DBPL_ASSIGN_OR_RETURN(Response resp,
                        DecodeResponse(frame.data() + kFrameHeaderBytes,
                                       body_len));
  if (resp.op == ReqOp::kNone) {
    // Server-initiated: answers no particular request (e.g. shed).
    return resp;
  }
  if (outstanding_.empty() || resp.id != outstanding_.front()) {
    return Status::Corruption(
        "response id " + std::to_string(resp.id) +
        " does not match the oldest outstanding request" +
        (outstanding_.empty() ? " (none outstanding)"
                              : " " + std::to_string(outstanding_.front())));
  }
  outstanding_.pop_front();
  return resp;
}

Result<Response> Client::Call(Request req) {
  DBPL_RETURN_IF_ERROR(Send(std::move(req)).status());
  return Await();
}

Status Client::Ping() {
  Request req;
  req.op = ReqOp::kPing;
  DBPL_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  return resp.status;
}

Result<dyndb::Database::EntryId> Client::Insert(const dyndb::Dynamic& entry) {
  Request req;
  req.op = ReqOp::kInsert;
  req.entry = entry;
  DBPL_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  DBPL_RETURN_IF_ERROR(resp.status);
  return resp.entry_id;
}

Result<dyndb::Dynamic> Client::Get(dyndb::Database::EntryId id) {
  Request req;
  req.op = ReqOp::kGet;
  req.entry_id = id;
  DBPL_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  DBPL_RETURN_IF_ERROR(resp.status);
  if (resp.entries.size() != 1) {
    return Status::Corruption("Get response carried " +
                              std::to_string(resp.entries.size()) +
                              " entries (expected 1)");
  }
  return std::move(resp.entries.front());
}

std::vector<core::Value> Client::ValuesOf(std::vector<dyndb::Dynamic> ds) {
  std::vector<core::Value> out;
  out.reserve(ds.size());
  for (dyndb::Dynamic& d : ds) out.push_back(std::move(d.value));
  return out;
}

Result<std::vector<core::Value>> Client::CallForValues(ReqOp op,
                                                       const types::Type& t) {
  Request req;
  req.op = op;
  req.type = t;
  DBPL_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  DBPL_RETURN_IF_ERROR(resp.status);
  return ValuesOf(std::move(resp.entries));
}

Result<std::vector<core::Value>> Client::GetScan(const types::Type& t) {
  return CallForValues(ReqOp::kGetScan, t);
}

Result<std::vector<core::Value>> Client::GetViaExtent(const types::Type& t) {
  return CallForValues(ReqOp::kGetViaExtent, t);
}

Result<std::vector<core::Value>> Client::GetViaIndex(const types::Type& t) {
  return CallForValues(ReqOp::kGetViaIndex, t);
}

Result<std::vector<dyndb::Dynamic>> Client::GetPackages(const types::Type& t) {
  Request req;
  req.op = ReqOp::kGetPackages;
  req.type = t;
  DBPL_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  DBPL_RETURN_IF_ERROR(resp.status);
  return std::move(resp.entries);
}

Status Client::RegisterExtent(const std::string& name, const types::Type& t) {
  Request req;
  req.op = ReqOp::kRegisterExtent;
  req.extent_name = name;
  req.type = t;
  DBPL_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  return resp.status;
}

Status Client::Commit() {
  Request req;
  req.op = ReqOp::kCommit;
  DBPL_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  return resp.status;
}

Result<Client::Info> Client::GetInfo() {
  Request req;
  req.op = ReqOp::kInfo;
  DBPL_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  DBPL_RETURN_IF_ERROR(resp.status);
  Info info;
  info.size = resp.size;
  info.epoch = resp.epoch;
  info.shards = resp.shards;
  return info;
}

Result<persist::WalShipper::ShipState> Client::ShipBounds() {
  Request req;
  req.op = ReqOp::kShipBounds;
  DBPL_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  DBPL_RETURN_IF_ERROR(resp.status);
  return std::move(resp.ship);
}

Result<Client::Chunk> Client::ReadChunk(ShipFile file, int shard,
                                        uint64_t offset, uint64_t length) {
  Request req;
  req.op = ReqOp::kReadChunk;
  req.file = file;
  req.shard = shard;
  req.offset = offset;
  req.length = length;
  DBPL_ASSIGN_OR_RETURN(Response resp, Call(std::move(req)));
  DBPL_RETURN_IF_ERROR(resp.status);
  // A chunk longer than asked for is a protocol violation (the frame
  // limit alone would let a hostile server answer an 8-byte read with
  // megabytes); refuse it before any caller trusts the size.
  if (resp.chunk.size() > length) {
    return Status::Corruption(
        "server answered a " + std::to_string(length) +
        "-byte chunk read with " + std::to_string(resp.chunk.size()) +
        " bytes");
  }
  Chunk chunk;
  chunk.file_size = resp.file_size;
  chunk.data = std::move(resp.chunk);
  return chunk;
}

}  // namespace dbpl::serve
