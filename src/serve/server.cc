#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "dyndb/dynamic.h"

namespace dbpl::serve {

namespace {

/// Cap on bytes drained from one session per service turn, so a
/// fire-hosing pipeliner cannot starve other sessions of its worker.
constexpr size_t kMaxReadPerTurn = 256 * 1024;
constexpr size_t kRecvChunkBytes = 16 * 1024;

Status SetFdNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Start(persist::WalDatabase* wdb,
                                              const ServeOptions& options) {
  if (wdb == nullptr) {
    return Status::InvalidArgument("Server::Start: null database");
  }
  if (options.workers < 1) {
    return Status::InvalidArgument("Server::Start: need at least one worker");
  }
  if (options.max_sessions < 1) {
    return Status::InvalidArgument("Server::Start: max_sessions must be >= 1");
  }
  std::unique_ptr<Server> server(new Server(wdb, options));
  DBPL_RETURN_IF_ERROR(server->StartLocked());
  return server;
}

Status Server::StartLocked() {
  if (::pipe(wake_fd_) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  DBPL_RETURN_IF_ERROR(SetFdNonBlocking(wake_fd_[0]));
  DBPL_RETURN_IF_ERROR(SetFdNonBlocking(wake_fd_[1]));

  if (options_.listen) {
    DBPL_ASSIGN_OR_RETURN(
        listener_,
        Listener::Listen(options_.host, options_.port, options_.backlog));
    DBPL_RETURN_IF_ERROR(SetFdNonBlocking(listener_.fd()));
    port_ = listener_.port();
  }

  started_.store(true, std::memory_order_release);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (!started_.exchange(false, std::memory_order_acq_rel)) return;
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  ready_cv_.NotifyAll();
  WakeDispatcher();
  if (dispatcher_.joinable()) dispatcher_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  listener_.Close();
  {
    MutexLock lock(&mu_);
    sessions_.clear();  // RAII closes every socket; clients see EOF
    ready_.clear();
  }
  for (int& fd : wake_fd_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

Status Server::AdoptConnection(Socket sock) {
  if (!sock.valid()) {
    return Status::InvalidArgument("AdoptConnection: invalid socket");
  }
  return Admit(std::move(sock));
}

int Server::active_sessions() const {
  MutexLock lock(&mu_);
  return static_cast<int>(sessions_.size());
}

ServerStats Server::stats() const {
  ServerStats out;
  out.sessions_accepted = n_accepted_.load(std::memory_order_relaxed);
  out.sessions_shed = n_shed_.load(std::memory_order_relaxed);
  out.sessions_closed = n_closed_.load(std::memory_order_relaxed);
  out.requests_ok = n_requests_ok_.load(std::memory_order_relaxed);
  out.requests_error = n_requests_error_.load(std::memory_order_relaxed);
  out.protocol_errors = n_protocol_errors_.load(std::memory_order_relaxed);
  return out;
}

void Server::WakeDispatcher() {
  char byte = 1;
  // A full pipe means a wakeup is already pending; either way the
  // dispatcher will come around.
  (void)!::write(wake_fd_[1], &byte, 1);
}

void Server::DispatcherLoop() {
  std::vector<struct pollfd> pfds;
  std::vector<uint64_t> ids;
  while (true) {
    pfds.clear();
    ids.clear();
    pfds.push_back({wake_fd_[0], POLLIN, 0});
    const bool listening = listener_.valid();
    if (listening) pfds.push_back({listener_.fd(), POLLIN, 0});
    const size_t base = pfds.size();
    {
      MutexLock lock(&mu_);
      if (stop_) return;
      for (const auto& [id, session] : sessions_) {
        if (session->state == SessionState::kIdle) {
          pfds.push_back({session->sock.fd(), POLLIN, 0});
          ids.push_back(id);
        }
      }
    }

    int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 100);
    if (rc < 0) {
      if (errno != EINTR) return;  // unrecoverable; Stop will tear down
      continue;
    }

    if ((pfds[0].revents & POLLIN) != 0) {
      char buf[64];
      while (::read(wake_fd_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (listening &&
        (pfds[1].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      AcceptReady();
    }

    bool queued = false;
    {
      MutexLock lock(&mu_);
      if (stop_) return;
      for (size_t i = base; i < pfds.size(); ++i) {
        if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
        auto it = sessions_.find(ids[i - base]);
        if (it == sessions_.end()) continue;
        // Only the dispatcher moves a session out of kIdle, so the
        // snapshot taken above cannot have gone stale.
        it->second->state = SessionState::kReady;
        ready_.push_back(it->first);
        queued = true;
      }
    }
    if (queued) ready_cv_.NotifyAll();
  }
}

void Server::AcceptReady() {
  // The listener is non-blocking: accept until it runs dry.
  while (true) {
    Result<Socket> sock = listener_.Accept();
    if (!sock.ok()) return;  // EAGAIN (drained) or a transient error
    (void)Admit(std::move(*sock));
  }
}

Status Server::Admit(Socket sock) {
  sock.SetNoDelay();
  DBPL_RETURN_IF_ERROR(sock.SetNonBlocking(true));
  bool admitted = false;
  {
    MutexLock lock(&mu_);
    if (!stop_ &&
        static_cast<int>(sessions_.size()) < options_.max_sessions) {
      sessions_.emplace(next_session_id_++,
                        std::make_unique<Session>(std::move(sock)));
      admitted = true;
    }
  }
  if (!admitted) {
    n_shed_.fetch_add(1, std::memory_order_relaxed);
    Shed(std::move(sock));
    return Status::Unavailable("server at capacity");
  }
  n_accepted_.fetch_add(1, std::memory_order_relaxed);
  WakeDispatcher();
  return Status::OK();
}

void Server::Shed(Socket sock) {
  Response resp;
  resp.id = 0;
  resp.op = ReqOp::kNone;
  resp.status = Status::Unavailable("server at capacity");
  ByteBuffer body;
  EncodeResponse(resp, &body);
  ByteBuffer frame;
  // A bare error response cannot exceed the frame limit.
  if (!EncodeFrame(body, &frame).ok()) return;
  (void)sock.SendAll(frame.data(), frame.size());  // best effort, then close
}

void Server::WorkerLoop() {
  while (true) {
    uint64_t id = 0;
    Session* session = nullptr;
    {
      MutexLock lock(&mu_);
      while (!stop_ && ready_.empty()) ready_cv_.Wait(mu_);
      if (stop_) return;
      id = ready_.front();
      ready_.pop_front();
      auto it = sessions_.find(id);
      if (it != sessions_.end()) {
        session = it->second.get();
        session->state = SessionState::kBusy;
      }
    }
    if (session == nullptr) continue;

    ProcessTurn(session);

    bool close = false;
    {
      MutexLock lock(&mu_);
      if (session->closing) {
        sessions_.erase(id);
        close = true;
      } else {
        session->state = SessionState::kIdle;
      }
    }
    if (close) {
      n_closed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      WakeDispatcher();  // poll the session again
    }
  }
}

void Server::ProcessTurn(Session* session) {
  // 1. Drain the socket (bounded per turn for fairness).
  size_t drained = 0;
  while (drained < kMaxReadPerTurn) {
    uint8_t chunk[kRecvChunkBytes];
    Result<size_t> got = session->sock.Recv(chunk, sizeof(chunk));
    if (!got.ok()) {
      if (!Socket::IsWouldBlock(got.status())) session->closing = true;
      break;
    }
    if (*got == 0) {
      session->saw_eof = true;
      break;
    }
    session->in.insert(session->in.end(), chunk, chunk + *got);
    drained += *got;
  }

  // 2. Answer every complete buffered request, in arrival order.
  ByteBuffer out;
  size_t consumed = 0;
  bool fatal = session->closing;
  while (!fatal) {
    size_t total = 0;
    std::string error;
    FrameStatus fs = InspectFrame(session->in.data() + consumed,
                                  session->in.size() - consumed, &total,
                                  &error);
    if (fs == FrameStatus::kNeedMore) break;
    if (fs == FrameStatus::kBad) {
      // Framing is lost for good: answer once (op kNone, no id to
      // echo) and drop the session.
      n_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      Response resp;
      resp.status = Status::Corruption(error);
      ByteBuffer body;
      EncodeResponse(resp, &body);
      (void)EncodeFrame(body, &out);  // bare error: cannot be oversize
      fatal = true;
      break;
    }
    if (!HandleFrame(session->in.data() + consumed + kFrameHeaderBytes,
                     total - kFrameHeaderBytes, &out)) {
      fatal = true;  // error response already appended
    }
    consumed += total;
  }
  if (consumed > 0) {
    session->in.erase(session->in.begin(),
                      session->in.begin() + static_cast<ptrdiff_t>(consumed));
  }

  // 3. Flush all responses with one send.
  if (!out.empty()) {
    Status sent = session->sock.SendAll(out.data(), out.size());
    if (!sent.ok()) fatal = true;
  }
  if (fatal || session->saw_eof) session->closing = true;
}

bool Server::HandleFrame(const uint8_t* body, size_t n, ByteBuffer* out) {
  Result<Request> req = DecodeRequest(body, n);
  Response resp;
  const bool well_formed = req.ok();
  if (!well_formed) {
    // CRC-valid frame, undecodable body: the peer speaks another
    // protocol (or version) — answer and disconnect.
    n_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    resp.status = req.status();
  } else {
    resp = Execute(*req);
  }
  ByteBuffer resp_body;
  EncodeResponse(resp, &resp_body);
  Status framed = EncodeFrame(resp_body, out);
  if (!framed.ok()) {
    // The response materialized larger than a legal frame (e.g. a
    // GetScan over a huge extent). Answer the *same request* in-band
    // with the refusal instead — the session keeps its framing and
    // lives on; the client can narrow the query and retry.
    Response refusal;
    refusal.id = resp.id;
    refusal.op = resp.op;
    refusal.status = std::move(framed);
    resp.status = refusal.status;
    ByteBuffer refusal_body;
    EncodeResponse(refusal, &refusal_body);
    (void)EncodeFrame(refusal_body, out);  // bare error: always framable
  }
  if (well_formed) {
    if (resp.status.ok()) {
      n_requests_ok_.fetch_add(1, std::memory_order_relaxed);
    } else {
      n_requests_error_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return well_formed;
}

Response Server::Execute(const Request& req) {
  Response resp;
  resp.id = req.id;
  resp.op = req.op;
  switch (req.op) {
    case ReqOp::kPing:
      break;
    case ReqOp::kInsert: {
      Result<dyndb::Database::EntryId> id = wdb_->Insert(req.entry);
      if (id.ok()) {
        resp.entry_id = *id;
      } else {
        resp.status = id.status();
      }
      break;
    }
    case ReqOp::kGet: {
      Result<dyndb::Dynamic> d = wdb_->db().Get(req.entry_id);
      if (d.ok()) {
        resp.entries.push_back(*std::move(d));
      } else {
        resp.status = d.status();
      }
      break;
    }
    case ReqOp::kGetScan: {
      dyndb::Database::Snapshot snap = wdb_->db().GetSnapshot();
      for (core::Value& v : snap.GetScan(req.type)) {
        resp.entries.push_back(dyndb::MakeDynamic(std::move(v)));
      }
      break;
    }
    case ReqOp::kGetViaExtent: {
      dyndb::Database::Snapshot snap = wdb_->db().GetSnapshot();
      Result<std::vector<core::Value>> vs = snap.GetViaExtent(req.type);
      if (vs.ok()) {
        for (core::Value& v : *vs) {
          resp.entries.push_back(dyndb::MakeDynamic(std::move(v)));
        }
      } else {
        resp.status = vs.status();
      }
      break;
    }
    case ReqOp::kGetViaIndex: {
      dyndb::Database::Snapshot snap = wdb_->db().GetSnapshot();
      for (core::Value& v : snap.GetViaIndex(req.type)) {
        resp.entries.push_back(dyndb::MakeDynamic(std::move(v)));
      }
      break;
    }
    case ReqOp::kGetPackages: {
      dyndb::Database::Snapshot snap = wdb_->db().GetSnapshot();
      resp.entries = snap.GetPackages(req.type);
      break;
    }
    case ReqOp::kRegisterExtent:
      resp.status = wdb_->RegisterExtent(req.extent_name, req.type);
      break;
    case ReqOp::kCommit:
      resp.status = wdb_->Commit();
      break;
    case ReqOp::kInfo: {
      dyndb::Database::Snapshot snap = wdb_->db().GetSnapshot();
      resp.size = snap.size();
      resp.epoch = snap.epoch();
      resp.shards = snap.shards();
      break;
    }
    case ReqOp::kShipBounds:
      resp.ship = wdb_->ship_bounds();
      break;
    case ReqOp::kReadChunk: {
      // The (kind, shard) pair resolves to a path server-side; clients
      // never name files, so there is nothing to traverse. Decode
      // already bounded shard and length; geometry is checked here.
      if (req.file == ShipFile::kWalSegment &&
          req.shard >= wdb_->shard_count()) {
        resp.status = Status::InvalidArgument(
            "shard " + std::to_string(req.shard) + " out of range (primary has " +
            std::to_string(wdb_->shard_count()) + ")");
        break;
      }
      const std::string& path = req.file == ShipFile::kCheckpoint
                                    ? wdb_->checkpoint_path()
                                    : wdb_->wal_path(req.shard);
      auto file = wdb_->vfs()->Open(path, storage::OpenMode::kRead);
      if (!file.ok()) {
        // A segment/checkpoint may legitimately not exist yet; map the
        // VFS's NotFound (or crash-injected error) in-band.
        resp.status = file.status();
        break;
      }
      Result<uint64_t> size = (*file)->Size();
      if (!size.ok()) {
        resp.status = size.status();
        break;
      }
      resp.file_size = *size;
      resp.chunk.resize(static_cast<size_t>(req.length));
      if (req.length > 0) {
        Result<size_t> got =
            (*file)->ReadAt(req.offset, resp.chunk.data(),
                            static_cast<size_t>(req.length));
        if (!got.ok()) {
          resp.status = got.status();
          resp.chunk.clear();
          break;
        }
        resp.chunk.resize(*got);  // short at EOF, like ReadAt itself
      }
      break;
    }
    default:
      resp.status = Status::Internal("unhandled opcode");
      break;
  }
  return resp;
}

}  // namespace dbpl::serve
