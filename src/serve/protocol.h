#ifndef DBPL_SERVE_PROTOCOL_H_
#define DBPL_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "dyndb/database.h"
#include "dyndb/dynamic.h"
#include "persist/wal_database.h"
#include "types/type.h"

namespace dbpl::serve {

// The dbpl-serve wire protocol: length-prefixed, CRC-framed binary
// messages whose payloads reuse the serial layer's self-describing
// encoding (serial::EncodeDynamic — value and type travel together,
// the paper's P2 lifted onto the wire, so a client can never desync
// from schema evolution).
//
// ## Frame layout
//
//   [u32 masked crc32c(body)] [u32 body length] [body bytes]
//
// Both header words are little-endian; the CRC is masked with the
// LevelDB rotation (common/crc32c.h) so a frame storing its own CRC
// has no fixed point. The body length is bounded by kMaxFrameBody: a
// peer claiming more is a protocol violation, detected from the 8-byte
// header alone — a hostile length can never drive an allocation.
//
// ## Message bodies
//
//   request  := [u8 version] [u8 op] [u64 request id] [payload]
//   response := [u8 version] [u8 op] [u64 request id]
//               [u8 status code] [string message] [payload if OK]
//
// Request ids are chosen by the client and echoed verbatim; a client
// may pipeline any number of requests, and the server answers each
// session's requests strictly in arrival order. Server-initiated
// errors that answer no particular request (admission-control sheds,
// unparseable requests) use op kNone and id 0.
//
// Status travels as an explicit one-byte code (WireCodeOf /
// CodeFromWire) rather than the enum's integer value, so reordering
// dbpl::StatusCode never silently changes the wire format.

/// Protocol version; bumped on incompatible changes. A peer speaking
/// an unknown version is answered with kUnsupported and disconnected.
inline constexpr uint8_t kProtocolVersion = 1;

/// Frame header: masked CRC + body length, both u32 little-endian.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Upper bound on a frame body. Chosen to fit any plausible request
/// (a single entry or a modest result set) while keeping a hostile
/// length field from committing the peer to a giant read.
inline constexpr uint64_t kMaxFrameBody = 1ull << 24;

/// Largest chunk a kReadChunk request may ask for: the frame body
/// limit minus generous slack for the response envelope (prefix,
/// status, file size, chunk length prefix), so a maximal chunk can
/// always be answered within one legal frame.
inline constexpr uint64_t kMaxReadChunk = kMaxFrameBody - 64;

/// Request opcodes. Values are wire format — append, never renumber.
enum class ReqOp : uint8_t {
  /// No request: the op echoed on server-initiated error responses.
  kNone = 0,
  kPing = 1,
  kInsert = 2,
  kGet = 3,
  kGetScan = 4,
  kGetViaExtent = 5,
  kGetViaIndex = 6,
  kGetPackages = 7,
  kRegisterExtent = 8,
  kCommit = 9,
  kInfo = 10,
  /// WAL shipping (DESIGN.md §9.3): the primary's current
  /// WalShipper::ShipState — generation plus one (durable bytes,
  /// epoch) bound per shard segment. No request payload.
  kShipBounds = 11,
  /// WAL shipping: a ranged read of ≤ kMaxReadChunk bytes from one of
  /// the primary's shipping files, identified by (kind, shard) — never
  /// by a path string, so a hostile client cannot name arbitrary
  /// files. The response carries the file's current size plus the
  /// bytes actually available at the offset (short or empty at EOF,
  /// mirroring VfsFile::ReadAt).
  kReadChunk = 12,
};

/// The files kReadChunk can address, scoped to the served database's
/// directory by construction.
enum class ShipFile : uint8_t {
  kCheckpoint = 0,
  /// The per-shard WAL segment named by Request::shard.
  kWalSegment = 1,
};

/// Human-readable opcode name (for error messages and logs).
std::string_view ReqOpName(ReqOp op);

/// One decoded request. Which fields are meaningful depends on `op`:
/// kInsert uses `entry`; kGet uses `entry_id`; the four Get-strategy
/// ops use `type`; kRegisterExtent uses `extent_name` + `type`;
/// kReadChunk uses `file` + `shard` + `offset` + `length`.
struct Request {
  uint64_t id = 0;
  ReqOp op = ReqOp::kPing;
  dyndb::Dynamic entry;
  dyndb::Database::EntryId entry_id = 0;
  types::Type type;
  std::string extent_name;
  /// kReadChunk: which shipping file, which shard (segments only),
  /// and the byte range requested (length ≤ kMaxReadChunk).
  ShipFile file = ShipFile::kCheckpoint;
  int shard = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// One decoded response. `status` carries the operation's outcome;
/// payload fields are meaningful only when it is OK: kInsert fills
/// `entry_id`; kGet and the Get-strategy ops fill `entries` (each a
/// self-describing dynamic); kInfo fills `size`/`epoch`/`shards`.
struct Response {
  uint64_t id = 0;
  ReqOp op = ReqOp::kNone;
  Status status;
  dyndb::Database::EntryId entry_id = 0;
  std::vector<dyndb::Dynamic> entries;
  uint64_t size = 0;
  uint64_t epoch = 0;
  int shards = 1;
  /// kShipBounds: the primary's shippable state verbatim.
  persist::WalShipper::ShipState ship;
  /// kReadChunk: the file's size at read time, and the bytes available
  /// in the requested range (short or empty at EOF).
  uint64_t file_size = 0;
  std::string chunk;
};

/// Appends the body encoding of a request/response (no frame header).
void EncodeRequest(const Request& req, ByteBuffer* out);
void EncodeResponse(const Response& resp, ByteBuffer* out);

/// Decodes one message body (the bytes between frame headers). Total:
/// any input yields a value or a non-OK status, never a crash — these
/// are the surfaces tests/fuzz/fuzz_serve_frame.cc feeds hostile bytes.
Result<Request> DecodeRequest(const uint8_t* body, size_t n);
Result<Response> DecodeResponse(const uint8_t* body, size_t n);

/// Wraps a message body in a frame: masked CRC, length, body.
/// A body larger than kMaxFrameBody is refused with
/// kResourceExhausted and `out` is left untouched — the peer's
/// InspectFrame would reject such a frame as unrecoverable Corruption
/// (and a ≥ 4 GiB body would silently truncate its u32 length word
/// into a CRC-valid lie), so the oversize must be answered in-band
/// instead of framed.
Status EncodeFrame(const ByteBuffer& body, ByteBuffer* out);

/// Outcome of inspecting a byte stream's head for one frame.
enum class FrameStatus : uint8_t {
  /// A whole, CRC-valid frame is present.
  kFrame,
  /// The buffer holds a frame prefix; read more bytes.
  kNeedMore,
  /// The header claims an oversized body or the CRC does not match —
  /// the stream is unrecoverable (framing is lost for good).
  kBad,
};

/// Inspects the start of `data` for one complete frame, without
/// consuming anything.
///
///  * kFrame:    `*total` = the frame's full size (header + body); its
///               body is `data + kFrameHeaderBytes .. data + *total`.
///  * kNeedMore: `*total` = total bytes needed before re-inspecting
///               (kFrameHeaderBytes until the header is complete).
///  * kBad:      `*error` names the violation; `*total` is unchanged.
///
/// Never allocates and never trusts the length field beyond bounding
/// it, so hostile headers cost O(1) to reject.
FrameStatus InspectFrame(const uint8_t* data, size_t n, size_t* total,
                         std::string* error);

/// Status code <-> stable wire byte. Unknown wire bytes decode as
/// kInternal (a peer newer than us reported something we cannot
/// classify; treating it as a bug report is the conservative reading).
uint8_t WireCodeOf(StatusCode code);
StatusCode CodeFromWire(uint8_t wire);

}  // namespace dbpl::serve

#endif  // DBPL_SERVE_PROTOCOL_H_
