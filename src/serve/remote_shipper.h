#ifndef DBPL_SERVE_REMOTE_SHIPPER_H_
#define DBPL_SERVE_REMOTE_SHIPPER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "persist/wal_database.h"
#include "serve/client.h"
#include "serve/socket.h"
#include "storage/vfs.h"

namespace dbpl::serve {

/// persist::WalShipper over the dbpl-serve wire protocol: the network
/// half of WAL shipping (DESIGN.md §9.3).
///
/// The WalShipper seam is deliberately VFS-shaped — a follower asks
/// the primary only for *bounds* (`ship_bounds()`) and reads the
/// checkpoint/segment bytes itself through `vfs()`. A RemoteShipper
/// therefore needs exactly two wire ops: kShipBounds (the state) and
/// kReadChunk (ranged reads of the shipping files, ≤ kMaxReadChunk per
/// round trip). Its inner remote VFS resolves the synthetic paths
/// `remote://checkpoint` and `remote://wal.<s>` back into chunked RPC
/// reads, so an **unmodified** persist::Replica tails a primary across
/// a real socket through exactly the code path the in-process crash
/// matrix proves.
///
/// ## Failure mapping
///
/// Transport trouble must surface as states Replica already knows how
/// to survive:
///
///  * An RPC that keeps failing after reconnect attempts makes reads
///    fail (⇒ Replica resyncs) while `ship_bounds()` returns the last
///    known state (⇒ a quiesced follower simply makes no progress).
///  * A chunk read whose transport breaks is never replayed across a
///    reconnect — it fails with kUnavailable even once redialing
///    succeeds, so a multi-chunk ReadAt can never splice bytes from
///    two primary incarnations into one logical read. Only
///    kShipBounds replays (a self-contained fetch, reported under the
///    already-bumped generation). A chunk longer than requested is
///    rejected as Corruption before any caller copies it.
///  * Every successful *re*connect biases the reported generation to
///    `last reported + 1`: a restarted primary resets its in-memory
///    generation counter, so offsets from before the reconnect cannot
///    be trusted — the bump forces the follower down its re-bootstrap
///    path, which is always safe (the checkpoint is an atomically
///    renamed durable prefix).
///
/// Reconnection applies only to shippers made with Connect; one made
/// with Adopt (an un-redialable socket, e.g. a socketpair end) fails
/// its RPCs permanently once the transport breaks, which is what the
/// crash-matrix tests want.
///
/// Thread-safe: one internal mutex serializes every RPC (the mutex is
/// unranked — it is a leaf that only performs socket I/O, never
/// touching the database stack, and is taken under Replica::mu_).
class RemoteShipper : public persist::WalShipper {
 public:
  struct Options {
    /// Receive deadline per RPC: a primary that stalls mid-frame
    /// surfaces kDeadlineExceeded instead of hanging the follower.
    std::chrono::milliseconds recv_timeout{5000};
    /// Reconnect attempts per failing RPC before giving up on it.
    int max_reconnect_attempts = 5;
    /// Exponential backoff between reconnect attempts.
    std::chrono::milliseconds backoff_initial{10};
    std::chrono::milliseconds backoff_max{1000};
  };

  /// Dials the primary and learns its shard geometry (one kShipBounds
  /// round trip). Fails if the primary is unreachable or the handshake
  /// errs; once constructed, later transport failures are absorbed by
  /// the reconnect/backoff loop instead.
  static Result<std::unique_ptr<RemoteShipper>> Connect(
      const std::string& host, uint16_t port, const Options& options);
  static Result<std::unique_ptr<RemoteShipper>> Connect(
      const std::string& host, uint16_t port);

  /// Wraps an already-connected stream (e.g. a socketpair end adopted
  /// by a Server). No redial: a broken transport is permanent.
  static Result<std::unique_ptr<RemoteShipper>> Adopt(
      Socket sock, const Options& options);
  static Result<std::unique_ptr<RemoteShipper>> Adopt(Socket sock);

  RemoteShipper(const RemoteShipper&) = delete;
  RemoteShipper& operator=(const RemoteShipper&) = delete;

  // WalShipper:
  ShipState ship_bounds() const override;
  int shard_count() const override { return shard_count_; }
  storage::Vfs* vfs() const override;
  const std::string& wal_path(int shard) const override {
    return wal_paths_[static_cast<size_t>(shard)];
  }
  const std::string& checkpoint_path() const override {
    return checkpoint_path_;
  }

  /// Transport-level counters (monotone since construction).
  struct Stats {
    uint64_t rpcs = 0;
    uint64_t transport_errors = 0;
    uint64_t reconnects = 0;
  };
  Stats stats() const;

 private:
  /// The follower-side view of the primary's files: Open(kRead) /
  /// Exists / ReadAt / Size become kReadChunk RPCs; everything else is
  /// Unsupported (a follower never writes through the seam).
  class RemoteVfs : public storage::Vfs {
   public:
    explicit RemoteVfs(RemoteShipper* shipper) : shipper_(shipper) {}
    Result<std::unique_ptr<storage::VfsFile>> Open(
        const std::string& path, storage::OpenMode mode) override;
    bool Exists(const std::string& path) const override;
    Status Remove(const std::string& path) override;
    Status Rename(const std::string& from, const std::string& to) override;
    Status CreateDir(const std::string& path) override;
    Result<std::vector<std::string>> ListDir(
        const std::string& path) const override;

   private:
    RemoteShipper* const shipper_;
  };

  class RemoteFile;

  RemoteShipper(Options options, std::string host, uint16_t port,
                bool can_redial)
      : options_(options),
        host_(std::move(host)),
        port_(port),
        can_redial_(can_redial),
        remote_vfs_(this) {}

  /// Shared tail of Connect/Adopt: handshakes (one kShipBounds round
  /// trip) to learn the geometry and seeds the generation bias.
  static Result<std::unique_ptr<RemoteShipper>> Bootstrap(
      Client client, const Options& options, std::string host, uint16_t port,
      bool can_redial);

  /// Resolves a synthetic remote path to (file kind, shard); non-OK
  /// for paths this shipper never issued.
  Status ParsePath(const std::string& path, ShipFile* file,
                   int* shard) const;

  /// One locked kReadChunk round trip (the building block RemoteFile
  /// and Exists run on). In-band server errors surface as the call's
  /// own status.
  Result<Client::Chunk> ReadChunkRpc(ShipFile file, int shard,
                                     uint64_t offset, uint64_t length) const;

  /// One RPC with reconnect/backoff on transport failure. In-band
  /// errors (Response::status) are returned to the caller untouched —
  /// they are the server speaking, not the transport failing.
  Result<Response> Rpc(Request req) const DBPL_REQUIRES(mu_);
  /// Drops the current connection and dials + re-handshakes a new one,
  /// applying the generation bias. Non-OK when dialing fails or the
  /// primary came back with a different shard geometry.
  Status Reconnect() const DBPL_REQUIRES(mu_);
  /// A kShipBounds RPC (no reconnect) updating the cache + bias.
  Result<ShipState> FetchBoundsLocked() const DBPL_REQUIRES(mu_);

  const Options options_;
  const std::string host_;
  const uint16_t port_;
  const bool can_redial_;

  /// Geometry and paths: fixed at Connect/Adopt (the WalShipper
  /// contract makes them stable for the shipper's lifetime).
  int shard_count_ = 0;
  std::string checkpoint_path_;
  std::vector<std::string> wal_paths_;

  mutable RemoteVfs remote_vfs_;

  /// Serializes all RPCs and guards the connection + cached state.
  /// Unranked: a leaf below the whole stack (see class comment).
  mutable dbpl::Mutex mu_;
  mutable Client client_ DBPL_GUARDED_BY(mu_){Socket()};
  /// Generation bias: reported = gen_base_ + (raw - raw_base_), with
  /// gen_base_ jumping to last_reported_ + 1 at every reconnect.
  mutable uint64_t gen_base_ DBPL_GUARDED_BY(mu_) = 0;
  mutable uint64_t raw_base_ DBPL_GUARDED_BY(mu_) = 0;
  mutable uint64_t last_reported_ DBPL_GUARDED_BY(mu_) = 0;
  /// Last successfully fetched (biased) state, returned when the
  /// transport is down.
  mutable ShipState cached_ DBPL_GUARDED_BY(mu_);
  mutable uint64_t n_rpcs_ DBPL_GUARDED_BY(mu_) = 0;
  mutable uint64_t n_transport_errors_ DBPL_GUARDED_BY(mu_) = 0;
  mutable uint64_t n_reconnects_ DBPL_GUARDED_BY(mu_) = 0;
};

}  // namespace dbpl::serve

#endif  // DBPL_SERVE_REMOTE_SHIPPER_H_
