#ifndef DBPL_SERVE_SOCKET_H_
#define DBPL_SERVE_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"

namespace dbpl::serve {

/// A thin RAII wrapper over a POSIX stream socket (or any byte-stream
/// fd, e.g. one end of a socketpair — which is how the differential
/// tests drive the server without touching the network stack).
///
/// All sends use MSG_NOSIGNAL so a peer that disappeared mid-response
/// surfaces as an IoError status, never a process-killing SIGPIPE.
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of `fd` (closed on destruction).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept
      : fd_(other.fd_), recv_timeout_(other.recv_timeout_) {
    other.fd_ = -1;
  }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      recv_timeout_ = other.recv_timeout_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Releases ownership of the fd without closing it.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void Close();

  /// Writes all `n` bytes, retrying on EINTR/short writes and polling
  /// through EAGAIN (so it works on non-blocking sockets too).
  Status SendAll(const void* data, size_t n);

  /// One read(2): the number of bytes received (0 = orderly shutdown
  /// by the peer), or IoError. On a non-blocking socket an empty
  /// socket yields the special status below.
  Result<size_t> Recv(void* out, size_t n);

  /// True when `s` is the would-block pseudo-error from Recv on a
  /// non-blocking socket with nothing buffered.
  static bool IsWouldBlock(const Status& s);

  /// Reads exactly `n` bytes (blocking sockets; polls through EAGAIN).
  /// IoError "connection closed" if the peer shuts down first. With a
  /// receive timeout set, a peer that stalls mid-read for longer than
  /// the timeout surfaces kDeadlineExceeded instead of blocking the
  /// caller forever (the deadline spans the whole RecvAll, computed
  /// once at entry).
  Status RecvAll(void* out, size_t n);

  /// Bounds how long RecvAll may wait for the peer. Zero (the
  /// default) preserves the historical wait-forever behavior.
  void set_recv_timeout(std::chrono::milliseconds timeout) {
    recv_timeout_ = timeout;
  }
  std::chrono::milliseconds recv_timeout() const { return recv_timeout_; }

  Status SetNonBlocking(bool enable);

  /// Disables Nagle's algorithm (no-op for non-TCP fds): a pipelined
  /// request/response protocol must not wait out delayed ACKs.
  void SetNoDelay();

  /// A connected AF_UNIX stream pair — the test transport.
  static Result<std::pair<Socket, Socket>> Pair();

 private:
  int fd_ = -1;
  /// Zero = no deadline.
  std::chrono::milliseconds recv_timeout_{0};
};

/// A listening TCP socket bound to 127.0.0.1 (or the given host).
class Listener {
 public:
  Listener() = default;
  Listener(Listener&&) noexcept = default;
  Listener& operator=(Listener&&) noexcept = default;

  /// Binds and listens; `port` 0 picks an ephemeral port (read it back
  /// with port()).
  static Result<Listener> Listen(const std::string& host, uint16_t port,
                                 int backlog);

  /// Accepts one connection (blocking). IoError on failure — including
  /// the listener being closed from another thread, which is how the
  /// server shuts the accept loop down.
  Result<Socket> Accept();

  uint16_t port() const { return port_; }
  int fd() const { return sock_.fd(); }
  bool valid() const { return sock_.valid(); }
  void Close() { sock_.Close(); }

 private:
  Socket sock_;
  uint16_t port_ = 0;
};

/// Connects to a TCP endpoint (blocking).
Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

}  // namespace dbpl::serve

#endif  // DBPL_SERVE_SOCKET_H_
