#ifndef DBPL_SERVE_SERVER_H_
#define DBPL_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "persist/wal_database.h"
#include "serve/protocol.h"
#include "serve/socket.h"

namespace dbpl::serve {

/// Construction-time knobs for a Server.
struct ServeOptions {
  /// Worker threads executing requests. Each session is owned by at
  /// most one worker at a time, which is what makes pipelined
  /// responses arrive in request order without any per-session lock.
  int workers = 4;
  /// Admission bound: the most sessions admitted at once. A connection
  /// arriving beyond it is *shed* — answered with one kUnavailable
  /// frame and closed — instead of queued, so saturation degrades into
  /// explicit, retryable refusals rather than unbounded latency.
  int max_sessions = 1024;
  /// When true, bind a TCP listener on `host`:`port` (0 = ephemeral;
  /// read the bound port back with Server::port()). When false the
  /// server only serves connections handed to AdoptConnection — the
  /// transport the in-process tests use.
  bool listen = false;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int backlog = 128;
};

/// Monotonic counters, readable at any time without stopping traffic.
struct ServerStats {
  uint64_t sessions_accepted = 0;
  uint64_t sessions_shed = 0;
  uint64_t sessions_closed = 0;
  uint64_t requests_ok = 0;
  uint64_t requests_error = 0;
  /// Sessions dropped for framing violations (bad CRC, oversized
  /// length, undecodable request body).
  uint64_t protocol_errors = 0;
};

/// The dbpl-serve front-end: an acceptor/dispatcher thread plus a
/// worker pool, serving the wire protocol of serve/protocol.h on top
/// of a persist::WalDatabase.
///
/// ## Architecture
///
///   acceptor ──admission──> session table ──readable──> ready queue
///                                ^                          │
///                                └────────── workers <──────┘
///
/// One dispatcher thread poll(2)s the listener (when listening), a
/// self-pipe, and every *idle* session. A session that turns readable
/// moves to the ready queue; a worker checks it out, drains and
/// executes every complete pipelined request in arrival order (reads
/// resolve against a lock-free dyndb snapshot; writes funnel through
/// the WalDatabase's sharded group-commit path), sends the responses,
/// and hands the session back. A session is polled by the dispatcher
/// or owned by one worker, never both — the mutex only guards the
/// handoff, so request execution runs entirely outside it.
///
/// ## Locking
///
/// A single mutex (rank kServe, below the whole database stack —
/// DESIGN.md §10/§12) guards the session table, ready queue and stop
/// flag. It is held only for queue/table manipulation, never across
/// recv/send/execute.
///
/// ## Failure containment
///
/// Per-request errors (NotFound, TypeError, a vetoed write, ...) are
/// answered in-band with the typed status mapping and the session
/// lives on. Framing violations are unrecoverable for that stream:
/// the session is answered with one final error frame (op kNone) and
/// closed. A peer vanishing mid-request tears down only its session;
/// buffered partial requests are discarded unexecuted.
class Server {
 public:
  /// Starts the threads (and listener, when configured). `wdb` must
  /// outlive the returned server.
  static Result<std::unique_ptr<Server>> Start(persist::WalDatabase* wdb,
                                               const ServeOptions& options);

  /// Stops and joins all threads, closing every session.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Hands an already-connected byte stream (e.g. one end of a
  /// socketpair) to the server, subject to the same admission bound as
  /// accepted connections: over capacity the socket is answered with a
  /// kUnavailable frame, closed, and kUnavailable is returned.
  Status AdoptConnection(Socket sock) DBPL_EXCLUDES(mu_);

  /// The bound TCP port (0 when not listening).
  uint16_t port() const { return port_; }

  /// Sessions currently admitted (idle, queued or being served).
  int active_sessions() const DBPL_EXCLUDES(mu_);

  ServerStats stats() const;

  /// Idempotent shutdown: refuse new work, join threads, close
  /// sessions. Called by the destructor.
  void Stop() DBPL_EXCLUDES(mu_);

 private:
  /// Which component may currently touch a session's socket/buffers.
  enum class SessionState : uint8_t { kIdle, kReady, kBusy };

  struct Session {
    explicit Session(Socket s) : sock(std::move(s)) {}
    Socket sock;
    /// Received-but-unparsed bytes (may end mid-frame).
    std::vector<uint8_t> in;
    SessionState state = SessionState::kIdle;
    /// Set by the owning worker: close instead of re-registering.
    bool closing = false;
    /// Peer performed an orderly shutdown; close once the buffered
    /// complete requests are answered.
    bool saw_eof = false;
  };

  Server(persist::WalDatabase* wdb, const ServeOptions& options)
      : wdb_(wdb), options_(options) {}

  Status StartLocked();

  /// The dispatcher thread: accept + admission + readiness polling.
  void DispatcherLoop() DBPL_EXCLUDES(mu_);
  void WorkerLoop() DBPL_EXCLUDES(mu_);

  /// Accepts until EAGAIN, applying admission control.
  void AcceptReady() DBPL_EXCLUDES(mu_);
  /// Registers `sock` as a new idle session or sheds it. The returned
  /// status is kUnavailable iff shed.
  Status Admit(Socket sock) DBPL_EXCLUDES(mu_);
  /// Best-effort "server at capacity" frame + close.
  void Shed(Socket sock);

  /// One service turn for a checked-out session: drain the socket,
  /// answer every complete request, flush. Runs with no lock held.
  void ProcessTurn(Session* session);
  /// Decodes and executes one CRC-valid frame body, appending the
  /// framed response to `out`. False = session must close (the body
  /// was not a well-formed request).
  bool HandleFrame(const uint8_t* body, size_t n, ByteBuffer* out);
  /// Executes one decoded request against the database.
  Response Execute(const Request& req);

  void WakeDispatcher();

  persist::WalDatabase* const wdb_;
  const ServeOptions options_;

  Listener listener_;
  uint16_t port_ = 0;
  /// Self-pipe waking the dispatcher out of poll(2): [0] read, [1]
  /// write end.
  int wake_fd_[2] = {-1, -1};

  /// Guards the handoff state below; held only for table/queue
  /// manipulation, never across I/O or request execution. Rank kServe:
  /// the outermost lock of the process (DESIGN.md §12).
  mutable dbpl::Mutex mu_{dbpl::LockRank::kServe, "serve.mu_"};
  dbpl::CondVar ready_cv_;
  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions_
      DBPL_GUARDED_BY(mu_);
  std::deque<uint64_t> ready_ DBPL_GUARDED_BY(mu_);
  uint64_t next_session_id_ DBPL_GUARDED_BY(mu_) = 1;
  bool stop_ DBPL_GUARDED_BY(mu_) = false;

  std::thread dispatcher_;
  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};

  // Stats are atomics so workers never take mu_ on the hot path.
  std::atomic<uint64_t> n_accepted_{0};
  std::atomic<uint64_t> n_shed_{0};
  std::atomic<uint64_t> n_closed_{0};
  std::atomic<uint64_t> n_requests_ok_{0};
  std::atomic<uint64_t> n_requests_error_{0};
  std::atomic<uint64_t> n_protocol_errors_{0};
};

}  // namespace dbpl::serve

#endif  // DBPL_SERVE_SERVER_H_
