#include "common/mutex.h"

#include <cstdio>
#include <cstdlib>

namespace dbpl {

#if DBPL_LOCK_RANK_CHECKS

namespace internal {
namespace {

/// Deepest legal nesting: replica poll -> checkpoint meta -> K shard
/// writers -> seqlock -> state still fits with every shard clustered.
constexpr int kMaxHeldLocks = 80;

struct HeldLock {
  int rank;
  const char* name;
};

// Per-thread stack of held ranked locks. Plain thread_local state —
// no synchronization, so the checker itself is invisible to TSan and
// adds no cross-thread ordering that could mask a real race.
thread_local HeldLock g_held[kMaxHeldLocks];
thread_local int g_depth = 0;

[[noreturn]] void RankAbort(LockRank rank, const char* name, int max_rank,
                            const char* max_name) {
  std::fprintf(stderr,
               "lock-rank violation: acquiring '%s' (rank %d) while holding "
               "'%s' (rank %d); held stack (acquisition order):\n",
               name, static_cast<int>(rank), max_name, max_rank);
  for (int i = 0; i < g_depth; ++i) {
    std::fprintf(stderr, "  #%d '%s' (rank %d)\n", i, g_held[i].name,
                 g_held[i].rank);
  }
  std::fprintf(stderr,
               "the fix is to acquire in rank order (DESIGN.md §10): "
               "shard writer < group-commit < wal lane < state\n");
  std::abort();
}

}  // namespace

void RankCheckAcquire(LockRank rank, const char* name) {
  const int r = static_cast<int>(rank);
  int max_rank = -1;
  const char* max_name = "";
  for (int i = 0; i < g_depth; ++i) {
    if (g_held[i].rank > max_rank) {
      max_rank = g_held[i].rank;
      max_name = g_held[i].name;
    }
  }
  if (max_rank > r || (max_rank == r && !LockRankClusters(rank))) {
    RankAbort(rank, name, max_rank, max_name);
  }
  if (g_depth >= kMaxHeldLocks) {
    std::fprintf(stderr, "lock-rank checker: more than %d locks held\n",
                 kMaxHeldLocks);
    std::abort();
  }
  g_held[g_depth++] = HeldLock{r, name};
}

void RankCheckRelease(LockRank rank) {
  const int r = static_cast<int>(rank);
  // Releases need not be LIFO (a checkpoint unfreezes lanes in index
  // order): drop the most recent entry of this rank.
  for (int i = g_depth - 1; i >= 0; --i) {
    if (g_held[i].rank == r) {
      for (int j = i; j < g_depth - 1; ++j) g_held[j] = g_held[j + 1];
      --g_depth;
      return;
    }
  }
  std::fprintf(stderr,
               "lock-rank checker: releasing rank %d that this thread does "
               "not hold\n",
               r);
  std::abort();
}

}  // namespace internal

#endif  // DBPL_LOCK_RANK_CHECKS

}  // namespace dbpl
