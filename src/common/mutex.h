#ifndef DBPL_COMMON_MUTEX_H_
#define DBPL_COMMON_MUTEX_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/thread_annotations.h"

// Annotated locking primitives for the concurrent core.
//
// dbpl::Mutex is std::mutex plus two checkers:
//
//  * Statically, it is a Clang *capability*: fields declared
//    DBPL_GUARDED_BY(mu) and functions declared DBPL_REQUIRES(mu) are
//    verified at compile time under the `analyze` preset (see
//    common/thread_annotations.h).
//
//  * Dynamically, a mutex constructed with a LockRank participates in
//    lock-rank checking: each thread tracks the ranks it holds, and
//    acquiring a mutex whose rank is not strictly above every held
//    rank aborts immediately with both ranks and the full held stack —
//    turning a potential deadlock (which `-L tsan` only catches if the
//    schedule cooperates) into a deterministic failure on *any*
//    schedule that reaches the acquisition. Ranks encode the global
//    acquisition order of DESIGN.md §10; the short form is
//    shard writer < group-commit < wal lane < state.
//
// Rank checking costs a thread-local scan of at most kMaxHeldLocks
// entries per lock/unlock (single-digit nanoseconds; the guarded
// critical sections are tens of nanoseconds at minimum). It is on by
// default; configure with -DDBPL_LOCK_RANKS=OFF to compile it out of a
// release build.

#if !defined(DBPL_LOCK_RANK_CHECKS)
#define DBPL_LOCK_RANK_CHECKS 1
#endif

namespace dbpl {

/// The global lock-acquisition order, smallest first: while holding a
/// lock of rank R, a thread may only acquire locks of rank > R (or
/// == R for the two "clustered" ranks below). The gaps leave room for
/// future subsystems.
enum class LockRank : int {
  /// Rank-check exempt: a Mutex constructed without a rank composes
  /// with any acquisition order (used outside the concurrent core).
  kUnranked = 0,
  /// serve::Server::mu_ — session table, ready queue and stop flag of
  /// the network front-end. The outermost rank: a worker that drained
  /// a request goes on to execute it against the database (whose write
  /// path re-enters the replica/WAL/shard stack), so the serve lock
  /// must sit below everything — and by design it is never held across
  /// request execution or any I/O at all.
  kServe = 5,
  /// persist::Replica::mu_ — held across whole poll/bootstrap cycles,
  /// which re-enter the primary's WAL bounds and the follower's write
  /// path, so it must sit below everything they take.
  kReplica = 10,
  /// persist::WalDatabase::meta_mu_ — checkpoint/rotation metadata;
  /// held while the checkpoint freezes every WAL lane.
  kWalMeta = 20,
  /// dyndb shard writer mutexes (clustered: RegisterExtent and
  /// SetWriteObserver hold all K, acquired in shard-index order).
  kShardWriter = 30,
  /// persist::WalDatabase::sync_mu_ — the group-commit barrier. Never
  /// held during I/O; ranked under the lanes so a leader that did not
  /// drop it before flushing would still be order-correct.
  kGroupCommit = 40,
  /// persist::WalDatabase per-shard lane mutexes (clustered: a
  /// checkpoint freezes all K lanes, acquired in shard-index order).
  kWalLane = 50,
  /// dyndb registration seqlock write side — held across the K state
  /// publications of one extent registration.
  kRegistration = 55,
  /// dyndb per-shard state (publication) mutexes — the innermost
  /// blocking lock of the write path; two are never held at once.
  kState = 60,
  /// persist::WalDatabase::status_mu_ — the sticky poison word; a leaf
  /// taken under lanes, the barrier, and checkpoint metadata alike.
  kWalStatus = 70,
};

/// True for ranks where holding several same-rank locks is part of the
/// discipline (always acquired in shard-index order by construction).
constexpr bool LockRankClusters(LockRank rank) {
  return rank == LockRank::kShardWriter || rank == LockRank::kWalLane;
}

#if DBPL_LOCK_RANK_CHECKS
namespace internal {
/// Aborts (after printing both ranks and the held stack) unless `rank`
/// may be acquired now by this thread; records the acquisition.
void RankCheckAcquire(LockRank rank, const char* name);
/// Records the release of one lock of `rank`.
void RankCheckRelease(LockRank rank);
}  // namespace internal
#endif

/// std::mutex as an annotated, rank-checked capability.
class DBPL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank, const char* name = "mutex")
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DBPL_ACQUIRE() {
#if DBPL_LOCK_RANK_CHECKS
    if (rank_ != LockRank::kUnranked) internal::RankCheckAcquire(rank_, name_);
#endif
    mu_.lock();
  }

  void Unlock() DBPL_RELEASE() {
    mu_.unlock();
#if DBPL_LOCK_RANK_CHECKS
    if (rank_ != LockRank::kUnranked) internal::RankCheckRelease(rank_);
#endif
  }

  // BasicLockable spelling, so std::condition_variable_any (see
  // CondVar) and std:: scoped helpers can drive a Mutex directly.
  void lock() DBPL_ACQUIRE() { Lock(); }
  void unlock() DBPL_RELEASE() { Unlock(); }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const LockRank rank_ = LockRank::kUnranked;
  const char* const name_ = "mutex";
};

/// RAII lock: acquires in the constructor, releases in the destructor,
/// and tells the static analysis so (a MutexLock that outlives its
/// scope, or a guarded access after it died, is a compile error under
/// `analyze`).
class DBPL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DBPL_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() DBPL_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable over dbpl::Mutex. Waits keep the rank bookkeeping
/// exact: the wait releases (pops) and re-acquires (re-checks) the
/// mutex through Mutex::unlock/lock, so a thread sleeping in Wait holds
/// precisely the ranks it holds.
class CondVar {
 public:
  /// Atomically releases `mu` and blocks; re-acquires before
  /// returning. As with std::condition_variable, spurious wakeups
  /// happen — wrap in a predicate loop.
  void Wait(Mutex& mu) DBPL_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      DBPL_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& rel)
      DBPL_REQUIRES(mu) {
    return cv_.wait_for(mu, rel);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// The registration seqlock as a named capability. Writers bracket a
/// multi-object publication with WriteBegin/WriteEnd (odd while
/// mid-publish); readers snapshot the sequence, do their reads, and
/// retry if it was odd or moved. The write side participates in rank
/// checking (rank kRegistration: above the shard writer mutexes it is
/// taken under, below the state mutexes the bracketed publications
/// acquire); the read side takes nothing and can never deadlock.
///
/// The static analysis sees WriteBegin/WriteEnd as acquire/release of
/// a "seqlock" capability, so a write path that returns mid-publish
/// (leaving the sequence odd — a permanent reader livelock) is a
/// compile error under `analyze`.
class DBPL_CAPABILITY("seqlock") SeqLock {
 public:
  SeqLock() = default;
  SeqLock(const SeqLock&) = delete;
  SeqLock& operator=(const SeqLock&) = delete;

  /// Enters the write-side critical section: sequence becomes odd.
  /// Callers must already hold whatever serializes writers (for the
  /// registration seqlock: all shard writer mutexes).
  void WriteBegin() DBPL_ACQUIRE() {
#if DBPL_LOCK_RANK_CHECKS
    internal::RankCheckAcquire(LockRank::kRegistration, "extent_seq");
#endif
    seq_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Leaves the write-side critical section: sequence becomes even.
  void WriteEnd() DBPL_RELEASE() {
    seq_.fetch_add(1, std::memory_order_acq_rel);
#if DBPL_LOCK_RANK_CHECKS
    internal::RankCheckRelease(LockRank::kRegistration);
#endif
  }

  /// Read-side protocol: `s = ReadBegin(); <reads>; ReadValidate(s)`.
  /// A false return (odd sequence, or a write slipped in) means the
  /// reads may be torn — discard and retry.
  uint64_t ReadBegin() const { return seq_.load(std::memory_order_acquire); }
  bool ReadValidate(uint64_t before) const {
    return before % 2 == 0 &&
           seq_.load(std::memory_order_acquire) == before;
  }

 private:
  std::atomic<uint64_t> seq_{0};
};

}  // namespace dbpl

#endif  // DBPL_COMMON_MUTEX_H_
