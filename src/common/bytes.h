#ifndef DBPL_COMMON_BYTES_H_
#define DBPL_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dbpl {

/// A growable byte buffer with primitive little-endian and varint append
/// operations. This is the unit of exchange between the serialization
/// layer and the storage layer.
class ByteBuffer {
 public:
  ByteBuffer() = default;

  const uint8_t* data() const { return bytes_.data(); }
  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  void clear() { bytes_.clear(); }
  void reserve(size_t n) { bytes_.reserve(n); }

  std::vector<uint8_t>& vec() { return bytes_; }
  const std::vector<uint8_t>& vec() const { return bytes_; }

  /// Appends a single byte.
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  /// Appends a 32-bit unsigned integer, little-endian.
  void PutU32(uint32_t v);
  /// Appends a 64-bit unsigned integer, little-endian.
  void PutU64(uint64_t v);
  /// Appends an unsigned integer in LEB128 varint encoding (1-10 bytes).
  void PutVarint(uint64_t v);
  /// Appends a signed integer zig-zag + varint encoded.
  void PutVarintSigned(int64_t v);
  /// Appends the IEEE-754 bits of a double, little-endian.
  void PutDouble(double v);
  /// Appends a varint length prefix followed by the string bytes.
  void PutString(std::string_view s);
  /// Appends raw bytes with no length prefix.
  void PutRaw(const void* data, size_t n);

 private:
  std::vector<uint8_t> bytes_;
};

/// A read cursor over a byte span. All reads are bounds-checked and return
/// `Corruption` on truncated input, so a damaged file can never crash the
/// decoder.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit ByteReader(const ByteBuffer& buf)
      : ByteReader(buf.data(), buf.size()) {}
  explicit ByteReader(std::string_view s)
      : ByteReader(reinterpret_cast<const uint8_t*>(s.data()), s.size()) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<uint64_t> ReadVarint();
  Result<int64_t> ReadVarintSigned();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  /// Reads exactly `n` raw bytes into `out`.
  Status ReadRaw(void* out, size_t n);
  /// Skips `n` bytes.
  Status Skip(size_t n);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace dbpl

#endif  // DBPL_COMMON_BYTES_H_
