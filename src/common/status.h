#ifndef DBPL_COMMON_STATUS_H_
#define DBPL_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dbpl {

/// Machine-readable classification of a failure.
///
/// The library does not throw exceptions across its public API; every
/// fallible operation returns a `Status` or a `Result<T>` (see result.h),
/// following the Arrow/RocksDB idiom for database libraries.
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument was malformed or out of range.
  kInvalidArgument,
  /// A lookup (field, handle, key, OID, class, ...) found nothing.
  kNotFound,
  /// An insert/definition collided with an existing entity.
  kAlreadyExists,
  /// Two pieces of information contradict each other: a failed value
  /// join, inconsistent types, a key violation, a schema mismatch.
  kInconsistent,
  /// A dynamic type check failed (e.g. `coerce d to T` with typeof(d) ≰ T).
  kTypeError,
  /// Stored bytes are unreadable: bad magic, bad CRC, truncated record.
  kCorruption,
  /// An I/O system call failed.
  kIoError,
  /// The operation is not supported for this value/type/store.
  kUnsupported,
  /// The object is in a state where this operation can never succeed
  /// (e.g. a log writer poisoned by a torn append); recreate it first.
  kFailedPrecondition,
  /// A deadline expired before the operation could complete (e.g. a
  /// replica read barrier waiting for an epoch that never arrived).
  kDeadlineExceeded,
  /// An internal invariant was violated (a bug in this library).
  kInternal,
  /// The service is temporarily over capacity; retrying later (or
  /// against another endpoint) may succeed. Used by dbpl-serve's
  /// admission control to shed load instead of queuing unboundedly.
  kUnavailable,
  /// The operation's result exceeds a hard resource bound and was
  /// refused rather than truncated (e.g. a dbpl-serve response whose
  /// frame would exceed the protocol's body limit). Narrow the request
  /// (a more selective type, a ranged read) and retry.
  kResourceExhausted,
};

/// Human-readable name of a status code (e.g. "TypeError").
std::string_view StatusCodeName(StatusCode code);

/// The result of an operation that can fail but returns no value.
///
/// `Status` is cheap to copy in the OK case (a single pointer-sized
/// enum plus an empty string) and carries a message in the error case.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK status to the caller.
#define DBPL_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::dbpl::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace dbpl

#endif  // DBPL_COMMON_STATUS_H_
