#include "common/status.h"

namespace dbpl {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInconsistent:
      return "Inconsistent";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace dbpl
