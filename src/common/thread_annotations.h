#ifndef DBPL_COMMON_THREAD_ANNOTATIONS_H_
#define DBPL_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety (capability) annotations, in the ABSL style.
//
// These macros let a declaration state, in a form the compiler checks,
// which lock protects which field and which locks a function requires,
// acquires, releases or must be called without:
//
//   dbpl::Mutex mu;
//   int balance DBPL_GUARDED_BY(mu);          // only read/written under mu
//   void Deposit(int v) DBPL_EXCLUDES(mu);    // takes mu itself
//   void DepositLocked(int v) DBPL_REQUIRES(mu);  // caller holds mu
//
// Under Clang, building with `-Wthread-safety -Wthread-safety-beta`
// (the `analyze` CMake preset) turns any violation — an unlocked read
// of a guarded field, a REQUIRES function called without the lock, a
// lock leaked out of scope — into a compile error (`-Werror`). Under
// other compilers (GCC builds of the repo's tier-1 matrix) every macro
// expands to nothing, so the annotations are free documentation.
//
// The annotations express the *static* half of the locking discipline.
// What they cannot express — the acquisition *order* between distinct
// locks, and dynamic lock sets like "all K shard writer mutexes" — is
// enforced at runtime by the lock-rank checker in common/mutex.h.
// DESIGN.md §10 documents both halves and the full rank table.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DBPL_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif

#ifndef DBPL_THREAD_ANNOTATION_
#define DBPL_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a type as a capability ("mutex", "seqlock", ...). The name
/// appears in diagnostics: "reading variable 'x' requires holding
/// mutex 'mu'".
#define DBPL_CAPABILITY(name) DBPL_THREAD_ANNOTATION_(capability(name))

/// Marks an RAII type whose constructor acquires and destructor
/// releases a capability (see dbpl::MutexLock).
#define DBPL_SCOPED_CAPABILITY DBPL_THREAD_ANNOTATION_(scoped_lockable)

/// The field is protected by the given capability: it may only be
/// accessed while that capability is held.
#define DBPL_GUARDED_BY(x) DBPL_THREAD_ANNOTATION_(guarded_by(x))

/// The *pointee* of this pointer/smart-pointer field is protected by
/// the given capability (the pointer itself is not).
#define DBPL_PT_GUARDED_BY(x) DBPL_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function may only be called while holding the capability
/// exclusively; it does not acquire or release it.
#define DBPL_REQUIRES(...) \
  DBPL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Shared (reader) form of DBPL_REQUIRES.
#define DBPL_REQUIRES_SHARED(...) \
  DBPL_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define DBPL_ACQUIRE(...) \
  DBPL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases a capability the caller held.
#define DBPL_RELEASE(...) \
  DBPL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function must be called *without* the capability held (it will
/// acquire it itself, or calling with it held would deadlock). This is
/// the LOCKS_EXCLUDED contract every public API of the concurrent core
/// carries.
#define DBPL_EXCLUDES(...) \
  DBPL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the given capability (used by
/// accessors that expose a member mutex).
#define DBPL_RETURN_CAPABILITY(x) DBPL_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function manipulates locks in a way the analysis
/// cannot follow (dynamic lock vectors, conditional acquisition).
/// Every use in this codebase carries a comment saying what invariant
/// holds instead and which runtime check (lock ranks, TSan preset)
/// covers it.
#define DBPL_NO_THREAD_SAFETY_ANALYSIS \
  DBPL_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Compile-time assertion that the capability is held (re-anchors the
/// analysis inside NO_THREAD_SAFETY_ANALYSIS regions).
#define DBPL_ASSERT_CAPABILITY(x) \
  DBPL_THREAD_ANNOTATION_(assert_capability(x))

#endif  // DBPL_COMMON_THREAD_ANNOTATIONS_H_
