#include "common/crc32c.h"

#include <array>

namespace dbpl {
namespace {

// Table for the Castagnoli polynomial 0x1EDC6F41 (reflected 0x82F63B78).
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace dbpl
