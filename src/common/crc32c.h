#ifndef DBPL_COMMON_CRC32C_H_
#define DBPL_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace dbpl {

/// CRC-32C (Castagnoli) checksum, as used by the storage layer to detect
/// corrupted pages and log records. Software table-driven implementation.
///
/// `Crc32c(data, n)` computes the checksum of a buffer;
/// `Crc32cExtend(crc, data, n)` continues a running checksum.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

/// Masks a CRC so that a CRC stored next to the data it covers does not
/// produce a fixed point (RocksDB/LevelDB trick).
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace dbpl

#endif  // DBPL_COMMON_CRC32C_H_
