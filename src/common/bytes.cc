#include "common/bytes.h"

#include <cstring>

namespace dbpl {

void ByteBuffer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xFF);
}

void ByteBuffer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back((v >> (8 * i)) & 0xFF);
}

void ByteBuffer::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<uint8_t>(v));
}

void ByteBuffer::PutVarintSigned(int64_t v) {
  // Zig-zag: maps small negative numbers to small unsigned numbers.
  uint64_t zz =
      (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  PutVarint(zz);
}

void ByteBuffer::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteBuffer::PutString(std::string_view s) {
  PutVarint(s.size());
  PutRaw(s.data(), s.size());
}

void ByteBuffer::PutRaw(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + n);
}

Result<uint8_t> ByteReader::ReadU8() {
  if (remaining() < 1) return Status::Corruption("truncated u8");
  return data_[pos_++];
}

Result<uint32_t> ByteReader::ReadU32() {
  if (remaining() < 4) return Status::Corruption("truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  if (remaining() < 8) return Status::Corruption("truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<uint64_t> ByteReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Status::Corruption("truncated varint");
    if (shift >= 64) return Status::Corruption("varint too long");
    uint8_t b = data_[pos_++];
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<int64_t> ByteReader::ReadVarintSigned() {
  DBPL_ASSIGN_OR_RETURN(uint64_t zz, ReadVarint());
  return static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
}

Result<double> ByteReader::ReadDouble() {
  DBPL_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> ByteReader::ReadString() {
  DBPL_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
  if (remaining() < n) return Status::Corruption("truncated string");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Status ByteReader::ReadRaw(void* out, size_t n) {
  if (remaining() < n) return Status::Corruption("truncated raw read");
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::Skip(size_t n) {
  if (remaining() < n) return Status::Corruption("skip past end");
  pos_ += n;
  return Status::OK();
}

}  // namespace dbpl
