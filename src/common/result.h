#ifndef DBPL_COMMON_RESULT_H_
#define DBPL_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace dbpl {

/// The result of an operation that either yields a `T` or fails with a
/// `Status`. Analogous to `arrow::Result` / `absl::StatusOr`.
///
/// A `Result` constructed from an OK status is a programming error and is
/// converted to an `Internal` error so it is still observable.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT: implicit by design
  /// Constructs a failed result holding `status` (must be non-OK).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Status of the operation; OK when a value is present.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The contained value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// The contained value, or `fallback` on error.
  [[nodiscard]] T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `rexpr` (a Result<T>), propagating errors; on success binds
/// the value to `lhs`.
#define DBPL_ASSIGN_OR_RETURN(lhs, rexpr)              \
  DBPL_ASSIGN_OR_RETURN_IMPL_(                         \
      DBPL_RESULT_CONCAT_(_dbpl_result_, __COUNTER__), lhs, rexpr)

#define DBPL_RESULT_CONCAT_INNER_(a, b) a##b
#define DBPL_RESULT_CONCAT_(a, b) DBPL_RESULT_CONCAT_INNER_(a, b)
#define DBPL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace dbpl

#endif  // DBPL_COMMON_RESULT_H_
