#ifndef DBPL_RELATIONAL_RELATION_H_
#define DBPL_RELATIONAL_RELATION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/grelation.h"
#include "core/value.h"
#include "relational/schema.h"

namespace dbpl::relational {

/// A flat tuple: one atomic value per schema attribute, in order.
using Tuple = std::vector<core::Value>;

/// A classical first-normal-form relation: a *set* of flat, total
/// tuples over a fixed schema, with optional key enforcement.
///
/// This is the baseline model the paper contrasts object-oriented
/// databases with: tuples have no identity beyond their attribute
/// values, every attribute is atomic, and a declared key prevents two
/// tuples agreeing on the key — the mechanism the paper notes also
/// prevents `⊑`-comparable values from coexisting.
class Relation {
 public:
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  /// With a key: `key` must name attributes of the schema.
  static Result<Relation> WithKey(Schema schema, std::vector<std::string> key);

  const Schema& schema() const { return schema_; }
  const std::vector<std::string>& key() const { return key_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts a tuple. Fails with:
  ///  * InvalidArgument on arity or atomic-type mismatch;
  ///  * Inconsistent when a declared key is violated.
  /// A duplicate of an existing tuple is a silent no-op (sets).
  Status Insert(Tuple tuple);

  /// Convenience: insert from a flat record value (fields must cover
  /// the schema exactly).
  Status InsertRecord(const core::Value& record);

  bool Contains(const Tuple& tuple) const;

  /// Value of `attr` in `tuple`.
  Result<core::Value> Field(const Tuple& tuple, std::string_view attr) const;

  /// This relation as a generalized relation of flat total records.
  core::GRelation ToGRelation() const;

  /// Builds a 1NF relation from a generalized relation whose objects
  /// are flat, total records over exactly this schema; fails otherwise.
  static Result<Relation> FromGRelation(const Schema& schema,
                                        const core::GRelation& g);

  std::string ToString() const;

 private:
  Status CheckTuple(const Tuple& tuple) const;
  static size_t HashTuple(const Tuple& tuple);
  size_t HashKeySlice(const Tuple& tuple) const;

  Schema schema_;
  std::vector<std::string> key_;
  std::vector<Tuple> tuples_;
  /// Hash of each tuple -> its index, for O(1) duplicate detection.
  std::unordered_multimap<size_t, size_t> tuple_index_;
  /// Hash of each tuple's key slice -> its index, for key enforcement.
  std::unordered_multimap<size_t, size_t> key_index_;
};

}  // namespace dbpl::relational

#endif  // DBPL_RELATIONAL_RELATION_H_
