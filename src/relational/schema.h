#ifndef DBPL_RELATIONAL_SCHEMA_H_
#define DBPL_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/value.h"
#include "types/type.h"

namespace dbpl::relational {

/// The atomic domains first-normal-form relations range over.
enum class AtomType : uint8_t {
  kBool,
  kInt,
  kReal,
  kString,
};

std::string_view AtomTypeName(AtomType t);

/// True iff `v` is an atom of type `t`.
bool AtomMatches(const core::Value& v, AtomType t);

/// A flat relation schema: an ordered list of (attribute, atomic type)
/// pairs. This is the classical model the paper contrasts with: "a
/// relation is a set of tuples identified by intrinsic properties ...
/// relations are flat" (the first-normal-form condition).
class Schema {
 public:
  struct Attribute {
    std::string name;
    AtomType type;

    bool operator==(const Attribute& other) const = default;
  };

  Schema() = default;
  /// Builds a schema; duplicate attribute names are rejected.
  static Result<Schema> Make(std::vector<Attribute> attrs);
  /// Aborting convenience for literals.
  static Schema Of(std::vector<Attribute> attrs);

  const std::vector<Attribute>& attributes() const { return attrs_; }
  size_t arity() const { return attrs_.size(); }
  /// Index of an attribute, or -1.
  int IndexOf(std::string_view name) const;
  bool Has(std::string_view name) const { return IndexOf(name) >= 0; }

  /// Attribute names shared with `other` (in this schema's order).
  std::vector<std::string> CommonAttributes(const Schema& other) const;

  /// The schema of a natural join: this schema followed by the
  /// attributes unique to `other`. Fails when a shared attribute has
  /// conflicting atomic types.
  Result<Schema> JoinWith(const Schema& other) const;

  /// Subschema restricted to `names` (in the given order).
  Result<Schema> Project(const std::vector<std::string>& names) const;

  /// The equivalent structural record type.
  types::Type ToType() const;

  bool operator==(const Schema& other) const { return attrs_ == other.attrs_; }
  std::string ToString() const;

 private:
  std::vector<Attribute> attrs_;
};

}  // namespace dbpl::relational

#endif  // DBPL_RELATIONAL_SCHEMA_H_
