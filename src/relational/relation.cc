#include "relational/relation.h"

#include <algorithm>
#include <sstream>

namespace dbpl::relational {
namespace {

bool TupleEq(const Tuple& a, const Tuple& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

}  // namespace

Result<Relation> Relation::WithKey(Schema schema,
                                   std::vector<std::string> key) {
  for (const auto& k : key) {
    if (!schema.Has(k)) {
      return Status::InvalidArgument("key attribute not in schema: " + k);
    }
  }
  Relation r(std::move(schema));
  r.key_ = std::move(key);
  return r;
}

Status Relation::CheckTuple(const Tuple& tuple) const {
  if (tuple.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) +
        " does not match schema arity " + std::to_string(schema_.arity()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (!AtomMatches(tuple[i], schema_.attributes()[i].type)) {
      return Status::InvalidArgument(
          "attribute " + schema_.attributes()[i].name + " expects " +
          std::string(AtomTypeName(schema_.attributes()[i].type)) + ", got " +
          tuple[i].ToString());
    }
  }
  return Status::OK();
}

size_t Relation::HashTuple(const Tuple& tuple) {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& v : tuple) h ^= v.Hash() + (h << 6) + (h >> 2);
  return h;
}

size_t Relation::HashKeySlice(const Tuple& tuple) const {
  size_t h = 0x2545F4914F6CDD1DULL;
  for (const auto& k : key_) {
    int idx = schema_.IndexOf(k);
    h ^= tuple[static_cast<size_t>(idx)].Hash() + (h << 6) + (h >> 2);
  }
  return h;
}

Status Relation::Insert(Tuple tuple) {
  DBPL_RETURN_IF_ERROR(CheckTuple(tuple));
  if (Contains(tuple)) return Status::OK();
  if (!key_.empty()) {
    std::vector<int> key_idx;
    for (const auto& k : key_) key_idx.push_back(schema_.IndexOf(k));
    auto [lo, hi] = key_index_.equal_range(HashKeySlice(tuple));
    for (auto it = lo; it != hi; ++it) {
      const Tuple& existing = tuples_[it->second];
      bool same_key = true;
      for (int idx : key_idx) {
        if (!(existing[static_cast<size_t>(idx)] ==
              tuple[static_cast<size_t>(idx)])) {
          same_key = false;
          break;
        }
      }
      if (same_key) {
        return Status::Inconsistent("key violation on insert");
      }
    }
  }
  size_t pos = tuples_.size();
  tuple_index_.emplace(HashTuple(tuple), pos);
  if (!key_.empty()) key_index_.emplace(HashKeySlice(tuple), pos);
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Status Relation::InsertRecord(const core::Value& record) {
  if (record.kind() != core::ValueKind::kRecord) {
    return Status::InvalidArgument("expected a record value");
  }
  if (record.fields().size() != schema_.arity()) {
    return Status::InvalidArgument("record does not cover schema exactly");
  }
  Tuple tuple;
  tuple.reserve(schema_.arity());
  for (const auto& a : schema_.attributes()) {
    const core::Value* v = record.FindField(a.name);
    if (v == nullptr) {
      return Status::InvalidArgument("record missing attribute " + a.name);
    }
    tuple.push_back(*v);
  }
  return Insert(std::move(tuple));
}

bool Relation::Contains(const Tuple& tuple) const {
  auto [lo, hi] = tuple_index_.equal_range(HashTuple(tuple));
  for (auto it = lo; it != hi; ++it) {
    if (TupleEq(tuples_[it->second], tuple)) return true;
  }
  return false;
}

Result<core::Value> Relation::Field(const Tuple& tuple,
                                    std::string_view attr) const {
  int idx = schema_.IndexOf(attr);
  if (idx < 0) {
    return Status::NotFound("no attribute named " + std::string(attr));
  }
  if (tuple.size() != schema_.arity()) {
    return Status::InvalidArgument("tuple does not match schema");
  }
  return tuple[static_cast<size_t>(idx)];
}

core::GRelation Relation::ToGRelation() const {
  core::GRelation g;
  for (const auto& t : tuples_) {
    std::vector<core::RecordField> fields;
    fields.reserve(schema_.arity());
    for (size_t i = 0; i < schema_.arity(); ++i) {
      fields.push_back({schema_.attributes()[i].name, t[i]});
    }
    g.Insert(core::Value::RecordOf(std::move(fields)));
  }
  return g;
}

Result<Relation> Relation::FromGRelation(const Schema& schema,
                                         const core::GRelation& g) {
  Relation r(schema);
  for (const auto& o : g.objects()) {
    DBPL_RETURN_IF_ERROR(r.InsertRecord(o));
  }
  return r;
}

std::string Relation::ToString() const {
  std::ostringstream os;
  os << schema_.ToString() << " {\n";
  for (const auto& t : tuples_) {
    os << "  (";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) os << ", ";
      os << t[i];
    }
    os << ")\n";
  }
  os << "}";
  return os.str();
}

}  // namespace dbpl::relational
