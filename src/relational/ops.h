#ifndef DBPL_RELATIONAL_OPS_H_
#define DBPL_RELATIONAL_OPS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/relation.h"

namespace dbpl::relational {

/// Classical relational algebra over 1NF relations — the baseline the
/// generalized operators of core/grelation.h are measured against.

/// σ: tuples satisfying `pred`.
Relation Select(const Relation& r,
                const std::function<bool(const Relation&, const Tuple&)>& pred);

/// π: restriction to `attrs` (duplicates removed).
Result<Relation> Project(const Relation& r,
                         const std::vector<std::string>& attrs);

/// ⋈: natural join (hash join on the shared attributes; a cartesian
/// product when none are shared).
Result<Relation> NaturalJoin(const Relation& r1, const Relation& r2);

/// ⋈ computed by the *generalized* engine: the relations are lifted to
/// cochains, joined with the signature-partitioned generalized join of
/// core/grelation.h (which on flat total records degenerates to a hash
/// join on the shared attributes), and lowered back to 1NF. Must equal
/// `NaturalJoin` on every input (property-tested) — the executable form
/// of the paper's claim that ⋈ generalizes the relational join.
Result<Relation> GeneralizedNaturalJoin(const Relation& r1, const Relation& r2,
                                        const core::JoinOptions& opts = {});

/// ∪ (schemas must match).
Result<Relation> Union(const Relation& r1, const Relation& r2);

/// − (schemas must match).
Result<Relation> Difference(const Relation& r1, const Relation& r2);

/// ρ: renames attribute `from` to `to`.
Result<Relation> Rename(const Relation& r, const std::string& from,
                        const std::string& to);

/// ⋉: tuples of `r1` with at least one match in `r2` on the shared
/// attributes.
Result<Relation> SemiJoin(const Relation& r1, const Relation& r2);

/// ▷: tuples of `r1` with no match in `r2` on the shared attributes.
Result<Relation> AntiJoin(const Relation& r1, const Relation& r2);

/// ÷: classical relational division — the tuples over `r1 \ r2`'s
/// attributes paired (in r1) with *every* tuple of `r2`. `r2`'s
/// attributes must be a strict subset of `r1`'s.
Result<Relation> Divide(const Relation& r1, const Relation& r2);

/// Aggregate functions for GroupBy.
enum class AggFunc : uint8_t {
  kCount,  // number of tuples in the group (attr ignored)
  kSum,    // sum of an Int or Real attribute
  kMin,    // minimum under the canonical order
  kMax,    // maximum under the canonical order
};

/// One aggregate column: `as = func(attr)`.
struct AggSpec {
  AggFunc func;
  std::string attr;  // ignored for kCount
  std::string as;
};

/// γ: groups `r` by `group_attrs` and appends one attribute per
/// aggregate. With empty `group_attrs`, aggregates the whole relation
/// into a single tuple (a relational fold — Merrett's use of the
/// algebra for general computation).
Result<Relation> GroupBy(const Relation& r,
                         const std::vector<std::string>& group_attrs,
                         const std::vector<AggSpec>& aggs);

}  // namespace dbpl::relational

#endif  // DBPL_RELATIONAL_OPS_H_
