#include "relational/ops.h"

#include <map>
#include <unordered_map>

namespace dbpl::relational {
namespace {

size_t HashTupleSlice(const Tuple& t, const std::vector<int>& idx) {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (int i : idx) {
    h ^= t[static_cast<size_t>(i)].Hash() + (h << 6) + (h >> 2);
  }
  return h;
}

bool SliceEq(const Tuple& a, const std::vector<int>& ia, const Tuple& b,
             const std::vector<int>& ib) {
  for (size_t k = 0; k < ia.size(); ++k) {
    if (!(a[static_cast<size_t>(ia[k])] == b[static_cast<size_t>(ib[k])])) {
      return false;
    }
  }
  return true;
}

}  // namespace

Relation Select(
    const Relation& r,
    const std::function<bool(const Relation&, const Tuple&)>& pred) {
  Relation out(r.schema());
  for (const auto& t : r.tuples()) {
    if (pred(r, t)) {
      // Insert cannot fail: the tuple already type-checked in r.
      (void)out.Insert(t);
    }
  }
  return out;
}

Result<Relation> Project(const Relation& r,
                         const std::vector<std::string>& attrs) {
  DBPL_ASSIGN_OR_RETURN(Schema schema, r.schema().Project(attrs));
  std::vector<int> idx;
  for (const auto& a : attrs) idx.push_back(r.schema().IndexOf(a));
  Relation out(std::move(schema));
  for (const auto& t : r.tuples()) {
    Tuple nt;
    nt.reserve(idx.size());
    for (int i : idx) nt.push_back(t[static_cast<size_t>(i)]);
    DBPL_RETURN_IF_ERROR(out.Insert(std::move(nt)));
  }
  return out;
}

Result<Relation> NaturalJoin(const Relation& r1, const Relation& r2) {
  DBPL_ASSIGN_OR_RETURN(Schema joined, r1.schema().JoinWith(r2.schema()));
  std::vector<std::string> common = r1.schema().CommonAttributes(r2.schema());
  std::vector<int> idx1, idx2;
  for (const auto& a : common) {
    idx1.push_back(r1.schema().IndexOf(a));
    idx2.push_back(r2.schema().IndexOf(a));
  }
  // Attributes of r2 unique to r2, in joined-schema order.
  std::vector<int> extra2;
  for (const auto& a : r2.schema().attributes()) {
    if (!r1.schema().Has(a.name)) {
      extra2.push_back(r2.schema().IndexOf(a.name));
    }
  }

  // Build a hash table over the smaller relation (on the common slice).
  const bool r1_is_build = r1.size() <= r2.size();
  const Relation& build = r1_is_build ? r1 : r2;
  const Relation& probe = r1_is_build ? r2 : r1;
  const std::vector<int>& build_idx = r1_is_build ? idx1 : idx2;
  const std::vector<int>& probe_idx = r1_is_build ? idx2 : idx1;

  std::unordered_multimap<size_t, const Tuple*> table;
  table.reserve(build.size());
  for (const auto& t : build.tuples()) {
    table.emplace(HashTupleSlice(t, build_idx), &t);
  }

  Relation out(std::move(joined));
  for (const auto& pt : probe.tuples()) {
    auto [lo, hi] = table.equal_range(HashTupleSlice(pt, probe_idx));
    for (auto it = lo; it != hi; ++it) {
      const Tuple& bt = *it->second;
      if (!SliceEq(bt, build_idx, pt, probe_idx)) continue;
      const Tuple& t1 = r1_is_build ? bt : pt;
      const Tuple& t2 = r1_is_build ? pt : bt;
      Tuple nt = t1;
      for (int i : extra2) nt.push_back(t2[static_cast<size_t>(i)]);
      DBPL_RETURN_IF_ERROR(out.Insert(std::move(nt)));
    }
  }
  return out;
}

Result<Relation> GeneralizedNaturalJoin(const Relation& r1, const Relation& r2,
                                        const core::JoinOptions& opts) {
  DBPL_ASSIGN_OR_RETURN(Schema joined, r1.schema().JoinWith(r2.schema()));
  DBPL_ASSIGN_OR_RETURN(
      core::GRelation g,
      core::GRelation::Join(r1.ToGRelation(), r2.ToGRelation(), opts));
  return Relation::FromGRelation(joined, g);
}

Result<Relation> Union(const Relation& r1, const Relation& r2) {
  if (!(r1.schema() == r2.schema())) {
    return Status::InvalidArgument("union requires identical schemas");
  }
  Relation out(r1.schema());
  for (const auto& t : r1.tuples()) DBPL_RETURN_IF_ERROR(out.Insert(t));
  for (const auto& t : r2.tuples()) DBPL_RETURN_IF_ERROR(out.Insert(t));
  return out;
}

Result<Relation> Difference(const Relation& r1, const Relation& r2) {
  if (!(r1.schema() == r2.schema())) {
    return Status::InvalidArgument("difference requires identical schemas");
  }
  Relation out(r1.schema());
  for (const auto& t : r1.tuples()) {
    if (!r2.Contains(t)) DBPL_RETURN_IF_ERROR(out.Insert(t));
  }
  return out;
}

namespace {

/// Shared-attribute membership test used by semi- and anti-join.
Result<Relation> SemiJoinImpl(const Relation& r1, const Relation& r2,
                              bool keep_matches) {
  std::vector<std::string> common = r1.schema().CommonAttributes(r2.schema());
  std::vector<int> idx1, idx2;
  for (const auto& a : common) {
    idx1.push_back(r1.schema().IndexOf(a));
    idx2.push_back(r2.schema().IndexOf(a));
  }
  std::unordered_multimap<size_t, const Tuple*> table;
  for (const auto& t : r2.tuples()) {
    table.emplace(HashTupleSlice(t, idx2), &t);
  }
  Relation out(r1.schema());
  for (const auto& t : r1.tuples()) {
    bool matched = false;
    auto [lo, hi] = table.equal_range(HashTupleSlice(t, idx1));
    for (auto it = lo; it != hi; ++it) {
      if (SliceEq(t, idx1, *it->second, idx2)) {
        matched = true;
        break;
      }
    }
    // With no shared attributes every tuple matches iff r2 is nonempty.
    if (common.empty()) matched = !r2.empty();
    if (matched == keep_matches) {
      DBPL_RETURN_IF_ERROR(out.Insert(t));
    }
  }
  return out;
}

}  // namespace

Result<Relation> SemiJoin(const Relation& r1, const Relation& r2) {
  return SemiJoinImpl(r1, r2, /*keep_matches=*/true);
}

Result<Relation> AntiJoin(const Relation& r1, const Relation& r2) {
  return SemiJoinImpl(r1, r2, /*keep_matches=*/false);
}

Result<Relation> Divide(const Relation& r1, const Relation& r2) {
  // Attributes of r2 must be strictly inside r1's.
  std::vector<std::string> quotient_attrs;
  for (const auto& a : r1.schema().attributes()) {
    if (!r2.schema().Has(a.name)) quotient_attrs.push_back(a.name);
  }
  for (const auto& a : r2.schema().attributes()) {
    if (!r1.schema().Has(a.name)) {
      return Status::InvalidArgument("divisor attribute " + a.name +
                                     " not in dividend");
    }
  }
  if (quotient_attrs.empty()) {
    return Status::InvalidArgument("division needs quotient attributes");
  }
  // Classical identity: π_Q(r1) − π_Q((π_Q(r1) × r2) − r1).
  DBPL_ASSIGN_OR_RETURN(Relation candidates, Project(r1, quotient_attrs));
  DBPL_ASSIGN_OR_RETURN(Relation product, NaturalJoin(candidates, r2));
  // Align product's column order with r1's schema before subtracting.
  std::vector<std::string> r1_order;
  for (const auto& a : r1.schema().attributes()) r1_order.push_back(a.name);
  DBPL_ASSIGN_OR_RETURN(Relation product_aligned, Project(product, r1_order));
  DBPL_ASSIGN_OR_RETURN(Relation missing,
                        Difference(product_aligned, r1));
  DBPL_ASSIGN_OR_RETURN(Relation missing_q, Project(missing, quotient_attrs));
  return Difference(candidates, missing_q);
}

Result<Relation> GroupBy(const Relation& r,
                         const std::vector<std::string>& group_attrs,
                         const std::vector<AggSpec>& aggs) {
  using core::Value;
  // Output schema: group attributes followed by aggregate columns.
  DBPL_ASSIGN_OR_RETURN(Schema group_schema, r.schema().Project(group_attrs));
  std::vector<Schema::Attribute> out_attrs = group_schema.attributes();
  std::vector<int> agg_idx;
  for (const auto& agg : aggs) {
    AtomType type = AtomType::kInt;
    int idx = -1;
    if (agg.func != AggFunc::kCount) {
      idx = r.schema().IndexOf(agg.attr);
      if (idx < 0) {
        return Status::NotFound("no attribute named " + agg.attr);
      }
      type = r.schema().attributes()[static_cast<size_t>(idx)].type;
      if (agg.func == AggFunc::kSum && type != AtomType::kInt &&
          type != AtomType::kReal) {
        return Status::InvalidArgument("sum needs an Int or Real attribute");
      }
    }
    agg_idx.push_back(idx);
    out_attrs.push_back({agg.as, type});
  }
  DBPL_ASSIGN_OR_RETURN(Schema out_schema, Schema::Make(std::move(out_attrs)));

  // Group tuples by their group-attribute slice.
  std::vector<int> gidx;
  for (const auto& a : group_attrs) gidx.push_back(r.schema().IndexOf(a));
  auto slice = [&](const Tuple& t) {
    Tuple key;
    key.reserve(gidx.size());
    for (int i : gidx) key.push_back(t[static_cast<size_t>(i)]);
    return key;
  };
  struct TupleLess {
    bool operator()(const Tuple& a, const Tuple& b) const {
      for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
        int c = core::Compare(a[i], b[i]);
        if (c != 0) return c < 0;
      }
      return a.size() < b.size();
    }
  };
  std::map<Tuple, std::vector<const Tuple*>, TupleLess> grouped;
  for (const auto& t : r.tuples()) grouped[slice(t)].push_back(&t);
  // An empty relation with no group attributes still aggregates (e.g.
  // count = 0).
  if (grouped.empty() && group_attrs.empty()) grouped[{}] = {};

  Relation out(out_schema);
  for (const auto& [key, members] : grouped) {
    Tuple row = key;
    for (size_t k = 0; k < aggs.size(); ++k) {
      const AggSpec& agg = aggs[k];
      switch (agg.func) {
        case AggFunc::kCount:
          row.push_back(Value::Int(static_cast<int64_t>(members.size())));
          break;
        case AggFunc::kSum: {
          size_t idx = static_cast<size_t>(agg_idx[k]);
          if (out_schema.attributes()[key.size() + k].type == AtomType::kInt) {
            int64_t total = 0;
            for (const Tuple* t : members) total += (*t)[idx].AsInt();
            row.push_back(Value::Int(total));
          } else {
            double total = 0;
            for (const Tuple* t : members) total += (*t)[idx].AsReal();
            row.push_back(Value::Real(total));
          }
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax: {
          if (members.empty()) {
            return Status::InvalidArgument(
                "min/max of an empty relation is undefined");
          }
          size_t idx = static_cast<size_t>(agg_idx[k]);
          Value best = (*members.front())[idx];
          for (const Tuple* t : members) {
            int c = core::Compare((*t)[idx], best);
            if ((agg.func == AggFunc::kMin && c < 0) ||
                (agg.func == AggFunc::kMax && c > 0)) {
              best = (*t)[idx];
            }
          }
          row.push_back(best);
          break;
        }
      }
    }
    DBPL_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  return out;
}

Result<Relation> Rename(const Relation& r, const std::string& from,
                        const std::string& to) {
  if (!r.schema().Has(from)) {
    return Status::NotFound("no attribute named " + from);
  }
  if (r.schema().Has(to)) {
    return Status::AlreadyExists("attribute already exists: " + to);
  }
  std::vector<Schema::Attribute> attrs = r.schema().attributes();
  for (auto& a : attrs) {
    if (a.name == from) a.name = to;
  }
  DBPL_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  Relation out(std::move(schema));
  for (const auto& t : r.tuples()) DBPL_RETURN_IF_ERROR(out.Insert(t));
  return out;
}

}  // namespace dbpl::relational
