#include "relational/schema.h"

#include <cstdlib>
#include <set>
#include <sstream>

namespace dbpl::relational {

std::string_view AtomTypeName(AtomType t) {
  switch (t) {
    case AtomType::kBool:
      return "Bool";
    case AtomType::kInt:
      return "Int";
    case AtomType::kReal:
      return "Real";
    case AtomType::kString:
      return "String";
  }
  return "Unknown";
}

bool AtomMatches(const core::Value& v, AtomType t) {
  switch (t) {
    case AtomType::kBool:
      return v.kind() == core::ValueKind::kBool;
    case AtomType::kInt:
      return v.kind() == core::ValueKind::kInt;
    case AtomType::kReal:
      return v.kind() == core::ValueKind::kReal;
    case AtomType::kString:
      return v.kind() == core::ValueKind::kString;
  }
  return false;
}

Result<Schema> Schema::Make(std::vector<Attribute> attrs) {
  std::set<std::string> seen;
  for (const auto& a : attrs) {
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute: " + a.name);
    }
  }
  Schema s;
  s.attrs_ = std::move(attrs);
  return s;
}

Schema Schema::Of(std::vector<Attribute> attrs) {
  Result<Schema> r = Make(std::move(attrs));
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

int Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> Schema::CommonAttributes(const Schema& other) const {
  std::vector<std::string> out;
  for (const auto& a : attrs_) {
    if (other.Has(a.name)) out.push_back(a.name);
  }
  return out;
}

Result<Schema> Schema::JoinWith(const Schema& other) const {
  std::vector<Attribute> out = attrs_;
  for (const auto& a : other.attrs_) {
    int idx = IndexOf(a.name);
    if (idx < 0) {
      out.push_back(a);
    } else if (attrs_[static_cast<size_t>(idx)].type != a.type) {
      return Status::Inconsistent("attribute " + a.name +
                                  " has conflicting types");
    }
  }
  return Make(std::move(out));
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Attribute> out;
  for (const auto& n : names) {
    int idx = IndexOf(n);
    if (idx < 0) return Status::NotFound("no attribute named " + n);
    out.push_back(attrs_[static_cast<size_t>(idx)]);
  }
  return Make(std::move(out));
}

types::Type Schema::ToType() const {
  std::vector<std::pair<std::string, types::Type>> fields;
  fields.reserve(attrs_.size());
  for (const auto& a : attrs_) {
    switch (a.type) {
      case AtomType::kBool:
        fields.emplace_back(a.name, types::Type::Bool());
        break;
      case AtomType::kInt:
        fields.emplace_back(a.name, types::Type::Int());
        break;
      case AtomType::kReal:
        fields.emplace_back(a.name, types::Type::Real());
        break;
      case AtomType::kString:
        fields.emplace_back(a.name, types::Type::String());
        break;
    }
  }
  return types::Type::RecordOf(std::move(fields));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  bool first = true;
  for (const auto& a : attrs_) {
    if (!first) os << ", ";
    first = false;
    os << a.name << ": " << AtomTypeName(a.type);
  }
  os << ")";
  return os.str();
}

}  // namespace dbpl::relational
