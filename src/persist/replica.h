#ifndef DBPL_PERSIST_REPLICA_H_
#define DBPL_PERSIST_REPLICA_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "dyndb/database.h"
#include "persist/wal_database.h"
#include "storage/log.h"
#include "storage/vfs.h"

namespace dbpl::persist {

/// How a Replica follows its primary.
struct FollowOptions {
  /// Interval between shipping rounds. Zero (the default) disables the
  /// background thread: the owner drives shipping by calling `Poll()`,
  /// which is what deterministic tests (and the crash matrix, whose
  /// FaultVfs is single-threaded) want. Non-zero starts a streaming
  /// thread that polls at this cadence and wakes `WaitForEpoch`
  /// waiters as batches land.
  std::chrono::milliseconds poll_interval{0};
};

/// Shipping-progress counters (monotone since construction).
struct ReplicaStats {
  /// Bootstraps performed: the initial one, plus one per observed
  /// generation change (primary checkpoint rotation or re-Attach).
  uint64_t bootstraps = 0;
  /// Shipping rounds driven (Poll calls / background wakeups).
  uint64_t polls = 0;
  /// Committed batches applied from the shipped log.
  uint64_t batches_applied = 0;
  /// Records applied / skipped-as-duplicate (skips are the expected
  /// overlap between a checkpoint and the log records it covers).
  uint64_t records_applied = 0;
  uint64_t records_skipped = 0;
  /// Tail anomalies survived by re-bootstrapping: a rotation observed
  /// mid-read, a stale file handle after a primary crash, a short log.
  uint64_t resyncs = 0;
};

/// A read-only follower of a WAL primary: WAL shipping in-process.
///
/// The paper makes persistence a property of *values* (a database is a
/// persistent list of dynamics); the WAL layer made that property
/// incremental; a Replica lifts it across databases: the same redo
/// records that make the primary durable, replayed through the same
/// idempotent `ApplyWalBatch` path recovery uses, reproduce the
/// primary's state in another dyndb::Database — so every Get strategy,
/// extent, and join works on the follower unchanged.
///
/// ## Protocol
///
/// Each shipping round (`Poll`):
///
///  1. Sample the primary's `WalShipper::ShipState` — the generation
///     plus one (durable bytes, epoch) bound per shard segment.
///  2. If not yet bootstrapped, or the generation changed (the primary
///     rotated its segments): re-bootstrap — apply the checkpoint file
///     *incrementally* (per shard, only entries beyond the follower's
///     shard size; only extents it lacks) and restart every segment
///     cursor at offset 0. A checkpoint is always safe to apply, even
///     against stale bounds: it is an atomically-renamed, durable
///     prefix of the primary's per-shard histories. A follower whose
///     database is still empty adopts the primary's shard geometry
///     here; a non-empty follower of a different geometry is refused
///     (kFailedPrecondition).
///  3. Tail each segment from its cursor up to — exactly — that
///     shard's sampled durable bound, *buffering* decoded batches.
///  4. Re-sample the state. If the generation moved while reading,
///     the buffered bytes may belong to rotated segments: discard them
///     and re-bootstrap on the next round. Otherwise apply the
///     batches (shard by shard; shard histories are independent, so
///     cross-shard order cannot change the result).
///
/// Only *durable* (synced-committed) bytes are ever read, so a
/// follower's state is at all times a committed per-shard prefix of
/// anything a crashed-and-recovered primary can come back with — a
/// follower never observes an uncommitted, torn, or divergent record.
/// Convergence: once the primary quiesces, runs one durability barrier
/// (Commit/Checkpoint) and the follower polls, their states are equal
/// (same entries at the same ids, same extents, same epoch).
///
/// A resync (step 4's discard) is normally silent self-healing: the
/// next round's bootstrap explains what happened. But when the
/// anomaly *persists across a fresh bootstrap within one unchanged
/// generation* — the shipper advertises durable bytes its segments
/// cannot deliver, e.g. a reader caching stale shipping state across a
/// failed checkpoint rotation — the follower surfaces
/// kFailedPrecondition once instead of looping silently, then keeps
/// retrying quietly until the generation moves.
///
/// ## Staleness
///
/// `Epoch()` is the follower's position on the primary's mutation
/// timeline (dyndb epochs count mutations, so equal content ⇔ equal
/// epoch); primary epoch minus follower epoch is the replication lag.
/// `WaitForEpoch(e, timeout)` is the read barrier: it returns OK once
/// `Epoch() >= e`, or kDeadlineExceeded. Reads between polls see a
/// frozen, prefix-consistent snapshot — lag never exposes partial
/// batches.
///
/// ## Failover
///
/// `PromoteToPrimary(vfs, dir)` detaches, checkpoints the follower's
/// state into `dir` and opens a fresh WalDatabase over it: the
/// follower's replicated prefix becomes the new durable history, and
/// subsequent writes gain WAL durability immediately.
///
/// Thread-safety: all methods are safe to call concurrently; reads on
/// `db()` are lock-free snapshots exactly as on the primary. The
/// FaultVfs used by crash tests is *not* thread-safe — drive such
/// followers with manual `Poll()` (poll_interval zero), never a
/// streaming thread.
class Replica {
 public:
  Replica() = default;
  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;
  ~Replica() { Detach(); }

  /// Connects to a primary and synchronously bootstraps + catches up
  /// to its current durable bounds. Re-attaching (e.g. to the
  /// recovered incarnation of a crashed primary) keeps the follower's
  /// state and resumes incrementally. The shipper must outlive the
  /// attachment.
  Status Attach(WalShipper* shipper, FollowOptions opts = {})
      DBPL_EXCLUDES(mu_);

  /// One manual shipping round (see the protocol above). Returns OK
  /// for a healthy round — including one that detected a rotation or
  /// a stale handle and scheduled a re-bootstrap (`stats().resyncs`)
  /// — and an error only for real trouble: not attached, an unreadable
  /// checkpoint, or a history gap (divergence, kCorruption).
  Status Poll() DBPL_EXCLUDES(mu_);

  /// Disconnects (stopping the streaming thread, if any). The
  /// follower's database and stats remain readable.
  void Detach() DBPL_EXCLUDES(mu_);

  bool attached() const DBPL_EXCLUDES(mu_);

  /// The follower's position on the primary's mutation timeline.
  uint64_t Epoch() const { return db_.epoch(); }

  /// Read barrier: blocks until `Epoch() >= epoch` or the timeout
  /// expires (kDeadlineExceeded). With a streaming thread, waits on
  /// its progress signal; in manual mode, drives `Poll()` itself,
  /// sleeping between rounds on the progress signal with the deadline
  /// clamped in — so an external `Poll()`'s progress wakes it
  /// immediately and the deadline can never drift past by a poll
  /// quantum.
  Status WaitForEpoch(uint64_t epoch, std::chrono::milliseconds timeout)
      DBPL_EXCLUDES(mu_);

  /// The replicated database: read-only by convention — mutating it
  /// would diverge from the primary and poison replay with id gaps.
  const dyndb::Database& db() const { return db_; }

  ReplicaStats stats() const DBPL_EXCLUDES(mu_);

  /// Failover: detach, persist this follower's state as the durable
  /// seed of `dir`, and open a WalDatabase there. The returned primary
  /// starts at exactly the follower's replicated prefix; writes to it
  /// are WAL-durable from the first insert. The Replica itself is
  /// inert afterwards (its in-memory copy stays readable).
  Result<std::unique_ptr<WalDatabase>> PromoteToPrimary(
      storage::Vfs* vfs, const std::string& dir, CommitPolicy policy = {})
      DBPL_EXCLUDES(mu_);

 private:
  /// One shipping round; mu_ held. Re-enters the primary's bounds
  /// sampling and the follower's write path, both of which rank above
  /// mu_ (kReplica is the lowest rank in the table).
  Status PollLocked() DBPL_REQUIRES(mu_);
  /// Incremental checkpoint apply + cursor restarts; mu_ held.
  Status BootstrapLocked(const WalShipper::ShipState& state)
      DBPL_REQUIRES(mu_);
  /// Streaming-thread body.
  void Run() DBPL_EXCLUDES(mu_);

  /// The replicated state. Internally thread-safe (its own capability
  /// discipline lives in dyndb/database.cc), so it is deliberately not
  /// GUARDED_BY(mu_): readers go through db() lock-free; only the
  /// polling path (under mu_) mutates it.
  dyndb::Database db_;

  /// Guards everything below, and serializes shipping rounds.
  mutable dbpl::Mutex mu_{dbpl::LockRank::kReplica, "replica.mu_"};
  /// Signaled on progress and on stop; WaitForEpoch waits here.
  dbpl::CondVar cv_;
  WalShipper* shipper_ DBPL_GUARDED_BY(mu_) = nullptr;
  FollowOptions opts_ DBPL_GUARDED_BY(mu_);
  /// One cursor per primary shard segment (resized at bootstrap).
  std::vector<std::unique_ptr<storage::LogReader>> readers_
      DBPL_GUARDED_BY(mu_);
  /// The primary generation the cursors tail; valid iff bootstrapped_.
  uint64_t generation_ DBPL_GUARDED_BY(mu_) = 0;
  bool bootstrapped_ DBPL_GUARDED_BY(mu_) = false;
  /// Consecutive resyncs within one unchanged generation, and whether
  /// the persistent-anomaly error was already surfaced for it.
  uint64_t same_gen_resyncs_ DBPL_GUARDED_BY(mu_) = 0;
  bool stale_gen_reported_ DBPL_GUARDED_BY(mu_) = false;
  bool stop_ DBPL_GUARDED_BY(mu_) = false;
  std::thread thread_ DBPL_GUARDED_BY(mu_);
  /// Raw apply counters (shared shape with recovery).
  WalRecoveryStats applied_ DBPL_GUARDED_BY(mu_);
  uint64_t bootstraps_ DBPL_GUARDED_BY(mu_) = 0;
  uint64_t polls_ DBPL_GUARDED_BY(mu_) = 0;
  uint64_t batches_ DBPL_GUARDED_BY(mu_) = 0;
  uint64_t resyncs_ DBPL_GUARDED_BY(mu_) = 0;
};

}  // namespace dbpl::persist

#endif  // DBPL_PERSIST_REPLICA_H_
