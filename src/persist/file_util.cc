#include "persist/file_util.h"

namespace dbpl::persist {

Result<std::vector<uint8_t>> ReadFileBytes(storage::Vfs* vfs,
                                           const std::string& path) {
  return vfs->ReadFileBytes(path);
}

Status WriteFileAtomic(storage::Vfs* vfs, const std::string& path,
                       const ByteBuffer& data) {
  return vfs->WriteFileAtomic(path, data);
}

void RemoveFileIfExists(storage::Vfs* vfs, const std::string& path) {
  (void)vfs->Remove(path);
}

bool FileExists(storage::Vfs* vfs, const std::string& path) {
  return vfs->Exists(path);
}

}  // namespace dbpl::persist
