#include "persist/file_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace dbpl::persist {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open " + path);
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Errno("lseek " + path);
  }
  std::vector<uint8_t> out(static_cast<size_t>(size));
  ssize_t n = ::pread(fd, out.data(), out.size(), 0);
  ::close(fd);
  if (n < 0) return Errno("pread " + path);
  if (static_cast<size_t>(n) != out.size()) {
    return Status::IoError("short read of " + path);
  }
  return out;
}

Status WriteFileAtomic(const std::string& path, const ByteBuffer& data) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open " + tmp);
  ssize_t n = ::write(fd, data.data(), data.size());
  if (n < 0 || static_cast<size_t>(n) != data.size()) {
    ::close(fd);
    return Errno("write " + tmp);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Errno("fsync " + tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename " + tmp + " -> " + path);
  }
  return Status::OK();
}

void RemoveFileIfExists(const std::string& path) {
  std::remove(path.c_str());
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace dbpl::persist
