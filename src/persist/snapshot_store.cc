#include "persist/snapshot_store.h"

#include "persist/file_util.h"
#include "serial/decoder.h"
#include "serial/encoder.h"
#include "types/type_of.h"

namespace dbpl::persist {

Status SnapshotStore::Save(storage::Vfs* vfs, const std::string& path,
                           const core::Heap& heap,
                           const std::map<std::string, core::Oid>& roots) {
  ByteBuffer out;
  serial::EncodeHeader(&out);
  // Roots.
  out.PutVarint(roots.size());
  for (const auto& [name, oid] : roots) {
    out.PutString(name);
    out.PutVarint(oid);
  }
  // Objects: each object carries its type (principle P2).
  std::vector<core::Oid> oids = heap.Oids();
  out.PutVarint(oids.size());
  for (core::Oid oid : oids) {
    Result<core::Value> v = heap.Get(oid);
    if (!v.ok()) return v.status();
    out.PutVarint(oid);
    serial::EncodeType(types::TypeOf(*v), &out);
    serial::EncodeValue(*v, &out);
  }
  return WriteFileAtomic(vfs, path, out);
}

Result<SnapshotStore::Image> SnapshotStore::Load(storage::Vfs* vfs,
                                                 const std::string& path) {
  DBPL_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(vfs, path));
  ByteReader in(bytes.data(), bytes.size());
  DBPL_RETURN_IF_ERROR(serial::DecodeHeader(&in));
  Image image;
  DBPL_ASSIGN_OR_RETURN(uint64_t root_count, in.ReadVarint());
  for (uint64_t i = 0; i < root_count; ++i) {
    DBPL_ASSIGN_OR_RETURN(std::string name, in.ReadString());
    DBPL_ASSIGN_OR_RETURN(uint64_t oid, in.ReadVarint());
    image.roots.emplace(std::move(name), oid);
  }
  DBPL_ASSIGN_OR_RETURN(uint64_t object_count, in.ReadVarint());
  for (uint64_t i = 0; i < object_count; ++i) {
    DBPL_ASSIGN_OR_RETURN(uint64_t oid, in.ReadVarint());
    DBPL_ASSIGN_OR_RETURN(types::Type type, serial::DecodeType(&in));
    DBPL_ASSIGN_OR_RETURN(core::Value value, serial::DecodeValue(&in));
    (void)type;  // carried for self-description; the value is structural
    DBPL_RETURN_IF_ERROR(image.heap.AllocateWithOid(oid, std::move(value)));
  }
  if (!in.AtEnd()) return Status::Corruption("trailing bytes in image");
  // Every root must resolve.
  for (const auto& [name, oid] : image.roots) {
    if (!image.heap.Contains(oid)) {
      return Status::Corruption("root '" + name + "' points at missing object");
    }
  }
  return image;
}

Status SnapshotStore::SaveValue(storage::Vfs* vfs, const std::string& path,
                                const dyndb::Dynamic& d) {
  ByteBuffer out;
  serial::EncodeDynamic(d, &out);
  return WriteFileAtomic(vfs, path, out);
}

Result<dyndb::Dynamic> SnapshotStore::LoadValue(storage::Vfs* vfs,
                                                const std::string& path) {
  DBPL_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(vfs, path));
  ByteReader in(bytes.data(), bytes.size());
  DBPL_ASSIGN_OR_RETURN(dyndb::Dynamic d, serial::DecodeDynamic(&in));
  if (!in.AtEnd()) return Status::Corruption("trailing bytes in value file");
  return d;
}

}  // namespace dbpl::persist
