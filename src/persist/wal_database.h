#ifndef DBPL_PERSIST_WAL_DATABASE_H_
#define DBPL_PERSIST_WAL_DATABASE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "dyndb/database.h"
#include "dyndb/dynamic.h"
#include "persist/wal.h"
#include "storage/log.h"
#include "storage/vfs.h"

namespace dbpl::persist {

/// When redo records become durable.
struct CommitPolicy {
  /// Append a commit marker after every n observed mutations (group
  /// commit: all n records become durable under one marker and, with
  /// `sync`, one fsync). 1 = commit every mutation. Must be >= 1.
  uint64_t every_n = 1;
  /// Fsync the log at each commit marker. Turning this off trades the
  /// durability of the last few commits at power loss for throughput —
  /// recovery still never yields a torn or uncommitted state, exactly
  /// like a `commitlog_sync: periodic` setting.
  bool sync = true;
};

/// What `WalDatabase::Open` found while recovering.
struct WalRecoveryStats {
  /// A checkpoint file existed and was loaded.
  bool had_checkpoint = false;
  /// Entries restored from the checkpoint (before any replay).
  uint64_t checkpoint_entries = 0;
  /// Committed redo records re-applied from the log.
  uint64_t replayed_inserts = 0;
  uint64_t replayed_extents = 0;
  /// Committed records skipped because the checkpoint already covered
  /// them (a crash between checkpoint save and log rotation leaves
  /// such records behind; id-carrying records make the overlap safe).
  uint64_t skipped_records = 0;
  /// Records after the last commit marker, discarded at recovery.
  uint64_t uncommitted_dropped = 0;
  /// True when the log ended in a damaged/incomplete frame (a torn
  /// append) rather than a clean end of file — surfaced from
  /// storage::LogReader so callers can distinguish "clean shutdown"
  /// from "crashed mid-append" (both recover to a committed prefix).
  bool corrupt_tail = false;
};

/// The shipping seam between a WAL primary and its replicas: the
/// minimal, read-only contract a follower needs to tail the primary's
/// log safely (persist::Replica is the in-process consumer; a network
/// front-end can proxy the same interface across machines).
///
/// The seam deliberately exposes *files plus bounds*, not records: the
/// follower reads the checkpoint and the log through the VFS itself,
/// and the primary only tells it how far those bytes may be trusted.
/// `Bounds` is a consistent triple taken under the primary's WAL mutex:
///
///  * `generation` — bumped at every log rotation. A follower that
///    observes a new generation must re-bootstrap (checkpoint + log
///    from offset 0); byte offsets from an older generation are
///    meaningless in the rotated log.
///  * `durable_bytes` — the log prefix covered by a *synced* commit
///    marker. Everything at or below this offset is committed,
///    frame-aligned, immutable and crash-durable; bytes beyond it may
///    be uncommitted, torn, or vanish at power loss, so a follower
///    that replicated them could diverge from a recovered primary.
///  * `epoch` — the database epoch the durable prefix reproduces: a
///    follower that has applied exactly that prefix reports this epoch
///    (dyndb::Database::epoch), which is how replication lag is
///    measured and bounded.
///
/// Thread-safe; values are monotone within a generation.
class WalShipper {
 public:
  struct Bounds {
    uint64_t generation = 0;
    uint64_t durable_bytes = 0;
    uint64_t epoch = 0;
  };

  virtual ~WalShipper() = default;

  /// A consistent snapshot of the shippable state.
  virtual Bounds ship_bounds() const = 0;

  /// Where the log and checkpoint live. Stable for the lifetime of the
  /// shipper; the Vfs must outlive every follower.
  virtual storage::Vfs* vfs() const = 0;
  virtual const std::string& wal_path() const = 0;
  virtual const std::string& checkpoint_path() const = 0;
};

/// Applies one committed WAL batch to `db` in log order, idempotently:
/// insert records whose id `db` already covers are skipped (`stats
/// ->skipped_records`), an id beyond the next expected one is a
/// Corruption (a gap in the shipped history), and re-registering an
/// existing extent is a skip. Shared by WalDatabase recovery and
/// Replica replay, so a follower converges through exactly the code
/// path recovery is tested under. Clears `*batch` on success.
Status ApplyWalBatch(dyndb::Database* db, std::vector<WalRecord>* batch,
                     WalRecoveryStats* stats);

/// Write-ahead-log durability for dyndb::Database: persistence as an
/// *incremental* property of the values written, not an O(database)
/// snapshot rewrite per save (persist::SaveDatabase).
///
/// A WalDatabase owns a dyndb::Database and a storage::LogWriter. It
/// installs the database's write observer, so every Insert /
/// RegisterExtent — whether made through the convenience methods here
/// or directly on `db()` — appends one self-describing redo record
/// (serial::EncodeDynamic: the P2 type description travels with the
/// value) before the mutation is published to readers. Commit markers
/// follow the CommitPolicy; everything between two markers is one
/// atomic group at recovery.
///
/// ## Files
///
///   <dir>/wal.log         — CRC-framed redo log (storage::Log format)
///   <dir>/checkpoint.dbpl — last checkpoint (SaveCheckpoint format)
///
/// ## Checkpointing
///
/// `Checkpoint()` pins the current snapshot, saves it (entries +
/// extent table) atomically through the VFS, then truncates the log
/// and resets the writer. Readers stay lock-free throughout — the
/// snapshot is an immutable copy-on-write state; writers block only
/// for the duration of the save (they queue on the WAL mutex inside
/// the observer, before publishing). A crash anywhere in the protocol
/// is safe: the checkpoint replaces its predecessor atomically, and a
/// log that outlives its checkpoint only holds records whose ids the
/// checkpoint already covers — recovery skips them.
///
/// ## Recovery
///
/// `Open` = load the last good checkpoint (if any), replay the
/// committed suffix of the log onto it in order, drop everything after
/// the last commit marker (including a torn tail, which LogReader
/// detects by CRC). The result is always a prefix of the committed
/// history — never a torn entry, never a reordered one. When the log
/// ended in dropped bytes (a torn tail or uncommitted records), Open
/// takes an immediate checkpoint and rotates to a clean log, so new
/// records are never appended behind bytes the reader cannot pass.
///
/// ## Failure handling
///
/// The observer cannot fail the in-memory insert, so a log I/O error
/// is recorded as a sticky `wal_status()` (and the underlying writer
/// poisons itself so no append can land beyond a torn frame). The
/// convenience mutators surface it; in-memory state keeps working but
/// is no longer gaining durability. A successful `Checkpoint()` —
/// which persists the *entire* in-memory state — clears the condition.
///
/// ## Shipping
///
/// A WalDatabase is itself a WalShipper: `ship_bounds()` publishes the
/// (generation, durable-bytes, epoch) triple that lets a
/// persist::Replica tail the log without ever reading past what a
/// crash could take back. Attach followers with `shipper()`.
///
/// Thread-safety: all methods are safe under any number of concurrent
/// readers and writers; log appends serialize on an internal mutex in
/// database writer order. Reads go through `db()` and are lock-free
/// after snapshot acquisition, exactly as without a WAL.
class WalDatabase : public WalShipper {
 public:
  /// Opens (creating if necessary) the WAL-backed database in `dir`,
  /// running recovery. `vfs` must outlive the returned object.
  static Result<std::unique_ptr<WalDatabase>> Open(storage::Vfs* vfs,
                                                   const std::string& dir,
                                                   CommitPolicy policy = {});
  /// As above, on the production VFS.
  static Result<std::unique_ptr<WalDatabase>> Open(const std::string& dir,
                                                   CommitPolicy policy = {}) {
    return Open(storage::Vfs::Default(), dir, policy);
  }

  WalDatabase(const WalDatabase&) = delete;
  WalDatabase& operator=(const WalDatabase&) = delete;

  /// Flushes the tail batch (best effort) and detaches from the
  /// database observer.
  ~WalDatabase();

  /// The underlying database. Mutations made directly on it are
  /// logged through the write observer, same as the convenience
  /// methods below — only the error reporting differs (direct writes
  /// surface log failures at the next Commit()/wal_status() check).
  dyndb::Database& db() { return db_; }
  const dyndb::Database& db() const { return db_; }

  /// Inserts and logs one entry. The insert itself always succeeds;
  /// a non-OK result reports that the redo record (or its group's
  /// commit) failed to reach the log — the value is in memory but not
  /// yet durable.
  Result<dyndb::Database::EntryId> Insert(dyndb::Dynamic d);
  Result<dyndb::Database::EntryId> InsertValue(core::Value v) {
    return Insert(dyndb::MakeDynamic(std::move(v)));
  }

  /// Registers and logs a maintained extent.
  Status RegisterExtent(const std::string& name, types::Type t);

  /// Makes everything observed so far durable: appends a commit marker
  /// for any open batch and fsyncs (regardless of CommitPolicy::sync).
  /// No-op when nothing is pending.
  Status Commit();

  /// Saves a checkpoint of the current state and rotates the log; see
  /// the class comment for the protocol. On success the WAL shrinks to
  /// empty and `wal_status()` is reset to OK.
  Status Checkpoint();

  /// The sticky status of the logging path: OK, or the first append /
  /// commit failure since the last successful Checkpoint().
  Status wal_status() const;

  /// Bytes in the current log generation (redo records + markers).
  uint64_t wal_bytes() const;

  /// Mutations observed since the last commit marker.
  uint64_t pending_in_batch() const;

  /// Checkpoints and rotations completed in this process.
  uint64_t checkpoints_taken() const;

  /// What recovery found when this object was opened.
  const WalRecoveryStats& recovery_stats() const { return recovery_; }

  /// This database as a shipping source for persist::Replica. Valid
  /// for the WalDatabase's lifetime.
  WalShipper* shipper() { return this; }

  // WalShipper:
  WalShipper::Bounds ship_bounds() const override;
  storage::Vfs* vfs() const override { return vfs_; }
  const std::string& wal_path() const override { return wal_path_; }
  const std::string& checkpoint_path() const override {
    return checkpoint_path_;
  }

 private:
  WalDatabase(storage::Vfs* vfs, const std::string& dir, CommitPolicy policy)
      : vfs_(vfs),
        policy_(policy),
        wal_path_(dir + "/wal.log"),
        checkpoint_path_(dir + "/checkpoint.dbpl") {}

  /// Load checkpoint + replay the committed log suffix into db_.
  Status Recover();
  /// The write-observer body: encode, append, maybe commit the group.
  void OnWrite(const dyndb::Database::WriteEvent& event);
  /// Appends a commit marker and applies the sync policy. wal_mu_ held.
  Status CommitLocked();

  storage::Vfs* vfs_;
  const CommitPolicy policy_;
  const std::string wal_path_;
  const std::string checkpoint_path_;

  dyndb::Database db_;
  WalRecoveryStats recovery_;

  /// Serializes every touch of the log (observer appends, commits,
  /// checkpoint/rotate) and the fields below. Writers enter it from
  /// the observer while holding the database writer mutex; Checkpoint
  /// takes it alone — never the writer mutex — so the lock order is
  /// acyclic.
  mutable std::mutex wal_mu_;
  std::unique_ptr<storage::LogWriter> writer_;
  Status wal_status_;
  uint64_t pending_ = 0;
  /// Commit markers appended but not yet fsynced (sync=false policy).
  bool unsynced_commits_ = false;
  uint64_t checkpoints_ = 0;

  // --- shipping bookkeeping (wal_mu_ held) -------------------------
  /// Epoch of the last mutation whose redo record reached the log.
  /// Checkpoint() waits for the published state to catch up to this
  /// before snapshotting, closing the append-before-publish window in
  /// which a record could sit in the old log while its entry is still
  /// missing from the snapshot (and would be lost at rotation).
  uint64_t appended_epoch_ = 0;
  /// Log prefix covered by a commit marker, and the epoch it encodes.
  uint64_t committed_bytes_ = 0;
  uint64_t committed_epoch_ = 0;
  /// The synced ("shippable") portion of the committed prefix. Equal
  /// to committed_* under CommitPolicy::sync; lags it otherwise until
  /// the next explicit Commit().
  uint64_t durable_bytes_ = 0;
  uint64_t durable_epoch_ = 0;
  /// Bumped when a checkpoint lands (the log is about to rotate, so
  /// byte offsets from before are void — even if the rotation itself
  /// then fails, the generation bump forces followers back to the
  /// durable checkpoint instead of a log in an uncertain state).
  uint64_t generation_ = 0;
};

}  // namespace dbpl::persist

#endif  // DBPL_PERSIST_WAL_DATABASE_H_
