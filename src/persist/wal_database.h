#ifndef DBPL_PERSIST_WAL_DATABASE_H_
#define DBPL_PERSIST_WAL_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "dyndb/database.h"
#include "dyndb/dynamic.h"
#include "persist/wal.h"
#include "storage/log.h"
#include "storage/vfs.h"

namespace dbpl::persist {

/// When redo records become durable.
struct CommitPolicy {
  /// Append a commit marker after every n observed mutations *per
  /// shard* (group commit: all n records become durable under one
  /// marker and, with `sync`, one fsync barrier). 1 = commit every
  /// mutation. Must be >= 1.
  uint64_t every_n = 1;
  /// Fsync at each commit marker. Turning this off trades the
  /// durability of the last few commits at power loss for throughput —
  /// recovery still never yields a torn or uncommitted state, exactly
  /// like a `commitlog_sync: periodic` setting.
  bool sync = true;
};

/// Construction-time knobs for a WalDatabase.
struct WalOptions {
  CommitPolicy commit{};
  /// Writer shards (dyndb::DatabaseOptions::shards): each shard gets
  /// its own WAL segment (`wal.<s>.log`) with its own append mutex, so
  /// writers to different shards never contend on the log either.
  /// 1 keeps the classic single `wal.log`. 0 (the default) adopts the
  /// shard count recorded in the directory's checkpoint — or, lacking
  /// one, the count of `wal.<s>.log` segments present — falling back
  /// to 1 for a fresh directory. A non-zero value must match what the
  /// directory holds (kFailedPrecondition otherwise).
  int shards = 0;
};

/// What `WalDatabase::Open` found while recovering (aggregated over
/// all shard segments).
struct WalRecoveryStats {
  /// A checkpoint file existed and was loaded.
  bool had_checkpoint = false;
  /// Entries restored from the checkpoint (before any replay).
  uint64_t checkpoint_entries = 0;
  /// Committed redo records re-applied from the log.
  uint64_t replayed_inserts = 0;
  uint64_t replayed_extents = 0;
  /// Committed records skipped because the checkpoint already covered
  /// them (a crash between checkpoint save and log rotation leaves
  /// such records behind; id-carrying records make the overlap safe).
  uint64_t skipped_records = 0;
  /// Records after the last commit marker, discarded at recovery.
  uint64_t uncommitted_dropped = 0;
  /// True when any segment ended in a damaged/incomplete frame (a torn
  /// append) rather than a clean end of file — surfaced from
  /// storage::LogReader so callers can distinguish "clean shutdown"
  /// from "crashed mid-append" (both recover to a committed prefix).
  bool corrupt_tail = false;
};

/// The shipping seam between a WAL primary and its replicas: the
/// minimal, read-only contract a follower needs to tail the primary's
/// log safely (persist::Replica is the in-process consumer; a network
/// front-end can proxy the same interface across machines).
///
/// The seam deliberately exposes *files plus bounds*, not records: the
/// follower reads the checkpoint and the per-shard log segments
/// through the VFS itself, and the primary only tells it how far those
/// bytes may be trusted. `ship_bounds()` returns a consistent
/// `ShipState` taken while rotations are excluded:
///
///  * `generation` — bumped at every log rotation (one rotation covers
///    all shards). A follower that observes a new generation must
///    re-bootstrap (checkpoint + every segment from offset 0); byte
///    offsets from an older generation are meaningless in the rotated
///    segments.
///  * `shards[s].durable_bytes` — the prefix of segment `s` covered by
///    a *synced* commit marker. Everything at or below this offset is
///    committed, frame-aligned, immutable and crash-durable; bytes
///    beyond it may be uncommitted, torn, or vanish at power loss, so
///    a follower that replicated them could diverge from a recovered
///    primary.
///  * `shards[s].epoch` — the shard-`s` database epoch the durable
///    prefix of segment `s` reproduces (dyndb per-shard epochs; their
///    sum approximates the composite epoch, which is how replication
///    lag is measured and bounded).
///
/// Thread-safe; per-shard values are monotone within a generation.
class WalShipper {
 public:
  /// The shippable prefix of one shard's WAL segment.
  struct Bounds {
    uint64_t durable_bytes = 0;
    uint64_t epoch = 0;
  };
  /// One consistent sample of the whole shippable state.
  struct ShipState {
    uint64_t generation = 0;
    std::vector<Bounds> shards;

    /// Sum of the per-shard durable epochs (a lower bound on the
    /// composite epoch the durable prefixes reproduce).
    uint64_t epoch() const {
      uint64_t total = 0;
      for (const Bounds& b : shards) total += b.epoch;
      return total;
    }
  };

  virtual ~WalShipper() = default;

  /// A consistent snapshot of the shippable state (one entry per
  /// shard; the vector's size is `shard_count()` and never changes).
  virtual ShipState ship_bounds() const = 0;

  /// Shard geometry. Stable for the lifetime of the shipper.
  virtual int shard_count() const = 0;

  /// Where the segments and checkpoint live. Stable for the lifetime
  /// of the shipper; the Vfs must outlive every follower.
  virtual storage::Vfs* vfs() const = 0;
  virtual const std::string& wal_path(int shard) const = 0;
  virtual const std::string& checkpoint_path() const = 0;
};

/// Applies one committed WAL batch to `db` in log order, idempotently:
/// insert records whose id `db` already covers are skipped (`stats
/// ->skipped_records`), an id beyond the next expected sequence of its
/// shard is a Corruption (a gap in the shipped history), and
/// re-registering an existing extent is a skip. Shared by WalDatabase
/// recovery and Replica replay, so a follower converges through
/// exactly the code path recovery is tested under. Clears `*batch` on
/// success.
Status ApplyWalBatch(dyndb::Database* db, std::vector<WalRecord>* batch,
                     WalRecoveryStats* stats);

/// Write-ahead-log durability for dyndb::Database: persistence as an
/// *incremental* property of the values written, not an O(database)
/// snapshot rewrite per save (persist::SaveDatabase).
///
/// A WalDatabase owns a dyndb::Database and one storage::LogWriter per
/// writer shard. It installs the database's write observer, so every
/// Insert / RegisterExtent — whether made through the convenience
/// methods here or directly on `db()` — appends one self-describing
/// redo record (serial::EncodeDynamic: the P2 type description travels
/// with the value) to its shard's segment *before* the mutation is
/// applied. A failed append vetoes the mutation: the writer rolls
/// back, so the in-memory database can never run ahead of (or diverge
/// from) its log. Commit markers follow the CommitPolicy per shard;
/// everything between two markers is one atomic group at recovery.
///
/// ## Files
///
///   <dir>/wal.log         — the single segment when shards == 1
///   <dir>/wal.<s>.log     — per-shard CRC-framed redo segments (K > 1)
///   <dir>/checkpoint.dbpl — last checkpoint (SaveCheckpoint format,
///                           v2 with shard geometry when K > 1)
///
/// ## Group commit
///
/// Appends and markers serialize per shard on that shard's log mutex —
/// writers to different shards never contend. Durability is a
/// *cross-shard* barrier: a group-sync coordinator elects one caller
/// as leader, which fsyncs every segment with unsynced markers while
/// concurrent committers piggyback on that one barrier. One fsync
/// round therefore covers all shards' outstanding commit markers. The
/// barrier runs after the mutation is published (never under a log or
/// writer mutex), so `Insert`/`RegisterExtent`/`Commit` return only
/// once their group is durable (with `CommitPolicy::sync`), while
/// mutations made directly on `db()` become durable at the next
/// barrier any caller runs.
///
/// ## Checkpointing
///
/// `Checkpoint()` pins a snapshot no appended record is missing from,
/// saves it (entries + extent table) atomically through the VFS, then
/// truncates every segment and resets the writers. Readers stay
/// lock-free throughout; writers queue on the segment mutexes for the
/// duration of the save. A crash anywhere in the protocol is safe: the
/// checkpoint replaces its predecessor atomically, and a segment that
/// outlives its checkpoint only holds records whose ids the checkpoint
/// already covers — recovery skips them.
///
/// ## Recovery
///
/// `Open` = load the last good checkpoint (if any), replay each
/// segment's committed suffix onto it, drop everything after each
/// segment's last commit marker (including torn tails, which LogReader
/// detects by CRC). Shard segments are independent histories — inserts
/// never cross shards and extent registrations are logged exactly once
/// (in shard 0's segment) and re-applied idempotently — so replay
/// order across segments cannot change the result. When any segment
/// ended in dropped bytes, Open takes an immediate checkpoint and
/// rotates, so new records are never appended behind bytes the reader
/// cannot pass.
///
/// ## Failure handling
///
/// A log I/O failure inside the observer vetoes the mutation (the
/// database rolls it back and the caller gets the error) and poisons
/// the WAL: the sticky `wal_status()` then vetoes every later write,
/// so memory and log stay in lockstep at the last consistent point. A
/// successful `Checkpoint()` — which persists the *entire* in-memory
/// state and rotates to clean segments — clears the condition.
///
/// ## Shipping
///
/// A WalDatabase is itself a WalShipper: `ship_bounds()` publishes the
/// generation plus per-shard (durable-bytes, epoch) bounds that let a
/// persist::Replica tail every segment without ever reading past what
/// a crash could take back. Attach followers with `shipper()`.
///
/// Thread-safety: all methods are safe under any number of concurrent
/// readers and writers; appends serialize per shard in database writer
/// order. Reads go through `db()` and are lock-free after snapshot
/// acquisition, exactly as without a WAL.
class WalDatabase : public WalShipper {
 public:
  /// Opens (creating if necessary) the WAL-backed database in `dir`,
  /// running recovery. `vfs` must outlive the returned object.
  static Result<std::unique_ptr<WalDatabase>> Open(storage::Vfs* vfs,
                                                   const std::string& dir,
                                                   const WalOptions& options);
  static Result<std::unique_ptr<WalDatabase>> Open(storage::Vfs* vfs,
                                                   const std::string& dir,
                                                   CommitPolicy policy = {}) {
    return Open(vfs, dir, WalOptions{policy, 0});
  }
  /// As above, on the production VFS.
  static Result<std::unique_ptr<WalDatabase>> Open(const std::string& dir,
                                                   CommitPolicy policy = {}) {
    return Open(storage::Vfs::Default(), dir, policy);
  }

  WalDatabase(const WalDatabase&) = delete;
  WalDatabase& operator=(const WalDatabase&) = delete;

  /// Flushes the tail batches (best effort) and detaches from the
  /// database observer.
  ~WalDatabase();

  /// The underlying database. Mutations made directly on it are
  /// logged through the write observer, same as the convenience
  /// methods below — a WAL append failure fails the mutation either
  /// way; only durability timing differs (direct writes ride the next
  /// group-sync barrier instead of running one).
  dyndb::Database& db() { return db_; }
  const dyndb::Database& db() const { return db_; }

  /// Inserts and logs one entry. If the redo append fails — or the
  /// WAL is already poisoned — the mutation is *vetoed*: the insert is
  /// rolled back as if never made, and the append's error is returned.
  /// A failure of the later durability barrier also returns non-OK; in
  /// that case the entry exists in memory but its durability is
  /// unresolved, and the WAL is poisoned until the next successful
  /// Checkpoint() (which persists the in-memory state wholesale).
  Result<dyndb::Database::EntryId> Insert(dyndb::Dynamic d);
  Result<dyndb::Database::EntryId> InsertValue(core::Value v) {
    return Insert(dyndb::MakeDynamic(std::move(v)));
  }

  /// Registers and logs a maintained extent.
  Status RegisterExtent(const std::string& name, types::Type t);

  /// Makes everything observed so far durable: appends a commit marker
  /// for any open batch (on every shard) and runs one fsync barrier
  /// over all dirty segments (regardless of CommitPolicy::sync).
  /// No-op when nothing is pending.
  Status Commit() DBPL_EXCLUDES(sync_mu_, status_mu_);

  /// Saves a checkpoint of the current state and rotates every
  /// segment; see the class comment for the protocol. On success the
  /// WAL shrinks to empty and `wal_status()` is reset to OK.
  Status Checkpoint() DBPL_EXCLUDES(meta_mu_, status_mu_);

  /// The sticky status of the logging path: OK, or the first append /
  /// commit failure since the last successful Checkpoint(). While
  /// non-OK, every write through the observer is vetoed.
  Status wal_status() const DBPL_EXCLUDES(status_mu_);

  /// Bytes in the current log generation, summed over all segments.
  uint64_t wal_bytes() const;

  /// Mutations observed since the last commit marker, summed over all
  /// shards.
  uint64_t pending_in_batch() const;

  /// Checkpoints and rotations completed in this process.
  uint64_t checkpoints_taken() const DBPL_EXCLUDES(meta_mu_);

  /// What recovery found when this object was opened.
  const WalRecoveryStats& recovery_stats() const { return recovery_; }

  /// This database as a shipping source for persist::Replica. Valid
  /// for the WalDatabase's lifetime.
  WalShipper* shipper() { return this; }

  // WalShipper:
  WalShipper::ShipState ship_bounds() const override
      DBPL_EXCLUDES(meta_mu_);
  int shard_count() const override { return static_cast<int>(lanes_.size()); }
  storage::Vfs* vfs() const override { return vfs_; }
  const std::string& wal_path(int shard) const override {
    return lanes_[static_cast<size_t>(shard)]->path;
  }
  const std::string& checkpoint_path() const override {
    return checkpoint_path_;
  }

 private:
  /// One writer shard's log lane: its segment, append mutex, and
  /// commit bookkeeping. Heap-allocated for address stability.
  struct Lane {
    /// Serializes every touch of this segment (observer appends,
    /// markers, sync, rotation) and the fields below. Writers enter it
    /// from the observer while holding the database shard's writer
    /// mutex; Checkpoint takes all lanes — never any writer mutex — so
    /// the lock order is acyclic (rank kWalLane, clustered).
    mutable dbpl::Mutex mu{dbpl::LockRank::kWalLane, "wal.lane.mu"};
    /// Segment path; set once during Recover (before the object is
    /// shared) and immutable after, so reads need no lock.
    std::string path;
    std::unique_ptr<storage::LogWriter> writer DBPL_GUARDED_BY(mu);
    uint64_t pending DBPL_GUARDED_BY(mu) = 0;
    /// Markers appended but not yet covered by a sync barrier.
    bool unsynced_commits DBPL_GUARDED_BY(mu) = false;
    /// Shard epoch of the last mutation whose redo record reached this
    /// segment. Checkpoint() waits for the published state to catch up
    /// to it before snapshotting, closing the append-before-publish
    /// window in which a record could sit in the old segment while its
    /// entry is still missing from the snapshot (and would be lost at
    /// rotation).
    uint64_t appended_epoch DBPL_GUARDED_BY(mu) = 0;
    /// Segment prefix covered by a commit marker, and the shard epoch
    /// it encodes.
    uint64_t committed_bytes DBPL_GUARDED_BY(mu) = 0;
    uint64_t committed_epoch DBPL_GUARDED_BY(mu) = 0;
    /// The synced ("shippable") portion of the committed prefix —
    /// together with committed_* and the writer's byte count, the
    /// durable-bounds triple ship_bounds() samples.
    uint64_t durable_bytes DBPL_GUARDED_BY(mu) = 0;
    uint64_t durable_epoch DBPL_GUARDED_BY(mu) = 0;
  };

  WalDatabase(storage::Vfs* vfs, std::string dir, CommitPolicy policy)
      : vfs_(vfs),
        policy_(policy),
        dir_(std::move(dir)),
        checkpoint_path_(dir_ + "/checkpoint.dbpl") {}

  /// Segment path for shard `s` of `k` ("wal.log" when k == 1).
  std::string SegmentPath(int shard, int shards) const;

  /// Load checkpoint + replay the committed segment suffixes into db_.
  /// `requested_shards` is WalOptions::shards (0 = adopt what the
  /// directory holds); creates the lanes.
  Status Recover(int requested_shards);
  /// Replays one segment's committed suffix onto db_.
  Status ReplaySegment(int shard);
  /// The write-observer body: check poison, encode, append, maybe
  /// append the shard's commit marker. Returns non-OK to veto. Runs
  /// under the mutated shard's writer mutex; takes that shard's
  /// lane.mu (rank order: shard writer < wal lane).
  Status OnWrite(const dyndb::Database::WriteEvent& event);
  /// Appends a commit marker to `lane` and stamps it with the next
  /// group-commit sequence.
  Status AppendMarkerLocked(Lane& lane) DBPL_REQUIRES(lane.mu);
  /// Runs (or piggybacks on) a sync barrier covering at least marker
  /// sequence `target`. Never called with any lock held: the barrier
  /// takes sync_mu_, releases it across the fsync loop (which takes
  /// each lane.mu in turn), and re-takes it to publish the result.
  Status GroupSync(uint64_t target) DBPL_EXCLUDES(sync_mu_);
  /// Poison bookkeeping.
  void Poison(const Status& status) DBPL_EXCLUDES(status_mu_);
  Status CheckPoisoned() const DBPL_EXCLUDES(status_mu_);

  storage::Vfs* vfs_;
  const CommitPolicy policy_;
  const std::string dir_;
  const std::string checkpoint_path_;

  dyndb::Database db_;
  WalRecoveryStats recovery_;

  std::vector<std::unique_ptr<Lane>> lanes_;

  /// Serializes checkpoint/rotation against bounds sampling; never
  /// held while a lane performs I/O other than during Checkpoint.
  /// Order: meta_mu_ -> lane.mu (rank kWalMeta < kWalLane).
  mutable dbpl::Mutex meta_mu_{dbpl::LockRank::kWalMeta, "wal.meta_mu_"};
  /// Bumped when a checkpoint lands (the segments are about to rotate,
  /// so byte offsets from before are void — even if the rotation
  /// itself then fails, the generation bump forces followers back to
  /// the durable checkpoint instead of segments in an uncertain
  /// state).
  uint64_t generation_ DBPL_GUARDED_BY(meta_mu_) = 0;
  uint64_t checkpoints_ DBPL_GUARDED_BY(meta_mu_) = 0;

  /// Sticky failure of the logging path. The atomic flag is the
  /// fast-path check; status_mu_ guards the Status itself (a leaf
  /// rank: taken under lanes, the barrier, and meta alike, never the
  /// other way round).
  mutable dbpl::Mutex status_mu_{dbpl::LockRank::kWalStatus,
                                 "wal.status_mu_"};
  std::atomic<bool> poisoned_{false};
  Status wal_status_ DBPL_GUARDED_BY(status_mu_);

  // --- group-commit coordinator ------------------------------------
  /// Monotone sequence stamped on every commit marker (any shard).
  std::atomic<uint64_t> commit_seq_{0};
  /// Guards synced_seq_ / sync_inflight_; never held during I/O (the
  /// leader drops it across the fsync loop; rank kGroupCommit keeps
  /// even a leader that didn't order-correct against the lanes).
  dbpl::Mutex sync_mu_{dbpl::LockRank::kGroupCommit, "wal.sync_mu_"};
  dbpl::CondVar sync_cv_;
  /// Every marker with sequence <= synced_seq_ is fsync-covered.
  uint64_t synced_seq_ DBPL_GUARDED_BY(sync_mu_) = 0;
  bool sync_inflight_ DBPL_GUARDED_BY(sync_mu_) = false;
};

}  // namespace dbpl::persist

#endif  // DBPL_PERSIST_WAL_DATABASE_H_
