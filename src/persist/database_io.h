#ifndef DBPL_PERSIST_DATABASE_IO_H_
#define DBPL_PERSIST_DATABASE_IO_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "dyndb/database.h"
#include "storage/vfs.h"

namespace dbpl::persist {

/// Persists one snapshot of a heterogeneous database — every entry
/// written self-describingly (value + carried type, principle P2) — to
/// one file, atomically. Registered extents are not stored: they are
/// *derived* state and are rebuilt by re-registering after load, which
/// is the paper's point about extents being separable from persistence.
///
/// Because the argument is an immutable snapshot, the save is a
/// consistent point-in-time image even while other threads keep
/// inserting into the database the snapshot came from: the file always
/// holds an insertion-order prefix of the database, never a torn
/// mid-insert state.
Status SaveSnapshot(storage::Vfs* vfs, const std::string& path,
                    const dyndb::Database::Snapshot& snap);
inline Status SaveSnapshot(const std::string& path,
                           const dyndb::Database::Snapshot& snap) {
  return SaveSnapshot(storage::Vfs::Default(), path, snap);
}

/// Convenience: acquires a snapshot of `db` and saves it.
inline Status SaveDatabase(storage::Vfs* vfs, const std::string& path,
                           const dyndb::Database& db) {
  return SaveSnapshot(vfs, path, db.GetSnapshot());
}
inline Status SaveDatabase(const std::string& path, const dyndb::Database& db) {
  return SaveDatabase(storage::Vfs::Default(), path, db);
}

/// Loads a database written by `SaveSnapshot`/`SaveDatabase`. Entry ids
/// are assigned afresh in the stored order.
Result<dyndb::Database> LoadDatabase(storage::Vfs* vfs,
                                     const std::string& path);
inline Result<dyndb::Database> LoadDatabase(const std::string& path) {
  return LoadDatabase(storage::Vfs::Default(), path);
}

/// Persists a snapshot *plus its registered-extent table* — the
/// checkpoint format of the write-ahead durability layer
/// (persist::WalDatabase). Unlike `SaveSnapshot`, the extent
/// declarations are stored (as (name, type) pairs, not their derived
/// membership) so recovery restores them without replaying the whole
/// registration history. Written atomically via the tmp/sync/rename
/// protocol; a crash mid-checkpoint leaves any previous one intact.
Status SaveCheckpoint(storage::Vfs* vfs, const std::string& path,
                      const dyndb::Database::Snapshot& snap);

/// Loads a checkpoint written by `SaveCheckpoint`: extents are
/// re-registered first (cheap, the database is still empty), then the
/// entries are re-inserted in stored order, rebuilding every extent's
/// membership incrementally.
Result<dyndb::Database> LoadCheckpoint(storage::Vfs* vfs,
                                       const std::string& path);

/// A decoded checkpoint, before any database is built from it. Used by
/// persist::Replica for *incremental* bootstrap: a follower that
/// already holds a prefix of the primary's history applies only the
/// checkpoint's suffix (per shard, entries from its own shard size
/// onward; extents it has not registered yet) instead of rebuilding
/// from scratch.
///
/// Checkpoints of a single-shard database use the original (v1) wire
/// format unchanged; a sharded database writes a v2 image that records
/// the shard count and each shard's entry sequence, so ids
/// (`seq*shards + shard`) are reproduced exactly at recovery.
struct CheckpointImage {
  /// Registered extents as (name, declared type), in stored order.
  std::vector<std::pair<std::string, types::Type>> extents;
  /// Shard count of the database that wrote the checkpoint.
  int shards = 1;
  /// Per-shard entries in insertion order: `entries[s][seq]` held id
  /// `seq*shards + s`. For v1 images this is one dense list.
  std::vector<std::vector<dyndb::Dynamic>> entries;

  size_t entry_count() const {
    size_t n = 0;
    for (const auto& shard : entries) n += shard.size();
    return n;
  }
};

/// Decodes a checkpoint file into its image (`LoadCheckpoint` is this
/// plus re-registering/re-inserting into a fresh database).
Result<CheckpointImage> ReadCheckpoint(storage::Vfs* vfs,
                                       const std::string& path);

}  // namespace dbpl::persist

#endif  // DBPL_PERSIST_DATABASE_IO_H_
