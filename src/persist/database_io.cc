#include "persist/database_io.h"

#include "persist/file_util.h"
#include "serial/decoder.h"
#include "serial/encoder.h"

namespace dbpl::persist {
namespace {

/// Marker distinguishing a v2 (sharded) checkpoint from the original
/// format, written where v1 put the extent count. A v1 reader would
/// see an absurd extent count and fail its next decode, never a silent
/// misread; our reader branches on it. Any real extent table is
/// orders of magnitude smaller.
constexpr uint64_t kShardedCheckpointMarker = 0xDB91'5AAD'0000'0002ull;

}  // namespace

Status SaveSnapshot(storage::Vfs* vfs, const std::string& path,
                    const dyndb::Database::Snapshot& snap) {
  ByteBuffer out;
  serial::EncodeHeader(&out);
  out.PutVarint(snap.size());
  snap.ForEachEntry([&](dyndb::Database::EntryId, const dyndb::Dynamic& d) {
    serial::EncodeType(d.type, &out);
    serial::EncodeValue(d.value, &out);
  });
  return WriteFileAtomic(vfs, path, out);
}

Result<dyndb::Database> LoadDatabase(storage::Vfs* vfs,
                                     const std::string& path) {
  DBPL_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(vfs, path));
  ByteReader in(bytes.data(), bytes.size());
  DBPL_RETURN_IF_ERROR(serial::DecodeHeader(&in));
  DBPL_ASSIGN_OR_RETURN(uint64_t count, in.ReadVarint());
  dyndb::Database db;
  for (uint64_t i = 0; i < count; ++i) {
    DBPL_ASSIGN_OR_RETURN(types::Type type, serial::DecodeType(&in));
    DBPL_ASSIGN_OR_RETURN(core::Value value, serial::DecodeValue(&in));
    DBPL_RETURN_IF_ERROR(
        db.Insert(dyndb::Dynamic{std::move(value), std::move(type)}).status());
  }
  if (!in.AtEnd()) return Status::Corruption("trailing bytes in database");
  return db;
}

Status SaveCheckpoint(storage::Vfs* vfs, const std::string& path,
                      const dyndb::Database::Snapshot& snap) {
  ByteBuffer out;
  serial::EncodeHeader(&out);
  const int shards = snap.shards();
  if (shards > 1) {
    out.PutVarint(kShardedCheckpointMarker);
    out.PutVarint(static_cast<uint64_t>(shards));
  }
  const auto extents = snap.Extents();
  out.PutVarint(extents.size());
  for (const auto& [name, type] : extents) {
    out.PutString(name);
    serial::EncodeType(type, &out);
  }
  if (shards == 1) {
    // The original (v1) wire format, bit-for-bit.
    out.PutVarint(snap.size());
    snap.ForEachEntry([&](dyndb::Database::EntryId, const dyndb::Dynamic& d) {
      serial::EncodeType(d.type, &out);
      serial::EncodeValue(d.value, &out);
    });
  } else {
    // v2: each shard's entry sequence in order, so recovery can
    // reproduce every id (`seq*shards + shard`) exactly.
    for (int s = 0; s < shards; ++s) {
      out.PutVarint(snap.shard_size(s));
    }
    snap.ForEachEntry([&](dyndb::Database::EntryId, const dyndb::Dynamic& d) {
      serial::EncodeType(d.type, &out);
      serial::EncodeValue(d.value, &out);
    });
  }
  return WriteFileAtomic(vfs, path, out);
}

Result<CheckpointImage> ReadCheckpoint(storage::Vfs* vfs,
                                       const std::string& path) {
  DBPL_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(vfs, path));
  ByteReader in(bytes.data(), bytes.size());
  DBPL_RETURN_IF_ERROR(serial::DecodeHeader(&in));
  CheckpointImage image;
  DBPL_ASSIGN_OR_RETURN(uint64_t n_extents, in.ReadVarint());
  if (n_extents == kShardedCheckpointMarker) {
    DBPL_ASSIGN_OR_RETURN(uint64_t shards, in.ReadVarint());
    if (shards < 2 ||
        shards > static_cast<uint64_t>(dyndb::Database::kMaxShards)) {
      return Status::Corruption("checkpoint shard count out of range: " +
                                std::to_string(shards));
    }
    image.shards = static_cast<int>(shards);
    DBPL_ASSIGN_OR_RETURN(n_extents, in.ReadVarint());
  }
  image.extents.reserve(n_extents);
  for (uint64_t i = 0; i < n_extents; ++i) {
    DBPL_ASSIGN_OR_RETURN(std::string name, in.ReadString());
    DBPL_ASSIGN_OR_RETURN(types::Type type, serial::DecodeType(&in));
    image.extents.emplace_back(std::move(name), std::move(type));
  }
  image.entries.resize(static_cast<size_t>(image.shards));
  if (image.shards == 1) {
    DBPL_ASSIGN_OR_RETURN(uint64_t count, in.ReadVarint());
    image.entries[0].reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      DBPL_ASSIGN_OR_RETURN(types::Type type, serial::DecodeType(&in));
      DBPL_ASSIGN_OR_RETURN(core::Value value, serial::DecodeValue(&in));
      image.entries[0].push_back(
          dyndb::Dynamic{std::move(value), std::move(type)});
    }
  } else {
    std::vector<uint64_t> counts(static_cast<size_t>(image.shards));
    for (auto& c : counts) {
      DBPL_ASSIGN_OR_RETURN(c, in.ReadVarint());
    }
    // Entries were written in id order: (seq, shard) lexicographic.
    uint64_t max_count = 0;
    for (uint64_t c : counts) max_count = std::max(max_count, c);
    for (size_t s = 0; s < counts.size(); ++s) {
      image.entries[s].reserve(counts[s]);
    }
    for (uint64_t seq = 0; seq < max_count; ++seq) {
      for (size_t s = 0; s < counts.size(); ++s) {
        if (seq >= counts[s]) continue;
        DBPL_ASSIGN_OR_RETURN(types::Type type, serial::DecodeType(&in));
        DBPL_ASSIGN_OR_RETURN(core::Value value, serial::DecodeValue(&in));
        image.entries[s].push_back(
            dyndb::Dynamic{std::move(value), std::move(type)});
      }
    }
  }
  if (!in.AtEnd()) return Status::Corruption("trailing bytes in checkpoint");
  return image;
}

Result<dyndb::Database> LoadCheckpoint(storage::Vfs* vfs,
                                       const std::string& path) {
  DBPL_ASSIGN_OR_RETURN(CheckpointImage image, ReadCheckpoint(vfs, path));
  dyndb::Database db(dyndb::DatabaseOptions{image.shards});
  for (auto& [name, type] : image.extents) {
    DBPL_RETURN_IF_ERROR(db.RegisterExtent(name, std::move(type)));
  }
  const int k = image.shards;
  for (int s = 0; s < k; ++s) {
    for (size_t seq = 0; seq < image.entries[s].size(); ++seq) {
      DBPL_RETURN_IF_ERROR(db.InsertAt(
          static_cast<dyndb::Database::EntryId>(seq) *
                  static_cast<dyndb::Database::EntryId>(k) +
              static_cast<dyndb::Database::EntryId>(s),
          std::move(image.entries[s][seq])));
    }
  }
  return db;
}

}  // namespace dbpl::persist
