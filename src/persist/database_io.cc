#include "persist/database_io.h"

#include "persist/file_util.h"
#include "serial/decoder.h"
#include "serial/encoder.h"

namespace dbpl::persist {

Status SaveSnapshot(storage::Vfs* vfs, const std::string& path,
                    const dyndb::Database::Snapshot& snap) {
  ByteBuffer out;
  serial::EncodeHeader(&out);
  out.PutVarint(snap.size());
  for (dyndb::Database::EntryId id = 0; id < snap.size(); ++id) {
    const dyndb::Dynamic d = *snap.Get(id);
    serial::EncodeType(d.type, &out);
    serial::EncodeValue(d.value, &out);
  }
  return WriteFileAtomic(vfs, path, out);
}

Result<dyndb::Database> LoadDatabase(storage::Vfs* vfs,
                                     const std::string& path) {
  DBPL_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(vfs, path));
  ByteReader in(bytes.data(), bytes.size());
  DBPL_RETURN_IF_ERROR(serial::DecodeHeader(&in));
  DBPL_ASSIGN_OR_RETURN(uint64_t count, in.ReadVarint());
  dyndb::Database db;
  for (uint64_t i = 0; i < count; ++i) {
    DBPL_ASSIGN_OR_RETURN(types::Type type, serial::DecodeType(&in));
    DBPL_ASSIGN_OR_RETURN(core::Value value, serial::DecodeValue(&in));
    db.Insert(dyndb::Dynamic{std::move(value), std::move(type)});
  }
  if (!in.AtEnd()) return Status::Corruption("trailing bytes in database");
  return db;
}

Status SaveCheckpoint(storage::Vfs* vfs, const std::string& path,
                      const dyndb::Database::Snapshot& snap) {
  ByteBuffer out;
  serial::EncodeHeader(&out);
  const auto extents = snap.Extents();
  out.PutVarint(extents.size());
  for (const auto& [name, type] : extents) {
    out.PutString(name);
    serial::EncodeType(type, &out);
  }
  out.PutVarint(snap.size());
  for (dyndb::Database::EntryId id = 0; id < snap.size(); ++id) {
    const dyndb::Dynamic d = *snap.Get(id);
    serial::EncodeType(d.type, &out);
    serial::EncodeValue(d.value, &out);
  }
  return WriteFileAtomic(vfs, path, out);
}

Result<CheckpointImage> ReadCheckpoint(storage::Vfs* vfs,
                                       const std::string& path) {
  DBPL_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(vfs, path));
  ByteReader in(bytes.data(), bytes.size());
  DBPL_RETURN_IF_ERROR(serial::DecodeHeader(&in));
  CheckpointImage image;
  DBPL_ASSIGN_OR_RETURN(uint64_t n_extents, in.ReadVarint());
  image.extents.reserve(n_extents);
  for (uint64_t i = 0; i < n_extents; ++i) {
    DBPL_ASSIGN_OR_RETURN(std::string name, in.ReadString());
    DBPL_ASSIGN_OR_RETURN(types::Type type, serial::DecodeType(&in));
    image.extents.emplace_back(std::move(name), std::move(type));
  }
  DBPL_ASSIGN_OR_RETURN(uint64_t count, in.ReadVarint());
  image.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DBPL_ASSIGN_OR_RETURN(types::Type type, serial::DecodeType(&in));
    DBPL_ASSIGN_OR_RETURN(core::Value value, serial::DecodeValue(&in));
    image.entries.push_back(dyndb::Dynamic{std::move(value), std::move(type)});
  }
  if (!in.AtEnd()) return Status::Corruption("trailing bytes in checkpoint");
  return image;
}

Result<dyndb::Database> LoadCheckpoint(storage::Vfs* vfs,
                                       const std::string& path) {
  DBPL_ASSIGN_OR_RETURN(CheckpointImage image, ReadCheckpoint(vfs, path));
  dyndb::Database db;
  for (auto& [name, type] : image.extents) {
    DBPL_RETURN_IF_ERROR(db.RegisterExtent(name, std::move(type)));
  }
  for (dyndb::Dynamic& d : image.entries) {
    db.Insert(std::move(d));
  }
  return db;
}

}  // namespace dbpl::persist
