#ifndef DBPL_PERSIST_SNAPSHOT_STORE_H_
#define DBPL_PERSIST_SNAPSHOT_STORE_H_

#include <map>
#include <string>

#include "common/result.h"
#include "core/heap.h"
#include "dyndb/dynamic.h"
#include "storage/vfs.h"

namespace dbpl::persist {

/// All-or-nothing persistence: the first of the paper's three models,
/// "commonly used with interactive programming languages" (Lisp/Prolog
/// core images). The entire state — a heap of objects plus a table of
/// named roots — is written as one image and read back as one image.
///
/// The paper's criticisms are reproduced by construction: there is no
/// sharing of values among programs, no separation of stable data from
/// volatile data, and survival depends on the integrity of the whole
/// image (one flipped bit invalidates everything — see the tests).
///
/// Images are written to a temporary file and renamed, so a crash during
/// save leaves the previous image intact.
class SnapshotStore {
 public:
  /// A complete program state: objects plus named entry points.
  struct Image {
    core::Heap heap;
    std::map<std::string, core::Oid> roots;
  };

  /// Serializes the whole image to `path` (atomically), through `vfs`.
  static Status Save(storage::Vfs* vfs, const std::string& path,
                     const core::Heap& heap,
                     const std::map<std::string, core::Oid>& roots);
  static Status Save(const std::string& path, const core::Heap& heap,
                     const std::map<std::string, core::Oid>& roots) {
    return Save(storage::Vfs::Default(), path, heap, roots);
  }

  /// Reads a whole image back.
  static Result<Image> Load(storage::Vfs* vfs, const std::string& path);
  static Result<Image> Load(const std::string& path) {
    return Load(storage::Vfs::Default(), path);
  }

  /// Convenience for single self-describing values (no heap).
  static Status SaveValue(storage::Vfs* vfs, const std::string& path,
                          const dyndb::Dynamic& d);
  static Status SaveValue(const std::string& path, const dyndb::Dynamic& d) {
    return SaveValue(storage::Vfs::Default(), path, d);
  }
  static Result<dyndb::Dynamic> LoadValue(storage::Vfs* vfs,
                                          const std::string& path);
  static Result<dyndb::Dynamic> LoadValue(const std::string& path) {
    return LoadValue(storage::Vfs::Default(), path);
  }
};

}  // namespace dbpl::persist

#endif  // DBPL_PERSIST_SNAPSHOT_STORE_H_
