#include "persist/intrinsic_store.h"

#include <charconv>

#include "common/bytes.h"
#include "persist/schema_compat.h"
#include "serial/decoder.h"
#include "serial/encoder.h"
#include "types/type_of.h"

namespace dbpl::persist {
namespace {

constexpr char kObjectPrefix[] = "o/";
constexpr char kRootPrefix[] = "r/";

std::string ObjectKey(core::Oid oid) {
  return kObjectPrefix + std::to_string(oid);
}

std::string RootKey(const std::string& name) { return kRootPrefix + name; }

std::string EncodeObject(const core::Value& v) {
  ByteBuffer buf;
  serial::EncodeType(types::TypeOf(v), &buf);
  serial::EncodeValue(v, &buf);
  return std::string(reinterpret_cast<const char*>(buf.data()), buf.size());
}

Result<core::Value> DecodeObject(const std::string& bytes) {
  ByteReader in(bytes);
  DBPL_ASSIGN_OR_RETURN(types::Type type, serial::DecodeType(&in));
  (void)type;
  DBPL_ASSIGN_OR_RETURN(core::Value value, serial::DecodeValue(&in));
  if (!in.AtEnd()) return Status::Corruption("trailing bytes in object");
  return value;
}

std::string EncodeRoot(core::Oid oid, const types::Type& type) {
  ByteBuffer buf;
  buf.PutVarint(oid);
  serial::EncodeType(type, &buf);
  return std::string(reinterpret_cast<const char*>(buf.data()), buf.size());
}

Result<std::pair<core::Oid, types::Type>> DecodeRoot(
    const std::string& bytes) {
  ByteReader in(bytes);
  DBPL_ASSIGN_OR_RETURN(uint64_t oid, in.ReadVarint());
  DBPL_ASSIGN_OR_RETURN(types::Type type, serial::DecodeType(&in));
  if (!in.AtEnd()) return Status::Corruption("trailing bytes in root");
  return std::make_pair(core::Oid(oid), std::move(type));
}

}  // namespace

Result<std::unique_ptr<IntrinsicStore>> IntrinsicStore::Open(
    storage::Vfs* vfs, const std::string& path) {
  DBPL_ASSIGN_OR_RETURN(std::unique_ptr<storage::KvStore> kv,
                        storage::KvStore::Open(vfs, path));
  std::unique_ptr<IntrinsicStore> store(new IntrinsicStore(std::move(kv)));
  DBPL_RETURN_IF_ERROR(store->LoadCommitted());
  return store;
}

Status IntrinsicStore::LoadCommitted() {
  for (const std::string& key : kv_->KeysWithPrefix(kObjectPrefix)) {
    uint64_t oid = 0;
    std::string_view digits(key);
    digits.remove_prefix(sizeof(kObjectPrefix) - 1);
    auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), oid);
    if (ec != std::errc() || ptr != digits.data() + digits.size()) {
      return Status::Corruption("malformed object key: " + key);
    }
    DBPL_ASSIGN_OR_RETURN(std::string bytes, kv_->Get(key));
    DBPL_ASSIGN_OR_RETURN(core::Value value, DecodeObject(bytes));
    DBPL_RETURN_IF_ERROR(heap_.AllocateWithOid(oid, value));
    committed_.emplace(oid, std::move(value));
  }
  for (const std::string& key : kv_->KeysWithPrefix(kRootPrefix)) {
    std::string name = key.substr(sizeof(kRootPrefix) - 1);
    DBPL_ASSIGN_OR_RETURN(std::string bytes, kv_->Get(key));
    DBPL_ASSIGN_OR_RETURN(auto root, DecodeRoot(bytes));
    if (!heap_.Contains(root.first)) {
      return Status::Corruption("root '" + name + "' points at missing object");
    }
    roots_[name] = root.first;
    root_types_[name] = root.second;
    committed_roots_[name] = root.first;
    committed_root_types_[name] = root.second;
  }
  return Status::OK();
}

Status IntrinsicStore::SetRoot(const std::string& name, core::Oid oid) {
  return SetRootTyped(name, oid, types::Type::Top());
}

Status IntrinsicStore::SetRootTyped(const std::string& name, core::Oid oid,
                                    types::Type declared) {
  if (!heap_.Contains(oid)) {
    return Status::NotFound("no object with oid " + std::to_string(oid));
  }
  roots_[name] = oid;
  root_types_[name] = std::move(declared);
  return Status::OK();
}

Result<core::Oid> IntrinsicStore::GetRoot(const std::string& name) const {
  auto it = roots_.find(name);
  if (it == roots_.end()) {
    return Status::NotFound("no root named '" + name + "'");
  }
  return it->second;
}

Status IntrinsicStore::RemoveRoot(const std::string& name) {
  if (roots_.erase(name) == 0) {
    return Status::NotFound("no root named '" + name + "'");
  }
  root_types_.erase(name);
  return Status::OK();
}

std::vector<std::string> IntrinsicStore::RootNames() const {
  std::vector<std::string> out;
  out.reserve(roots_.size());
  for (const auto& [name, _] : roots_) out.push_back(name);
  return out;
}

Result<types::Type> IntrinsicStore::RootType(const std::string& name) const {
  if (!roots_.contains(name)) {
    return Status::NotFound("no root named '" + name + "'");
  }
  auto it = root_types_.find(name);
  return it == root_types_.end() ? types::Type::Top() : it->second;
}

Result<core::Oid> IntrinsicStore::OpenRootChecked(
    const std::string& name, const types::Type& requested) {
  DBPL_ASSIGN_OR_RETURN(core::Oid oid, GetRoot(name));
  DBPL_ASSIGN_OR_RETURN(types::Type stored, RootType(name));
  DBPL_ASSIGN_OR_RETURN(types::Type evolved, EvolveSchema(stored, requested));
  root_types_[name] = std::move(evolved);
  return oid;
}

Status IntrinsicStore::Commit() {
  storage::WriteBatch batch;
  // Objects: upserts and deletions relative to the committed snapshot.
  for (core::Oid oid : heap_.Oids()) {
    Result<core::Value> v = heap_.Get(oid);
    if (!v.ok()) return v.status();
    auto it = committed_.find(oid);
    if (it == committed_.end() || !(it->second == *v)) {
      batch.Put(ObjectKey(oid), EncodeObject(*v));
    }
  }
  for (const auto& [oid, _] : committed_) {
    if (!heap_.Contains(oid)) batch.Delete(ObjectKey(oid));
  }
  // Roots.
  for (const auto& [name, oid] : roots_) {
    auto type_it = root_types_.find(name);
    types::Type type =
        type_it == root_types_.end() ? types::Type::Top() : type_it->second;
    auto c = committed_roots_.find(name);
    auto ct = committed_root_types_.find(name);
    bool changed = c == committed_roots_.end() || c->second != oid ||
                   ct == committed_root_types_.end() ||
                   !(ct->second == type);
    if (changed) batch.Put(RootKey(name), EncodeRoot(oid, type));
  }
  for (const auto& [name, _] : committed_roots_) {
    if (!roots_.contains(name)) batch.Delete(RootKey(name));
  }

  DBPL_RETURN_IF_ERROR(kv_->Apply(batch));

  // Refresh the committed snapshot.
  committed_.clear();
  for (core::Oid oid : heap_.Oids()) {
    committed_.emplace(oid, *heap_.Get(oid));
  }
  committed_roots_ = roots_;
  committed_root_types_ = root_types_;
  return Status::OK();
}

bool IntrinsicStore::HasUncommittedChanges() const {
  if (roots_ != committed_roots_) return true;
  if (heap_.size() != committed_.size()) return true;
  for (const auto& [oid, value] : committed_) {
    Result<core::Value> v = heap_.Get(oid);
    if (!v.ok() || !(*v == value)) return true;
  }
  for (const auto& [name, type] : root_types_) {
    auto it = committed_root_types_.find(name);
    if (it == committed_root_types_.end() || !(it->second == type)) {
      return true;
    }
  }
  return false;
}

size_t IntrinsicStore::CollectGarbage() {
  std::vector<core::Oid> root_oids;
  root_oids.reserve(roots_.size());
  for (const auto& [_, oid] : roots_) root_oids.push_back(oid);
  return heap_.CollectGarbage(root_oids);
}

}  // namespace dbpl::persist
