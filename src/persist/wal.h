#ifndef DBPL_PERSIST_WAL_H_
#define DBPL_PERSIST_WAL_H_

#include <string>

#include "common/result.h"
#include "dyndb/database.h"
#include "dyndb/dynamic.h"
#include "storage/log.h"
#include "types/type.h"

namespace dbpl::persist {

/// What a redo record re-does at recovery.
enum class WalOp : uint8_t {
  /// Re-insert one entry (value + carried type, principle P2).
  kInsert = 1,
  /// Re-register one maintained extent (name + declared type).
  kRegisterExtent = 2,
};

/// One redo record of the database write-ahead log. Insert records are
/// *self-describing*: the entry is encoded with serial::EncodeDynamic
/// (format header, type, value), so the type description persists with
/// the value and recovery can never replay bytes under the wrong type.
struct WalRecord {
  WalOp op = WalOp::kInsert;
  /// kInsert: the id the entry held when written. On a sharded
  /// database the id encodes its shard (`seq*shards + shard`), which
  /// is also the segment the record lives in. Recovery uses it to skip
  /// records a checkpoint already covers (sequence below the shard's
  /// checkpointed size), to detect gaps, and to reproduce the entry at
  /// exactly its original id regardless of hash routing.
  /// kRegisterExtent records carry no id; they are logged exactly once,
  /// in shard 0's segment, and re-apply idempotently.
  dyndb::Database::EntryId id = 0;
  /// kInsert: the entry itself.
  dyndb::Dynamic entry;
  /// kRegisterExtent: the extent's name and declared type.
  std::string extent_name;
  types::Type extent_type;
};

/// Packs a redo record into a storage::LogRecord (always a kPut frame;
/// the WAL's own commit markers are plain kCommit frames). The CRC
/// framing, torn-tail detection and commit semantics all come from the
/// underlying storage::Log{Writer,Reader}.
///
/// Thread safety: the codec is stateless (pure functions of their
/// arguments), so it needs no capability annotations. Concurrency on
/// the append path lives entirely in persist::WalDatabase, where the
/// lane mutex guards the LogWriter these records are fed to
/// (DESIGN.md §10).
storage::LogRecord EncodeWalRecord(const WalRecord& record);

/// Unpacks a redo record; Corruption on anything EncodeWalRecord could
/// not have produced (wrong frame type, unknown op, bad payload).
Result<WalRecord> DecodeWalRecord(const storage::LogRecord& record);

}  // namespace dbpl::persist

#endif  // DBPL_PERSIST_WAL_H_
