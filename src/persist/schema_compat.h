#ifndef DBPL_PERSIST_SCHEMA_COMPAT_H_
#define DBPL_PERSIST_SCHEMA_COMPAT_H_

#include <string_view>

#include "common/result.h"
#include "types/type.h"

namespace dbpl::persist {

/// How a requested (program) type relates to a stored (database) type,
/// following the paper's "Persistent Pascal" recompilation discussion.
enum class SchemaCompat {
  /// Types are equivalent: nothing to do.
  kIdentical,
  /// The stored type is a subtype of the requested type: the program
  /// sees a *view* of the database; all requested operations apply.
  kView,
  /// Not a subtype, but a common subtype exists: the program *enriches*
  /// the schema — "provided we never contradict any of our previous
  /// definitions, we can continue to enrich the type of the database".
  kEnrichment,
  /// The types contradict each other; opening must fail.
  kIncompatible,
};

std::string_view SchemaCompatName(SchemaCompat c);

/// Classifies `requested` against `stored`.
SchemaCompat ClassifySchema(const types::Type& stored,
                            const types::Type& requested);

/// The type the database has after opening at `requested`:
///  * kIdentical / kView → the stored type (no information lost);
///  * kEnrichment → the common subtype (stored ⊓ requested);
///  * kIncompatible → `Inconsistent` error.
Result<types::Type> EvolveSchema(const types::Type& stored,
                                 const types::Type& requested);

}  // namespace dbpl::persist

#endif  // DBPL_PERSIST_SCHEMA_COMPAT_H_
