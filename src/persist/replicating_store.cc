#include "persist/replicating_store.h"

#include <algorithm>
#include <map>

#include "persist/file_util.h"
#include "serial/decoder.h"
#include "serial/encoder.h"
#include "types/subtype.h"
#include "types/type_of.h"

namespace dbpl::persist {
namespace {

constexpr char kSuffix[] = ".dbpl";

/// Rebuilds `v` with every Ref oid remapped through `mapping`.
/// Unmapped oids fail (the closure must be complete).
Result<core::Value> RewriteRefs(const core::Value& v,
                                const std::map<core::Oid, core::Oid>& mapping) {
  using core::Value;
  using core::ValueKind;
  switch (v.kind()) {
    case ValueKind::kRef: {
      auto it = mapping.find(v.AsRef());
      if (it == mapping.end()) {
        return Status::Internal("dangling reference during replication: @" +
                                std::to_string(v.AsRef()));
      }
      return Value::Ref(it->second);
    }
    case ValueKind::kRecord: {
      std::vector<core::RecordField> fields;
      fields.reserve(v.fields().size());
      for (const auto& f : v.fields()) {
        DBPL_ASSIGN_OR_RETURN(Value nv, RewriteRefs(f.value, mapping));
        fields.push_back({f.name, std::move(nv)});
      }
      return Value::Record(std::move(fields));
    }
    case ValueKind::kSet:
    case ValueKind::kList: {
      std::vector<Value> elems;
      elems.reserve(v.elements().size());
      for (const auto& e : v.elements()) {
        DBPL_ASSIGN_OR_RETURN(Value ne, RewriteRefs(e, mapping));
        elems.push_back(std::move(ne));
      }
      return v.kind() == ValueKind::kSet ? Value::Set(std::move(elems))
                                         : Value::List(std::move(elems));
    }
    default:
      return v;
  }
}

bool HasRefs(const core::Value& v) {
  std::vector<core::Oid> refs;
  core::CollectRefs(v, &refs);
  return !refs.empty();
}

}  // namespace

Result<std::unique_ptr<ReplicatingStore>> ReplicatingStore::Open(
    storage::Vfs* vfs, const std::string& directory) {
  DBPL_RETURN_IF_ERROR(vfs->CreateDir(directory));
  return std::unique_ptr<ReplicatingStore>(
      new ReplicatingStore(vfs, directory));
}

std::string ReplicatingStore::FilePath(const std::string& handle) const {
  return directory_ + "/" + handle + kSuffix;
}

Status ReplicatingStore::Extern(const std::string& handle,
                                const dyndb::Dynamic& d,
                                const core::Heap* heap) {
  if (handle.empty() || handle.find('/') != std::string::npos) {
    return Status::InvalidArgument("bad handle name: " + handle);
  }
  // Discover the reachable closure and assign file-local ids.
  std::vector<core::Oid> direct;
  core::CollectRefs(d.value, &direct);
  std::vector<core::Oid> closure;
  if (heap != nullptr) {
    closure = heap->ReachableFrom(direct);
  } else if (!direct.empty()) {
    return Status::InvalidArgument(
        "value contains references but no heap was supplied");
  }
  std::map<core::Oid, core::Oid> local_id;
  core::Oid next_local = 1;
  for (core::Oid oid : closure) local_id[oid] = next_local++;

  ByteBuffer out;
  serial::EncodeHeader(&out);
  serial::EncodeType(d.type, &out);
  DBPL_ASSIGN_OR_RETURN(core::Value rewritten, RewriteRefs(d.value, local_id));
  serial::EncodeValue(rewritten, &out);
  out.PutVarint(closure.size());
  for (core::Oid oid : closure) {
    Result<core::Value> obj = heap->Get(oid);
    if (!obj.ok()) return obj.status();
    DBPL_ASSIGN_OR_RETURN(core::Value local_obj, RewriteRefs(*obj, local_id));
    out.PutVarint(local_id[oid]);
    serial::EncodeType(types::TypeOf(*obj), &out);
    serial::EncodeValue(local_obj, &out);
  }
  return WriteFileAtomic(vfs_, FilePath(handle), out);
}

Result<dyndb::Dynamic> ReplicatingStore::Intern(const std::string& handle,
                                                core::Heap* into) {
  Result<std::vector<uint8_t>> bytes = ReadFileBytes(vfs_, FilePath(handle));
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("no such handle: " + handle);
    }
    return bytes.status();
  }
  ByteReader in(bytes->data(), bytes->size());
  DBPL_RETURN_IF_ERROR(serial::DecodeHeader(&in));
  DBPL_ASSIGN_OR_RETURN(types::Type type, serial::DecodeType(&in));
  DBPL_ASSIGN_OR_RETURN(core::Value value, serial::DecodeValue(&in));
  DBPL_ASSIGN_OR_RETURN(uint64_t count, in.ReadVarint());

  struct StoredObject {
    core::Oid local_id;
    core::Value value;
  };
  std::vector<StoredObject> objects;
  objects.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DBPL_ASSIGN_OR_RETURN(uint64_t local, in.ReadVarint());
    DBPL_ASSIGN_OR_RETURN(types::Type obj_type, serial::DecodeType(&in));
    (void)obj_type;
    DBPL_ASSIGN_OR_RETURN(core::Value obj_value, serial::DecodeValue(&in));
    objects.push_back({local, std::move(obj_value)});
  }
  if (!in.AtEnd()) return Status::Corruption("trailing bytes in handle file");

  if (count > 0 && into == nullptr) {
    return Status::InvalidArgument(
        "handle contains objects but no heap was supplied");
  }
  // Allocate a fresh object per stored object (the *copy* semantics),
  // then rewrite references through the fresh mapping.
  std::map<core::Oid, core::Oid> fresh;
  for (const auto& obj : objects) {
    fresh[obj.local_id] = into->Allocate(core::Value::Bottom());
  }
  for (const auto& obj : objects) {
    DBPL_ASSIGN_OR_RETURN(core::Value rewritten,
                          RewriteRefs(obj.value, fresh));
    DBPL_RETURN_IF_ERROR(into->Put(fresh[obj.local_id], std::move(rewritten)));
  }
  if (HasRefs(value) || count > 0) {
    DBPL_ASSIGN_OR_RETURN(value, RewriteRefs(value, fresh));
  }
  return dyndb::Dynamic{std::move(value), std::move(type)};
}

Result<core::Value> ReplicatingStore::InternAs(const std::string& handle,
                                               const types::Type& expected,
                                               core::Heap* into) {
  DBPL_ASSIGN_OR_RETURN(dyndb::Dynamic d, Intern(handle, into));
  return dyndb::Coerce(d, expected);
}

bool ReplicatingStore::HasHandle(const std::string& handle) const {
  return FileExists(vfs_, FilePath(handle));
}

Status ReplicatingStore::Drop(const std::string& handle) {
  if (!HasHandle(handle)) {
    return Status::NotFound("no such handle: " + handle);
  }
  RemoveFileIfExists(vfs_, FilePath(handle));
  return Status::OK();
}

std::vector<std::string> ReplicatingStore::Handles() const {
  std::vector<std::string> out;
  Result<std::vector<std::string>> names = vfs_->ListDir(directory_);
  if (!names.ok()) return out;
  for (const std::string& name : *names) {
    const size_t suffix_len = sizeof(kSuffix) - 1;
    if (name.size() > suffix_len &&
        name.compare(name.size() - suffix_len, suffix_len, kSuffix) == 0) {
      out.push_back(name.substr(0, name.size() - suffix_len));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dbpl::persist
