#ifndef DBPL_PERSIST_REPLICATING_STORE_H_
#define DBPL_PERSIST_REPLICATING_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/heap.h"
#include "dyndb/dynamic.h"
#include "storage/vfs.h"
#include "types/type.h"

namespace dbpl::persist {

/// Replicating persistence: the paper's second model, "controlled by
/// program instructions that move structures in and out of secondary
/// storage" — Amber's `extern`/`intern` with named *handles*.
///
/// Key semantics, reproduced faithfully (and tested):
///  * `extern(handle, dynamic d)` copies d *and everything reachable
///    from it* to secondary storage;
///  * a handle refers to a **copy**: modifications made to an interned
///    structure do not survive a second `intern` unless externed again;
///  * if two externed handles both reach a shared value c, each handle
///    gets its own copy of c — interning both yields two distinct
///    copies, the update-anomaly/wasted-storage problem the paper notes.
///
/// Sharing *within* one handle is preserved: the reachable object graph
/// is serialized once per object with local ids, so diamonds and cycles
/// survive the round trip.
class ReplicatingStore {
 public:
  /// Opens (creating) a store rooted at directory `directory`, with all
  /// I/O through `vfs` (which must outlive the store). Each handle is
  /// one self-describing file `<directory>/<handle>.dbpl`.
  static Result<std::unique_ptr<ReplicatingStore>> Open(
      storage::Vfs* vfs, const std::string& directory);
  /// As above, on the production VFS.
  static Result<std::unique_ptr<ReplicatingStore>> Open(
      const std::string& directory) {
    return Open(storage::Vfs::Default(), directory);
  }

  /// Amber's `extern 'handle' (dynamic d)`. When `heap` is non-null,
  /// every object reachable from d through Ref values is replicated
  /// into the file (with heap oids rewritten to file-local ids).
  Status Extern(const std::string& handle, const dyndb::Dynamic& d,
                const core::Heap* heap = nullptr);

  /// Amber's `intern 'handle'`: reads the handle, allocating *fresh*
  /// objects in `into` for the replicated graph. `into` may be null
  /// only when the stored value contains no references.
  Result<dyndb::Dynamic> Intern(const std::string& handle,
                                core::Heap* into = nullptr);

  /// `coerce (intern 'handle') to T`: interns and coerces in one step,
  /// enforcing the paper's principle that a value cannot be written as
  /// one type and read as another.
  Result<core::Value> InternAs(const std::string& handle,
                               const types::Type& expected,
                               core::Heap* into = nullptr);

  bool HasHandle(const std::string& handle) const;
  Status Drop(const std::string& handle);
  std::vector<std::string> Handles() const;

  const std::string& directory() const { return directory_; }

 private:
  ReplicatingStore(storage::Vfs* vfs, std::string directory)
      : vfs_(vfs), directory_(std::move(directory)) {}

  std::string FilePath(const std::string& handle) const;

  storage::Vfs* vfs_;
  std::string directory_;
};

}  // namespace dbpl::persist

#endif  // DBPL_PERSIST_REPLICATING_STORE_H_
