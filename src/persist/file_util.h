#ifndef DBPL_PERSIST_FILE_UTIL_H_
#define DBPL_PERSIST_FILE_UTIL_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace dbpl::persist {

/// Reads an entire file into memory.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

/// Writes a buffer to `path` atomically: write to `path.tmp`, fsync,
/// rename. A crash mid-save leaves any previous file intact.
Status WriteFileAtomic(const std::string& path, const ByteBuffer& data);

/// Removes a file if it exists (no error when absent).
void RemoveFileIfExists(const std::string& path);

bool FileExists(const std::string& path);

}  // namespace dbpl::persist

#endif  // DBPL_PERSIST_FILE_UTIL_H_
