#ifndef DBPL_PERSIST_FILE_UTIL_H_
#define DBPL_PERSIST_FILE_UTIL_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/vfs.h"

namespace dbpl::persist {

/// Reads an entire file into memory through `vfs`.
Result<std::vector<uint8_t>> ReadFileBytes(storage::Vfs* vfs,
                                           const std::string& path);
inline Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  return ReadFileBytes(storage::Vfs::Default(), path);
}

/// Writes a buffer to `path` atomically: write to `path.tmp`, fsync,
/// rename. A crash mid-save leaves any previous file intact.
Status WriteFileAtomic(storage::Vfs* vfs, const std::string& path,
                       const ByteBuffer& data);
inline Status WriteFileAtomic(const std::string& path, const ByteBuffer& data) {
  return WriteFileAtomic(storage::Vfs::Default(), path, data);
}

/// Removes a file if it exists (no error when absent).
void RemoveFileIfExists(storage::Vfs* vfs, const std::string& path);
inline void RemoveFileIfExists(const std::string& path) {
  RemoveFileIfExists(storage::Vfs::Default(), path);
}

bool FileExists(storage::Vfs* vfs, const std::string& path);
inline bool FileExists(const std::string& path) {
  return FileExists(storage::Vfs::Default(), path);
}

}  // namespace dbpl::persist

#endif  // DBPL_PERSIST_FILE_UTIL_H_
