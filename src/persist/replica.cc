#include "persist/replica.h"

#include <utility>
#include <vector>

#include "persist/database_io.h"
#include "persist/wal.h"

namespace dbpl::persist {

using storage::LogReader;
using storage::LogRecord;
using storage::LogRecordType;
using storage::OpenMode;
using storage::VfsFile;

Status Replica::Attach(WalShipper* shipper, FollowOptions opts) {
  if (shipper == nullptr) {
    return Status::InvalidArgument("Attach requires a shipper");
  }
  Detach();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shipper_ = shipper;
    opts_ = opts;
    bootstrapped_ = false;
    reader_.reset();
    // Synchronous catch-up: after Attach returns OK the follower is at
    // the durable bounds the primary had when we sampled them.
    Status caught_up = PollLocked();
    if (!caught_up.ok()) {
      shipper_ = nullptr;
      reader_.reset();
      return caught_up;
    }
    if (opts_.poll_interval.count() > 0) {
      stop_ = false;
      thread_ = std::thread([this] { Run(); });
    }
  }
  cv_.notify_all();
  return Status::OK();
}

void Replica::Detach() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  std::lock_guard<std::mutex> lock(mu_);
  stop_ = false;
  shipper_ = nullptr;
  reader_.reset();
  bootstrapped_ = false;
}

bool Replica::attached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shipper_ != nullptr;
}

void Replica::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    // Errors here are either transient (a stale handle across a
    // primary crash — the next round's re-bootstrap heals it) or
    // permanent (divergence); keep polling either way and let the
    // counters tell the story. A streaming follower must stay up.
    (void)PollLocked();
    lock.unlock();
    cv_.notify_all();  // wake WaitForEpoch after every round
    lock.lock();
    cv_.wait_for(lock, opts_.poll_interval, [this] { return stop_; });
  }
}

Status Replica::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  Status polled = PollLocked();
  cv_.notify_all();
  return polled;
}

Status Replica::BootstrapLocked(const WalShipper::Bounds& bounds) {
  ++bootstraps_;
  reader_.reset();
  storage::Vfs* vfs = shipper_->vfs();
  if (vfs->Exists(shipper_->checkpoint_path())) {
    DBPL_ASSIGN_OR_RETURN(CheckpointImage image,
                          ReadCheckpoint(vfs, shipper_->checkpoint_path()));
    // Incremental apply. Any complete checkpoint from this primary is
    // an insertion-order prefix of the shared history, so the
    // follower either already covers it (nothing to do) or extends
    // itself with the checkpoint's suffix. Ids align by construction.
    for (auto& [name, type] : image.extents) {
      Status registered = db_.RegisterExtent(name, std::move(type));
      if (registered.ok()) {
        ++applied_.replayed_extents;
      } else if (registered.code() == StatusCode::kAlreadyExists) {
        ++applied_.skipped_records;
      } else {
        return registered;
      }
    }
    for (uint64_t id = db_.size(); id < image.entries.size(); ++id) {
      db_.Insert(std::move(image.entries[id]));
      ++applied_.replayed_inserts;
    }
  }
  // Restart the cursor at the top of the (possibly rotated) log. The
  // log may legitimately not exist yet on a freshly created primary.
  if (vfs->Exists(shipper_->wal_path())) {
    DBPL_ASSIGN_OR_RETURN(reader_, LogReader::Open(vfs, shipper_->wal_path()));
  }
  generation_ = bounds.generation;
  bootstrapped_ = true;
  return Status::OK();
}

Status Replica::PollLocked() {
  if (shipper_ == nullptr) {
    return Status::FailedPrecondition("replica is not attached");
  }
  ++polls_;
  const WalShipper::Bounds bounds = shipper_->ship_bounds();
  if (!bootstrapped_ || bounds.generation != generation_) {
    DBPL_RETURN_IF_ERROR(BootstrapLocked(bounds));
  }
  if (reader_ == nullptr || reader_->offset() >= bounds.durable_bytes) {
    return Status::OK();  // caught up within this generation
  }

  // Tail the log up to exactly the durable bound, buffering decoded
  // batches: nothing is applied until the generation re-check below
  // proves the bytes were read from the generation the bound governs.
  std::vector<std::vector<WalRecord>> ready;
  std::vector<WalRecord> open;
  bool clean = true;
  LogRecord rec;
  while (reader_->offset() < bounds.durable_bytes) {
    Result<bool> has = reader_->Next(&rec);
    if (!has.ok() || !*has) {
      // An I/O error (stale handle across a primary crash), a torn
      // tail, or EOF short of the durable bound. Within a live
      // generation durable bytes are synced and immutable, so any of
      // these means the world changed under us — resync.
      clean = false;
      break;
    }
    if (rec.type == LogRecordType::kCommit) {
      ready.push_back(std::move(open));
      open.clear();
      continue;
    }
    Result<WalRecord> redo = DecodeWalRecord(rec);
    if (!redo.ok()) {
      clean = false;
      break;
    }
    open.push_back(std::move(redo).value());
  }
  // The durable bound is commit-aligned, so a clean read lands the
  // cursor exactly on it with no open batch. Overshoot or a dangling
  // batch means misaligned frames (a rotation raced the read).
  if (clean && (reader_->offset() != bounds.durable_bytes || !open.empty())) {
    clean = false;
  }
  const WalShipper::Bounds after = shipper_->ship_bounds();
  if (!clean || after.generation != generation_) {
    // Discard everything unapplied and start over from the checkpoint
    // next round. The follower stays a committed prefix throughout.
    ++resyncs_;
    bootstrapped_ = false;
    reader_.reset();
    return Status::OK();
  }
  for (std::vector<WalRecord>& batch : ready) {
    DBPL_RETURN_IF_ERROR(ApplyWalBatch(&db_, &batch, &applied_));
    ++batches_;
  }
  return Status::OK();
}

Status Replica::WaitForEpoch(uint64_t epoch,
                             std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(mu_);
  if (shipper_ == nullptr && db_.epoch() < epoch) {
    return Status::FailedPrecondition("replica is not attached");
  }
  const bool streaming = thread_.joinable();
  while (db_.epoch() < epoch) {
    if (streaming) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          db_.epoch() < epoch) {
        return Status::DeadlineExceeded(
            "epoch " + std::to_string(epoch) + " not reached (at " +
            std::to_string(db_.epoch()) + ")");
      }
    } else {
      // Manual mode: drive the shipping rounds ourselves.
      DBPL_RETURN_IF_ERROR(PollLocked());
      if (db_.epoch() >= epoch) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        return Status::DeadlineExceeded(
            "epoch " + std::to_string(epoch) + " not reached (at " +
            std::to_string(db_.epoch()) + ")");
      }
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      lock.lock();
    }
  }
  return Status::OK();
}

ReplicaStats Replica::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ReplicaStats out;
  out.bootstraps = bootstraps_;
  out.polls = polls_;
  out.batches_applied = batches_;
  out.records_applied = applied_.replayed_inserts + applied_.replayed_extents;
  out.records_skipped = applied_.skipped_records;
  out.resyncs = resyncs_;
  return out;
}

Result<std::unique_ptr<WalDatabase>> Replica::PromoteToPrimary(
    storage::Vfs* vfs, const std::string& dir, CommitPolicy policy) {
  Detach();
  DBPL_RETURN_IF_ERROR(vfs->CreateDir(dir));
  // The follower's replicated prefix becomes the durable seed: save it
  // as the checkpoint WalDatabase::Open recovers from, and clear any
  // log left over in the directory (its records belong to a history
  // this promotion supersedes).
  DBPL_RETURN_IF_ERROR(
      SaveCheckpoint(vfs, dir + "/checkpoint.dbpl", db_.GetSnapshot()));
  if (vfs->Exists(dir + "/wal.log")) {
    DBPL_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> truncated,
                          vfs->Open(dir + "/wal.log", OpenMode::kTruncate));
    truncated.reset();
  }
  return WalDatabase::Open(vfs, dir, policy);
}

}  // namespace dbpl::persist
