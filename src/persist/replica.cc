#include "persist/replica.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "persist/database_io.h"
#include "persist/wal.h"

namespace dbpl::persist {
namespace {

/// How long manual-mode WaitForEpoch sleeps between shipping rounds
/// (always clamped to the caller's deadline).
constexpr std::chrono::microseconds kManualPollQuantum{200};

}  // namespace

using dyndb::Database;
using storage::LogReader;
using storage::LogRecord;
using storage::LogRecordType;
using storage::OpenMode;
using storage::VfsFile;

Status Replica::Attach(WalShipper* shipper, FollowOptions opts) {
  if (shipper == nullptr) {
    return Status::InvalidArgument("Attach requires a shipper");
  }
  Detach();
  {
    dbpl::MutexLock lock(&mu_);
    shipper_ = shipper;
    opts_ = opts;
    bootstrapped_ = false;
    readers_.clear();
    same_gen_resyncs_ = 0;
    stale_gen_reported_ = false;
    // Synchronous catch-up: after Attach returns OK the follower is at
    // the durable bounds the primary had when we sampled them.
    Status caught_up = PollLocked();
    if (!caught_up.ok()) {
      shipper_ = nullptr;
      readers_.clear();
      return caught_up;
    }
    if (opts_.poll_interval.count() > 0) {
      stop_ = false;
      thread_ = std::thread([this] { Run(); });
    }
  }
  cv_.NotifyAll();
  return Status::OK();
}

void Replica::Detach() {
  std::thread to_join;
  {
    dbpl::MutexLock lock(&mu_);
    stop_ = true;
    to_join = std::move(thread_);
  }
  cv_.NotifyAll();
  if (to_join.joinable()) to_join.join();
  dbpl::MutexLock lock(&mu_);
  stop_ = false;
  shipper_ = nullptr;
  readers_.clear();
  bootstrapped_ = false;
}

bool Replica::attached() const {
  dbpl::MutexLock lock(&mu_);
  return shipper_ != nullptr;
}

void Replica::Run() {
  mu_.Lock();
  while (!stop_) {
    // Errors here are either transient (a stale handle across a
    // primary crash — the next round's re-bootstrap heals it) or
    // permanent (divergence); keep polling either way and let the
    // counters tell the story. A streaming follower must stay up.
    (void)PollLocked();
    mu_.Unlock();
    cv_.NotifyAll();  // wake WaitForEpoch after every round
    mu_.Lock();
    // Sleep out the poll interval, ending early on stop.
    const auto deadline =
        std::chrono::steady_clock::now() + opts_.poll_interval;
    while (!stop_) {
      if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) break;
    }
  }
  mu_.Unlock();
}

Status Replica::Poll() {
  dbpl::MutexLock lock(&mu_);
  Status polled = PollLocked();
  cv_.NotifyAll();
  return polled;
}

Status Replica::BootstrapLocked(const WalShipper::ShipState& state) {
  ++bootstraps_;
  readers_.clear();
  storage::Vfs* vfs = shipper_->vfs();
  const int k = shipper_->shard_count();
  if (db_.shards() != k) {
    if (db_.epoch() != 0) {
      return Status::FailedPrecondition(
          "follower with replicated state has " +
          std::to_string(db_.shards()) + " shards; primary has " +
          std::to_string(k));
    }
    // An untouched follower adopts the primary's shard geometry.
    db_ = Database(dyndb::DatabaseOptions{k});
  }
  if (vfs->Exists(shipper_->checkpoint_path())) {
    DBPL_ASSIGN_OR_RETURN(CheckpointImage image,
                          ReadCheckpoint(vfs, shipper_->checkpoint_path()));
    if (image.shards != k) {
      return Status::FailedPrecondition(
          "checkpoint has " + std::to_string(image.shards) +
          " shards; shipper has " + std::to_string(k));
    }
    // Incremental apply. Any complete checkpoint from this primary is,
    // per shard, an insertion-order prefix of the shared history, so
    // the follower either already covers a shard (nothing to do) or
    // extends it with the checkpoint's suffix. Ids align by
    // construction.
    for (auto& [name, type] : image.extents) {
      Status registered = db_.RegisterExtent(name, std::move(type));
      if (registered.ok()) {
        ++applied_.replayed_extents;
      } else if (registered.code() == StatusCode::kAlreadyExists) {
        ++applied_.skipped_records;
      } else {
        return registered;
      }
    }
    const Database::Snapshot snap = db_.GetSnapshot();
    for (int s = 0; s < k; ++s) {
      auto& entries = image.entries[static_cast<size_t>(s)];
      for (uint64_t seq = snap.shard_size(s); seq < entries.size(); ++seq) {
        DBPL_RETURN_IF_ERROR(
            db_.InsertAt(seq * static_cast<uint64_t>(k) +
                             static_cast<uint64_t>(s),
                         std::move(entries[static_cast<size_t>(seq)])));
        ++applied_.replayed_inserts;
      }
    }
  }
  // Restart every cursor at the top of its (possibly rotated) segment.
  // A segment may legitimately not exist yet on a fresh primary.
  readers_.resize(static_cast<size_t>(k));
  for (int s = 0; s < k; ++s) {
    if (vfs->Exists(shipper_->wal_path(s))) {
      DBPL_ASSIGN_OR_RETURN(readers_[static_cast<size_t>(s)],
                            LogReader::Open(vfs, shipper_->wal_path(s)));
    }
  }
  generation_ = state.generation;
  bootstrapped_ = true;
  return Status::OK();
}

Status Replica::PollLocked() {
  if (shipper_ == nullptr) {
    return Status::FailedPrecondition("replica is not attached");
  }
  ++polls_;
  const WalShipper::ShipState bounds = shipper_->ship_bounds();
  if (!bootstrapped_ || bounds.generation != generation_) {
    if (bootstrapped_ && bounds.generation != generation_) {
      // A rotation explains whatever went wrong before; the stale
      // tracking starts over with the new generation.
      same_gen_resyncs_ = 0;
      stale_gen_reported_ = false;
    }
    DBPL_RETURN_IF_ERROR(BootstrapLocked(bounds));
  }

  // Tail each segment up to exactly its durable bound, buffering
  // decoded batches: nothing is applied until the generation re-check
  // below proves the bytes were read from the generation the bounds
  // govern.
  const size_t k = bounds.shards.size();
  std::vector<std::vector<std::vector<WalRecord>>> ready(k);
  bool clean = readers_.size() == k;
  for (size_t s = 0; clean && s < k; ++s) {
    LogReader* reader = readers_[s].get();
    const uint64_t durable = bounds.shards[s].durable_bytes;
    if (reader == nullptr) {
      // No segment existed at bootstrap; durable bytes in it now mean
      // the world changed under us.
      if (durable > 0) clean = false;
      continue;
    }
    if (reader->offset() >= durable) continue;  // caught up on this shard
    std::vector<WalRecord> open;
    LogRecord rec;
    while (reader->offset() < durable) {
      Result<bool> has = reader->Next(&rec);
      if (!has.ok() || !*has) {
        // An I/O error (stale handle across a primary crash), a torn
        // tail, or EOF short of the durable bound. Within a live
        // generation durable bytes are synced and immutable, so any of
        // these means the world changed under us — resync.
        clean = false;
        break;
      }
      if (rec.type == LogRecordType::kCommit) {
        ready[s].push_back(std::move(open));
        open.clear();
        continue;
      }
      Result<WalRecord> redo = DecodeWalRecord(rec);
      if (!redo.ok()) {
        clean = false;
        break;
      }
      open.push_back(std::move(redo).value());
    }
    // The durable bound is commit-aligned, so a clean read lands the
    // cursor exactly on it with no open batch. Overshoot or a dangling
    // batch means misaligned frames (a rotation raced the read).
    if (clean && (reader->offset() != durable || !open.empty())) {
      clean = false;
    }
  }
  const WalShipper::ShipState after = shipper_->ship_bounds();
  if (!clean || after.generation != generation_) {
    // Discard everything unapplied and start over from the checkpoint
    // next round. The follower stays a committed prefix throughout.
    ++resyncs_;
    bootstrapped_ = false;
    readers_.clear();
    if (!clean && after.generation == generation_) {
      // The bound was unreadable and no rotation explains it. Once is
      // forgivable (we may have raced a local anomaly); persisting
      // across the fresh bootstrap the previous round scheduled means
      // the shipper's advertised bounds and its segments disagree —
      // say so once rather than resyncing silently forever.
      ++same_gen_resyncs_;
      if (same_gen_resyncs_ >= 2 && !stale_gen_reported_) {
        stale_gen_reported_ = true;
        return Status::FailedPrecondition(
            "shipper bounds unreachable in its segments at unchanged "
            "generation " +
            std::to_string(generation_) +
            " after re-bootstrap (stale or inconsistent shipping state)");
      }
    } else {
      same_gen_resyncs_ = 0;
      stale_gen_reported_ = false;
    }
    return Status::OK();
  }
  same_gen_resyncs_ = 0;
  stale_gen_reported_ = false;
  for (size_t s = 0; s < k; ++s) {
    for (std::vector<WalRecord>& batch : ready[s]) {
      DBPL_RETURN_IF_ERROR(ApplyWalBatch(&db_, &batch, &applied_));
      ++batches_;
    }
  }
  return Status::OK();
}

Status Replica::WaitForEpoch(uint64_t epoch,
                             std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  dbpl::MutexLock lock(&mu_);
  if (shipper_ == nullptr && db_.epoch() < epoch) {
    return Status::FailedPrecondition("replica is not attached");
  }
  const bool streaming = thread_.joinable();
  while (db_.epoch() < epoch) {
    if (streaming) {
      if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout &&
          db_.epoch() < epoch) {
        return Status::DeadlineExceeded(
            "epoch " + std::to_string(epoch) + " not reached (at " +
            std::to_string(db_.epoch()) + ")");
      }
    } else {
      // Manual mode: drive the shipping rounds ourselves, sleeping on
      // cv_ between rounds with the deadline clamped in — so the wait
      // can never overshoot the deadline by a poll quantum, and an
      // external Poll()'s progress signal ends the sleep early.
      DBPL_RETURN_IF_ERROR(PollLocked());
      if (db_.epoch() >= epoch) break;
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        return Status::DeadlineExceeded(
            "epoch " + std::to_string(epoch) + " not reached (at " +
            std::to_string(db_.epoch()) + ")");
      }
      cv_.WaitUntil(mu_, std::min(deadline, now + kManualPollQuantum));
    }
  }
  return Status::OK();
}

ReplicaStats Replica::stats() const {
  dbpl::MutexLock lock(&mu_);
  ReplicaStats out;
  out.bootstraps = bootstraps_;
  out.polls = polls_;
  out.batches_applied = batches_;
  out.records_applied = applied_.replayed_inserts + applied_.replayed_extents;
  out.records_skipped = applied_.skipped_records;
  out.resyncs = resyncs_;
  return out;
}

Result<std::unique_ptr<WalDatabase>> Replica::PromoteToPrimary(
    storage::Vfs* vfs, const std::string& dir, CommitPolicy policy) {
  Detach();
  DBPL_RETURN_IF_ERROR(vfs->CreateDir(dir));
  // The follower's replicated prefix becomes the durable seed: save it
  // as the checkpoint WalDatabase::Open recovers from, and clear any
  // logs left over in the directory (their records belong to a history
  // this promotion supersedes).
  DBPL_RETURN_IF_ERROR(
      SaveCheckpoint(vfs, dir + "/checkpoint.dbpl", db_.GetSnapshot()));
  std::vector<std::string> stale;
  stale.push_back(dir + "/wal.log");
  for (int s = 0; s < Database::kMaxShards; ++s) {
    std::string path = dir + "/wal." + std::to_string(s) + ".log";
    if (!vfs->Exists(path)) break;
    stale.push_back(std::move(path));
  }
  for (const std::string& path : stale) {
    if (!vfs->Exists(path)) continue;
    DBPL_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> truncated,
                          vfs->Open(path, OpenMode::kTruncate));
    truncated.reset();
  }
  return WalDatabase::Open(vfs, dir, WalOptions{policy, db_.shards()});
}

}  // namespace dbpl::persist
