#include "persist/schema_compat.h"

#include "types/lattice.h"
#include "types/subtype.h"

namespace dbpl::persist {

std::string_view SchemaCompatName(SchemaCompat c) {
  switch (c) {
    case SchemaCompat::kIdentical:
      return "Identical";
    case SchemaCompat::kView:
      return "View";
    case SchemaCompat::kEnrichment:
      return "Enrichment";
    case SchemaCompat::kIncompatible:
      return "Incompatible";
  }
  return "Unknown";
}

SchemaCompat ClassifySchema(const types::Type& stored,
                            const types::Type& requested) {
  if (types::TypeEquiv(stored, requested)) return SchemaCompat::kIdentical;
  if (types::IsSubtype(stored, requested)) return SchemaCompat::kView;
  if (types::ConsistentTypes(stored, requested)) {
    return SchemaCompat::kEnrichment;
  }
  return SchemaCompat::kIncompatible;
}

Result<types::Type> EvolveSchema(const types::Type& stored,
                                 const types::Type& requested) {
  switch (ClassifySchema(stored, requested)) {
    case SchemaCompat::kIdentical:
    case SchemaCompat::kView:
      return stored;
    case SchemaCompat::kEnrichment:
      return types::Glb(stored, requested);
    case SchemaCompat::kIncompatible:
      return Status::Inconsistent(
          "stored schema " + stored.ToString() +
          " contradicts requested schema " + requested.ToString());
  }
  return Status::Internal("unreachable schema compatibility");
}

}  // namespace dbpl::persist
