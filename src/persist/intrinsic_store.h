#ifndef DBPL_PERSIST_INTRINSIC_STORE_H_
#define DBPL_PERSIST_INTRINSIC_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/heap.h"
#include "dyndb/dynamic.h"
#include "storage/kv_store.h"
#include "types/type.h"

namespace dbpl::persist {

/// Intrinsic persistence: the paper's third model (PS-algol, GemStone).
/// "Every value in a program is persistent; there is no need physically
/// to retain storage for values for which all reference is lost."
///
/// The store owns a `core::Heap`. Named *handles* (the paper's term)
/// mark root objects; everything reachable from a root persists across
/// `Commit`, with stable oids — no replication, no extern/intern, and
/// sharing is preserved across program runs. Unreachable objects are
/// reclaimed by `CollectGarbage`.
///
/// Durability follows PS-algol's explicit `commit`: between commits the
/// persistent state and the program's heap may diverge; `Commit` writes
/// the delta atomically (via the KV store's write-ahead log), so a crash
/// mid-commit recovers to the previous commit.
///
/// Every stored object carries its type descriptor (principle P2), and
/// roots can be opened with a schema check that implements the paper's
/// recompilation rules (view / enrichment / rejection) — see
/// `OpenRootChecked`.
class IntrinsicStore {
 public:
  /// Opens (creating) a store backed by the log file at `path`,
  /// loading the committed heap and roots. All I/O goes through `vfs`
  /// (which must outlive the store).
  static Result<std::unique_ptr<IntrinsicStore>> Open(storage::Vfs* vfs,
                                                      const std::string& path);
  /// As above, on the production VFS.
  static Result<std::unique_ptr<IntrinsicStore>> Open(
      const std::string& path) {
    return Open(storage::Vfs::Default(), path);
  }

  /// The program-visible heap. Mutations are transient until `Commit`.
  core::Heap& heap() { return heap_; }
  const core::Heap& heap() const { return heap_; }

  /// Binds a root name to an object ("creating this global name is all
  /// that is required to ensure persistence"). Transient until commit.
  Status SetRoot(const std::string& name, core::Oid oid);
  Result<core::Oid> GetRoot(const std::string& name) const;
  Status RemoveRoot(const std::string& name);
  std::vector<std::string> RootNames() const;

  /// Binds a root, recording `declared` as its schema type.
  Status SetRootTyped(const std::string& name, core::Oid oid,
                      types::Type declared);

  /// Opens a root under the paper's recompilation rules: succeeds when
  /// the stored type is a subtype of `requested` (a view) or merely
  /// consistent with it (schema enrichment — the evolved type is
  /// recorded); fails with `Inconsistent` when they contradict.
  Result<core::Oid> OpenRootChecked(const std::string& name,
                                    const types::Type& requested);

  /// The recorded schema type of a root (Top when never declared).
  Result<types::Type> RootType(const std::string& name) const;

  /// Atomically persists the delta since the last commit: changed /
  /// new / deleted objects (with their types) and the root table.
  Status Commit();

  /// True when heap or roots differ from the last committed state.
  bool HasUncommittedChanges() const;

  /// Deletes every object unreachable from the roots (in the heap;
  /// `Commit` then reclaims it in storage too). Returns the count.
  size_t CollectGarbage();

  /// Compacts the underlying log, dropping overwritten history.
  Status CompactStorage() { return kv_->Compact(); }

  /// Statistics for tests and benchmarks.
  const storage::KvStore& kv() const { return *kv_; }
  size_t committed_object_count() const { return committed_.size(); }

 private:
  explicit IntrinsicStore(std::unique_ptr<storage::KvStore> kv)
      : kv_(std::move(kv)) {}

  Status LoadCommitted();

  std::unique_ptr<storage::KvStore> kv_;
  core::Heap heap_;
  std::map<std::string, core::Oid> roots_;
  std::map<std::string, types::Type> root_types_;
  /// Last committed value of each object, for delta computation.
  std::map<core::Oid, core::Value> committed_;
  std::map<std::string, core::Oid> committed_roots_;
  std::map<std::string, types::Type> committed_root_types_;
};

}  // namespace dbpl::persist

#endif  // DBPL_PERSIST_INTRINSIC_STORE_H_
