#include "persist/wal_database.h"

#include <thread>
#include <utility>
#include <vector>

#include "persist/database_io.h"
#include "persist/wal.h"

namespace dbpl::persist {

using dyndb::Database;
using storage::LogReader;
using storage::LogRecord;
using storage::LogRecordType;
using storage::LogWriter;
using storage::OpenMode;
using storage::VfsFile;

Result<std::unique_ptr<WalDatabase>> WalDatabase::Open(
    storage::Vfs* vfs, const std::string& dir, const WalOptions& options) {
  if (options.commit.every_n == 0) {
    return Status::InvalidArgument("CommitPolicy::every_n must be >= 1");
  }
  if (options.shards < 0 || options.shards > Database::kMaxShards) {
    return Status::InvalidArgument(
        "WalOptions::shards must be in [0, " +
        std::to_string(Database::kMaxShards) + "], got " +
        std::to_string(options.shards));
  }
  DBPL_RETURN_IF_ERROR(vfs->CreateDir(dir));
  std::unique_ptr<WalDatabase> wdb(new WalDatabase(vfs, dir, options.commit));
  DBPL_RETURN_IF_ERROR(wdb->Recover(options.shards));
  // Everything recovery kept is on disk by construction, so the whole
  // recovered state is shippable from the start. (ReplaySegment set
  // each lane's committed_bytes to the end of its replayed prefix.)
  const Database::Snapshot snap = wdb->db_.GetSnapshot();
  for (size_t s = 0; s < wdb->lanes_.size(); ++s) {
    Lane& lane = *wdb->lanes_[s];
    dbpl::MutexLock lock(&lane.mu);
    lane.appended_epoch = snap.shard_epoch(static_cast<int>(s));
    lane.committed_epoch = lane.appended_epoch;
    lane.durable_epoch = lane.appended_epoch;
    lane.durable_bytes = lane.committed_bytes;
    DBPL_ASSIGN_OR_RETURN(lane.writer, LogWriter::Open(vfs, lane.path));
  }
  if (wdb->recovery_.corrupt_tail || wdb->recovery_.uncommitted_dropped > 0) {
    // Some segment ends in bytes recovery ignored. Appending behind
    // them would be disastrous: records after a torn frame are
    // unreachable to the reader, and a future commit marker would
    // retroactively commit the dropped uncommitted records. Repair by
    // checkpointing the recovered state and rotating every segment.
    DBPL_RETURN_IF_ERROR(wdb->Checkpoint());
  }
  // Installed only after recovery: replayed inserts must not re-log
  // themselves (the records are already in the logs they came from).
  wdb->db_.SetWriteObserver([w = wdb.get()](const Database::WriteEvent& ev) {
    return w->OnWrite(ev);
  });
  return wdb;
}

WalDatabase::~WalDatabase() {
  (void)Commit();  // best effort: make the tail batches durable
  db_.SetWriteObserver(nullptr);
}

std::string WalDatabase::SegmentPath(int shard, int shards) const {
  if (shards == 1) return dir_ + "/wal.log";
  return dir_ + "/wal." + std::to_string(shard) + ".log";
}

Status ApplyWalBatch(Database* db, std::vector<WalRecord>* batch,
                     WalRecoveryStats* stats) {
  const int k = db->shards();
  // Only this thread inserts while the batch applies, so one snapshot's
  // shard sizes plus local increments track the next expected sequence.
  const Database::Snapshot snap = db->GetSnapshot();
  std::vector<uint64_t> next(static_cast<size_t>(k));
  for (int s = 0; s < k; ++s) {
    next[static_cast<size_t>(s)] = snap.shard_size(s);
  }
  for (WalRecord& rec : *batch) {
    switch (rec.op) {
      case WalOp::kInsert: {
        const int shard = Database::ShardOfId(rec.id, k);
        const uint64_t seq = Database::SeqOfId(rec.id, k);
        uint64_t& have = next[static_cast<size_t>(shard)];
        if (seq < have) {
          // Already covered by the checkpoint (or by the overlap a
          // crash between checkpoint and rotation leaves behind).
          ++stats->skipped_records;
          break;
        }
        if (seq > have) {
          return Status::Corruption(
              "gap in WAL: expected sequence " + std::to_string(have) +
              " of shard " + std::to_string(shard) + ", found id " +
              std::to_string(rec.id) + " (sequence " + std::to_string(seq) +
              ")");
        }
        DBPL_RETURN_IF_ERROR(db->InsertAt(rec.id, std::move(rec.entry)));
        ++have;
        ++stats->replayed_inserts;
        break;
      }
      case WalOp::kRegisterExtent: {
        Status s =
            db->RegisterExtent(rec.extent_name, std::move(rec.extent_type));
        if (s.ok()) {
          ++stats->replayed_extents;
        } else if (s.code() == StatusCode::kAlreadyExists) {
          ++stats->skipped_records;  // checkpoint had it
        } else {
          return s;
        }
        break;
      }
    }
  }
  batch->clear();
  return Status::OK();
}

Status WalDatabase::Recover(int requested_shards) {
  int shards = 1;
  if (vfs_->Exists(checkpoint_path_)) {
    DBPL_ASSIGN_OR_RETURN(db_, LoadCheckpoint(vfs_, checkpoint_path_));
    recovery_.had_checkpoint = true;
    recovery_.checkpoint_entries = db_.size();
    shards = db_.shards();
    if (requested_shards != 0 && requested_shards != shards) {
      return Status::FailedPrecondition(
          "WalOptions::shards = " + std::to_string(requested_shards) +
          " does not match the checkpoint in " + dir_ + " (" +
          std::to_string(shards) + " shards)");
    }
  } else {
    // No checkpoint: the segments on disk are the only witness of the
    // directory's shard geometry (a sharded database that crashed
    // before its first checkpoint leaves wal.<s>.log files behind).
    // Empty segments carry no history, so they witness nothing — a
    // crash during Open's lane creation may leave any prefix of them
    // behind, and reopening with an explicit geometry must still work.
    auto has_bytes = [this](const std::string& path) {
      auto file = vfs_->Open(path, storage::OpenMode::kRead);
      if (!file.ok()) return false;
      Result<uint64_t> size = (*file)->Size();
      return size.ok() && *size > 0;
    };
    int widest = 0;  // 1 + highest wal.<s>.log index present
    bool segment_bytes = false;
    for (int s = 0; s < Database::kMaxShards; ++s) {
      const std::string path = dir_ + "/wal." + std::to_string(s) + ".log";
      if (!vfs_->Exists(path)) continue;
      widest = s + 1;
      segment_bytes = segment_bytes || has_bytes(path);
    }
    const bool legacy_bytes =
        vfs_->Exists(dir_ + "/wal.log") && has_bytes(dir_ + "/wal.log");
    if (requested_shards == 0) {
      shards = widest > 1 ? widest : 1;
    } else {
      shards = requested_shards;
      if ((shards == 1 && segment_bytes) || (shards > 1 && legacy_bytes) ||
          (shards > 1 && segment_bytes && widest != shards)) {
        return Status::FailedPrecondition(
            "WalOptions::shards = " + std::to_string(shards) +
            " does not match the WAL segments in " + dir_);
      }
    }
    if (shards > 1) db_ = Database(dyndb::DatabaseOptions{shards});
  }
  lanes_.clear();
  lanes_.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    auto lane = std::make_unique<Lane>();
    lane->path = SegmentPath(s, shards);
    lanes_.push_back(std::move(lane));
  }
  // Segments are independent histories (inserts never cross shards;
  // registrations live only in shard 0 and re-apply idempotently), so
  // replay order across them cannot change the result.
  for (int s = 0; s < shards; ++s) {
    DBPL_RETURN_IF_ERROR(ReplaySegment(s));
  }
  return Status::OK();
}

Status WalDatabase::ReplaySegment(int shard) {
  Lane& lane = *lanes_[static_cast<size_t>(shard)];
  if (!vfs_->Exists(lane.path)) return Status::OK();
  DBPL_ASSIGN_OR_RETURN(std::unique_ptr<LogReader> reader,
                        LogReader::Open(vfs_, lane.path));
  std::vector<WalRecord> batch;
  LogRecord rec;
  while (true) {
    DBPL_ASSIGN_OR_RETURN(bool has, reader->Next(&rec));
    if (!has) break;
    if (rec.type == LogRecordType::kCommit) {
      DBPL_RETURN_IF_ERROR(ApplyWalBatch(&db_, &batch, &recovery_));
      // The cursor sits just past the marker frame: the end of the
      // committed prefix so far. (Dropped uncommitted/torn bytes
      // follow the *last* marker, so this lands on the final value.)
      // Locked per assignment, never across the batch apply — that
      // re-enters the database writer path, which ranks *below* the
      // lane (shard writer < wal lane).
      {
        dbpl::MutexLock lock(&lane.mu);
        lane.committed_bytes = reader->offset();
      }
      continue;
    }
    DBPL_ASSIGN_OR_RETURN(WalRecord redo, DecodeWalRecord(rec));
    batch.push_back(std::move(redo));
  }
  recovery_.uncommitted_dropped += batch.size();
  if (reader->saw_corrupt_tail()) recovery_.corrupt_tail = true;
  return Status::OK();
}

Status WalDatabase::OnWrite(const Database::WriteEvent& event) {
  // A non-OK return vetoes the mutation: the database rolls it back, so
  // after any failure here memory and log agree at the last consistent
  // point — and stay there, because the poison vetoes everything until
  // Checkpoint() persists the state wholesale and rotates.
  DBPL_RETURN_IF_ERROR(CheckPoisoned());
  WalRecord redo;
  switch (event.kind) {
    case Database::WriteEvent::Kind::kInsert:
      redo.op = WalOp::kInsert;
      redo.id = event.id;
      redo.entry = *event.entry;
      break;
    case Database::WriteEvent::Kind::kRegisterExtent:
      redo.op = WalOp::kRegisterExtent;
      redo.extent_name = *event.extent_name;
      redo.extent_type = *event.extent_type;
      break;
  }
  LogRecord framed = EncodeWalRecord(redo);

  Lane& lane = *lanes_[static_cast<size_t>(event.shard)];
  dbpl::MutexLock lock(&lane.mu);
  if (lane.writer == nullptr) {
    // Only possible after a failed rotation already poisoned the WAL;
    // don't bury the first error under new noise.
    return CheckPoisoned();
  }
  Status appended = lane.writer->Append(framed);
  if (!appended.ok()) {
    Poison(appended);
    return appended;
  }
  lane.appended_epoch = event.epoch;
  ++lane.pending;
  if (lane.pending >= policy_.every_n) {
    Status committed = AppendMarkerLocked(lane);
    if (!committed.ok()) {
      // The record itself stays behind, uncommitted: recovery drops it,
      // matching the rolled-back mutation.
      Poison(committed);
      return committed;
    }
  }
  return Status::OK();
}

Status WalDatabase::AppendMarkerLocked(Lane& lane) {
  DBPL_RETURN_IF_ERROR(
      lane.writer->Append(LogRecord{LogRecordType::kCommit, "", ""}));
  lane.pending = 0;
  lane.committed_bytes = lane.writer->bytes_written();
  lane.committed_epoch = lane.appended_epoch;
  lane.unsynced_commits = true;
  // Stamp the marker into the group-commit sequence; the fetch_add runs
  // under lane.mu, so a GroupSync goal that covers this sequence was
  // read after this critical section became visible.
  commit_seq_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status WalDatabase::GroupSync(uint64_t target) {
  sync_mu_.Lock();
  while (synced_seq_ < target) {
    if (sync_inflight_) {
      // Piggyback: someone else's barrier is running; it either covers
      // us or we retry as leader when it finishes.
      sync_cv_.Wait(sync_mu_);
      continue;
    }
    sync_inflight_ = true;
    const uint64_t goal = commit_seq_.load(std::memory_order_acquire);
    sync_mu_.Unlock();
    Status synced = Status::OK();
    for (auto& lane_ptr : lanes_) {
      Lane& lane = *lane_ptr;
      dbpl::MutexLock lane_lock(&lane.mu);
      if (!lane.unsynced_commits || lane.writer == nullptr) continue;
      synced = lane.writer->Sync();
      if (!synced.ok()) break;
      lane.unsynced_commits = false;
      lane.durable_bytes = lane.committed_bytes;
      lane.durable_epoch = lane.committed_epoch;
    }
    sync_mu_.Lock();
    sync_inflight_ = false;
    if (synced.ok() && goal > synced_seq_) synced_seq_ = goal;
    sync_cv_.NotifyAll();
    if (!synced.ok()) {
      sync_mu_.Unlock();
      Poison(synced);
      return synced;
    }
  }
  sync_mu_.Unlock();
  return Status::OK();
}

Result<Database::EntryId> WalDatabase::Insert(dyndb::Dynamic d) {
  DBPL_ASSIGN_OR_RETURN(Database::EntryId id, db_.Insert(std::move(d)));
  if (policy_.sync) {
    // One barrier covering every marker appended so far — including
    // this insert's, if it closed a batch (the observer ran on this
    // thread, so commit_seq_ already counts it). Runs after
    // publication, under no database or lane mutex.
    DBPL_RETURN_IF_ERROR(
        GroupSync(commit_seq_.load(std::memory_order_acquire)));
  }
  return id;
}

Status WalDatabase::RegisterExtent(const std::string& name, types::Type t) {
  DBPL_RETURN_IF_ERROR(db_.RegisterExtent(name, std::move(t)));
  if (policy_.sync) {
    DBPL_RETURN_IF_ERROR(
        GroupSync(commit_seq_.load(std::memory_order_acquire)));
  }
  return Status::OK();
}

Status WalDatabase::Commit() {
  DBPL_RETURN_IF_ERROR(CheckPoisoned());
  bool any_unsynced = false;
  for (auto& lane_ptr : lanes_) {
    Lane& lane = *lane_ptr;
    dbpl::MutexLock lock(&lane.mu);
    if (lane.writer == nullptr) continue;
    if (lane.pending > 0) {
      Status committed = AppendMarkerLocked(lane);
      if (!committed.ok()) {
        Poison(committed);
        return committed;
      }
    }
    if (lane.unsynced_commits) any_unsynced = true;
  }
  if (!any_unsynced) return Status::OK();  // nothing to make durable
  return GroupSync(commit_seq_.load(std::memory_order_acquire));
}

// The analysis cannot follow the dynamic vector of lane locks this
// holds across the save/rotate protocol, so the body is exempted; the
// lock-rank checker verifies every acquisition (meta < lane < state),
// and the crash matrix + wal/tsan presets exercise the protocol.
Status WalDatabase::Checkpoint() DBPL_NO_THREAD_SAFETY_ANALYSIS {
  dbpl::MutexLock meta(&meta_mu_);
  // Holding every lane keeps the snapshot and the rotation atomic with
  // respect to appends: a writer still inside the observer is queued on
  // its lane before its record lands, so its record and entry both land
  // after the rotation. A writer that already *left* the observer may
  // not have published yet — its record is in the old segment but its
  // entry could still be missing from a snapshot taken right now, and
  // rotating on such a snapshot would lose the record without
  // checkpointing the entry. Wait for publication to catch up with the
  // segments (the window is a few instructions; publication takes only
  // the tiny per-shard publish mutex, and the post-publication sync
  // barrier never touches a snapshot, so this cannot deadlock).
  // Readers never block — the snapshot is immutable.
  std::vector<std::unique_lock<dbpl::Mutex>> lanes;
  lanes.reserve(lanes_.size());
  for (auto& lane : lanes_) lanes.emplace_back(lane->mu);
  const auto caught_up = [&](const Database::Snapshot& s) {
    for (size_t i = 0; i < lanes_.size(); ++i) {
      if (s.shard_epoch(static_cast<int>(i)) < lanes_[i]->appended_epoch) {
        return false;
      }
    }
    return true;
  };
  Database::Snapshot snap = db_.GetSnapshot();
  while (!caught_up(snap)) {
    std::this_thread::yield();
    snap = db_.GetSnapshot();
  }
  DBPL_RETURN_IF_ERROR(SaveCheckpoint(vfs_, checkpoint_path_, snap));
  // The image is durable under its final name: everything the snapshot
  // holds is now recoverable without the old segments, so the shipping
  // state moves to "checkpoint + empty suffixes" *before* rotation is
  // attempted — even if a rotation fails below, followers must not
  // trust old-generation byte offsets against segments in an uncertain
  // state.
  ++generation_;
  for (size_t s = 0; s < lanes_.size(); ++s) {
    Lane& lane = *lanes_[s];
    lane.committed_bytes = 0;
    lane.durable_bytes = 0;
    lane.committed_epoch = snap.shard_epoch(static_cast<int>(s));
    lane.durable_epoch = lane.committed_epoch;
  }
  // Rotate each segment. A crash anywhere in here is still safe: a
  // stale segment only holds records the checkpoint covers, and
  // recovery skips them by id.
  Status rotated = Status::OK();
  for (auto& lane_ptr : lanes_) {
    Lane& lane = *lane_ptr;
    lane.writer.reset();
    Status s = [&]() -> Status {
      DBPL_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> truncated,
                            vfs_->Open(lane.path, OpenMode::kTruncate));
      truncated.reset();
      DBPL_ASSIGN_OR_RETURN(lane.writer, LogWriter::Open(vfs_, lane.path));
      return Status::OK();
    }();
    if (!s.ok()) {
      // Refuse appends until the next successful Checkpoint() (which
      // re-runs every rotation) or a reopen. The poison is set before
      // the best-effort writer reopen, so `lane.writer == nullptr`
      // implies a poisoned WAL and the observer never dereferences
      // null. Remaining lanes keep their old segments — harmless, the
      // checkpoint covers them.
      rotated = s;
      Poison(rotated);
      if (lane.writer == nullptr) {
        Result<std::unique_ptr<LogWriter>> reopened =
            LogWriter::Open(vfs_, lane.path);
        if (reopened.ok()) lane.writer = std::move(reopened).value();
      }
      return rotated;
    }
    lane.pending = 0;
    lane.unsynced_commits = false;
  }
  // Everything in memory is now durable in the checkpoint: a logging
  // failure recorded earlier is healed, and the batch counters restart.
  {
    dbpl::MutexLock status_lock(&status_mu_);
    wal_status_ = Status::OK();
    poisoned_.store(false, std::memory_order_release);
  }
  ++checkpoints_;
  return Status::OK();
}

void WalDatabase::Poison(const Status& status) {
  dbpl::MutexLock lock(&status_mu_);
  if (wal_status_.ok()) wal_status_ = status;  // keep the first error
  poisoned_.store(true, std::memory_order_release);
}

Status WalDatabase::CheckPoisoned() const {
  if (!poisoned_.load(std::memory_order_acquire)) return Status::OK();
  dbpl::MutexLock lock(&status_mu_);
  return wal_status_;
}

Status WalDatabase::wal_status() const {
  dbpl::MutexLock lock(&status_mu_);
  return wal_status_;
}

uint64_t WalDatabase::wal_bytes() const {
  uint64_t total = 0;
  for (const auto& lane_ptr : lanes_) {
    const Lane& lane = *lane_ptr;
    dbpl::MutexLock lock(&lane.mu);
    if (lane.writer != nullptr) total += lane.writer->bytes_written();
  }
  return total;
}

uint64_t WalDatabase::pending_in_batch() const {
  uint64_t total = 0;
  for (const auto& lane_ptr : lanes_) {
    const Lane& lane = *lane_ptr;
    dbpl::MutexLock lock(&lane.mu);
    total += lane.pending;
  }
  return total;
}

uint64_t WalDatabase::checkpoints_taken() const {
  dbpl::MutexLock lock(&meta_mu_);
  return checkpoints_;
}

WalShipper::ShipState WalDatabase::ship_bounds() const {
  // meta_mu_ excludes a concurrent checkpoint, so the generation and
  // the per-shard bounds are one consistent sample (lane mus follow
  // meta_mu_ in the lock order).
  dbpl::MutexLock meta(&meta_mu_);
  ShipState state;
  state.generation = generation_;
  state.shards.reserve(lanes_.size());
  for (const auto& lane_ptr : lanes_) {
    const Lane& lane = *lane_ptr;
    dbpl::MutexLock lock(&lane.mu);
    state.shards.push_back(Bounds{lane.durable_bytes, lane.durable_epoch});
  }
  return state;
}

}  // namespace dbpl::persist
