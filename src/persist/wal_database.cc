#include "persist/wal_database.h"

#include <thread>
#include <utility>
#include <vector>

#include "persist/database_io.h"
#include "persist/wal.h"

namespace dbpl::persist {

using dyndb::Database;
using storage::LogReader;
using storage::LogRecord;
using storage::LogRecordType;
using storage::LogWriter;
using storage::OpenMode;
using storage::VfsFile;

Result<std::unique_ptr<WalDatabase>> WalDatabase::Open(storage::Vfs* vfs,
                                                       const std::string& dir,
                                                       CommitPolicy policy) {
  if (policy.every_n == 0) {
    return Status::InvalidArgument("CommitPolicy::every_n must be >= 1");
  }
  DBPL_RETURN_IF_ERROR(vfs->CreateDir(dir));
  std::unique_ptr<WalDatabase> wdb(new WalDatabase(vfs, dir, policy));
  DBPL_RETURN_IF_ERROR(wdb->Recover());
  // Everything recovery kept is on disk by construction, so the whole
  // recovered state is shippable from the start. (Recover set
  // committed_bytes_ to the end of the replayed prefix.)
  wdb->appended_epoch_ = wdb->db_.epoch();
  wdb->committed_epoch_ = wdb->appended_epoch_;
  wdb->durable_epoch_ = wdb->appended_epoch_;
  wdb->durable_bytes_ = wdb->committed_bytes_;
  DBPL_ASSIGN_OR_RETURN(wdb->writer_, LogWriter::Open(vfs, wdb->wal_path_));
  if (wdb->recovery_.corrupt_tail || wdb->recovery_.uncommitted_dropped > 0) {
    // The log ends in bytes recovery ignored. Appending behind them
    // would be disastrous: records after a torn frame are unreachable
    // to the reader, and a future commit marker would retroactively
    // commit the dropped uncommitted records. Repair by checkpointing
    // the recovered state and rotating to a fresh, clean log.
    DBPL_RETURN_IF_ERROR(wdb->Checkpoint());
  }
  // Installed only after recovery: replayed inserts must not re-log
  // themselves (the records are already in the log they came from).
  wdb->db_.SetWriteObserver(
      [w = wdb.get()](const Database::WriteEvent& ev) { w->OnWrite(ev); });
  return wdb;
}

WalDatabase::~WalDatabase() {
  (void)Commit();  // best effort: make the tail batch durable
  db_.SetWriteObserver(nullptr);
}

Status ApplyWalBatch(Database* db, std::vector<WalRecord>* batch,
                     WalRecoveryStats* stats) {
  for (WalRecord& rec : *batch) {
    switch (rec.op) {
      case WalOp::kInsert: {
        if (rec.id < db->size()) {
          // Already covered by the checkpoint (or by the overlap a
          // crash between checkpoint and rotation leaves behind).
          ++stats->skipped_records;
          break;
        }
        if (rec.id > db->size()) {
          return Status::Corruption(
              "gap in WAL: expected entry id " + std::to_string(db->size()) +
              ", found " + std::to_string(rec.id));
        }
        db->Insert(std::move(rec.entry));
        ++stats->replayed_inserts;
        break;
      }
      case WalOp::kRegisterExtent: {
        Status s = db->RegisterExtent(rec.extent_name,
                                      std::move(rec.extent_type));
        if (s.ok()) {
          ++stats->replayed_extents;
        } else if (s.code() == StatusCode::kAlreadyExists) {
          ++stats->skipped_records;  // checkpoint had it
        } else {
          return s;
        }
        break;
      }
    }
  }
  batch->clear();
  return Status::OK();
}

Status WalDatabase::Recover() {
  if (vfs_->Exists(checkpoint_path_)) {
    DBPL_ASSIGN_OR_RETURN(db_, LoadCheckpoint(vfs_, checkpoint_path_));
    recovery_.had_checkpoint = true;
    recovery_.checkpoint_entries = db_.size();
  }
  if (!vfs_->Exists(wal_path_)) return Status::OK();

  DBPL_ASSIGN_OR_RETURN(std::unique_ptr<LogReader> reader,
                        LogReader::Open(vfs_, wal_path_));
  std::vector<WalRecord> batch;
  LogRecord rec;
  while (true) {
    DBPL_ASSIGN_OR_RETURN(bool has, reader->Next(&rec));
    if (!has) break;
    if (rec.type == LogRecordType::kCommit) {
      DBPL_RETURN_IF_ERROR(ApplyWalBatch(&db_, &batch, &recovery_));
      // The cursor sits just past the marker frame: the end of the
      // committed prefix so far. (Dropped uncommitted/torn bytes
      // follow the *last* marker, so this lands on the final value.)
      committed_bytes_ = reader->offset();
      continue;
    }
    DBPL_ASSIGN_OR_RETURN(WalRecord redo, DecodeWalRecord(rec));
    batch.push_back(std::move(redo));
  }
  recovery_.uncommitted_dropped = batch.size();
  recovery_.corrupt_tail = reader->saw_corrupt_tail();
  return Status::OK();
}

void WalDatabase::OnWrite(const Database::WriteEvent& event) {
  WalRecord redo;
  switch (event.kind) {
    case Database::WriteEvent::Kind::kInsert:
      redo.op = WalOp::kInsert;
      redo.id = event.id;
      redo.entry = *event.entry;
      break;
    case Database::WriteEvent::Kind::kRegisterExtent:
      redo.op = WalOp::kRegisterExtent;
      redo.extent_name = *event.extent_name;
      redo.extent_type = *event.extent_type;
      break;
  }
  LogRecord framed = EncodeWalRecord(redo);

  std::lock_guard<std::mutex> lock(wal_mu_);
  // After a failure the writer is poisoned anyway; don't bury the
  // first error under FailedPrecondition noise. (writer_ can only be
  // null when a failed rotation already set wal_status_.)
  if (!wal_status_.ok() || writer_ == nullptr) return;
  Status appended = writer_->Append(framed);
  if (!appended.ok()) {
    wal_status_ = std::move(appended);
    return;
  }
  appended_epoch_ = event.epoch;
  ++pending_;
  if (pending_ >= policy_.every_n) {
    Status committed = CommitLocked();
    if (!committed.ok()) wal_status_ = std::move(committed);
  }
}

Status WalDatabase::CommitLocked() {
  DBPL_RETURN_IF_ERROR(
      writer_->Append(LogRecord{LogRecordType::kCommit, "", ""}));
  pending_ = 0;
  committed_bytes_ = writer_->bytes_written();
  committed_epoch_ = appended_epoch_;
  if (policy_.sync) {
    DBPL_RETURN_IF_ERROR(writer_->Sync());
    durable_bytes_ = committed_bytes_;
    durable_epoch_ = committed_epoch_;
    return Status::OK();
  }
  unsynced_commits_ = true;
  return Status::OK();
}

Result<Database::EntryId> WalDatabase::Insert(dyndb::Dynamic d) {
  Database::EntryId id = db_.Insert(std::move(d));
  std::lock_guard<std::mutex> lock(wal_mu_);
  DBPL_RETURN_IF_ERROR(wal_status_);
  return id;
}

Status WalDatabase::RegisterExtent(const std::string& name, types::Type t) {
  DBPL_RETURN_IF_ERROR(db_.RegisterExtent(name, std::move(t)));
  std::lock_guard<std::mutex> lock(wal_mu_);
  return wal_status_;
}

Status WalDatabase::Commit() {
  std::lock_guard<std::mutex> lock(wal_mu_);
  DBPL_RETURN_IF_ERROR(wal_status_);
  if (pending_ > 0) {
    DBPL_RETURN_IF_ERROR(
        writer_->Append(LogRecord{LogRecordType::kCommit, "", ""}));
    pending_ = 0;
    committed_bytes_ = writer_->bytes_written();
    committed_epoch_ = appended_epoch_;
  } else if (!unsynced_commits_) {
    return Status::OK();  // nothing to make durable
  }
  Status synced = writer_->Sync();
  if (synced.ok()) {
    unsynced_commits_ = false;
    durable_bytes_ = committed_bytes_;
    durable_epoch_ = committed_epoch_;
  }
  return synced;
}

Status WalDatabase::Checkpoint() {
  std::lock_guard<std::mutex> lock(wal_mu_);
  // Holding wal_mu_ keeps the snapshot and the rotation atomic with
  // respect to appends: a writer still inside the observer is queued
  // on wal_mu_ before its record lands, so its record and entry both
  // land after the rotation. A writer that already *left* the
  // observer may not have published yet — its record is in the old
  // log but its entry could still be missing from a snapshot taken
  // right now, and rotating on such a snapshot would lose the record
  // without checkpointing the entry. Wait for publication to catch up
  // with the log (the window is a few instructions; publication takes
  // only the tiny publish mutex, never wal_mu_, so this cannot
  // deadlock). Readers never block — the snapshot is immutable.
  Database::Snapshot snap = db_.GetSnapshot();
  while (snap.epoch() < appended_epoch_) {
    std::this_thread::yield();
    snap = db_.GetSnapshot();
  }
  DBPL_RETURN_IF_ERROR(SaveCheckpoint(vfs_, checkpoint_path_, snap));
  // The image is durable under its final name: everything the snapshot
  // holds is now recoverable without the old log, so the shipping
  // state moves to "checkpoint + empty suffix" *before* the rotation
  // is attempted — even if rotation fails below, followers must not
  // trust old-generation byte offsets against a log in an uncertain
  // state.
  ++generation_;
  committed_bytes_ = 0;
  durable_bytes_ = 0;
  committed_epoch_ = snap.epoch();
  durable_epoch_ = snap.epoch();

  // The image is durable under its final name; now rotate the log.
  // A crash from here on is still safe: the stale log only holds
  // records the checkpoint covers, and recovery skips them by id.
  writer_.reset();
  Status rotated = [&]() -> Status {
    DBPL_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> truncated,
                          vfs_->Open(wal_path_, OpenMode::kTruncate));
    truncated.reset();
    DBPL_ASSIGN_OR_RETURN(writer_, LogWriter::Open(vfs_, wal_path_));
    return Status::OK();
  }();
  if (!rotated.ok()) {
    // Refuse appends until the next successful Checkpoint() (which
    // re-runs rotation) or a reopen. wal_status_ is set before the
    // best-effort writer reopen, so `writer_ == nullptr` implies a
    // non-OK wal_status_ and the observer never dereferences null.
    wal_status_ = rotated;
    if (writer_ == nullptr) {
      Result<std::unique_ptr<LogWriter>> reopened =
          LogWriter::Open(vfs_, wal_path_);
      if (reopened.ok()) writer_ = std::move(reopened).value();
    }
    return rotated;
  }
  // Everything in memory is now durable in the checkpoint: a log-append
  // failure recorded earlier is healed, and the batch counter restarts.
  pending_ = 0;
  unsynced_commits_ = false;
  wal_status_ = Status::OK();
  ++checkpoints_;
  return Status::OK();
}

Status WalDatabase::wal_status() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return wal_status_;
}

uint64_t WalDatabase::wal_bytes() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return writer_ != nullptr ? writer_->bytes_written() : 0;
}

uint64_t WalDatabase::pending_in_batch() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return pending_;
}

uint64_t WalDatabase::checkpoints_taken() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return checkpoints_;
}

WalShipper::Bounds WalDatabase::ship_bounds() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return Bounds{generation_, durable_bytes_, durable_epoch_};
}

}  // namespace dbpl::persist
