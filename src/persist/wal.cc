#include "persist/wal.h"

#include <utility>

#include "common/bytes.h"
#include "serial/decoder.h"
#include "serial/encoder.h"

namespace dbpl::persist {

storage::LogRecord EncodeWalRecord(const WalRecord& record) {
  ByteBuffer body;
  body.PutU8(static_cast<uint8_t>(record.op));
  switch (record.op) {
    case WalOp::kInsert:
      body.PutVarint(record.id);
      serial::EncodeDynamic(record.entry, &body);
      break;
    case WalOp::kRegisterExtent:
      body.PutString(record.extent_name);
      serial::EncodeHeader(&body);
      serial::EncodeType(record.extent_type, &body);
      break;
  }
  storage::LogRecord out;
  out.type = storage::LogRecordType::kPut;
  out.value.assign(reinterpret_cast<const char*>(body.data()), body.size());
  return out;
}

Result<WalRecord> DecodeWalRecord(const storage::LogRecord& record) {
  if (record.type != storage::LogRecordType::kPut || !record.key.empty()) {
    return Status::Corruption("log frame is not a WAL redo record");
  }
  ByteReader in(record.value);
  DBPL_ASSIGN_OR_RETURN(uint8_t op, in.ReadU8());
  WalRecord out;
  switch (static_cast<WalOp>(op)) {
    case WalOp::kInsert: {
      out.op = WalOp::kInsert;
      DBPL_ASSIGN_OR_RETURN(out.id, in.ReadVarint());
      DBPL_ASSIGN_OR_RETURN(out.entry, serial::DecodeDynamic(&in));
      break;
    }
    case WalOp::kRegisterExtent: {
      out.op = WalOp::kRegisterExtent;
      DBPL_ASSIGN_OR_RETURN(out.extent_name, in.ReadString());
      DBPL_RETURN_IF_ERROR(serial::DecodeHeader(&in));
      DBPL_ASSIGN_OR_RETURN(out.extent_type, serial::DecodeType(&in));
      break;
    }
    default:
      return Status::Corruption("unknown WAL op " + std::to_string(op));
  }
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes in WAL redo record");
  }
  return out;
}

}  // namespace dbpl::persist
