#ifndef DBPL_DYNDB_DYNAMIC_H_
#define DBPL_DYNDB_DYNAMIC_H_

#include <string>

#include "common/result.h"
#include "core/value.h"
#include "types/type.h"

namespace dbpl::dyndb {

/// Amber's `Dynamic`: a value that "carries around both a value and a
/// type". Ordinary values are made dynamic with `MakeDynamic` and
/// coerced back with `Coerce`, exactly as in the paper's example:
///
///   let d = dynamic 3;
///   let i = coerce d to Int;      -- i = 3
///   let s = coerce d to String;   -- run-time type error
struct Dynamic {
  core::Value value;
  types::Type type;

  bool operator==(const Dynamic& other) const {
    return value == other.value && type == other.type;
  }
  std::string ToString() const;
};

/// Wraps a value with its principal structural type (Amber's `dynamic`
/// operator composed with `typeOf`).
Dynamic MakeDynamic(core::Value v);

/// Wraps a value with a declared type; fails with TypeError unless the
/// value's principal type is a subtype of the declaration.
Result<Dynamic> MakeDynamicAs(core::Value v, types::Type declared);

/// Amber's `typeOf`: the type carried by a dynamic value.
inline const types::Type& TypeOfDynamic(const Dynamic& d) { return d.type; }

/// Amber's `coerce d to T`: succeeds iff the carried type is a subtype
/// of the target (the static type the program will see), failing with
/// TypeError otherwise.
Result<core::Value> Coerce(const Dynamic& d, const types::Type& target);

/// Packs a dynamic value as an existential package of type
/// `∃t ≤ bound. t` — the element type of the paper's generic `Get`.
/// Fails with TypeError unless the carried type is a subtype of `bound`.
Result<Dynamic> Seal(const Dynamic& d, const types::Type& bound);

}  // namespace dbpl::dyndb

#endif  // DBPL_DYNDB_DYNAMIC_H_
