#ifndef DBPL_DYNDB_DATABASE_H_
#define DBPL_DYNDB_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/grelation.h"
#include "dyndb/dynamic.h"
#include "types/type.h"

namespace dbpl::dyndb {

/// Tuning knobs for the Get strategies.
struct GetOptions {
  /// Number of worker threads to shard the scan across (via
  /// core::ParallelFor — the same machinery as core::JoinOptions).
  /// 1 (the default) runs inline on the calling thread. Shards are
  /// independent and results are concatenated in shard order, so
  /// threading changes only wall-clock time, never the result.
  int threads = 1;
};

/// Construction-time knobs for a Database.
struct DatabaseOptions {
  /// Number of writer shards the entry log is partitioned into.
  /// 1 (the default) reproduces the single-writer database exactly:
  /// one writer mutex, dense entry ids 0,1,2,…. With K > 1 writers
  /// hash-route to K independent shards — each with its own writer
  /// mutex, chunked entry log and epoch — and inserts to different
  /// shards proceed in parallel. Every read API is shard-oblivious:
  /// a Snapshot is a composite of per-shard pins and Get*/joins see
  /// one consistent image regardless of K. Must be in
  /// [1, Database::kMaxShards]; fixed for the database's lifetime.
  int shards = 1;
};

/// A heterogeneous database: "a list of dynamic values", as the paper
/// constructs in Amber. Anything can be inserted — the database is
/// deliberately unconstrained — and extents are *derived* from the type
/// hierarchy by the generic
///
///   Get : ∀t. Database → List[∃t' ≤ t. t']
///
/// rather than being stored per class. The class hierarchy is thereby
/// derived from the type hierarchy: `T ≤ U` implies
/// `Get(T) ⊆ Get(U)` for every database.
///
/// Three implementations of Get are provided, matching the efficiency
/// discussion in the paper (experiment E2):
///  * `GetScan` — "traverse the whole database ... with the overhead of
///    having to check the structure of each value we encounter";
///  * `GetViaExtent` — "keep a set of (statically) typed lists", i.e.
///    maintained extents, which cost bookkeeping on every insert and
///    must be declared in advance for each type of interest;
///  * `GetViaIndex` — a middle road this library adds: values are
///    grouped by their *principal* type, so a Get performs one subtype
///    check per distinct principal type instead of one per value.
///
/// ## Concurrency model (sharded snapshot isolation)
///
/// The database is safe under any number of concurrent readers and
/// writers. The entry log is partitioned into `DatabaseOptions::shards`
/// independent shards (default 1). Writers hash-route on the inserted
/// value — the same value-content hash the signature-partitioned join
/// engine buckets by — serialize per shard on that shard's writer
/// mutex, and publish each change as a new immutable per-shard state
/// swapped in with one pointer swap under a tiny per-shard publication
/// mutex. Writers to different shards never contend.
///
/// Readers call `GetSnapshot()` — one shared_ptr copy per shard under
/// those same tiny mutexes, never blocking on any writer's actual
/// work — and then query a frozen, prefix-consistent composite image
/// entirely lock-free: no torn values, no half-registered extents, and
/// `T ≤ U ⇒ Get(T) ⊆ Get(U)` holds exactly within one snapshot.
/// Per-shard prefix consistency is exact: each pinned shard state is a
/// prefix of that shard's insertion history. Cross-shard, extent
/// registrations are made atomic by a registration seqlock: a snapshot
/// never observes an extent on some shards but not others.
///
/// The locking discipline (which mutex guards what, and the global
/// acquisition order) is stated in Clang capability annotations on the
/// implementation (database.cc) and enforced two ways: statically by
/// the `analyze` preset's -Wthread-safety build, and dynamically by
/// the lock-rank checker in common/mutex.h. DESIGN.md §10 is the
/// reference; the short form of the order is
/// shard writer < registration seqlock < state publication.
///
/// ## Entry ids
///
/// With K shards, entry ids encode their shard: an entry is the
/// `seq`-th insert into shard `s` and has id `seq*K + s` (so for K = 1
/// ids are the dense insertion sequence 0,1,2,… exactly as before).
/// Ids are stable, unique, and strictly increasing per shard; `Get(id)`
/// is O(1) either way. Cross-shard insertion interleaving is not
/// recorded — enumeration order (`Entries`, `GetScan`, …) is id order,
/// which is insertion order per shard.
///
/// Reclamation is epoch-style via reference counts: every snapshot pins
/// the per-shard states (and, transitively, the entry storage) it was
/// taken from; memory is reclaimed when the last snapshot of an epoch
/// is dropped. Each shard state carries a monotonically increasing
/// mutation count; `epoch()` is their sum.
///
/// The convenience query methods on `Database` itself acquire a fresh
/// snapshot per call; a multi-step read (e.g. a scan followed by a
/// join, or a save to disk) should hold one `Snapshot` across the
/// steps.
class Database {
 public:
  /// Identifier of an inserted value: `seq*shards + shard` (for the
  /// default single shard: insertion order, starting at 0).
  using EntryId = uint64_t;

  /// Upper bound on DatabaseOptions::shards.
  static constexpr int kMaxShards = 64;

  /// The shard an id belongs to / its insertion sequence within it.
  static int ShardOfId(EntryId id, int shards) {
    return static_cast<int>(id % static_cast<EntryId>(shards));
  }
  static EntryId SeqOfId(EntryId id, int shards) {
    return id / static_cast<EntryId>(shards);
  }

  /// A frozen, prefix-consistent image of the database: for each shard,
  /// the first `shard_size(s)` entries ever inserted into it, the
  /// extents registered at acquisition time, and the principal-type
  /// index — all immutable. Cheap to copy (one shared pointer per
  /// shard); safe to share across threads; pins its storage for as long
  /// as it lives.
  class Snapshot {
   public:
    /// The immutable published state of one shard. Opaque (defined in
    /// database.cc); public only so implementation helpers can name it.
    struct State;

    /// Number of entries visible in this snapshot (all shards).
    size_t size() const;
    /// Total mutation count this snapshot pinned: the sum of the
    /// per-shard epochs (0 = empty database). Each insert increments
    /// one shard's epoch; each extent registration increments every
    /// shard's. Monotone across snapshots of one database.
    uint64_t epoch() const;

    /// Shard geometry of the database this snapshot came from.
    int shards() const;
    /// Entries visible in shard `s` (ids `seq*shards + s`, seq below
    /// this).
    size_t shard_size(int shard) const;
    /// Mutations applied to shard `s` when this snapshot was taken.
    uint64_t shard_epoch(int shard) const;

    /// Entry by id (ids whose shard sequence is below that shard's
    /// `shard_size` always resolve).
    Result<Dynamic> Get(EntryId id) const;

    /// All visible entries, in id order (insertion order per shard).
    std::vector<Dynamic> Entries() const;

    /// Visits every visible entry in id order without materializing a
    /// copy — the iteration primitive persistence and checkpointing
    /// build on.
    void ForEachEntry(
        const std::function<void(EntryId, const Dynamic&)>& fn) const;

    /// Strategy 1: full scan with a subtype check per value.
    std::vector<core::Value> GetScan(const types::Type& t,
                                     const GetOptions& opts = {}) const;

    /// Strategy 2: read a maintained extent. Fails with NotFound unless
    /// an extent was registered (before this snapshot was taken) for a
    /// type *equivalent* to `t` — lookup is equivalence-normalizing: an
    /// exact syntactic hit is O(log #extents), and otherwise every
    /// extent is compared with `types::TypeEquiv`, so alpha-variants
    /// and μ-unfoldings of a registered type are found regardless of
    /// registration order.
    Result<std::vector<core::Value>> GetViaExtent(const types::Type& t) const;

    /// Strategy 3: principal-type index; one subtype check per distinct
    /// principal type present in the database.
    std::vector<core::Value> GetViaIndex(const types::Type& t,
                                         const GetOptions& opts = {}) const;

    /// Like GetScan, but returns existential packages of type
    /// `∃t' ≤ t. t'` — the precise result type of the paper's Get.
    std::vector<Dynamic> GetPackages(const types::Type& t) const;

    /// The extent of `t` as a generalized relation (see
    /// Database::GetRelation).
    core::GRelation GetRelation(const types::Type& t) const;

    /// `Get(t1) ⋈ Get(t2)` — both extents derived from this one
    /// consistent image.
    Result<core::GRelation> JoinExtents(const types::Type& t1,
                                        const types::Type& t2,
                                        const core::JoinOptions& opts = {})
        const;

    /// Names of extents registered when the snapshot was taken.
    std::vector<std::string> ExtentNames() const;

    /// Registered extents visible in this snapshot as (name, declared
    /// type) pairs, sorted by name. Membership is *derived* state and
    /// deliberately not included: re-registering the same (name, type)
    /// pairs on another database reproduces it (the checkpoint
    /// plumbing in persist/database_io relies on this).
    std::vector<std::pair<std::string, types::Type>> Extents() const;

    /// Number of distinct principal types indexed in this snapshot.
    size_t DistinctTypeCount() const;

   private:
    friend class Database;
    Snapshot(std::shared_ptr<const State> single,
             std::vector<std::shared_ptr<const State>> multi)
        : single_(std::move(single)), multi_(std::move(multi)) {}
    /// K == 1 keeps the snapshot a single pointer (no heap allocation
    /// on the hot GetSnapshot path); K > 1 pins one state per shard.
    std::shared_ptr<const State> single_;
    std::vector<std::shared_ptr<const State>> multi_;

    const State& shard(int s) const;
  };

  Database();
  /// A database with `opts.shards` writer shards. Aborts on an
  /// out-of-range shard count (it is a static configuration error, not
  /// a runtime condition).
  explicit Database(const DatabaseOptions& opts);

  /// Movable but not copyable (writers own the publication mutexes). A
  /// moved-from database must not be used again.
  Database(Database&&) noexcept = default;
  Database& operator=(Database&&) noexcept = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Number of writer shards (fixed at construction).
  int shards() const;

  /// Acquires the current snapshot: one shared_ptr copy per shard under
  /// the publication mutexes. Never waits for a writer's copy-on-write
  /// work, never observes a partial insert or a half-registered extent.
  Snapshot GetSnapshot() const;

  /// Inserts a dynamic value and updates every registered extent,
  /// atomically: no snapshot ever sees the entry without its index and
  /// extent postings. The entry is hash-routed to a shard; writers to
  /// the same shard serialize on that shard's mutex.
  ///
  /// Fails only when a write observer rejects the mutation (e.g. the
  /// write-ahead log could not append the redo record) — the insert is
  /// then *rolled back*: nothing is published, no id is consumed, and
  /// the error is the observer's. Without an observer, Insert cannot
  /// fail.
  Result<EntryId> Insert(Dynamic d);

  /// Convenience: wraps and inserts a plain value.
  Result<EntryId> InsertValue(core::Value v) {
    return Insert(MakeDynamic(std::move(v)));
  }

  /// Infallible inserts for databases without a fallible observer
  /// (aborts if the observer rejects — use the Result-returning
  /// variants on observed databases).
  EntryId MustInsert(Dynamic d);
  EntryId MustInsertValue(core::Value v) {
    return MustInsert(MakeDynamic(std::move(v)));
  }

  /// Replay-path insert: places the entry at exactly `id`, which must
  /// be the next sequence of its encoded shard (kFailedPrecondition
  /// otherwise). This is how WAL recovery and replica bootstrap
  /// reproduce a logged history id-for-id without depending on the
  /// router: the id, not the hash, picks the shard. Fails like Insert
  /// when an observer rejects.
  Status InsertAt(EntryId id, Dynamic d);

  /// Declares a maintained extent for `t` on every shard; entries
  /// visible at registration are indexed immediately (one scan), later
  /// inserts incrementally. Takes all shard writer mutexes — snapshots
  /// never observe a partially registered extent. Fails with
  /// AlreadyExists when `name` is taken, or with the observer's error
  /// (nothing registered) when the observer rejects.
  Status RegisterExtent(const std::string& name, types::Type t);

  /// One mutation on the writer path, delivered to the write observer.
  /// The pointers alias writer-owned storage and are valid only for
  /// the duration of the callback — copy what must outlive it.
  struct WriteEvent {
    enum class Kind : uint8_t { kInsert, kRegisterExtent };
    Kind kind = Kind::kInsert;
    /// The shard this mutation lands in (kRegisterExtent mutates every
    /// shard but is *attributed* to shard 0, where its redo record is
    /// logged).
    int shard = 0;
    /// The epoch of `shard` this mutation publishes.
    uint64_t epoch = 0;
    /// kInsert: the new entry's id and its self-describing value.
    EntryId id = 0;
    const Dynamic* entry = nullptr;
    /// kRegisterExtent: the extent's name and declared type.
    const std::string* extent_name = nullptr;
    const types::Type* extent_type = nullptr;
  };
  using WriteObserver = std::function<Status(const WriteEvent&)>;

  /// Installs (or, with nullptr, clears) the single write observer.
  /// The observer is invoked on the writer thread, under the mutated
  /// shard's writer mutex, *before* the mutation is applied or
  /// published — so observers see each shard's mutations in exactly
  /// that shard's serialization order, and a write-ahead log that
  /// appends in the callback is never behind the published state (see
  /// persist::WalDatabase). A non-OK return vetoes the mutation: the
  /// writer rolls back (nothing is published, memory never diverges
  /// from the log) and the error surfaces to the caller. The observer
  /// must not call back into this database's write path (deadlock) and
  /// should be fast: every writer to that shard pays its cost. Readers
  /// are unaffected.
  void SetWriteObserver(WriteObserver observer);

  // -------------------------------------------------------------------
  // Convenience queries: each acquires a fresh snapshot per call. All
  // are safe to call concurrently with Insert/RegisterExtent.
  // -------------------------------------------------------------------

  size_t size() const { return GetSnapshot().size(); }

  /// The current total mutation count: 0 for an empty database, +1 per
  /// insert, +shards() per extent registration (one per shard it
  /// mutates). Two databases with the same shard count that applied
  /// the same mutations (in any serialization) are at the same epoch,
  /// which is what makes the epoch the staleness measure of WAL
  /// shipping: a replica at epoch e has applied exactly the mutations
  /// its primary had published at epoch e (see persist::Replica).
  uint64_t epoch() const { return GetSnapshot().epoch(); }

  /// All entries, in id order (a point-in-time copy).
  std::vector<Dynamic> entries() const { return GetSnapshot().Entries(); }

  /// Entry by id.
  Result<Dynamic> Get(EntryId id) const { return GetSnapshot().Get(id); }

  /// Strategy 1: full scan with a subtype check per value.
  std::vector<core::Value> GetScan(const types::Type& t,
                                   const GetOptions& opts = {}) const {
    return GetSnapshot().GetScan(t, opts);
  }

  /// Strategy 2: read a maintained extent (see Snapshot::GetViaExtent).
  Result<std::vector<core::Value>> GetViaExtent(const types::Type& t) const {
    return GetSnapshot().GetViaExtent(t);
  }

  /// Strategy 3: principal-type index.
  std::vector<core::Value> GetViaIndex(const types::Type& t,
                                       const GetOptions& opts = {}) const {
    return GetSnapshot().GetViaIndex(t, opts);
  }

  /// Existential packages of type `∃t' ≤ t. t'` (the paper's Get).
  std::vector<Dynamic> GetPackages(const types::Type& t) const {
    return GetSnapshot().GetPackages(t);
  }

  /// The extent of `t` as a generalized relation: the values `GetViaIndex`
  /// yields, admitted under the subsumption rule (so a value refining
  /// another collapses onto it). This is the bridge from the paper's
  /// derived extents to its Figure 1 algebra.
  core::GRelation GetRelation(const types::Type& t) const {
    return GetSnapshot().GetRelation(t);
  }

  /// The generalized natural join of two derived extents,
  /// `Get(t1) ⋈ Get(t2)`, computed with the signature-partitioned fast
  /// path of core::GRelation::Join — both extents taken from one
  /// snapshot, so the join is over a single consistent image.
  Result<core::GRelation> JoinExtents(const types::Type& t1,
                                      const types::Type& t2,
                                      const core::JoinOptions& opts = {}) const {
    return GetSnapshot().JoinExtents(t1, t2, opts);
  }

  /// Names of registered extents.
  std::vector<std::string> ExtentNames() const {
    return GetSnapshot().ExtentNames();
  }

  /// Number of distinct principal types currently indexed.
  size_t DistinctTypeCount() const { return GetSnapshot().DistinctTypeCount(); }

 private:
  /// Writer-side shared core, held by pointer so Database stays movable
  /// (mutexes and atomics are not).
  struct Core;

  /// The guts of Insert/InsertAt: `shard` chosen by router or id.
  Result<EntryId> InsertIntoShard(int shard, Dynamic d, const EntryId* at);

  std::shared_ptr<Core> core_;
};

}  // namespace dbpl::dyndb

#endif  // DBPL_DYNDB_DATABASE_H_
