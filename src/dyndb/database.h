#ifndef DBPL_DYNDB_DATABASE_H_
#define DBPL_DYNDB_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/grelation.h"
#include "dyndb/dynamic.h"
#include "types/type.h"

namespace dbpl::dyndb {

/// Tuning knobs for the Get strategies.
struct GetOptions {
  /// Number of worker threads to shard the scan across (via
  /// core::ParallelFor — the same machinery as core::JoinOptions).
  /// 1 (the default) runs inline on the calling thread. Shards are
  /// independent and results are concatenated in shard order, so
  /// threading changes only wall-clock time, never the result.
  int threads = 1;
};

/// A heterogeneous database: "a list of dynamic values", as the paper
/// constructs in Amber. Anything can be inserted — the database is
/// deliberately unconstrained — and extents are *derived* from the type
/// hierarchy by the generic
///
///   Get : ∀t. Database → List[∃t' ≤ t. t']
///
/// rather than being stored per class. The class hierarchy is thereby
/// derived from the type hierarchy: `T ≤ U` implies
/// `Get(T) ⊆ Get(U)` for every database.
///
/// Three implementations of Get are provided, matching the efficiency
/// discussion in the paper (experiment E2):
///  * `GetScan` — "traverse the whole database ... with the overhead of
///    having to check the structure of each value we encounter";
///  * `GetViaExtent` — "keep a set of (statically) typed lists", i.e.
///    maintained extents, which cost bookkeeping on every insert and
///    must be declared in advance for each type of interest;
///  * `GetViaIndex` — a middle road this library adds: values are
///    grouped by their *principal* type, so a Get performs one subtype
///    check per distinct principal type instead of one per value.
///
/// ## Concurrency model (snapshot isolation)
///
/// The database is safe under any number of concurrent readers and
/// writers. Writers serialize on a writer mutex and publish each change
/// as a new immutable `State` (a copy-on-write of the index spines over
/// shared append-only storage), swapped in with one pointer swap under
/// a tiny publication mutex. Readers call `GetSnapshot()` — a
/// constant-time shared_ptr copy under that same tiny mutex, never
/// blocking on any writer's actual work — and then query a frozen,
/// prefix-consistent image of the database entirely lock-free: no torn
/// values, no half-registered extents, and `T ≤ U ⇒ Get(T) ⊆ Get(U)`
/// holds exactly within one snapshot.
///
/// Reclamation is epoch-style via reference counts: every snapshot pins
/// the `State` (and, transitively, the entry storage) it was taken
/// from, so a long-running scan keeps its epoch alive while newer
/// epochs supersede it; memory is reclaimed when the last snapshot of
/// an epoch is dropped. Each published state carries a monotonically
/// increasing `epoch()` for observability.
///
/// The convenience query methods on `Database` itself acquire a fresh
/// snapshot per call; a multi-step read (e.g. a scan followed by a
/// join, or a save to disk) should hold one `Snapshot` across the
/// steps.
class Database {
 public:
  /// Identifier of an inserted value (insertion order, starting at 0).
  using EntryId = uint64_t;

  /// A frozen, prefix-consistent image of the database: the first
  /// `size()` entries ever inserted, the extents registered at
  /// acquisition time, and the principal-type index — all immutable.
  /// Cheap to copy (one shared pointer); safe to share across threads;
  /// pins its storage for as long as it lives.
  class Snapshot {
   public:
    /// The immutable published state a snapshot pins. Opaque (defined
    /// in database.cc); public only so implementation helpers can name
    /// it.
    struct State;

    /// Number of entries visible in this snapshot.
    size_t size() const;
    /// The publication epoch this snapshot pinned (0 = empty database;
    /// each insert / extent registration increments it).
    uint64_t epoch() const;

    /// Entry by id (ids below `size()` always resolve).
    Result<Dynamic> Get(EntryId id) const;

    /// All visible entries, in insertion order.
    std::vector<Dynamic> Entries() const;

    /// Strategy 1: full scan with a subtype check per value.
    std::vector<core::Value> GetScan(const types::Type& t,
                                     const GetOptions& opts = {}) const;

    /// Strategy 2: read a maintained extent. Fails with NotFound unless
    /// an extent was registered (before this snapshot was taken) for a
    /// type *equivalent* to `t` — lookup is equivalence-normalizing: an
    /// exact syntactic hit is O(log #extents), and otherwise every
    /// extent is compared with `types::TypeEquiv`, so alpha-variants
    /// and μ-unfoldings of a registered type are found regardless of
    /// registration order.
    Result<std::vector<core::Value>> GetViaExtent(const types::Type& t) const;

    /// Strategy 3: principal-type index; one subtype check per distinct
    /// principal type present in the database.
    std::vector<core::Value> GetViaIndex(const types::Type& t,
                                         const GetOptions& opts = {}) const;

    /// Like GetScan, but returns existential packages of type
    /// `∃t' ≤ t. t'` — the precise result type of the paper's Get.
    std::vector<Dynamic> GetPackages(const types::Type& t) const;

    /// The extent of `t` as a generalized relation (see
    /// Database::GetRelation).
    core::GRelation GetRelation(const types::Type& t) const;

    /// `Get(t1) ⋈ Get(t2)` — both extents derived from this one
    /// consistent image.
    Result<core::GRelation> JoinExtents(const types::Type& t1,
                                        const types::Type& t2,
                                        const core::JoinOptions& opts = {})
        const;

    /// Names of extents registered when the snapshot was taken.
    std::vector<std::string> ExtentNames() const;

    /// Registered extents visible in this snapshot as (name, declared
    /// type) pairs, sorted by name. Membership is *derived* state and
    /// deliberately not included: re-registering the same (name, type)
    /// pairs on another database reproduces it (the checkpoint
    /// plumbing in persist/database_io relies on this).
    std::vector<std::pair<std::string, types::Type>> Extents() const;

    /// Number of distinct principal types indexed in this snapshot.
    size_t DistinctTypeCount() const;

   private:
    friend class Database;
    explicit Snapshot(std::shared_ptr<const State> state)
        : state_(std::move(state)) {}
    std::shared_ptr<const State> state_;
  };

  Database();

  /// Movable but not copyable (writers own the publication mutex). A
  /// moved-from database must not be used again.
  Database(Database&&) noexcept = default;
  Database& operator=(Database&&) noexcept = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Acquires the current snapshot: one shared_ptr copy under the
  /// publication mutex (two refcount operations). Never waits for a
  /// writer's copy-on-write work, never observes a partial insert.
  Snapshot GetSnapshot() const;

  /// Inserts a dynamic value and updates every registered extent,
  /// atomically: no snapshot ever sees the entry without its index and
  /// extent postings. Writers serialize on an internal mutex.
  EntryId Insert(Dynamic d);

  /// Convenience: wraps and inserts a plain value.
  EntryId InsertValue(core::Value v) { return Insert(MakeDynamic(std::move(v))); }

  /// Declares a maintained extent for `t`; entries visible at
  /// registration are indexed immediately (one scan), later inserts
  /// incrementally. Fails with AlreadyExists when `name` is taken.
  Status RegisterExtent(const std::string& name, types::Type t);

  /// One mutation on the writer path, delivered to the write observer.
  /// The pointers alias writer-owned storage and are valid only for
  /// the duration of the callback — copy what must outlive it.
  struct WriteEvent {
    enum class Kind : uint8_t { kInsert, kRegisterExtent };
    Kind kind = Kind::kInsert;
    /// The epoch this mutation publishes.
    uint64_t epoch = 0;
    /// kInsert: the new entry's id and its self-describing value.
    EntryId id = 0;
    const Dynamic* entry = nullptr;
    /// kRegisterExtent: the extent's name and declared type.
    const std::string* extent_name = nullptr;
    const types::Type* extent_type = nullptr;
  };
  using WriteObserver = std::function<void(const WriteEvent&)>;

  /// Installs (or, with nullptr, clears) the single write observer.
  /// The observer is invoked on the writer thread, under the writer
  /// mutex, *before* the mutation is published to readers — so
  /// observers see mutations in exactly the serialization order, and a
  /// write-ahead log that appends in the callback is never behind the
  /// published state (see persist::WalDatabase). The observer must not
  /// call back into this database's write path (deadlock) and should
  /// be fast: every writer pays its cost. Readers are unaffected.
  void SetWriteObserver(WriteObserver observer);

  // -------------------------------------------------------------------
  // Convenience queries: each acquires a fresh snapshot per call. All
  // are safe to call concurrently with Insert/RegisterExtent.
  // -------------------------------------------------------------------

  size_t size() const { return GetSnapshot().size(); }

  /// The current publication epoch: 0 for an empty database, +1 per
  /// insert or extent registration. Two databases that applied the same
  /// mutations (in any serialization) are at the same epoch, which is
  /// what makes the epoch the staleness measure of WAL shipping: a
  /// replica at epoch e has applied exactly as many mutations as its
  /// primary had published at epoch e (see persist::Replica).
  uint64_t epoch() const { return GetSnapshot().epoch(); }

  /// All entries, in insertion order (a point-in-time copy).
  std::vector<Dynamic> entries() const { return GetSnapshot().Entries(); }

  /// Entry by id.
  Result<Dynamic> Get(EntryId id) const { return GetSnapshot().Get(id); }

  /// Strategy 1: full scan with a subtype check per value.
  std::vector<core::Value> GetScan(const types::Type& t,
                                   const GetOptions& opts = {}) const {
    return GetSnapshot().GetScan(t, opts);
  }

  /// Strategy 2: read a maintained extent (see Snapshot::GetViaExtent).
  Result<std::vector<core::Value>> GetViaExtent(const types::Type& t) const {
    return GetSnapshot().GetViaExtent(t);
  }

  /// Strategy 3: principal-type index.
  std::vector<core::Value> GetViaIndex(const types::Type& t,
                                       const GetOptions& opts = {}) const {
    return GetSnapshot().GetViaIndex(t, opts);
  }

  /// Existential packages of type `∃t' ≤ t. t'` (the paper's Get).
  std::vector<Dynamic> GetPackages(const types::Type& t) const {
    return GetSnapshot().GetPackages(t);
  }

  /// The extent of `t` as a generalized relation: the values `GetViaIndex`
  /// yields, admitted under the subsumption rule (so a value refining
  /// another collapses onto it). This is the bridge from the paper's
  /// derived extents to its Figure 1 algebra.
  core::GRelation GetRelation(const types::Type& t) const {
    return GetSnapshot().GetRelation(t);
  }

  /// The generalized natural join of two derived extents,
  /// `Get(t1) ⋈ Get(t2)`, computed with the signature-partitioned fast
  /// path of core::GRelation::Join — both extents taken from one
  /// snapshot, so the join is over a single consistent image.
  Result<core::GRelation> JoinExtents(const types::Type& t1,
                                      const types::Type& t2,
                                      const core::JoinOptions& opts = {}) const {
    return GetSnapshot().JoinExtents(t1, t2, opts);
  }

  /// Names of registered extents.
  std::vector<std::string> ExtentNames() const {
    return GetSnapshot().ExtentNames();
  }

  /// Number of distinct principal types currently indexed.
  size_t DistinctTypeCount() const { return GetSnapshot().DistinctTypeCount(); }

 private:
  /// Writer-side shared core, held by pointer so Database stays movable
  /// (mutexes and atomics are not).
  struct Core;
  std::shared_ptr<Core> core_;
};

}  // namespace dbpl::dyndb

#endif  // DBPL_DYNDB_DATABASE_H_
