#ifndef DBPL_DYNDB_DATABASE_H_
#define DBPL_DYNDB_DATABASE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/grelation.h"
#include "dyndb/dynamic.h"
#include "types/type.h"

namespace dbpl::dyndb {

/// A heterogeneous database: "a list of dynamic values", as the paper
/// constructs in Amber. Anything can be inserted — the database is
/// deliberately unconstrained — and extents are *derived* from the type
/// hierarchy by the generic
///
///   Get : ∀t. Database → List[∃t' ≤ t. t']
///
/// rather than being stored per class. The class hierarchy is thereby
/// derived from the type hierarchy: `T ≤ U` implies
/// `Get(T) ⊆ Get(U)` for every database.
///
/// Three implementations of Get are provided, matching the efficiency
/// discussion in the paper (experiment E2):
///  * `GetScan` — "traverse the whole database ... with the overhead of
///    having to check the structure of each value we encounter";
///  * `GetViaExtent` — "keep a set of (statically) typed lists", i.e.
///    maintained extents, which cost bookkeeping on every insert and
///    must be declared in advance for each type of interest;
///  * `GetViaIndex` — a middle road this library adds: values are
///    grouped by their *principal* type, so a Get performs one subtype
///    check per distinct principal type instead of one per value.
class Database {
 public:
  /// Identifier of an inserted value (insertion order, starting at 0).
  using EntryId = uint64_t;

  Database() = default;

  /// Inserts a dynamic value. Updates every registered extent.
  EntryId Insert(Dynamic d);

  /// Convenience: wraps and inserts a plain value.
  EntryId InsertValue(core::Value v) { return Insert(MakeDynamic(std::move(v))); }

  size_t size() const { return entries_.size(); }
  const std::vector<Dynamic>& entries() const { return entries_; }

  /// Entry by id.
  Result<Dynamic> Get(EntryId id) const;

  /// Strategy 1: full scan with a subtype check per value.
  std::vector<core::Value> GetScan(const types::Type& t) const;

  /// Strategy 2: read a maintained extent. Fails with NotFound unless
  /// `RegisterExtent` was called for a type equivalent to `t` before the
  /// relevant inserts (extents register retroactively, scanning once).
  Result<std::vector<core::Value>> GetViaExtent(const types::Type& t) const;

  /// Strategy 3: principal-type index; one subtype check per distinct
  /// principal type present in the database.
  std::vector<core::Value> GetViaIndex(const types::Type& t) const;

  /// Like GetScan, but returns existential packages of type
  /// `∃t' ≤ t. t'` — the precise result type of the paper's Get.
  std::vector<Dynamic> GetPackages(const types::Type& t) const;

  /// The extent of `t` as a generalized relation: the values `GetViaIndex`
  /// yields, admitted under the subsumption rule (so a value refining
  /// another collapses onto it). This is the bridge from the paper's
  /// derived extents to its Figure 1 algebra.
  core::GRelation GetRelation(const types::Type& t) const;

  /// The generalized natural join of two derived extents,
  /// `Get(t1) ⋈ Get(t2)`, computed with the signature-partitioned fast
  /// path of core::GRelation::Join.
  Result<core::GRelation> JoinExtents(const types::Type& t1,
                                      const types::Type& t2,
                                      const core::JoinOptions& opts = {}) const;

  /// Declares a maintained extent for `t`; existing entries are indexed
  /// immediately, later inserts incrementally.
  Status RegisterExtent(const std::string& name, types::Type t);

  /// Names of registered extents.
  std::vector<std::string> ExtentNames() const;

  /// Number of distinct principal types currently indexed.
  size_t DistinctTypeCount() const { return by_type_.size(); }

 private:
  struct Extent {
    types::Type type;
    std::vector<EntryId> members;
  };

  std::vector<Dynamic> entries_;
  /// Principal type -> entries with exactly that carried type.
  std::map<types::Type, std::vector<EntryId>, types::TypeLess> by_type_;
  /// Named maintained extents.
  std::map<std::string, Extent> extents_;
};

}  // namespace dbpl::dyndb

#endif  // DBPL_DYNDB_DATABASE_H_
