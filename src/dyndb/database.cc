#include "dyndb/database.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "common/mutex.h"
#include "core/parallel.h"
#include "types/subtype.h"

namespace dbpl::dyndb {
namespace {

/// Entries are stored in fixed-capacity chunks so slot addresses stay
/// stable while the tail chunk fills: a published snapshot's entries
/// are never moved by later inserts, only ever *followed* by new slots
/// the snapshot does not index. The chunk spine (the vector of chunk
/// pointers) is copied on growth — once per kChunkCap inserts.
constexpr size_t kChunkCap = 1024;

}  // namespace

/// A view of an append-only id list: `ids` has stable capacity (the
/// writer clones it on growth), and this state sees the first `count`
/// elements. Older states share the same vector with a smaller count.
struct IdListView {
  std::shared_ptr<std::vector<Database::EntryId>> ids;
  size_t count = 0;
};

/// One immutable published state of one shard. Copying a State (the
/// writer's copy-on-write step) copies the two index maps — a few
/// pointers per distinct principal type / extent — and shares the
/// append-only entry chunks and id vectors. Member id lists hold
/// *global* ids (`seq*K + shard`); the chunk log is indexed by the
/// shard-local sequence.
struct Database::Snapshot::State {
  using Chunk = std::vector<Dynamic>;
  using Spine = std::vector<std::shared_ptr<Chunk>>;

  struct Extent {
    types::Type type;
    IdListView members;
  };

  /// Mutations applied to this shard (inserts + registrations).
  uint64_t epoch = 0;
  /// Entries visible in this shard: local sequences [0, count).
  size_t count = 0;
  std::shared_ptr<const Spine> chunks = std::make_shared<Spine>();
  /// Principal type -> entries (global ids) with exactly that type.
  std::map<types::Type, IdListView, types::TypeLess> by_type;
  /// Named maintained extents. The registration table (names + types)
  /// is identical across all shard states of one snapshot (the
  /// registration seqlock guarantees it); the member lists are this
  /// shard's contribution.
  std::map<std::string, Extent> extents;
  /// Equivalence-normalizing lookup, fast path: the syntactic type an
  /// extent was registered under -> its name. A query type that is
  /// semantically equivalent but syntactically different falls back to
  /// a TypeEquiv scan over `extents`.
  std::map<types::Type, std::string, types::TypeLess> extent_by_type;

  /// Entry by shard-local sequence.
  const Dynamic& EntryAt(size_t seq) const {
    return (*(*chunks)[seq / kChunkCap]).data()[seq % kChunkCap];
  }
};

struct Database::Core {
  /// One writer lane per shard. Heap-allocated so addresses are stable
  /// while Core's vector is built (and because mutexes are immovable).
  struct ShardCore {
    /// Serializes this shard's writers. Held across the whole
    /// read-copy-update of a State; never held by readers.
    Mutex writer_mu{LockRank::kShardWriter, "shard.writer_mu"};
    /// Guards only the `state` pointer itself. Readers hold it for one
    /// shared_ptr copy; writers for one pointer swap. All the
    /// expensive work — building the next State, destroying retired
    /// ones — happens outside this lock. (A std::atomic<shared_ptr>
    /// would make the copy lock-free, but libstdc++'s implementation
    /// guards its raw pointer with an internal spinlock whose unlock
    /// is relaxed, so it is not data-race-free under TSan; a real
    /// mutex is, and the critical section is two refcount operations
    /// long.)
    mutable Mutex state_mu{LockRank::kState, "shard.state_mu"};
    std::shared_ptr<const Snapshot::State> state DBPL_GUARDED_BY(state_mu);

    std::shared_ptr<const Snapshot::State> Acquire() const
        DBPL_EXCLUDES(state_mu) {
      MutexLock lock(&state_mu);
      return state;
    }

    /// Writer-side read of `state` without state_mu: sound because
    /// only this shard's writers replace the pointer and they
    /// serialize on writer_mu — no Publish can run concurrently, and
    /// readers only copy the pointer. The one deliberate hole in the
    /// GUARDED_BY(state_mu) discipline, confined to this accessor.
    const std::shared_ptr<const Snapshot::State>& StateUnderWriter() const
        DBPL_REQUIRES(writer_mu) DBPL_NO_THREAD_SAFETY_ANALYSIS {
      return state;
    }

    /// Publishes `next` and retires the previous state. The retired
    /// state's destruction (which may cascade through chunks and id
    /// lists no snapshot pins any more) runs after the lock is
    /// released.
    void Publish(std::shared_ptr<const Snapshot::State> next)
        DBPL_REQUIRES(writer_mu) DBPL_EXCLUDES(state_mu) {
      std::shared_ptr<const Snapshot::State> retired;
      {
        MutexLock lock(&state_mu);
        retired = std::move(state);
        state = std::move(next);
      }
    }
  };

  int shards = 1;
  std::vector<std::unique_ptr<ShardCore>> lanes;

  /// Registration seqlock: odd while RegisterExtent is publishing its
  /// K per-shard states, bumped to even when all are out. Multi-shard
  /// snapshot acquisition retries while odd / across a change, so a
  /// composite snapshot never sees an extent on some shards but not
  /// others. Inserts never touch it; with one shard it is never
  /// consulted. The write side is entered with all writer mutexes
  /// held and ranks between them and the state mutexes.
  SeqLock extent_seq;

  /// Invoked under the mutated shard's writer_mu, before the mutation
  /// is applied (see SetWriteObserver). Written only with *all* writer
  /// mutexes held, read with at least one — so writers never race on
  /// it.
  WriteObserver observer;
};

namespace {

using State = Database::Snapshot::State;

/// Appends to an id-list view, cloning the vector when capacity is
/// exhausted (so vectors shared with published snapshots never
/// reallocate under a reader).
void AppendId(IdListView* view, Database::EntryId id) {
  if (!view->ids || view->ids->size() == view->ids->capacity()) {
    auto grown = std::make_shared<std::vector<Database::EntryId>>();
    grown->reserve(view->ids ? view->ids->capacity() * 2 : 8);
    if (view->ids) grown->insert(grown->end(), view->ids->begin(),
                                 view->ids->end());
    view->ids = std::move(grown);
  }
  view->ids->push_back(id);
  view->count = view->ids->size();
}

/// The extent matching `t` up to type equivalence, or nullptr.
const State::Extent* FindExtent(const State& s, const types::Type& t) {
  auto exact = s.extent_by_type.find(t);
  if (exact != s.extent_by_type.end()) return &s.extents.at(exact->second);
  for (const auto& [name, extent] : s.extents) {
    if (types::TypeEquiv(extent.type, t)) return &extent;
  }
  return nullptr;
}

std::vector<core::Value> ValuesOf(const State& s, const IdListView& view,
                                  int shards) {
  std::vector<core::Value> out;
  out.reserve(view.count);
  const Database::EntryId* ids = view.ids ? view.ids->data() : nullptr;
  for (size_t i = 0; i < view.count; ++i) {
    out.push_back(
        s.EntryAt(Database::SeqOfId(ids[i], shards)).value);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// Snapshot: queries over one frozen composite state.
// ---------------------------------------------------------------------

const State& Database::Snapshot::shard(int s) const {
  return single_ ? *single_ : *multi_[static_cast<size_t>(s)];
}

int Database::Snapshot::shards() const {
  return single_ ? 1 : static_cast<int>(multi_.size());
}

size_t Database::Snapshot::size() const {
  if (single_) return single_->count;
  size_t total = 0;
  for (const auto& s : multi_) total += s->count;
  return total;
}

uint64_t Database::Snapshot::epoch() const {
  if (single_) return single_->epoch;
  uint64_t total = 0;
  for (const auto& s : multi_) total += s->epoch;
  return total;
}

size_t Database::Snapshot::shard_size(int s) const { return shard(s).count; }

uint64_t Database::Snapshot::shard_epoch(int s) const {
  return shard(s).epoch;
}

Result<Dynamic> Database::Snapshot::Get(EntryId id) const {
  const int k = shards();
  const int s = ShardOfId(id, k);
  const size_t seq = SeqOfId(id, k);
  if (seq >= shard(s).count) {
    return Status::NotFound("no entry with id " + std::to_string(id));
  }
  return shard(s).EntryAt(seq);
}

void Database::Snapshot::ForEachEntry(
    const std::function<void(EntryId, const Dynamic&)>& fn) const {
  if (single_) {
    for (size_t seq = 0; seq < single_->count; ++seq) {
      fn(static_cast<EntryId>(seq), single_->EntryAt(seq));
    }
    return;
  }
  // Id order is (seq, shard) lexicographic: ids are seq*K + s.
  const int k = shards();
  size_t max_count = 0;
  for (const auto& st : multi_) max_count = std::max(max_count, st->count);
  for (size_t seq = 0; seq < max_count; ++seq) {
    for (int s = 0; s < k; ++s) {
      const State& st = shard(s);
      if (seq < st.count) {
        fn(static_cast<EntryId>(seq) * static_cast<EntryId>(k) +
               static_cast<EntryId>(s),
           st.EntryAt(seq));
      }
    }
  }
}

std::vector<Dynamic> Database::Snapshot::Entries() const {
  std::vector<Dynamic> out;
  out.reserve(size());
  ForEachEntry([&](EntryId, const Dynamic& d) { out.push_back(d); });
  return out;
}

std::vector<core::Value> Database::Snapshot::GetScan(
    const types::Type& t, const GetOptions& opts) const {
  const int workers = core::ClampThreads(opts.threads);
  const size_t total = size();
  if (workers <= 1 || total < 2) {
    std::vector<core::Value> out;
    ForEachEntry([&](EntryId, const Dynamic& d) {
      if (types::IsSubtype(d.type, t)) out.push_back(d.value);
    });
    return out;
  }
  if (single_) {
    // Contiguous sequence ranges, concatenated in range order:
    // identical output to the sequential scan.
    const State& s = *single_;
    std::vector<std::vector<core::Value>> parts(
        static_cast<size_t>(workers));
    size_t per = (s.count + static_cast<size_t>(workers) - 1) /
                 static_cast<size_t>(workers);
    (void)core::ParallelFor(parts.size(), workers, [&](size_t p) {
      size_t begin = p * per;
      size_t end = std::min(s.count, (p + 1) * per);
      for (size_t seq = begin; seq < end; ++seq) {
        const Dynamic& d = s.EntryAt(seq);
        if (types::IsSubtype(d.type, t)) parts[p].push_back(d.value);
      }
      return Status::OK();
    });
    std::vector<core::Value> out;
    size_t n = 0;
    for (const auto& part : parts) n += part.size();
    out.reserve(n);
    for (auto& part : parts) {
      std::move(part.begin(), part.end(), std::back_inserter(out));
    }
    return out;
  }
  // Composite: each worker takes a contiguous *sequence* range across
  // all shards and walks it in id order; concatenation in range order
  // reproduces the sequential id-order scan exactly.
  const int k = shards();
  size_t max_count = 0;
  for (const auto& st : multi_) max_count = std::max(max_count, st->count);
  std::vector<std::vector<core::Value>> parts(static_cast<size_t>(workers));
  size_t per = (max_count + static_cast<size_t>(workers) - 1) /
               static_cast<size_t>(workers);
  (void)core::ParallelFor(parts.size(), workers, [&](size_t p) {
    size_t begin = p * per;
    size_t end = std::min(max_count, (p + 1) * per);
    for (size_t seq = begin; seq < end; ++seq) {
      for (int s = 0; s < k; ++s) {
        const State& st = shard(s);
        if (seq >= st.count) continue;
        const Dynamic& d = st.EntryAt(seq);
        if (types::IsSubtype(d.type, t)) parts[p].push_back(d.value);
      }
    }
    return Status::OK();
  });
  std::vector<core::Value> out;
  size_t n = 0;
  for (const auto& part : parts) n += part.size();
  out.reserve(n);
  for (auto& part : parts) {
    std::move(part.begin(), part.end(), std::back_inserter(out));
  }
  return out;
}

Result<std::vector<core::Value>> Database::Snapshot::GetViaExtent(
    const types::Type& t) const {
  if (single_) {
    const State::Extent* extent = FindExtent(*single_, t);
    if (extent == nullptr) {
      return Status::NotFound("no registered extent for type " + t.ToString());
    }
    return ValuesOf(*single_, extent->members, 1);
  }
  // The registration table is identical across shards (seqlock), so
  // shard 0 answers the lookup; the members are the id-order merge of
  // the per-shard lists (each ascending — per-shard inserts append
  // increasing ids).
  const State::Extent* probe = FindExtent(shard(0), t);
  if (probe == nullptr) {
    return Status::NotFound("no registered extent for type " + t.ToString());
  }
  const int k = shards();
  const std::string* name = nullptr;
  for (const auto& [n, e] : shard(0).extents) {
    if (&e == probe) {
      name = &n;
      break;
    }
  }
  std::vector<std::pair<const State*, const State::Extent*>> per_shard;
  per_shard.reserve(static_cast<size_t>(k));
  size_t total = 0;
  for (int s = 0; s < k; ++s) {
    auto it = shard(s).extents.find(*name);
    const State::Extent* e = it == shard(s).extents.end() ? nullptr : &it->second;
    per_shard.emplace_back(&shard(s), e);
    if (e != nullptr) total += e->members.count;
  }
  std::vector<std::pair<EntryId, core::Value>> tagged;
  tagged.reserve(total);
  for (auto& [st, e] : per_shard) {
    if (e == nullptr) continue;
    const EntryId* ids = e->members.ids ? e->members.ids->data() : nullptr;
    for (size_t i = 0; i < e->members.count; ++i) {
      tagged.emplace_back(ids[i], st->EntryAt(SeqOfId(ids[i], k)).value);
    }
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<core::Value> out;
  out.reserve(tagged.size());
  for (auto& [id, v] : tagged) out.push_back(std::move(v));
  return out;
}

std::vector<core::Value> Database::Snapshot::GetViaIndex(
    const types::Type& t, const GetOptions& opts) const {
  const int workers = core::ClampThreads(opts.threads);
  if (single_) {
    const State& s = *single_;
    if (workers <= 1 || s.by_type.size() < 2) {
      std::vector<core::Value> out;
      for (const auto& [type, ids] : s.by_type) {
        if (types::IsSubtype(type, t)) {
          const EntryId* p = ids.ids ? ids.ids->data() : nullptr;
          for (size_t i = 0; i < ids.count; ++i) {
            out.push_back(s.EntryAt(p[i]).value);
          }
        }
      }
      return out;
    }
    // One task per distinct principal type; concatenation in map order
    // matches the sequential result exactly.
    std::vector<std::pair<const types::Type*, const IdListView*>> groups;
    groups.reserve(s.by_type.size());
    for (const auto& [type, ids] : s.by_type) groups.emplace_back(&type, &ids);
    std::vector<std::vector<core::Value>> parts(groups.size());
    (void)core::ParallelFor(groups.size(), workers, [&](size_t g) {
      if (types::IsSubtype(*groups[g].first, t)) {
        parts[g] = ValuesOf(s, *groups[g].second, 1);
      }
      return Status::OK();
    });
    std::vector<core::Value> out;
    size_t total = 0;
    for (const auto& part : parts) total += part.size();
    out.reserve(total);
    for (auto& part : parts) {
      std::move(part.begin(), part.end(), std::back_inserter(out));
    }
    return out;
  }
  // Composite: one task per (shard, principal type) group; the tagged
  // results are merged into id order so the output is deterministic
  // and strategy-independent (it equals the composite GetScan).
  const int k = shards();
  struct Group {
    const State* st;
    const types::Type* type;
    const IdListView* ids;
  };
  std::vector<Group> groups;
  for (int s = 0; s < k; ++s) {
    for (const auto& [type, ids] : shard(s).by_type) {
      groups.push_back(Group{&shard(s), &type, &ids});
    }
  }
  std::vector<std::vector<std::pair<EntryId, core::Value>>> parts(
      groups.size());
  (void)core::ParallelFor(groups.size(), workers, [&](size_t g) {
    if (types::IsSubtype(*groups[g].type, t)) {
      const IdListView& view = *groups[g].ids;
      const EntryId* p = view.ids ? view.ids->data() : nullptr;
      parts[g].reserve(view.count);
      for (size_t i = 0; i < view.count; ++i) {
        parts[g].emplace_back(
            p[i], groups[g].st->EntryAt(SeqOfId(p[i], k)).value);
      }
    }
    return Status::OK();
  });
  std::vector<std::pair<EntryId, core::Value>> tagged;
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  tagged.reserve(total);
  for (auto& part : parts) {
    std::move(part.begin(), part.end(), std::back_inserter(tagged));
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<core::Value> out;
  out.reserve(tagged.size());
  for (auto& [id, v] : tagged) out.push_back(std::move(v));
  return out;
}

std::vector<Dynamic> Database::Snapshot::GetPackages(
    const types::Type& t) const {
  std::vector<Dynamic> out;
  ForEachEntry([&](EntryId, const Dynamic& d) {
    if (types::IsSubtype(d.type, t)) {
      Result<Dynamic> sealed = Seal(d, t);
      if (sealed.ok()) out.push_back(std::move(sealed).value());
    }
  });
  return out;
}

core::GRelation Database::Snapshot::GetRelation(const types::Type& t) const {
  return core::GRelation::FromObjects(GetViaIndex(t));
}

Result<core::GRelation> Database::Snapshot::JoinExtents(
    const types::Type& t1, const types::Type& t2,
    const core::JoinOptions& opts) const {
  return core::GRelation::Join(GetRelation(t1), GetRelation(t2), opts);
}

std::vector<std::string> Database::Snapshot::ExtentNames() const {
  const State& s = shard(0);
  std::vector<std::string> out;
  out.reserve(s.extents.size());
  for (const auto& [name, _] : s.extents) out.push_back(name);
  return out;
}

std::vector<std::pair<std::string, types::Type>> Database::Snapshot::Extents()
    const {
  const State& s = shard(0);
  std::vector<std::pair<std::string, types::Type>> out;
  out.reserve(s.extents.size());
  for (const auto& [name, extent] : s.extents) {
    out.emplace_back(name, extent.type);
  }
  return out;
}

size_t Database::Snapshot::DistinctTypeCount() const {
  if (single_) return single_->by_type.size();
  std::set<types::Type, types::TypeLess> distinct;
  for (const auto& st : multi_) {
    for (const auto& [type, _] : st->by_type) distinct.insert(type);
  }
  return distinct.size();
}

// ---------------------------------------------------------------------
// Database: the writer path.
// ---------------------------------------------------------------------

Database::Database() : Database(DatabaseOptions{}) {}

Database::Database(const DatabaseOptions& opts)
    : core_(std::make_shared<Core>()) {
  if (opts.shards < 1 || opts.shards > kMaxShards) {
    std::abort();  // static misconfiguration, not a runtime condition
  }
  core_->shards = opts.shards;
  core_->lanes.reserve(static_cast<size_t>(opts.shards));
  for (int s = 0; s < opts.shards; ++s) {
    auto lane = std::make_unique<Core::ShardCore>();
    lane->state = std::make_shared<const Snapshot::State>();
    core_->lanes.push_back(std::move(lane));
  }
}

int Database::shards() const { return core_->shards; }

Database::Snapshot Database::GetSnapshot() const {
  if (core_->shards == 1) {
    return Snapshot(core_->lanes[0]->Acquire(), {});
  }
  // Composite acquisition under the registration seqlock: if a
  // RegisterExtent published some (but not yet all) shard states while
  // we pinned them, retry — so the extent table is identical across
  // the pinned states. Inserts never bump the seqlock; retries happen
  // only during the rare registration window.
  std::vector<std::shared_ptr<const Snapshot::State>> pinned(
      core_->lanes.size());
  while (true) {
    uint64_t before = core_->extent_seq.ReadBegin();
    if (before % 2 != 0) continue;  // registration mid-publish
    for (size_t s = 0; s < core_->lanes.size(); ++s) {
      pinned[s] = core_->lanes[s]->Acquire();
    }
    if (core_->extent_seq.ReadValidate(before)) break;
  }
  return Snapshot(nullptr, std::move(pinned));
}

Result<Database::EntryId> Database::InsertIntoShard(int shard, Dynamic d,
                                                    const EntryId* at) {
  Core::ShardCore& lane = *core_->lanes[static_cast<size_t>(shard)];
  const int k = core_->shards;
  MutexLock lock(&lane.writer_mu);
  std::shared_ptr<const Snapshot::State> cur = lane.StateUnderWriter();
  const size_t seq = cur->count;
  const EntryId id = static_cast<EntryId>(seq) * static_cast<EntryId>(k) +
                     static_cast<EntryId>(shard);
  if (at != nullptr && *at != id) {
    return Status::FailedPrecondition(
        "InsertAt id " + std::to_string(*at) + " is not the next slot of " +
        "shard " + std::to_string(shard) + " (expected " +
        std::to_string(id) + ")");
  }

  // The observer fires *before* anything is mutated: a veto (e.g. a
  // WAL append failure) rolls the insert back by simply not performing
  // it, so memory can never diverge from the log.
  if (core_->observer) {
    WriteEvent ev;
    ev.kind = WriteEvent::Kind::kInsert;
    ev.shard = shard;
    ev.epoch = cur->epoch + 1;
    ev.id = id;
    ev.entry = &d;
    DBPL_RETURN_IF_ERROR(core_->observer(ev));
  }

  auto next = std::make_shared<Snapshot::State>(*cur);
  // Append the entry. The tail chunk is shared with published
  // snapshots, but they never index past their own count, and Publish's
  // mutex release orders this write before any acquisition that can
  // see the new count.
  if (seq % kChunkCap == 0) {
    auto chunk = std::make_shared<Snapshot::State::Chunk>();
    chunk->reserve(kChunkCap);
    auto spine = std::make_shared<Snapshot::State::Spine>(*cur->chunks);
    spine->push_back(std::move(chunk));
    next->chunks = std::move(spine);
  }
  next->chunks->back()->push_back(std::move(d));  // capacity reserved
  next->count = seq + 1;

  const Dynamic& stored = next->chunks->back()->back();
  AppendId(&next->by_type[stored.type], id);
  for (auto& [name, extent] : next->extents) {
    if (types::IsSubtype(stored.type, extent.type)) {
      AppendId(&extent.members, id);
    }
  }

  next->epoch = cur->epoch + 1;
  lane.Publish(std::move(next));
  return id;
}

Result<Database::EntryId> Database::Insert(Dynamic d) {
  const int k = core_->shards;
  // Route by the value-content hash — the same hash family the
  // signature-partitioned join engine buckets records by — so equal
  // values land in equal shards deterministically. One shard skips
  // the hash entirely.
  const int shard =
      k == 1 ? 0 : static_cast<int>(d.value.Hash() % static_cast<size_t>(k));
  return InsertIntoShard(shard, std::move(d), nullptr);
}

Database::EntryId Database::MustInsert(Dynamic d) {
  Result<EntryId> id = Insert(std::move(d));
  if (!id.ok()) std::abort();  // only a fallible observer can veto
  return *id;
}

Status Database::InsertAt(EntryId id, Dynamic d) {
  const int shard = ShardOfId(id, core_->shards);
  return InsertIntoShard(shard, std::move(d), &id).status();
}

// The analysis cannot follow a dynamic vector of locks (the K writer
// mutexes held at once), so this function is exempted; the lock-rank
// checker still verifies every acquisition at runtime (kShardWriter is
// a clustered rank, acquired in shard-index order), and the shard/
// shard-tsan presets race registrations against writers and readers.
Status Database::RegisterExtent(const std::string& name, types::Type t)
    DBPL_NO_THREAD_SAFETY_ANALYSIS {
  // A registration mutates every shard: take all writer mutexes (in
  // index order — the only multi-mutex acquisition in the database, so
  // the order is trivially acyclic) and publish the K new states under
  // the registration seqlock.
  std::vector<std::unique_lock<Mutex>> locks;
  locks.reserve(core_->lanes.size());
  for (auto& lane : core_->lanes) {
    locks.emplace_back(lane->writer_mu);
  }
  if (core_->lanes[0]->StateUnderWriter()->extents.contains(name)) {
    return Status::AlreadyExists("extent already registered: " + name);
  }

  // Veto point: the redo record is attributed to shard 0 (one record,
  // one log — see persist::WalDatabase). On failure nothing has been
  // mutated anywhere.
  if (core_->observer) {
    WriteEvent ev;
    ev.kind = WriteEvent::Kind::kRegisterExtent;
    ev.shard = 0;
    ev.epoch = core_->lanes[0]->StateUnderWriter()->epoch + 1;
    ev.extent_name = &name;
    ev.extent_type = &t;
    DBPL_RETURN_IF_ERROR(core_->observer(ev));
  }

  const int k = core_->shards;
  std::vector<std::shared_ptr<Snapshot::State>> nexts;
  nexts.reserve(core_->lanes.size());
  for (int s = 0; s < k; ++s) {
    const std::shared_ptr<const Snapshot::State>& cur =
        core_->lanes[s]->StateUnderWriter();
    auto next = std::make_shared<Snapshot::State>(*cur);
    Snapshot::State::Extent extent;
    extent.type = t;
    for (size_t seq = 0; seq < cur->count; ++seq) {
      if (types::IsSubtype(cur->EntryAt(seq).type, extent.type)) {
        AppendId(&extent.members,
                 static_cast<EntryId>(seq) * static_cast<EntryId>(k) +
                     static_cast<EntryId>(s));
      }
    }
    // First registration of a syntactic type wins the exact-match
    // slot; equivalent spellings registered later are still found by
    // the TypeEquiv fallback in FindExtent.
    next->extent_by_type.emplace(extent.type, name);
    next->extents.emplace(name, std::move(extent));
    next->epoch = cur->epoch + 1;
    nexts.push_back(std::move(next));
  }

  if (k > 1) {
    core_->extent_seq.WriteBegin();  // odd: composite snapshots retry
  }
  for (int s = 0; s < k; ++s) {
    core_->lanes[s]->Publish(std::move(nexts[s]));
  }
  if (k > 1) {
    core_->extent_seq.WriteEnd();  // even: all K states out
  }
  return Status::OK();
}

// Exempt for the same reason as RegisterExtent: the K writer mutexes
// are a dynamic lock set (rank-checked at runtime instead).
void Database::SetWriteObserver(WriteObserver observer)
    DBPL_NO_THREAD_SAFETY_ANALYSIS {
  std::vector<std::unique_lock<Mutex>> locks;
  locks.reserve(core_->lanes.size());
  for (auto& lane : core_->lanes) {
    locks.emplace_back(lane->writer_mu);
  }
  core_->observer = std::move(observer);
}

}  // namespace dbpl::dyndb
