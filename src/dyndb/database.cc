#include "dyndb/database.h"

#include "types/subtype.h"

namespace dbpl::dyndb {

Database::EntryId Database::Insert(Dynamic d) {
  EntryId id = entries_.size();
  by_type_[d.type].push_back(id);
  for (auto& [name, extent] : extents_) {
    if (types::IsSubtype(d.type, extent.type)) {
      extent.members.push_back(id);
    }
  }
  entries_.push_back(std::move(d));
  return id;
}

Result<Dynamic> Database::Get(EntryId id) const {
  if (id >= entries_.size()) {
    return Status::NotFound("no entry with id " + std::to_string(id));
  }
  return entries_[id];
}

std::vector<core::Value> Database::GetScan(const types::Type& t) const {
  std::vector<core::Value> out;
  for (const Dynamic& d : entries_) {
    if (types::IsSubtype(d.type, t)) out.push_back(d.value);
  }
  return out;
}

Result<std::vector<core::Value>> Database::GetViaExtent(
    const types::Type& t) const {
  for (const auto& [name, extent] : extents_) {
    if (types::TypeEquiv(extent.type, t)) {
      std::vector<core::Value> out;
      out.reserve(extent.members.size());
      for (EntryId id : extent.members) out.push_back(entries_[id].value);
      return out;
    }
  }
  return Status::NotFound("no registered extent for type " + t.ToString());
}

std::vector<core::Value> Database::GetViaIndex(const types::Type& t) const {
  std::vector<core::Value> out;
  for (const auto& [type, ids] : by_type_) {
    if (types::IsSubtype(type, t)) {
      for (EntryId id : ids) out.push_back(entries_[id].value);
    }
  }
  return out;
}

core::GRelation Database::GetRelation(const types::Type& t) const {
  return core::GRelation::FromObjects(GetViaIndex(t));
}

Result<core::GRelation> Database::JoinExtents(const types::Type& t1,
                                              const types::Type& t2,
                                              const core::JoinOptions& opts)
    const {
  return core::GRelation::Join(GetRelation(t1), GetRelation(t2), opts);
}

std::vector<Dynamic> Database::GetPackages(const types::Type& t) const {
  std::vector<Dynamic> out;
  for (const Dynamic& d : entries_) {
    if (types::IsSubtype(d.type, t)) {
      Result<Dynamic> sealed = Seal(d, t);
      if (sealed.ok()) out.push_back(std::move(sealed).value());
    }
  }
  return out;
}

Status Database::RegisterExtent(const std::string& name, types::Type t) {
  if (extents_.contains(name)) {
    return Status::AlreadyExists("extent already registered: " + name);
  }
  Extent extent;
  extent.type = std::move(t);
  for (EntryId id = 0; id < entries_.size(); ++id) {
    if (types::IsSubtype(entries_[id].type, extent.type)) {
      extent.members.push_back(id);
    }
  }
  extents_.emplace(name, std::move(extent));
  return Status::OK();
}

std::vector<std::string> Database::ExtentNames() const {
  std::vector<std::string> out;
  out.reserve(extents_.size());
  for (const auto& [name, _] : extents_) out.push_back(name);
  return out;
}

}  // namespace dbpl::dyndb
