#include "dyndb/database.h"

#include <algorithm>

#include "core/parallel.h"
#include "types/subtype.h"

namespace dbpl::dyndb {
namespace {

/// Entries are stored in fixed-capacity chunks so slot addresses stay
/// stable while the tail chunk fills: a published snapshot's entries
/// are never moved by later inserts, only ever *followed* by new slots
/// the snapshot does not index. The chunk spine (the vector of chunk
/// pointers) is copied on growth — once per kChunkCap inserts.
constexpr size_t kChunkCap = 1024;

}  // namespace

/// A view of an append-only id list: `ids` has stable capacity (the
/// writer clones it on growth), and this state sees the first `count`
/// elements. Older states share the same vector with a smaller count.
struct IdListView {
  std::shared_ptr<std::vector<Database::EntryId>> ids;
  size_t count = 0;
};

/// One immutable published state of the database. Copying a State
/// (the writer's copy-on-write step) copies the two index maps — a few
/// pointers per distinct principal type / extent — and shares the
/// append-only entry chunks and id vectors.
struct Database::Snapshot::State {
  using Chunk = std::vector<Dynamic>;
  using Spine = std::vector<std::shared_ptr<Chunk>>;

  struct Extent {
    types::Type type;
    IdListView members;
  };

  uint64_t epoch = 0;
  /// Entries visible in this state: global ids [0, count).
  size_t count = 0;
  std::shared_ptr<const Spine> chunks = std::make_shared<Spine>();
  /// Principal type -> entries with exactly that carried type.
  std::map<types::Type, IdListView, types::TypeLess> by_type;
  /// Named maintained extents.
  std::map<std::string, Extent> extents;
  /// Equivalence-normalizing lookup, fast path: the syntactic type an
  /// extent was registered under -> its name. A query type that is
  /// semantically equivalent but syntactically different falls back to
  /// a TypeEquiv scan over `extents`.
  std::map<types::Type, std::string, types::TypeLess> extent_by_type;

  const Dynamic& Entry(EntryId id) const {
    return (*(*chunks)[id / kChunkCap]).data()[id % kChunkCap];
  }
};

struct Database::Core {
  /// Serializes writers. Held across the whole read-copy-update of a
  /// State; never held by readers.
  std::mutex writer_mu;
  /// Guards only the `state` pointer itself. Readers hold it for one
  /// shared_ptr copy; writers for one pointer swap. All the expensive
  /// work — building the next State, destroying retired ones — happens
  /// outside this lock. (A std::atomic<std::shared_ptr> would make the
  /// copy lock-free, but libstdc++'s implementation guards its raw
  /// pointer with an internal spinlock whose unlock is relaxed, so it
  /// is not data-race-free under TSan; a real mutex is, and the
  /// critical section is two refcount operations long.)
  mutable std::mutex state_mu;
  std::shared_ptr<const Snapshot::State> state;

  /// Invoked under writer_mu, before Publish (see SetWriteObserver).
  /// Only touched with writer_mu held, so writers never race on it.
  WriteObserver observer;

  std::shared_ptr<const Snapshot::State> Acquire() const {
    std::lock_guard<std::mutex> lock(state_mu);
    return state;
  }

  /// Publishes `next` and retires the previous state. The retired
  /// state's destruction (which may cascade through chunks and id
  /// lists no snapshot pins any more) runs after the lock is released.
  void Publish(std::shared_ptr<const Snapshot::State> next) {
    std::shared_ptr<const Snapshot::State> retired;
    {
      std::lock_guard<std::mutex> lock(state_mu);
      retired = std::move(state);
      state = std::move(next);
    }
  }
};

namespace {

using State = Database::Snapshot::State;

/// Appends to an id-list view, cloning the vector when capacity is
/// exhausted (so vectors shared with published snapshots never
/// reallocate under a reader).
void AppendId(IdListView* view, Database::EntryId id) {
  if (!view->ids || view->ids->size() == view->ids->capacity()) {
    auto grown = std::make_shared<std::vector<Database::EntryId>>();
    grown->reserve(view->ids ? view->ids->capacity() * 2 : 8);
    if (view->ids) grown->insert(grown->end(), view->ids->begin(),
                                 view->ids->end());
    view->ids = std::move(grown);
  }
  view->ids->push_back(id);
  view->count = view->ids->size();
}

/// The extent matching `t` up to type equivalence, or nullptr.
const State::Extent* FindExtent(const State& s, const types::Type& t) {
  auto exact = s.extent_by_type.find(t);
  if (exact != s.extent_by_type.end()) return &s.extents.at(exact->second);
  for (const auto& [name, extent] : s.extents) {
    if (types::TypeEquiv(extent.type, t)) return &extent;
  }
  return nullptr;
}

std::vector<core::Value> ValuesOf(const State& s, const IdListView& view) {
  std::vector<core::Value> out;
  out.reserve(view.count);
  const Database::EntryId* ids = view.ids ? view.ids->data() : nullptr;
  for (size_t i = 0; i < view.count; ++i) out.push_back(s.Entry(ids[i]).value);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// Snapshot: queries over one frozen state.
// ---------------------------------------------------------------------

size_t Database::Snapshot::size() const { return state_->count; }

uint64_t Database::Snapshot::epoch() const { return state_->epoch; }

Result<Dynamic> Database::Snapshot::Get(EntryId id) const {
  if (id >= state_->count) {
    return Status::NotFound("no entry with id " + std::to_string(id));
  }
  return state_->Entry(id);
}

std::vector<Dynamic> Database::Snapshot::Entries() const {
  std::vector<Dynamic> out;
  out.reserve(state_->count);
  for (EntryId id = 0; id < state_->count; ++id) {
    out.push_back(state_->Entry(id));
  }
  return out;
}

std::vector<core::Value> Database::Snapshot::GetScan(
    const types::Type& t, const GetOptions& opts) const {
  const State& s = *state_;
  int shards = core::ClampThreads(opts.threads);
  if (shards <= 1 || s.count < 2) {
    std::vector<core::Value> out;
    for (EntryId id = 0; id < s.count; ++id) {
      const Dynamic& d = s.Entry(id);
      if (types::IsSubtype(d.type, t)) out.push_back(d.value);
    }
    return out;
  }
  // Contiguous shards, concatenated in shard order: identical output to
  // the sequential scan.
  std::vector<std::vector<core::Value>> parts(static_cast<size_t>(shards));
  size_t per = (s.count + static_cast<size_t>(shards) - 1) /
               static_cast<size_t>(shards);
  (void)core::ParallelFor(parts.size(), shards, [&](size_t p) {
    EntryId begin = static_cast<EntryId>(p * per);
    EntryId end = static_cast<EntryId>(std::min(s.count, (p + 1) * per));
    for (EntryId id = begin; id < end; ++id) {
      const Dynamic& d = s.Entry(id);
      if (types::IsSubtype(d.type, t)) parts[p].push_back(d.value);
    }
    return Status::OK();
  });
  std::vector<core::Value> out;
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  out.reserve(total);
  for (auto& part : parts) {
    std::move(part.begin(), part.end(), std::back_inserter(out));
  }
  return out;
}

Result<std::vector<core::Value>> Database::Snapshot::GetViaExtent(
    const types::Type& t) const {
  const State::Extent* extent = FindExtent(*state_, t);
  if (extent == nullptr) {
    return Status::NotFound("no registered extent for type " + t.ToString());
  }
  return ValuesOf(*state_, extent->members);
}

std::vector<core::Value> Database::Snapshot::GetViaIndex(
    const types::Type& t, const GetOptions& opts) const {
  const State& s = *state_;
  int shards = core::ClampThreads(opts.threads);
  if (shards <= 1 || s.by_type.size() < 2) {
    std::vector<core::Value> out;
    for (const auto& [type, ids] : s.by_type) {
      if (types::IsSubtype(type, t)) {
        const EntryId* p = ids.ids ? ids.ids->data() : nullptr;
        for (size_t i = 0; i < ids.count; ++i) out.push_back(s.Entry(p[i]).value);
      }
    }
    return out;
  }
  // One task per distinct principal type; concatenation in map order
  // matches the sequential result exactly.
  std::vector<std::pair<const types::Type*, const IdListView*>> groups;
  groups.reserve(s.by_type.size());
  for (const auto& [type, ids] : s.by_type) groups.emplace_back(&type, &ids);
  std::vector<std::vector<core::Value>> parts(groups.size());
  (void)core::ParallelFor(groups.size(), shards, [&](size_t g) {
    if (types::IsSubtype(*groups[g].first, t)) {
      parts[g] = ValuesOf(s, *groups[g].second);
    }
    return Status::OK();
  });
  std::vector<core::Value> out;
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  out.reserve(total);
  for (auto& part : parts) {
    std::move(part.begin(), part.end(), std::back_inserter(out));
  }
  return out;
}

std::vector<Dynamic> Database::Snapshot::GetPackages(
    const types::Type& t) const {
  std::vector<Dynamic> out;
  for (EntryId id = 0; id < state_->count; ++id) {
    const Dynamic& d = state_->Entry(id);
    if (types::IsSubtype(d.type, t)) {
      Result<Dynamic> sealed = Seal(d, t);
      if (sealed.ok()) out.push_back(std::move(sealed).value());
    }
  }
  return out;
}

core::GRelation Database::Snapshot::GetRelation(const types::Type& t) const {
  return core::GRelation::FromObjects(GetViaIndex(t));
}

Result<core::GRelation> Database::Snapshot::JoinExtents(
    const types::Type& t1, const types::Type& t2,
    const core::JoinOptions& opts) const {
  return core::GRelation::Join(GetRelation(t1), GetRelation(t2), opts);
}

std::vector<std::string> Database::Snapshot::ExtentNames() const {
  std::vector<std::string> out;
  out.reserve(state_->extents.size());
  for (const auto& [name, _] : state_->extents) out.push_back(name);
  return out;
}

std::vector<std::pair<std::string, types::Type>> Database::Snapshot::Extents()
    const {
  std::vector<std::pair<std::string, types::Type>> out;
  out.reserve(state_->extents.size());
  for (const auto& [name, extent] : state_->extents) {
    out.emplace_back(name, extent.type);
  }
  return out;
}

size_t Database::Snapshot::DistinctTypeCount() const {
  return state_->by_type.size();
}

// ---------------------------------------------------------------------
// Database: the writer path.
// ---------------------------------------------------------------------

Database::Database() : core_(std::make_shared<Core>()) {
  core_->state = std::make_shared<const Snapshot::State>();
}

Database::Snapshot Database::GetSnapshot() const {
  return Snapshot(core_->Acquire());
}

Database::EntryId Database::Insert(Dynamic d) {
  std::lock_guard<std::mutex> lock(core_->writer_mu);
  // Only writers replace `state`, and they serialize on writer_mu, so
  // this read needs no state_mu: no Publish can run concurrently, and
  // readers only copy the pointer.
  std::shared_ptr<const Snapshot::State> cur = core_->state;
  auto next = std::make_shared<Snapshot::State>(*cur);
  EntryId id = cur->count;

  // Append the entry. The tail chunk is shared with published
  // snapshots, but they never index past their own count, and Publish's
  // mutex release orders this write before any acquisition that can
  // see the new count.
  if (id % kChunkCap == 0) {
    auto chunk = std::make_shared<Snapshot::State::Chunk>();
    chunk->reserve(kChunkCap);
    auto spine =
        std::make_shared<Snapshot::State::Spine>(*cur->chunks);
    spine->push_back(std::move(chunk));
    next->chunks = std::move(spine);
  }
  next->chunks->back()->push_back(d);  // capacity reserved: no realloc
  next->count = id + 1;

  AppendId(&next->by_type[d.type], id);
  for (auto& [name, extent] : next->extents) {
    if (types::IsSubtype(d.type, extent.type)) {
      AppendId(&extent.members, id);
    }
  }

  next->epoch = cur->epoch + 1;
  if (core_->observer) {
    WriteEvent ev;
    ev.kind = WriteEvent::Kind::kInsert;
    ev.epoch = next->epoch;
    ev.id = id;
    ev.entry = &next->chunks->back()->back();
    core_->observer(ev);
  }
  core_->Publish(std::move(next));
  return id;
}

Status Database::RegisterExtent(const std::string& name, types::Type t) {
  std::lock_guard<std::mutex> lock(core_->writer_mu);
  std::shared_ptr<const Snapshot::State> cur = core_->state;
  if (cur->extents.contains(name)) {
    return Status::AlreadyExists("extent already registered: " + name);
  }
  auto next = std::make_shared<Snapshot::State>(*cur);
  Snapshot::State::Extent extent;
  extent.type = std::move(t);
  for (EntryId id = 0; id < cur->count; ++id) {
    if (types::IsSubtype(cur->Entry(id).type, extent.type)) {
      AppendId(&extent.members, id);
    }
  }
  // First registration of a syntactic type wins the exact-match slot;
  // equivalent spellings registered later are still found by the
  // TypeEquiv fallback in FindExtent.
  next->extent_by_type.emplace(extent.type, name);
  auto inserted = next->extents.emplace(name, std::move(extent));
  next->epoch = cur->epoch + 1;
  if (core_->observer) {
    WriteEvent ev;
    ev.kind = WriteEvent::Kind::kRegisterExtent;
    ev.epoch = next->epoch;
    ev.extent_name = &inserted.first->first;
    ev.extent_type = &inserted.first->second.type;
    core_->observer(ev);
  }
  core_->Publish(std::move(next));
  return Status::OK();
}

void Database::SetWriteObserver(WriteObserver observer) {
  std::lock_guard<std::mutex> lock(core_->writer_mu);
  core_->observer = std::move(observer);
}

}  // namespace dbpl::dyndb
