#include "dyndb/dynamic.h"

#include "types/subtype.h"
#include "types/type_of.h"

namespace dbpl::dyndb {

std::string Dynamic::ToString() const {
  return "dynamic(" + value.ToString() + " : " + type.ToString() + ")";
}

Dynamic MakeDynamic(core::Value v) {
  types::Type t = types::TypeOf(v);
  return Dynamic{std::move(v), std::move(t)};
}

Result<Dynamic> MakeDynamicAs(core::Value v, types::Type declared) {
  types::Type principal = types::TypeOf(v);
  if (!types::IsSubtype(principal, declared)) {
    return Status::TypeError("value of type " + principal.ToString() +
                             " cannot be declared as " + declared.ToString());
  }
  return Dynamic{std::move(v), std::move(declared)};
}

Result<core::Value> Coerce(const Dynamic& d, const types::Type& target) {
  if (!types::IsSubtype(d.type, target)) {
    return Status::TypeError("cannot coerce " + d.type.ToString() + " to " +
                             target.ToString());
  }
  return d.value;
}

Result<Dynamic> Seal(const Dynamic& d, const types::Type& bound) {
  if (!types::IsSubtype(d.type, bound)) {
    return Status::TypeError("cannot seal " + d.type.ToString() +
                             " at bound " + bound.ToString());
  }
  return Dynamic{d.value, types::Type::Exists("t", bound, types::Type::Var("t"))};
}

}  // namespace dbpl::dyndb
