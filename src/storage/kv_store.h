#ifndef DBPL_STORAGE_KV_STORE_H_
#define DBPL_STORAGE_KV_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/log.h"

namespace dbpl::storage {

/// A batch of mutations committed atomically.
class WriteBatch {
 public:
  void Put(std::string key, std::string value) {
    records_.push_back({LogRecordType::kPut, std::move(key), std::move(value)});
  }
  void Delete(std::string key) {
    records_.push_back({LogRecordType::kDelete, std::move(key), ""});
  }
  bool empty() const { return records_.empty(); }
  size_t size() const { return records_.size(); }
  const std::vector<LogRecord>& records() const { return records_; }

 private:
  std::vector<LogRecord> records_;
};

/// A log-structured key-value store with atomic batch commits.
///
/// All data lives in a single append-only log; an in-memory index maps
/// each key to its latest committed value. Recovery replays the log and
/// drops any suffix after the last commit marker, so a crash between
/// `Apply` calls — or in the middle of one — leaves exactly the last
/// committed state. `Compact` rewrites the live data into a fresh log
/// (atomically, via rename), reclaiming space from overwritten and
/// deleted keys.
class KvStore {
 public:
  struct RecoveryInfo {
    uint64_t records_replayed = 0;
    uint64_t batches_committed = 0;
    /// Records after the last commit marker, discarded at recovery.
    uint64_t uncommitted_dropped = 0;
    /// True when the log ended in a torn/corrupt record.
    bool corrupt_tail = false;
  };

  /// Opens (creating if necessary) the store whose log is at `path`,
  /// with all I/O through `vfs` (which must outlive the store).
  static Result<std::unique_ptr<KvStore>> Open(Vfs* vfs,
                                               const std::string& path);
  /// As above, on the production VFS.
  static Result<std::unique_ptr<KvStore>> Open(const std::string& path) {
    return Open(Vfs::Default(), path);
  }

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Appends the batch and a commit marker, fsyncs, then applies it to
  /// the index. Atomic: after a crash either all or none of the batch
  /// survives.
  Status Apply(const WriteBatch& batch);

  Result<std::string> Get(std::string_view key) const;
  bool Contains(std::string_view key) const;
  std::vector<std::string> Keys() const;
  /// Keys beginning with `prefix`, sorted.
  std::vector<std::string> KeysWithPrefix(std::string_view prefix) const;
  size_t size() const { return index_.size(); }

  /// Rewrites the log to contain only live entries.
  Status Compact();

  const RecoveryInfo& recovery_info() const { return recovery_; }
  uint64_t log_bytes() const;
  const std::string& path() const { return path_; }

 private:
  KvStore(Vfs* vfs, std::string path) : vfs_(vfs), path_(std::move(path)) {}

  Status Replay();

  Vfs* vfs_;
  std::string path_;
  std::map<std::string, std::string, std::less<>> index_;
  std::unique_ptr<LogWriter> writer_;
  RecoveryInfo recovery_;
};

}  // namespace dbpl::storage

#endif  // DBPL_STORAGE_KV_STORE_H_
