#ifndef DBPL_STORAGE_VFS_H_
#define DBPL_STORAGE_VFS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"

namespace dbpl::storage {

/// How a file is opened through the VFS.
enum class OpenMode {
  /// Read-only; the file must exist.
  kRead,
  /// Random-access read/write; created empty when absent.
  kReadWrite,
  /// Write positions are relative to the end of file; created when
  /// absent, existing contents kept.
  kAppend,
  /// Created, or truncated to empty when it exists.
  kTruncate,
};

/// An open file handle obtained from a `Vfs`.
///
/// All offsets are absolute (pread/pwrite semantics); sequential readers
/// keep their own cursor. Writes become *durable* only after `Sync` —
/// a fault-injecting VFS is free to discard or tear unsynced data at a
/// simulated power loss.
class VfsFile {
 public:
  virtual ~VfsFile() = default;

  /// Reads up to `n` bytes at `offset`; returns the number read, which
  /// is less than `n` only at end of file.
  virtual Result<size_t> ReadAt(uint64_t offset, void* out, size_t n) = 0;

  /// Writes exactly `n` bytes at `offset`, extending the file if
  /// needed. A short write is reported as an error (possibly after a
  /// prefix of the bytes reached the file — the torn-write case).
  virtual Status WriteAt(uint64_t offset, const void* data, size_t n) = 0;

  /// Appends exactly `n` bytes at the end of the file.
  virtual Status Append(const void* data, size_t n) = 0;

  /// Current size of the file in bytes.
  virtual Result<uint64_t> Size() const = 0;

  /// Flushes buffered writes to stable storage.
  virtual Status Sync() = 0;
};

/// The seam between the storage/persist layers and the operating
/// system: every byte the library reads from or writes to disk flows
/// through a `Vfs`. Production code uses `Vfs::Default()` (POSIX);
/// tests substitute a `FaultVfs` to inject torn writes, dropped fsyncs
/// and crashes deterministically (see fault_vfs.h).
///
/// A `Vfs` passed to a store must outlive that store.
class Vfs {
 public:
  virtual ~Vfs() = default;

  virtual Result<std::unique_ptr<VfsFile>> Open(const std::string& path,
                                                OpenMode mode) = 0;
  virtual bool Exists(const std::string& path) const = 0;
  /// Removes a file; NotFound when absent.
  virtual Status Remove(const std::string& path) = 0;
  /// Atomically replaces `to` with `from`.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  /// Creates a directory; OK when it already exists.
  virtual Status CreateDir(const std::string& path) = 0;
  /// File names (not paths) directly inside `path`, sorted.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) const = 0;

  // ---- Conveniences built on the primitives (shared by all backends).

  /// Reads an entire file into memory.
  Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

  /// Writes a buffer to `path` atomically: write `path.tmp`, sync,
  /// rename. A crash mid-save leaves any previous file intact.
  Status WriteFileAtomic(const std::string& path, const void* data, size_t n);
  Status WriteFileAtomic(const std::string& path, const ByteBuffer& data) {
    return WriteFileAtomic(path, data.data(), data.size());
  }

  /// The process-wide production (POSIX) VFS.
  static Vfs* Default();
};

/// Production VFS over open/pread/pwrite/fsync. Stateless; one instance
/// serves any number of files.
class PosixVfs : public Vfs {
 public:
  Result<std::unique_ptr<VfsFile>> Open(const std::string& path,
                                        OpenMode mode) override;
  bool Exists(const std::string& path) const override;
  Status Remove(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(
      const std::string& path) const override;
};

}  // namespace dbpl::storage

#endif  // DBPL_STORAGE_VFS_H_
