#ifndef DBPL_STORAGE_FAULT_VFS_H_
#define DBPL_STORAGE_FAULT_VFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/vfs.h"

namespace dbpl::storage {

/// A deterministic, in-memory, fault-injecting VFS for crash-recovery
/// tests. No disk is touched; every "file" is a pair of byte images:
///
///  * `durable`  — what stable storage holds (survives power loss);
///  * `current`  — durable plus unsynced writes, in write order.
///
/// `VfsFile::Sync` promotes current to durable. `PowerLoss(fate)`
/// simulates pulling the plug: unsynced writes are discarded
/// (`kLost`), kept (`kSurvives`), or applied as a seeded-RNG prefix in
/// write order with the last surviving write possibly torn mid-record
/// (`kTornPrefix` — the classic torn tail).
///
/// Crash injection: `CrashAtMutatingOp(k)` makes the k-th subsequent
/// mutating operation (write, append, sync, rename, remove, truncating
/// open) fail with IoError — a failing write first applies an
/// RNG-chosen prefix of its bytes, modelling a short write — and every
/// operation after it fail too, until `PowerLoss` or `ClearCrash`.
/// `set_drop_syncs(true)` makes Sync report success without promoting
/// anything (a lying fsync). `FlipBit` corrupts stored bytes directly.
///
/// All randomness comes from the constructor seed, so every failure
/// reproduces exactly.
class FaultVfs : public Vfs {
 public:
  /// What happens to unsynced writes at power loss.
  enum class UnsyncedFate { kLost, kTornPrefix, kSurvives };

  explicit FaultVfs(uint64_t seed);
  ~FaultVfs() override;

  // ---- Vfs interface.
  Result<std::unique_ptr<VfsFile>> Open(const std::string& path,
                                        OpenMode mode) override;
  bool Exists(const std::string& path) const override;
  Status Remove(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(
      const std::string& path) const override;

  // ---- Fault controls.

  /// Arms a crash at the k-th (1-based) mutating operation counted from
  /// now. Passing 0 disarms.
  void CrashAtMutatingOp(uint64_t k);

  /// True once the armed crash has fired (all I/O is failing).
  bool crashed() const { return crashed_; }

  /// Un-fails I/O without simulating power loss (unsynced data kept).
  void ClearCrash();

  /// Mutating operations counted since construction (or the last
  /// `ResetOpCount`). Run a workload once fault-free to learn the total,
  /// then iterate crash points 1..total.
  uint64_t mutating_ops() const { return op_count_; }
  void ResetOpCount() { op_count_ = 0; }

  /// Simulates power loss: applies `fate` to every file's unsynced
  /// writes, invalidates all open handles (their operations fail until
  /// files are reopened), and clears any armed or fired crash.
  void PowerLoss(UnsyncedFate fate);

  /// When true, Sync returns OK without making anything durable.
  void set_drop_syncs(bool drop) { drop_syncs_ = drop; }

  // ---- Direct state access for tests.

  /// Flips one bit of the file's current *and* durable content.
  Status FlipBit(const std::string& path, uint64_t bit_index);

  /// Creates/overwrites a file with fully durable contents.
  void SetFileBytes(const std::string& path, std::vector<uint8_t> bytes);

  /// The current (possibly unsynced) contents of a file.
  Result<std::vector<uint8_t>> GetFileBytes(const std::string& path) const;

  /// All file paths, sorted.
  std::vector<std::string> Paths() const;

 private:
  friend class FaultVfsFile;

  struct PendingWrite {
    uint64_t offset;
    std::vector<uint8_t> bytes;
  };

  /// One "inode". Open handles share it, so a file removed or renamed
  /// while open keeps working through existing handles.
  struct FileState {
    std::vector<uint8_t> current;
    std::vector<uint8_t> durable;
    /// Unsynced writes in order, for torn-prefix power loss.
    std::vector<PendingWrite> pending;
  };

  /// Counts one mutating operation. Returns OK when the op may proceed
  /// in full; IoError when it must fail. For byte-carrying ops,
  /// `*torn_prefix` is the number of leading bytes (of `n`) that still
  /// reach the file when the op fails — the short-write model.
  Status CountMutation(size_t n, size_t* torn_prefix);

  uint64_t NextRandom();

  std::map<std::string, std::shared_ptr<FileState>> files_;
  std::set<std::string> dirs_;
  uint64_t rng_state_;
  uint64_t op_count_ = 0;
  /// Absolute op index at which to crash; 0 = disarmed.
  uint64_t crash_at_op_ = 0;
  bool crashed_ = false;
  bool drop_syncs_ = false;
  /// Bumped at PowerLoss; handles from an older epoch are stale.
  uint64_t epoch_ = 0;
};

}  // namespace dbpl::storage

#endif  // DBPL_STORAGE_FAULT_VFS_H_
