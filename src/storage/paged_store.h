#ifndef DBPL_STORAGE_PAGED_STORE_H_
#define DBPL_STORAGE_PAGED_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace dbpl::storage {

/// A page-per-record key-value store over `Pager` + `BufferPool` —
/// the *ablation baseline* for the log-structured `KvStore`.
///
/// Design: each record occupies one page, laid out as
/// `[varint keylen][key][value...]`; an empty page (payload length 0)
/// is free. The directory (key → page) is rebuilt by scanning page
/// headers at open. Writes go through the buffer pool and reach disk
/// on `Flush`.
///
/// Deliberately missing, and measured/tested as such: a write-ahead
/// log. Updates are in-place, so a crash between the page writes of a
/// multi-record update can leave a *torn batch* — half old state, half
/// new. Individual pages are still CRC-protected (a torn single page
/// is detected, not silently read). `storage_ablation_test.cc`
/// demonstrates the torn batch against `KvStore`'s atomic recovery,
/// and bench E9 (`bench_e9_storage_ablation`) compares throughput.
class PagedStore {
 public:
  /// Opens the store through `vfs` (which must outlive it).
  static Result<std::unique_ptr<PagedStore>> Open(
      Vfs* vfs, const std::string& path, size_t page_size = kDefaultPageSize,
      size_t cache_pages = 64);
  /// As above, on the production VFS.
  static Result<std::unique_ptr<PagedStore>> Open(
      const std::string& path, size_t page_size = kDefaultPageSize,
      size_t cache_pages = 64) {
    return Open(Vfs::Default(), path, page_size, cache_pages);
  }

  PagedStore(const PagedStore&) = delete;
  PagedStore& operator=(const PagedStore&) = delete;

  /// Stages a write (in-place page update through the cache). The
  /// record (key + value + header) must fit in one page.
  Status Put(std::string_view key, std::string_view value);

  /// Stages a delete (frees the record's page).
  Status Delete(std::string_view key);

  Result<std::string> Get(std::string_view key);

  bool Contains(std::string_view key) const {
    return directory_.find(key) != directory_.end();
  }
  size_t size() const { return directory_.size(); }
  std::vector<std::string> Keys() const;

  /// Writes every dirty page back and fsyncs. NOT atomic across pages.
  Status Flush();

  const BufferPool::Stats& cache_stats() const { return pool_->stats(); }
  uint64_t page_count() const { return pager_->page_count(); }

 private:
  PagedStore(std::unique_ptr<Pager> pager, size_t cache_pages)
      : pager_(std::move(pager)),
        pool_(std::make_unique<BufferPool>(pager_.get(), cache_pages)) {}

  Status LoadDirectory();
  static void EncodeRecord(std::string_view key, std::string_view value,
                           std::vector<uint8_t>* out);

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::map<std::string, PageId, std::less<>> directory_;
  std::vector<PageId> free_pages_;
};

}  // namespace dbpl::storage

#endif  // DBPL_STORAGE_PAGED_STORE_H_
