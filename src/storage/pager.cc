#include "storage/pager.h"

#include <cstring>

#include "common/crc32c.h"

namespace dbpl::storage {

Result<std::unique_ptr<Pager>> Pager::Open(Vfs* vfs, const std::string& path,
                                           size_t page_size) {
  if (page_size < 64 || page_size % 8 != 0) {
    return Status::InvalidArgument("page size must be >=64 and 8-aligned");
  }
  DBPL_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file,
                        vfs->Open(path, OpenMode::kReadWrite));
  DBPL_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size % page_size != 0) {
    return Status::Corruption("file size " + std::to_string(size) +
                              " is not a multiple of page size");
  }
  uint64_t page_count = size / page_size;
  return std::unique_ptr<Pager>(
      new Pager(std::move(file), path, page_size, page_count));
}

Result<PageId> Pager::Allocate() {
  PageId id = page_count_;
  std::vector<uint8_t> empty;
  ++page_count_;  // Write() checks id < page_count_.
  Status s = Write(id, empty);
  if (!s.ok()) {
    --page_count_;
    return s;
  }
  return id;
}

Result<std::vector<uint8_t>> Pager::Read(PageId id) const {
  if (id >= page_count_) {
    return Status::InvalidArgument("page out of range: " + std::to_string(id));
  }
  std::vector<uint8_t> page(page_size_);
  DBPL_ASSIGN_OR_RETURN(size_t n,
                        file_->ReadAt(id * page_size_, page.data(),
                                      page_size_));
  if (n != page_size_) {
    return Status::Corruption("short page read");
  }
  uint32_t stored_crc = 0, len = 0;
  std::memcpy(&stored_crc, page.data(), 4);
  std::memcpy(&len, page.data() + 4, 4);
  if (len > payload_size()) {
    return Status::Corruption("page payload length out of range");
  }
  uint32_t actual = Crc32c(page.data() + 8, len);
  if (MaskCrc(actual) != stored_crc) {
    return Status::Corruption("page checksum mismatch on page " +
                              std::to_string(id));
  }
  return std::vector<uint8_t>(page.begin() + 8, page.begin() + 8 + len);
}

Status Pager::Write(PageId id, const std::vector<uint8_t>& payload) {
  if (id >= page_count_) {
    return Status::InvalidArgument("page out of range: " + std::to_string(id));
  }
  if (payload.size() > payload_size()) {
    return Status::InvalidArgument("payload exceeds page capacity");
  }
  std::vector<uint8_t> page(page_size_, 0);
  uint32_t crc = MaskCrc(Crc32c(payload.data(), payload.size()));
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(page.data(), &crc, 4);
  std::memcpy(page.data() + 4, &len, 4);
  std::memcpy(page.data() + 8, payload.data(), payload.size());
  return file_->WriteAt(id * page_size_, page.data(), page_size_);
}

Status Pager::Sync() { return file_->Sync(); }

}  // namespace dbpl::storage
