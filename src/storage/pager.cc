#include "storage/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"

namespace dbpl::storage {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                           size_t page_size) {
  if (page_size < 64 || page_size % 8 != 0) {
    return Status::InvalidArgument("page size must be >=64 and 8-aligned");
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open " + path);
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Errno("lseek " + path);
  }
  if (static_cast<size_t>(size) % page_size != 0) {
    ::close(fd);
    return Status::Corruption("file size " + std::to_string(size) +
                              " is not a multiple of page size");
  }
  uint64_t page_count = static_cast<uint64_t>(size) / page_size;
  return std::unique_ptr<Pager>(
      new Pager(fd, path, page_size, page_count));
}

Pager::~Pager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<PageId> Pager::Allocate() {
  PageId id = page_count_;
  std::vector<uint8_t> empty;
  ++page_count_;  // Write() checks id < page_count_.
  Status s = Write(id, empty);
  if (!s.ok()) {
    --page_count_;
    return s;
  }
  return id;
}

Result<std::vector<uint8_t>> Pager::Read(PageId id) const {
  if (id >= page_count_) {
    return Status::InvalidArgument("page out of range: " + std::to_string(id));
  }
  std::vector<uint8_t> page(page_size_);
  ssize_t n = ::pread(fd_, page.data(), page_size_,
                      static_cast<off_t>(id * page_size_));
  if (n < 0) return Errno("pread");
  if (static_cast<size_t>(n) != page_size_) {
    return Status::Corruption("short page read");
  }
  uint32_t stored_crc = 0, len = 0;
  std::memcpy(&stored_crc, page.data(), 4);
  std::memcpy(&len, page.data() + 4, 4);
  if (len > payload_size()) {
    return Status::Corruption("page payload length out of range");
  }
  uint32_t actual = Crc32c(page.data() + 8, len);
  if (MaskCrc(actual) != stored_crc) {
    return Status::Corruption("page checksum mismatch on page " +
                              std::to_string(id));
  }
  return std::vector<uint8_t>(page.begin() + 8, page.begin() + 8 + len);
}

Status Pager::Write(PageId id, const std::vector<uint8_t>& payload) {
  if (id >= page_count_) {
    return Status::InvalidArgument("page out of range: " + std::to_string(id));
  }
  if (payload.size() > payload_size()) {
    return Status::InvalidArgument("payload exceeds page capacity");
  }
  std::vector<uint8_t> page(page_size_, 0);
  uint32_t crc = MaskCrc(Crc32c(payload.data(), payload.size()));
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(page.data(), &crc, 4);
  std::memcpy(page.data() + 4, &len, 4);
  std::memcpy(page.data() + 8, payload.data(), payload.size());
  ssize_t n = ::pwrite(fd_, page.data(), page_size_,
                       static_cast<off_t>(id * page_size_));
  if (n < 0) return Errno("pwrite");
  if (static_cast<size_t>(n) != page_size_) {
    return Status::IoError("short page write");
  }
  return Status::OK();
}

Status Pager::Sync() {
  if (::fsync(fd_) != 0) return Errno("fsync");
  return Status::OK();
}

}  // namespace dbpl::storage
