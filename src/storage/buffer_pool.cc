#include "storage/buffer_pool.h"

#include <utility>

namespace dbpl::storage {

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager), capacity_(capacity == 0 ? 1 : capacity) {}

void BufferPool::Touch(PageId id, Entry& entry) {
  lru_.erase(entry.lru_pos);
  lru_.push_front(id);
  entry.lru_pos = lru_.begin();
}

Status BufferPool::MaybeEvict() {
  while (entries_.size() > capacity_) {
    PageId victim = lru_.back();
    auto it = entries_.find(victim);
    if (it->second.dirty) {
      DBPL_RETURN_IF_ERROR(pager_->Write(victim, it->second.payload));
      ++stats_.writebacks;
    }
    lru_.pop_back();
    entries_.erase(it);
    ++stats_.evictions;
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> BufferPool::Get(PageId id) {
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    ++stats_.hits;
    Touch(id, it->second);
    return it->second.payload;
  }
  ++stats_.misses;
  DBPL_ASSIGN_OR_RETURN(std::vector<uint8_t> payload, pager_->Read(id));
  lru_.push_front(id);
  Entry entry;
  entry.payload = payload;
  entry.lru_pos = lru_.begin();
  entries_.emplace(id, std::move(entry));
  DBPL_RETURN_IF_ERROR(MaybeEvict());
  return payload;
}

Status BufferPool::Put(PageId id, std::vector<uint8_t> payload) {
  if (payload.size() > pager_->payload_size()) {
    return Status::InvalidArgument("payload exceeds page capacity");
  }
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.payload = std::move(payload);
    it->second.dirty = true;
    Touch(id, it->second);
    return Status::OK();
  }
  lru_.push_front(id);
  Entry entry;
  entry.payload = std::move(payload);
  entry.dirty = true;
  entry.lru_pos = lru_.begin();
  entries_.emplace(id, std::move(entry));
  return MaybeEvict();
}

Status BufferPool::Flush() {
  for (auto& [id, entry] : entries_) {
    if (entry.dirty) {
      DBPL_RETURN_IF_ERROR(pager_->Write(id, entry.payload));
      entry.dirty = false;
      ++stats_.writebacks;
    }
  }
  return pager_->Sync();
}

}  // namespace dbpl::storage
