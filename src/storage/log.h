#ifndef DBPL_STORAGE_LOG_H_
#define DBPL_STORAGE_LOG_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/vfs.h"

namespace dbpl::storage {

/// Record kinds in the write-ahead log.
enum class LogRecordType : uint8_t {
  /// Set `key` to `value`.
  kPut = 1,
  /// Remove `key`.
  kDelete = 2,
  /// Transaction boundary: everything since the previous commit becomes
  /// durable and visible at recovery.
  kCommit = 3,
};

struct LogRecord {
  LogRecordType type = LogRecordType::kCommit;
  std::string key;
  std::string value;

  bool operator==(const LogRecord& other) const = default;
};

/// Largest record body (type byte + framed key + framed value) either
/// side of the log accepts. The reader treats a length field above this
/// as a corrupt tail, so the writer must reject such records at append
/// time — otherwise a record could be written that recovery can never
/// read back.
inline constexpr uint64_t kMaxLogRecordBody = 1ull << 30;

/// Appends CRC-framed records to a log file.
///
/// Framing: `[u32 masked crc of body][u32 body length][body]`, where the
/// body is `[u8 type][varint key length][key][varint value length][value]`.
/// A torn final record (crash mid-append) fails its CRC and is dropped at
/// recovery, together with any uncommitted records before it.
///
/// Thread safety: *externally synchronized*. A LogWriter carries no
/// internal lock; exactly one thread may use it at a time. In
/// persist::WalDatabase each writer is reached only through its lane's
/// `Lane::writer` pointer, which is DBPL_PT_GUARDED_BY the lane mutex —
/// so Clang's capability analysis proves every Append/Sync happens
/// under that lock (DESIGN.md §10).
class LogWriter {
 public:
  /// Opens `path` for appending through `vfs`, creating it if absent.
  /// `vfs` must outlive the writer.
  static Result<std::unique_ptr<LogWriter>> Open(Vfs* vfs,
                                                 const std::string& path);
  /// As above, on the production VFS.
  static Result<std::unique_ptr<LogWriter>> Open(const std::string& path) {
    return Open(Vfs::Default(), path);
  }

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Appends one record. Records whose body would exceed
  /// `kMaxLogRecordBody` are rejected with InvalidArgument *before*
  /// anything reaches the file (the reader would treat them as a
  /// corrupt tail). An I/O failure may leave a torn frame mid-log, so
  /// it poisons the writer: every later Append/Sync fails with
  /// FailedPrecondition, because bytes appended after a torn frame are
  /// unreachable to the reader. Recover by reopening the log.
  Status Append(const LogRecord& record);
  /// Flushes to stable storage. A failed sync leaves durability
  /// unknown, so it poisons the writer too.
  Status Sync();

  uint64_t bytes_written() const { return bytes_written_; }

  /// True once an I/O failure has made further appends unsafe.
  bool poisoned() const { return poisoned_; }

 private:
  LogWriter(std::unique_ptr<VfsFile> file, uint64_t existing_bytes)
      : file_(std::move(file)), bytes_written_(existing_bytes) {}

  std::unique_ptr<VfsFile> file_;
  uint64_t bytes_written_;
  bool poisoned_ = false;
};

/// Streams records back from a log file, stopping cleanly at the first
/// corrupt or truncated record (the "tail").
///
/// The reader doubles as a *tail-following cursor* for log shipping
/// (persist::Replica): `offset()` is always frame-aligned (it advances
/// only past records returned to the caller, never into a damaged
/// tail), `OpenAt` resumes a cursor at such an offset, and `Resume()`
/// clears the end-of-log latch so `Next` re-probes a file that may have
/// grown since — whether the previous probe ended cleanly (no more
/// bytes) or on an incomplete frame (an append that was still in
/// flight, which later bytes may complete). The clean-end / torn-end
/// distinction therefore means "at the moment of the probe": only the
/// writer's side (a poisoned LogWriter, or a durable bound from
/// persist::WalDatabase) can say whether a torn tail is permanent.
///
/// Thread safety: externally synchronized, like LogWriter. The
/// shipping cursors in persist::Replica are touched only with the
/// replica mutex held (DBPL_GUARDED_BY on `Replica::readers_`).
class LogReader {
 public:
  /// Opens `path` for reading through `vfs` (which must outlive the
  /// reader).
  static Result<std::unique_ptr<LogReader>> Open(Vfs* vfs,
                                                 const std::string& path);
  static Result<std::unique_ptr<LogReader>> Open(const std::string& path) {
    return Open(Vfs::Default(), path);
  }

  /// Opens a cursor positioned at `offset`, which must be a
  /// frame-aligned byte offset previously obtained from `offset()`
  /// (0 is the start of the log). An arbitrary offset is detected by
  /// the CRC framing as a corrupt tail, not undefined behaviour.
  static Result<std::unique_ptr<LogReader>> OpenAt(Vfs* vfs,
                                                   const std::string& path,
                                                   uint64_t offset);

  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  /// Reads the next record into `out`. Returns false at (clean or
  /// corrupt) end of log.
  Result<bool> Next(LogRecord* out);

  /// True when reading stopped because of a damaged/incomplete tail
  /// rather than a clean end of file.
  bool saw_corrupt_tail() const { return saw_corrupt_tail_; }

  /// Byte offset of the next unread record: the frame-aligned position
  /// just past the last record `Next` returned. Unchanged by a probe
  /// that hit the (clean or corrupt) end of the log.
  uint64_t offset() const { return offset_; }

  /// Re-arms the cursor after `Next` returned false: clears the
  /// end-of-log latch (and the corrupt-tail flag) so the next `Next`
  /// re-reads from `offset()`. Bytes appended since — including the
  /// completion of a frame that was mid-append at the last probe — then
  /// become visible. A genuinely damaged tail simply reports
  /// `saw_corrupt_tail` again.
  void Resume() {
    done_ = false;
    saw_corrupt_tail_ = false;
  }

 private:
  explicit LogReader(std::unique_ptr<VfsFile> file) : file_(std::move(file)) {}

  std::unique_ptr<VfsFile> file_;
  uint64_t offset_ = 0;
  bool saw_corrupt_tail_ = false;
  bool done_ = false;
};

}  // namespace dbpl::storage

#endif  // DBPL_STORAGE_LOG_H_
