#ifndef DBPL_STORAGE_BUFFER_POOL_H_
#define DBPL_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "common/result.h"
#include "storage/pager.h"

namespace dbpl::storage {

/// A write-back LRU page cache over a `Pager`.
///
/// `Get` reads through the cache; `Put` stages a dirty page; eviction of
/// a dirty page writes it back; `Flush` writes all dirty pages and syncs
/// the file. Single-threaded by design (the library has no internal
/// concurrency; see DESIGN.md).
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
  };

  /// `capacity` is the number of cached pages (>=1).
  BufferPool(Pager* pager, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// The page payload, from cache or disk.
  Result<std::vector<uint8_t>> Get(PageId id);

  /// Stages new payload for a page (marks it dirty in the cache).
  Status Put(PageId id, std::vector<uint8_t> payload);

  /// Writes every dirty page back and syncs.
  Status Flush();

  const Stats& stats() const { return stats_; }
  size_t cached_pages() const { return entries_.size(); }

 private:
  struct Entry {
    std::vector<uint8_t> payload;
    bool dirty = false;
    std::list<PageId>::iterator lru_pos;
  };

  /// Moves `id` to the most-recently-used position.
  void Touch(PageId id, Entry& entry);
  /// Evicts the least-recently-used page if over capacity.
  Status MaybeEvict();

  Pager* pager_;
  size_t capacity_;
  std::map<PageId, Entry> entries_;
  /// Front = most recently used.
  std::list<PageId> lru_;
  Stats stats_;
};

}  // namespace dbpl::storage

#endif  // DBPL_STORAGE_BUFFER_POOL_H_
