#include "storage/fault_vfs.h"

#include <algorithm>
#include <cstring>

namespace dbpl::storage {
namespace {

/// Copies `n` bytes into `buf` at `offset`, zero-extending the buffer
/// first if the write starts or ends past its current size.
void ApplyWriteTo(std::vector<uint8_t>* buf, uint64_t offset,
                  const uint8_t* data, size_t n) {
  if (n == 0) return;
  size_t end = static_cast<size_t>(offset) + n;
  if (buf->size() < end) buf->resize(end, 0);
  std::memcpy(buf->data() + offset, data, n);
}

Status Stale() {
  return Status::IoError("stale file handle: file opened before power loss");
}

Status Crashed() {
  return Status::IoError("injected fault: I/O after crash point");
}

}  // namespace

/// A handle into one FaultVfs inode. Handles opened before a PowerLoss
/// are stale (the epoch moved on) and fail every operation.
class FaultVfsFile : public VfsFile {
 public:
  FaultVfsFile(FaultVfs* vfs, std::shared_ptr<FaultVfs::FileState> state,
               uint64_t epoch, bool writable)
      : vfs_(vfs), state_(std::move(state)), epoch_(epoch),
        writable_(writable) {}

  Result<size_t> ReadAt(uint64_t offset, void* out, size_t n) override {
    if (epoch_ != vfs_->epoch_) return Stale();
    if (vfs_->crashed_) return Crashed();
    const std::vector<uint8_t>& bytes = state_->current;
    if (offset >= bytes.size()) return size_t{0};
    size_t got = std::min(n, bytes.size() - static_cast<size_t>(offset));
    std::memcpy(out, bytes.data() + offset, got);
    return got;
  }

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    if (epoch_ != vfs_->epoch_) return Stale();
    if (!writable_) return Status::IoError("file not open for writing");
    size_t torn = 0;
    Status gate = vfs_->CountMutation(n, &torn);
    const auto* src = static_cast<const uint8_t*>(data);
    size_t apply = gate.ok() ? n : torn;
    if (apply > 0) {
      ApplyWriteTo(&state_->current, offset, src, apply);
      state_->pending.push_back(
          {offset, std::vector<uint8_t>(src, src + apply)});
    }
    return gate;
  }

  Status Append(const void* data, size_t n) override {
    if (epoch_ != vfs_->epoch_) return Stale();
    return WriteAt(state_->current.size(), data, n);
  }

  Result<uint64_t> Size() const override {
    if (epoch_ != vfs_->epoch_) return Stale();
    if (vfs_->crashed_) return Crashed();
    return static_cast<uint64_t>(state_->current.size());
  }

  Status Sync() override {
    if (epoch_ != vfs_->epoch_) return Stale();
    DBPL_RETURN_IF_ERROR(vfs_->CountMutation(0, nullptr));
    if (vfs_->drop_syncs_) return Status::OK();  // the lying fsync
    state_->durable = state_->current;
    state_->pending.clear();
    return Status::OK();
  }

 private:
  FaultVfs* vfs_;
  std::shared_ptr<FaultVfs::FileState> state_;
  uint64_t epoch_;
  bool writable_;
};

FaultVfs::FaultVfs(uint64_t seed)
    : rng_state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

FaultVfs::~FaultVfs() = default;

uint64_t FaultVfs::NextRandom() {
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  return rng_state_;
}

Status FaultVfs::CountMutation(size_t n, size_t* torn_prefix) {
  if (torn_prefix != nullptr) *torn_prefix = 0;
  if (crashed_) return Crashed();
  ++op_count_;
  if (crash_at_op_ != 0 && op_count_ >= crash_at_op_) {
    crashed_ = true;
    // A crashing write applies a seeded-RNG prefix of its bytes first:
    // the short / torn write.
    if (torn_prefix != nullptr && n > 0) {
      *torn_prefix = static_cast<size_t>(NextRandom() % (n + 1));
    }
    return Status::IoError("injected fault: crash at mutating op " +
                           std::to_string(op_count_));
  }
  return Status::OK();
}

void FaultVfs::CrashAtMutatingOp(uint64_t k) {
  crash_at_op_ = k == 0 ? 0 : op_count_ + k;
}

void FaultVfs::ClearCrash() {
  crashed_ = false;
  crash_at_op_ = 0;
}

void FaultVfs::PowerLoss(UnsyncedFate fate) {
  for (auto& [path, state] : files_) {
    switch (fate) {
      case UnsyncedFate::kLost:
        state->current = state->durable;
        break;
      case UnsyncedFate::kSurvives:
        state->durable = state->current;
        break;
      case UnsyncedFate::kTornPrefix: {
        // A seeded-RNG prefix of the unsynced writes reaches stable
        // storage, in write order; the first lost write may itself be
        // torn mid-record.
        std::vector<uint8_t> image = state->durable;
        uint64_t keep = NextRandom() % (state->pending.size() + 1);
        for (uint64_t i = 0; i < keep; ++i) {
          const PendingWrite& w = state->pending[i];
          ApplyWriteTo(&image, w.offset, w.bytes.data(), w.bytes.size());
        }
        if (keep < state->pending.size()) {
          const PendingWrite& w = state->pending[keep];
          size_t part = static_cast<size_t>(NextRandom() % (w.bytes.size() + 1));
          ApplyWriteTo(&image, w.offset, w.bytes.data(), part);
        }
        state->durable = image;
        state->current = std::move(image);
        break;
      }
    }
    state->pending.clear();
  }
  ++epoch_;  // every open handle is now stale
  ClearCrash();
}

Result<std::unique_ptr<VfsFile>> FaultVfs::Open(const std::string& path,
                                                OpenMode mode) {
  if (crashed_) return Crashed();
  auto it = files_.find(path);
  bool writable = mode != OpenMode::kRead;
  if (mode == OpenMode::kRead) {
    if (it == files_.end()) return Status::NotFound("no such file: " + path);
    return std::unique_ptr<VfsFile>(
        new FaultVfsFile(this, it->second, epoch_, writable));
  }
  // Creation and truncation are namespace/metadata mutations: counted
  // as ops and, when they succeed, immediately durable (the journaled-
  // metadata simplification — data writes are the fault surface).
  if (it == files_.end()) {
    DBPL_RETURN_IF_ERROR(CountMutation(0, nullptr));
    it = files_.emplace(path, std::make_shared<FileState>()).first;
  } else if (mode == OpenMode::kTruncate) {
    DBPL_RETURN_IF_ERROR(CountMutation(0, nullptr));
    it->second->current.clear();
    it->second->durable.clear();
    it->second->pending.clear();
  }
  return std::unique_ptr<VfsFile>(
      new FaultVfsFile(this, it->second, epoch_, writable));
}

bool FaultVfs::Exists(const std::string& path) const {
  return files_.contains(path) || dirs_.contains(path);
}

Status FaultVfs::Remove(const std::string& path) {
  DBPL_RETURN_IF_ERROR(CountMutation(0, nullptr));
  if (files_.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::OK();
}

Status FaultVfs::Rename(const std::string& from, const std::string& to) {
  DBPL_RETURN_IF_ERROR(CountMutation(0, nullptr));
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  files_[to] = it->second;
  files_.erase(it);
  return Status::OK();
}

Status FaultVfs::CreateDir(const std::string& path) {
  if (dirs_.contains(path)) return Status::OK();
  DBPL_RETURN_IF_ERROR(CountMutation(0, nullptr));
  dirs_.insert(path);
  return Status::OK();
}

Result<std::vector<std::string>> FaultVfs::ListDir(
    const std::string& path) const {
  std::vector<std::string> out;
  const std::string prefix = path + "/";
  for (const auto& [p, _] : files_) {
    if (p.size() <= prefix.size() ||
        p.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::string name = p.substr(prefix.size());
    if (name.find('/') != std::string::npos) continue;  // nested deeper
    out.push_back(std::move(name));
  }
  return out;  // map iteration order is already sorted
}

Status FaultVfs::FlipBit(const std::string& path, uint64_t bit_index) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  size_t byte = static_cast<size_t>(bit_index / 8);
  uint8_t mask = static_cast<uint8_t>(1u << (bit_index % 8));
  if (byte >= it->second->current.size()) {
    return Status::InvalidArgument("bit index past end of file");
  }
  it->second->current[byte] ^= mask;
  if (byte < it->second->durable.size()) it->second->durable[byte] ^= mask;
  return Status::OK();
}

void FaultVfs::SetFileBytes(const std::string& path,
                            std::vector<uint8_t> bytes) {
  auto state = std::make_shared<FileState>();
  state->durable = bytes;
  state->current = std::move(bytes);
  files_[path] = std::move(state);
}

Result<std::vector<uint8_t>> FaultVfs::GetFileBytes(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second->current;
}

std::vector<std::string> FaultVfs::Paths() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [p, _] : files_) out.push_back(p);
  return out;
}

}  // namespace dbpl::storage
