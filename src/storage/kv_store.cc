#include "storage/kv_store.h"

#include <cstdio>

namespace dbpl::storage {

Result<std::unique_ptr<KvStore>> KvStore::Open(Vfs* vfs,
                                               const std::string& path) {
  std::unique_ptr<KvStore> store(new KvStore(vfs, path));
  // Touch the file so replay and the writer agree it exists.
  {
    DBPL_ASSIGN_OR_RETURN(std::unique_ptr<LogWriter> writer,
                          LogWriter::Open(vfs, path));
    (void)writer;
  }
  DBPL_RETURN_IF_ERROR(store->Replay());
  DBPL_ASSIGN_OR_RETURN(store->writer_, LogWriter::Open(vfs, path));
  return store;
}

Status KvStore::Replay() {
  DBPL_ASSIGN_OR_RETURN(std::unique_ptr<LogReader> reader,
                        LogReader::Open(vfs_, path_));
  std::vector<LogRecord> pending;
  LogRecord record;
  while (true) {
    DBPL_ASSIGN_OR_RETURN(bool has, reader->Next(&record));
    if (!has) break;
    ++recovery_.records_replayed;
    if (record.type == LogRecordType::kCommit) {
      for (auto& r : pending) {
        if (r.type == LogRecordType::kPut) {
          index_[std::move(r.key)] = std::move(r.value);
        } else {
          index_.erase(r.key);
        }
      }
      pending.clear();
      ++recovery_.batches_committed;
    } else {
      pending.push_back(std::move(record));
    }
  }
  recovery_.uncommitted_dropped = pending.size();
  recovery_.corrupt_tail = reader->saw_corrupt_tail();
  return Status::OK();
}

Status KvStore::Apply(const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  for (const auto& r : batch.records()) {
    DBPL_RETURN_IF_ERROR(writer_->Append(r));
  }
  DBPL_RETURN_IF_ERROR(
      writer_->Append(LogRecord{LogRecordType::kCommit, "", ""}));
  DBPL_RETURN_IF_ERROR(writer_->Sync());
  for (const auto& r : batch.records()) {
    if (r.type == LogRecordType::kPut) {
      index_[r.key] = r.value;
    } else {
      index_.erase(r.key);
    }
  }
  return Status::OK();
}

Result<std::string> KvStore::Get(std::string_view key) const {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound("no such key: " + std::string(key));
  }
  return it->second;
}

bool KvStore::Contains(std::string_view key) const {
  return index_.find(key) != index_.end();
}

std::vector<std::string> KvStore::Keys() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [k, _] : index_) out.push_back(k);
  return out;
}

std::vector<std::string> KvStore::KeysWithPrefix(
    std::string_view prefix) const {
  std::vector<std::string> out;
  for (auto it = index_.lower_bound(prefix); it != index_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

Status KvStore::Compact() {
  const std::string tmp = path_ + ".compact";
  if (vfs_->Exists(tmp)) DBPL_RETURN_IF_ERROR(vfs_->Remove(tmp));
  {
    DBPL_ASSIGN_OR_RETURN(std::unique_ptr<LogWriter> writer,
                          LogWriter::Open(vfs_, tmp));
    for (const auto& [k, v] : index_) {
      DBPL_RETURN_IF_ERROR(
          writer->Append(LogRecord{LogRecordType::kPut, k, v}));
    }
    DBPL_RETURN_IF_ERROR(
        writer->Append(LogRecord{LogRecordType::kCommit, "", ""}));
    DBPL_RETURN_IF_ERROR(writer->Sync());
  }
  writer_.reset();  // close the old log before replacing it
  DBPL_RETURN_IF_ERROR(vfs_->Rename(tmp, path_));
  DBPL_ASSIGN_OR_RETURN(writer_, LogWriter::Open(vfs_, path_));
  return Status::OK();
}

uint64_t KvStore::log_bytes() const {
  return writer_ ? writer_->bytes_written() : 0;
}

}  // namespace dbpl::storage
