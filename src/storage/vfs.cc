#include "storage/vfs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace dbpl::storage {
namespace {

Status Errno(const std::string& what) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): strerror's static buffer is
  // benign here — glibc uses a thread-local one, and the string is
  // copied into the Status before any other call could clobber it.
  return Status::IoError(what + ": " + std::strerror(errno));
}

class PosixVfsFile : public VfsFile {
 public:
  PosixVfsFile(int fd, bool append_only) : fd_(fd), append_only_(append_only) {}
  ~PosixVfsFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> ReadAt(uint64_t offset, void* out, size_t n) override {
    size_t total = 0;
    auto* dst = static_cast<uint8_t*>(out);
    while (total < n) {
      ssize_t got = ::pread(fd_, dst + total, n - total,
                            static_cast<off_t>(offset + total));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Errno("pread");
      }
      if (got == 0) break;  // end of file
      total += static_cast<size_t>(got);
    }
    return total;
  }

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    size_t total = 0;
    const auto* src = static_cast<const uint8_t*>(data);
    while (total < n) {
      ssize_t put = ::pwrite(fd_, src + total, n - total,
                             static_cast<off_t>(offset + total));
      if (put < 0) {
        if (errno == EINTR) continue;
        return Errno("pwrite");
      }
      total += static_cast<size_t>(put);
    }
    return Status::OK();
  }

  Status Append(const void* data, size_t n) override {
    // O_APPEND files write at the end regardless of offset; others
    // append at the current size.
    if (append_only_) {
      size_t total = 0;
      const auto* src = static_cast<const uint8_t*>(data);
      while (total < n) {
        ssize_t put = ::write(fd_, src + total, n - total);
        if (put < 0) {
          if (errno == EINTR) continue;
          return Errno("write");
        }
        total += static_cast<size_t>(put);
      }
      return Status::OK();
    }
    DBPL_ASSIGN_OR_RETURN(uint64_t size, Size());
    return WriteAt(size, data, n);
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return Errno("fstat");
    return static_cast<uint64_t>(st.st_size);
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Errno("fsync");
    return Status::OK();
  }

 private:
  int fd_;
  bool append_only_;
};

}  // namespace

Result<std::vector<uint8_t>> Vfs::ReadFileBytes(const std::string& path) {
  DBPL_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file,
                        Open(path, OpenMode::kRead));
  DBPL_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::vector<uint8_t> out(static_cast<size_t>(size));
  DBPL_ASSIGN_OR_RETURN(size_t n, file->ReadAt(0, out.data(), out.size()));
  if (n != out.size()) return Status::IoError("short read of " + path);
  return out;
}

Status Vfs::WriteFileAtomic(const std::string& path, const void* data,
                            size_t n) {
  const std::string tmp = path + ".tmp";
  {
    DBPL_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file,
                          Open(tmp, OpenMode::kTruncate));
    DBPL_RETURN_IF_ERROR(file->Append(data, n));
    DBPL_RETURN_IF_ERROR(file->Sync());
  }
  return Rename(tmp, path);
}

Vfs* Vfs::Default() {
  static PosixVfs* vfs = new PosixVfs();
  return vfs;
}

Result<std::unique_ptr<VfsFile>> PosixVfs::Open(const std::string& path,
                                                OpenMode mode) {
  int flags = O_CLOEXEC;
  switch (mode) {
    case OpenMode::kRead:
      flags |= O_RDONLY;
      break;
    case OpenMode::kReadWrite:
      flags |= O_RDWR | O_CREAT;
      break;
    case OpenMode::kAppend:
      flags |= O_WRONLY | O_CREAT | O_APPEND;
      break;
    case OpenMode::kTruncate:
      flags |= O_RDWR | O_CREAT | O_TRUNC;
      break;
  }
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open " + path);
  }
  return std::unique_ptr<VfsFile>(
      new PosixVfsFile(fd, mode == OpenMode::kAppend));
}

bool PosixVfs::Exists(const std::string& path) const {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status PosixVfs::Remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("unlink " + path);
  }
  return Status::OK();
}

Status PosixVfs::Rename(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Errno("rename " + from + " -> " + to);
  }
  return Status::OK();
}

Status PosixVfs::CreateDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir " + path);
  }
  return Status::OK();
}

Result<std::vector<std::string>> PosixVfs::ListDir(
    const std::string& path) const {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return Errno("opendir " + path);
  std::vector<std::string> out;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    out.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dbpl::storage
