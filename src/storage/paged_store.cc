#include "storage/paged_store.h"

#include "common/bytes.h"

namespace dbpl::storage {

Result<std::unique_ptr<PagedStore>> PagedStore::Open(Vfs* vfs,
                                                     const std::string& path,
                                                     size_t page_size,
                                                     size_t cache_pages) {
  DBPL_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager,
                        Pager::Open(vfs, path, page_size));
  std::unique_ptr<PagedStore> store(
      new PagedStore(std::move(pager), cache_pages));
  DBPL_RETURN_IF_ERROR(store->LoadDirectory());
  return store;
}

Status PagedStore::LoadDirectory() {
  for (PageId id = 0; id < pager_->page_count(); ++id) {
    DBPL_ASSIGN_OR_RETURN(std::vector<uint8_t> payload, pager_->Read(id));
    if (payload.empty()) {
      free_pages_.push_back(id);
      continue;
    }
    ByteReader in(payload.data(), payload.size());
    DBPL_ASSIGN_OR_RETURN(std::string key, in.ReadString());
    directory_[std::move(key)] = id;
  }
  return Status::OK();
}

void PagedStore::EncodeRecord(std::string_view key, std::string_view value,
                              std::vector<uint8_t>* out) {
  ByteBuffer buf;
  buf.PutString(key);
  buf.PutRaw(value.data(), value.size());
  *out = buf.vec();
}

Status PagedStore::Put(std::string_view key, std::string_view value) {
  std::vector<uint8_t> record;
  EncodeRecord(key, value, &record);
  if (record.size() > pager_->payload_size()) {
    return Status::InvalidArgument("record exceeds page capacity (" +
                                   std::to_string(record.size()) + " > " +
                                   std::to_string(pager_->payload_size()) +
                                   ")");
  }
  auto it = directory_.find(key);
  PageId page;
  if (it != directory_.end()) {
    page = it->second;  // in-place update: the ablation point
  } else if (!free_pages_.empty()) {
    page = free_pages_.back();
    free_pages_.pop_back();
  } else {
    DBPL_ASSIGN_OR_RETURN(page, pager_->Allocate());
  }
  DBPL_RETURN_IF_ERROR(pool_->Put(page, std::move(record)));
  directory_[std::string(key)] = page;
  return Status::OK();
}

Status PagedStore::Delete(std::string_view key) {
  auto it = directory_.find(key);
  if (it == directory_.end()) {
    return Status::NotFound("no such key: " + std::string(key));
  }
  DBPL_RETURN_IF_ERROR(pool_->Put(it->second, {}));
  free_pages_.push_back(it->second);
  directory_.erase(it);
  return Status::OK();
}

Result<std::string> PagedStore::Get(std::string_view key) {
  auto it = directory_.find(key);
  if (it == directory_.end()) {
    return Status::NotFound("no such key: " + std::string(key));
  }
  DBPL_ASSIGN_OR_RETURN(std::vector<uint8_t> payload, pool_->Get(it->second));
  ByteReader in(payload.data(), payload.size());
  DBPL_ASSIGN_OR_RETURN(std::string stored_key, in.ReadString());
  if (stored_key != key) {
    return Status::Corruption("directory points at a page holding key '" +
                              stored_key + "'");
  }
  std::string value(payload.size() - in.position(), '\0');
  DBPL_RETURN_IF_ERROR(in.ReadRaw(value.data(), value.size()));
  return value;
}

std::vector<std::string> PagedStore::Keys() const {
  std::vector<std::string> out;
  out.reserve(directory_.size());
  for (const auto& [key, _] : directory_) out.push_back(key);
  return out;
}

Status PagedStore::Flush() { return pool_->Flush(); }

}  // namespace dbpl::storage
