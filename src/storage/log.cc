#include "storage/log.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/bytes.h"
#include "common/crc32c.h"

namespace dbpl::storage {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<LogWriter>> LogWriter::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) return Errno("fopen " + path);
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Errno("fseek " + path);
  }
  long pos = std::ftell(file);
  if (pos < 0) {
    std::fclose(file);
    return Errno("ftell " + path);
  }
  return std::unique_ptr<LogWriter>(
      new LogWriter(file, static_cast<uint64_t>(pos)));
}

LogWriter::~LogWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status LogWriter::Append(const LogRecord& record) {
  ByteBuffer body;
  body.PutU8(static_cast<uint8_t>(record.type));
  body.PutString(record.key);
  body.PutString(record.value);

  ByteBuffer frame;
  frame.PutU32(MaskCrc(Crc32c(body.data(), body.size())));
  frame.PutU32(static_cast<uint32_t>(body.size()));
  frame.PutRaw(body.data(), body.size());

  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Errno("fwrite log record");
  }
  bytes_written_ += frame.size();
  return Status::OK();
}

Status LogWriter::Sync() {
  if (std::fflush(file_) != 0) return Errno("fflush log");
  if (::fsync(::fileno(file_)) != 0) return Errno("fsync log");
  return Status::OK();
}

Result<std::unique_ptr<LogReader>> LogReader::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Errno("fopen " + path);
  return std::unique_ptr<LogReader>(new LogReader(file));
}

LogReader::~LogReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<bool> LogReader::Next(LogRecord* out) {
  if (done_) return false;
  uint8_t header[8];
  size_t n = std::fread(header, 1, sizeof(header), file_);
  if (n == 0 && std::feof(file_)) {
    done_ = true;
    return false;
  }
  if (n != sizeof(header)) {
    done_ = true;
    saw_corrupt_tail_ = true;
    return false;
  }
  uint32_t stored_crc = 0, len = 0;
  std::memcpy(&stored_crc, header, 4);
  std::memcpy(&len, header + 4, 4);
  // Sanity bound: a single record larger than 1 GiB is corruption.
  if (len < 1 || len > (1u << 30)) {
    done_ = true;
    saw_corrupt_tail_ = true;
    return false;
  }
  std::vector<uint8_t> body(len);
  if (std::fread(body.data(), 1, len, file_) != len) {
    done_ = true;
    saw_corrupt_tail_ = true;
    return false;
  }
  if (MaskCrc(Crc32c(body.data(), len)) != stored_crc) {
    done_ = true;
    saw_corrupt_tail_ = true;
    return false;
  }
  ByteReader reader(body.data(), body.size());
  Result<uint8_t> type = reader.ReadU8();
  Result<std::string> key =
      type.ok() ? reader.ReadString() : Result<std::string>(type.status());
  Result<std::string> value =
      key.ok() ? reader.ReadString() : Result<std::string>(key.status());
  if (!value.ok() ||
      *type < static_cast<uint8_t>(LogRecordType::kPut) ||
      *type > static_cast<uint8_t>(LogRecordType::kCommit)) {
    done_ = true;
    saw_corrupt_tail_ = true;
    return false;
  }
  out->type = static_cast<LogRecordType>(*type);
  out->key = std::move(key).value();
  out->value = std::move(value).value();
  return true;
}

}  // namespace dbpl::storage
