#include "storage/log.h"

#include <cstring>
#include <vector>

#include "common/bytes.h"
#include "common/crc32c.h"

namespace dbpl::storage {

Result<std::unique_ptr<LogWriter>> LogWriter::Open(Vfs* vfs,
                                                   const std::string& path) {
  DBPL_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file,
                        vfs->Open(path, OpenMode::kAppend));
  DBPL_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  return std::unique_ptr<LogWriter>(new LogWriter(std::move(file), size));
}

Status LogWriter::Append(const LogRecord& record) {
  ByteBuffer body;
  body.PutU8(static_cast<uint8_t>(record.type));
  body.PutString(record.key);
  body.PutString(record.value);

  ByteBuffer frame;
  frame.PutU32(MaskCrc(Crc32c(body.data(), body.size())));
  frame.PutU32(static_cast<uint32_t>(body.size()));
  frame.PutRaw(body.data(), body.size());

  DBPL_RETURN_IF_ERROR(file_->Append(frame.data(), frame.size()));
  bytes_written_ += frame.size();
  return Status::OK();
}

Status LogWriter::Sync() { return file_->Sync(); }

Result<std::unique_ptr<LogReader>> LogReader::Open(Vfs* vfs,
                                                   const std::string& path) {
  DBPL_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file,
                        vfs->Open(path, OpenMode::kRead));
  return std::unique_ptr<LogReader>(new LogReader(std::move(file)));
}

Result<bool> LogReader::Next(LogRecord* out) {
  if (done_) return false;
  uint8_t header[8];
  DBPL_ASSIGN_OR_RETURN(size_t n,
                        file_->ReadAt(offset_, header, sizeof(header)));
  if (n == 0) {
    done_ = true;
    return false;
  }
  if (n != sizeof(header)) {
    done_ = true;
    saw_corrupt_tail_ = true;
    return false;
  }
  uint32_t stored_crc = 0, len = 0;
  std::memcpy(&stored_crc, header, 4);
  std::memcpy(&len, header + 4, 4);
  // Sanity bound: a single record larger than 1 GiB is corruption.
  if (len < 1 || len > (1u << 30)) {
    done_ = true;
    saw_corrupt_tail_ = true;
    return false;
  }
  std::vector<uint8_t> body(len);
  DBPL_ASSIGN_OR_RETURN(size_t body_read,
                        file_->ReadAt(offset_ + sizeof(header), body.data(),
                                      len));
  if (body_read != len) {
    done_ = true;
    saw_corrupt_tail_ = true;
    return false;
  }
  if (MaskCrc(Crc32c(body.data(), len)) != stored_crc) {
    done_ = true;
    saw_corrupt_tail_ = true;
    return false;
  }
  ByteReader reader(body.data(), body.size());
  Result<uint8_t> type = reader.ReadU8();
  Result<std::string> key =
      type.ok() ? reader.ReadString() : Result<std::string>(type.status());
  Result<std::string> value =
      key.ok() ? reader.ReadString() : Result<std::string>(key.status());
  if (!value.ok() ||
      *type < static_cast<uint8_t>(LogRecordType::kPut) ||
      *type > static_cast<uint8_t>(LogRecordType::kCommit)) {
    done_ = true;
    saw_corrupt_tail_ = true;
    return false;
  }
  offset_ += sizeof(header) + len;
  out->type = static_cast<LogRecordType>(*type);
  out->key = std::move(key).value();
  out->value = std::move(value).value();
  return true;
}

}  // namespace dbpl::storage
