#include "storage/log.h"

#include <cstring>
#include <vector>

#include "common/bytes.h"
#include "common/crc32c.h"

namespace dbpl::storage {
namespace {

/// Bytes PutVarint uses for `v` (LEB128: 7 payload bits per byte).
uint64_t VarintLen(uint64_t v) {
  uint64_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

Result<std::unique_ptr<LogWriter>> LogWriter::Open(Vfs* vfs,
                                                   const std::string& path) {
  DBPL_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file,
                        vfs->Open(path, OpenMode::kAppend));
  DBPL_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  return std::unique_ptr<LogWriter>(new LogWriter(std::move(file), size));
}

Status LogWriter::Append(const LogRecord& record) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "log writer poisoned by an earlier I/O failure: a torn frame may "
        "sit mid-log, so further appends would be unreachable at recovery");
  }
  // Size check before any allocation or I/O: a record the reader's
  // sanity bound would classify as corruption must never be written.
  uint64_t body_size = 1 + VarintLen(record.key.size()) + record.key.size() +
                       VarintLen(record.value.size()) + record.value.size();
  if (body_size > kMaxLogRecordBody) {
    return Status::InvalidArgument(
        "log record body of " + std::to_string(body_size) +
        " bytes exceeds the " + std::to_string(kMaxLogRecordBody) +
        "-byte bound the reader accepts");
  }

  ByteBuffer body;
  body.PutU8(static_cast<uint8_t>(record.type));
  body.PutString(record.key);
  body.PutString(record.value);

  ByteBuffer frame;
  frame.PutU32(MaskCrc(Crc32c(body.data(), body.size())));
  frame.PutU32(static_cast<uint32_t>(body.size()));
  frame.PutRaw(body.data(), body.size());

  Status appended = file_->Append(frame.data(), frame.size());
  if (!appended.ok()) {
    poisoned_ = true;
    return appended;
  }
  bytes_written_ += frame.size();
  return Status::OK();
}

Status LogWriter::Sync() {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "log writer poisoned by an earlier I/O failure");
  }
  Status synced = file_->Sync();
  if (!synced.ok()) poisoned_ = true;
  return synced;
}

Result<std::unique_ptr<LogReader>> LogReader::Open(Vfs* vfs,
                                                   const std::string& path) {
  return OpenAt(vfs, path, 0);
}

Result<std::unique_ptr<LogReader>> LogReader::OpenAt(Vfs* vfs,
                                                     const std::string& path,
                                                     uint64_t offset) {
  DBPL_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file,
                        vfs->Open(path, OpenMode::kRead));
  std::unique_ptr<LogReader> reader(new LogReader(std::move(file)));
  reader->offset_ = offset;
  return reader;
}

Result<bool> LogReader::Next(LogRecord* out) {
  if (done_) return false;
  uint8_t header[8];
  DBPL_ASSIGN_OR_RETURN(size_t n,
                        file_->ReadAt(offset_, header, sizeof(header)));
  if (n == 0) {
    done_ = true;
    return false;
  }
  if (n != sizeof(header)) {
    done_ = true;
    saw_corrupt_tail_ = true;
    return false;
  }
  uint32_t stored_crc = 0, len = 0;
  std::memcpy(&stored_crc, header, 4);
  std::memcpy(&len, header + 4, 4);
  // Sanity bound: a length the writer would never produce is corruption.
  if (len < 1 || len > kMaxLogRecordBody) {
    done_ = true;
    saw_corrupt_tail_ = true;
    return false;
  }
  std::vector<uint8_t> body(len);
  DBPL_ASSIGN_OR_RETURN(size_t body_read,
                        file_->ReadAt(offset_ + sizeof(header), body.data(),
                                      len));
  if (body_read != len) {
    done_ = true;
    saw_corrupt_tail_ = true;
    return false;
  }
  if (MaskCrc(Crc32c(body.data(), len)) != stored_crc) {
    done_ = true;
    saw_corrupt_tail_ = true;
    return false;
  }
  ByteReader reader(body.data(), body.size());
  Result<uint8_t> type = reader.ReadU8();
  Result<std::string> key =
      type.ok() ? reader.ReadString() : Result<std::string>(type.status());
  Result<std::string> value =
      key.ok() ? reader.ReadString() : Result<std::string>(key.status());
  if (!value.ok() ||
      *type < static_cast<uint8_t>(LogRecordType::kPut) ||
      *type > static_cast<uint8_t>(LogRecordType::kCommit)) {
    done_ = true;
    saw_corrupt_tail_ = true;
    return false;
  }
  offset_ += sizeof(header) + len;
  out->type = static_cast<LogRecordType>(*type);
  out->key = std::move(key).value();
  out->value = std::move(value).value();
  return true;
}

}  // namespace dbpl::storage
