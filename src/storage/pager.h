#ifndef DBPL_STORAGE_PAGER_H_
#define DBPL_STORAGE_PAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/vfs.h"

namespace dbpl::storage {

/// Identifier of a fixed-size page in a paged file (0-based).
using PageId = uint64_t;

inline constexpr size_t kDefaultPageSize = 4096;

/// A paged file: fixed-size pages, each protected by a CRC-32C checksum
/// so torn or corrupted pages are detected at read time rather than
/// silently decoded.
///
/// Page layout: `[u32 masked crc][u32 payload length][payload][padding]`.
/// The usable payload per page is `page_size() - 8`.
class Pager {
 public:
  /// Opens (creating if necessary) the paged file at `path` through
  /// `vfs` (which must outlive the pager). An existing file must have a
  /// size that is a multiple of `page_size`.
  static Result<std::unique_ptr<Pager>> Open(
      Vfs* vfs, const std::string& path, size_t page_size = kDefaultPageSize);
  /// As above, on the production VFS.
  static Result<std::unique_ptr<Pager>> Open(
      const std::string& path, size_t page_size = kDefaultPageSize) {
    return Open(Vfs::Default(), path, page_size);
  }

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Total page size on disk.
  size_t page_size() const { return page_size_; }
  /// Usable bytes per page.
  size_t payload_size() const { return page_size_ - 8; }
  uint64_t page_count() const { return page_count_; }
  const std::string& path() const { return path_; }

  /// Appends a fresh zeroed page; returns its id.
  Result<PageId> Allocate();

  /// Reads a page's payload, verifying its checksum.
  Result<std::vector<uint8_t>> Read(PageId id) const;

  /// Writes a payload (at most `payload_size()` bytes) to a page.
  Status Write(PageId id, const std::vector<uint8_t>& payload);

  /// Flushes OS buffers to stable storage.
  Status Sync();

 private:
  Pager(std::unique_ptr<VfsFile> file, std::string path, size_t page_size,
        uint64_t page_count)
      : file_(std::move(file)),
        path_(std::move(path)),
        page_size_(page_size),
        page_count_(page_count) {}

  std::unique_ptr<VfsFile> file_;
  std::string path_;
  size_t page_size_;
  uint64_t page_count_;
};

}  // namespace dbpl::storage

#endif  // DBPL_STORAGE_PAGER_H_
