#include "classes/class_system.h"

#include <algorithm>
#include <set>

#include "core/order.h"
#include "types/subtype.h"
#include "types/type_of.h"

namespace dbpl::classes {

Status ClassSystem::DefineAggregateClass(const std::string& name,
                                         types::Type type,
                                         std::vector<std::string> parents) {
  return DefineClass(name, std::move(type), std::move(parents), {},
                     /*has_extent=*/false);
}

Status ClassSystem::DefineVariableClass(const std::string& name,
                                        types::Type type,
                                        std::vector<std::string> parents,
                                        std::vector<std::string> key) {
  return DefineClass(name, std::move(type), std::move(parents),
                     std::move(key), /*has_extent=*/true);
}

void ClassSystem::EnsureMetaObjects() {
  if (universal_class_object_ != core::kInvalidOid) return;
  universal_class_object_ = heap_->Allocate(core::Value::RecordOf(
      {{"Name", core::Value::String("CLASS")},
       {"Kind", core::Value::String("UniversalClass")}}));
  variable_metaclass_object_ = heap_->Allocate(core::Value::RecordOf(
      {{"Name", core::Value::String("VARIABLE_CLASS")},
       {"Kind", core::Value::String("MetaClass")},
       {"InstanceOf", core::Value::Ref(universal_class_object_)}}));
  aggregate_metaclass_object_ = heap_->Allocate(core::Value::RecordOf(
      {{"Name", core::Value::String("AGGREGATE_CLASS")},
       {"Kind", core::Value::String("MetaClass")},
       {"InstanceOf", core::Value::Ref(universal_class_object_)}}));
}

Status ClassSystem::DefineClass(const std::string& name, types::Type type,
                                std::vector<std::string> parents,
                                std::vector<std::string> key,
                                bool has_extent) {
  if (classes_.contains(name)) {
    return Status::AlreadyExists("class already defined: " + name);
  }
  for (const auto& p : parents) {
    auto it = classes_.find(p);
    if (it == classes_.end()) {
      return Status::NotFound("unknown parent class: " + p);
    }
    // The class hierarchy is *derived from* the type hierarchy: an
    // `isa` declaration that the types do not support is rejected.
    if (!types::IsSubtype(type, it->second.type)) {
      return Status::TypeError("type of " + name + " (" + type.ToString() +
                               ") is not a subtype of parent " + p + " (" +
                               it->second.type.ToString() + ")");
    }
  }
  EnsureMetaObjects();
  ClassInfo info;
  info.has_extent = has_extent;
  info.parents = std::move(parents);
  info.key = std::move(key);
  // Reify the class as an object: the class is an *instance of* its
  // meta-class (the Taxis instance hierarchy).
  info.class_object = heap_->Allocate(core::Value::RecordOf(
      {{"Name", core::Value::String(name)},
       {"Kind", core::Value::String(has_extent ? "VariableClass"
                                               : "AggregateClass")},
       {"TypeText", core::Value::String(type.ToString())},
       {"InstanceOf", core::Value::Ref(has_extent
                                           ? variable_metaclass_object_
                                           : aggregate_metaclass_object_)}}));
  info.type = std::move(type);
  classes_.emplace(name, std::move(info));
  return Status::OK();
}

Result<core::Oid> ClassSystem::ClassObject(const std::string& name) const {
  auto it = classes_.find(name);
  if (it == classes_.end()) {
    return Status::NotFound("unknown class: " + name);
  }
  return it->second.class_object;
}

Result<std::string> ClassSystem::ClassOfInstance(core::Oid oid) const {
  auto it = instance_class_.find(oid);
  if (it == instance_class_.end()) {
    return Status::NotFound("object " + std::to_string(oid) +
                            " was not created through a class");
  }
  return it->second;
}

Result<std::vector<core::Oid>> ClassSystem::InstanceChain(
    core::Oid oid) const {
  DBPL_ASSIGN_OR_RETURN(std::string cls, ClassOfInstance(oid));
  const ClassInfo& info = classes_.at(cls);
  return std::vector<core::Oid>{
      oid, info.class_object,
      info.has_extent ? variable_metaclass_object_
                      : aggregate_metaclass_object_,
      universal_class_object_};
}

Status ClassSystem::Include(const std::string& sub, const std::string& super) {
  auto sub_it = classes_.find(sub);
  if (sub_it == classes_.end()) {
    return Status::NotFound("unknown class: " + sub);
  }
  auto super_it = classes_.find(super);
  if (super_it == classes_.end()) {
    return Status::NotFound("unknown class: " + super);
  }
  if (sub != super && IsSubclass(super, sub)) {
    return Status::InvalidArgument("include would create a cycle");
  }
  if (!types::IsSubtype(sub_it->second.type, super_it->second.type)) {
    return Status::TypeError("include rejected: " + sub +
                             " is not a structural subtype of " + super);
  }
  if (IsSubclass(sub, super)) return Status::OK();  // already included
  sub_it->second.parents.push_back(super);
  // Retroactively propagate the existing extent upward.
  if (sub_it->second.has_extent && super_it->second.has_extent) {
    for (core::Oid oid : sub_it->second.extent) {
      Result<core::Value> v = heap_->Get(oid);
      if (!v.ok()) return v.status();
      for (const auto& cls : AncestorChain(super)) {
        ClassInfo& info = classes_.at(cls);
        if (!info.has_extent) continue;
        if (std::find(info.extent.begin(), info.extent.end(), oid) ==
            info.extent.end()) {
          DBPL_RETURN_IF_ERROR(CheckKeys(info, *v, oid));
          info.extent.push_back(oid);
        }
      }
    }
  }
  return Status::OK();
}

std::vector<std::string> ClassSystem::AncestorChain(
    const std::string& name) const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  std::vector<std::string> work = {name};
  while (!work.empty()) {
    std::string cls = work.back();
    work.pop_back();
    if (!seen.insert(cls).second) continue;
    out.push_back(cls);
    auto it = classes_.find(cls);
    if (it != classes_.end()) {
      for (const auto& p : it->second.parents) work.push_back(p);
    }
  }
  return out;
}

Status ClassSystem::CheckKeys(const ClassInfo& info, const core::Value& v,
                              core::Oid ignore_oid) const {
  if (info.key.empty()) return Status::OK();
  core::Value key_proj = v.kind() == core::ValueKind::kRecord
                             ? v.Project(info.key)
                             : core::Value::Bottom();
  for (const auto& k : info.key) {
    if (key_proj.kind() != core::ValueKind::kRecord ||
        key_proj.FindField(k) == nullptr) {
      return Status::InvalidArgument("instance is missing key attribute " + k);
    }
  }
  for (core::Oid member : info.extent) {
    if (member == ignore_oid) continue;
    Result<core::Value> mv = heap_->Get(member);
    if (!mv.ok()) continue;  // dangling extents are skipped
    if (mv->kind() != core::ValueKind::kRecord) continue;
    if (mv->Project(info.key) == key_proj) {
      return Status::Inconsistent("key violation: an object with key " +
                                  key_proj.ToString() + " already exists");
    }
  }
  return Status::OK();
}

Result<core::Oid> ClassSystem::NewInstance(const std::string& class_name,
                                           core::Value v) {
  auto it = classes_.find(class_name);
  if (it == classes_.end()) {
    return Status::NotFound("unknown class: " + class_name);
  }
  if (!it->second.has_extent) {
    return Status::Unsupported("class " + class_name +
                               " has no extent (aggregate class)");
  }
  types::Type principal = types::TypeOf(v);
  if (!types::IsSubtype(principal, it->second.type)) {
    return Status::TypeError("value of type " + principal.ToString() +
                             " is not an instance of " + class_name);
  }
  std::vector<std::string> chain = AncestorChain(class_name);
  for (const auto& cls : chain) {
    const ClassInfo& info = classes_.at(cls);
    if (info.has_extent) DBPL_RETURN_IF_ERROR(CheckKeys(info, v, 0));
  }
  core::Oid oid = heap_->Allocate(std::move(v));
  for (const auto& cls : chain) {
    ClassInfo& info = classes_.at(cls);
    if (info.has_extent) info.extent.push_back(oid);
  }
  instance_class_[oid] = class_name;
  return oid;
}

Result<core::Oid> ClassSystem::Specialize(core::Oid oid,
                                          const std::string& subclass,
                                          const core::Value& extra) {
  auto it = classes_.find(subclass);
  if (it == classes_.end()) {
    return Status::NotFound("unknown class: " + subclass);
  }
  if (!it->second.has_extent) {
    return Status::Unsupported("class " + subclass +
                               " has no extent (aggregate class)");
  }
  DBPL_ASSIGN_OR_RETURN(core::Value current, heap_->Get(oid));
  DBPL_ASSIGN_OR_RETURN(core::Value joined, core::Join(current, extra));
  types::Type principal = types::TypeOf(joined);
  if (!types::IsSubtype(principal, it->second.type)) {
    return Status::TypeError("specialized value of type " +
                             principal.ToString() +
                             " is not an instance of " + subclass);
  }
  std::vector<std::string> chain = AncestorChain(subclass);
  for (const auto& cls : chain) {
    const ClassInfo& info = classes_.at(cls);
    if (info.has_extent) DBPL_RETURN_IF_ERROR(CheckKeys(info, joined, oid));
  }
  DBPL_RETURN_IF_ERROR(heap_->Put(oid, std::move(joined)));
  for (const auto& cls : chain) {
    ClassInfo& info = classes_.at(cls);
    if (info.has_extent &&
        std::find(info.extent.begin(), info.extent.end(), oid) ==
            info.extent.end()) {
      info.extent.push_back(oid);
    }
  }
  instance_class_[oid] = subclass;
  return oid;
}

Status ClassSystem::Remove(const std::string& class_name, core::Oid oid) {
  auto it = classes_.find(class_name);
  if (it == classes_.end()) {
    return Status::NotFound("unknown class: " + class_name);
  }
  bool removed = false;
  // Remove from this class and every class that includes it (i.e., any
  // class whose extent the object may have joined through this one) —
  // the paper's extent-subset constraint must keep holding downward:
  // remove from `class_name` and every *descendant*.
  for (auto& [name, info] : classes_) {
    if (!info.has_extent) continue;
    if (name == class_name || IsSubclass(name, class_name)) {
      auto pos = std::find(info.extent.begin(), info.extent.end(), oid);
      if (pos != info.extent.end()) {
        info.extent.erase(pos);
        if (name == class_name) removed = true;
      }
    }
  }
  if (!removed) {
    return Status::NotFound("object is not in the extent of " + class_name);
  }
  return Status::OK();
}

Result<std::vector<core::Oid>> ClassSystem::Extent(
    const std::string& class_name) const {
  auto it = classes_.find(class_name);
  if (it == classes_.end()) {
    return Status::NotFound("unknown class: " + class_name);
  }
  if (!it->second.has_extent) {
    return Status::Unsupported("class " + class_name +
                               " has no extent (aggregate class)");
  }
  return it->second.extent;
}

Result<std::vector<core::Value>> ClassSystem::ExtentValues(
    const std::string& class_name) const {
  DBPL_ASSIGN_OR_RETURN(std::vector<core::Oid> oids, Extent(class_name));
  std::vector<core::Value> out;
  out.reserve(oids.size());
  for (core::Oid oid : oids) {
    DBPL_ASSIGN_OR_RETURN(core::Value v, heap_->Get(oid));
    out.push_back(std::move(v));
  }
  return out;
}

Result<types::Type> ClassSystem::ClassType(const std::string& name) const {
  auto it = classes_.find(name);
  if (it == classes_.end()) {
    return Status::NotFound("unknown class: " + name);
  }
  return it->second.type;
}

bool ClassSystem::IsSubclass(const std::string& sub,
                             const std::string& super) const {
  std::vector<std::string> chain = AncestorChain(sub);
  return std::find(chain.begin(), chain.end(), super) != chain.end();
}

std::vector<std::string> ClassSystem::ClassNames() const {
  std::vector<std::string> out;
  out.reserve(classes_.size());
  for (const auto& [name, _] : classes_) out.push_back(name);
  return out;
}

}  // namespace dbpl::classes
