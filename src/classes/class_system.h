#ifndef DBPL_CLASSES_CLASS_SYSTEM_H_
#define DBPL_CLASSES_CLASS_SYSTEM_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/heap.h"
#include "core/value.h"
#include "types/type.h"

namespace dbpl::classes {

/// The class constructs of Taxis / Adaplex / Galileo, built entirely
/// from this library's orthogonal primitives — demonstrating the
/// paper's central question ("whether the notion of class is
/// fundamental or whether it can be derived from more primitive
/// constructs") in the affirmative:
///
///  * an **aggregate class** (Taxis AGGREGATE_CLASS) is just a named
///    type;
///  * a **variable class** (Taxis VARIABLE_CLASS, Adaplex entity,
///    Galileo class) is a type *plus* a maintained extent of heap
///    objects, with explicit insertion and deletion;
///  * declaring `EMPLOYEE isa PERSON` (or Adaplex
///    `include Employee in Person`) makes every instance of the
///    subclass a member of the superclass extent — and the declaration
///    is only accepted when the subclass *type* is a structural subtype
///    of the superclass type, so the class hierarchy cannot contradict
///    the type hierarchy it is derived from;
///  * keys: a variable class may declare key attributes; inserting an
///    object whose key agrees with an existing member is rejected —
///    which, as the paper notes, also prevents `⊑`-comparable objects
///    from coexisting in the extent.
///
/// Object-level inheritance is `Specialize`: an existing Person object
/// becomes an Employee *in place* (its value joined with the new
/// fields, its identity unchanged), the operation the paper points out
/// Amber cannot express.
class ClassSystem {
 public:
  /// `heap` must outlive the class system; instances live there.
  explicit ClassSystem(core::Heap* heap) : heap_(heap) {}

  /// Defines a class with no extent (a named type).
  Status DefineAggregateClass(const std::string& name, types::Type type,
                              std::vector<std::string> parents = {});

  /// Defines a class with a maintained extent. Each parent must exist,
  /// and `type` must be a structural subtype of every parent's type.
  Status DefineVariableClass(const std::string& name, types::Type type,
                             std::vector<std::string> parents = {},
                             std::vector<std::string> key = {});

  /// Adaplex's `include sub in super`, declared after the fact. Every
  /// current and future member of `sub`'s extent joins `super`'s.
  Status Include(const std::string& sub, const std::string& super);

  /// Creates an instance: checks the value against the class type and
  /// the keys of the class and its ancestors, allocates a heap object,
  /// and inserts it into every extent up the hierarchy.
  Result<core::Oid> NewInstance(const std::string& class_name, core::Value v);

  /// Object-level inheritance: joins `extra` into the object's value
  /// (in place), verifies the result against `subclass`, and adds the
  /// object to the subclass extent chain. The object keeps its oid.
  Result<core::Oid> Specialize(core::Oid oid, const std::string& subclass,
                               const core::Value& extra);

  /// Removes an object from an extent (and all subclass extents).
  Status Remove(const std::string& class_name, core::Oid oid);

  /// The extent of a variable class (Unsupported for aggregate classes,
  /// which "do not have an associated extent").
  Result<std::vector<core::Oid>> Extent(const std::string& class_name) const;

  /// Extent materialized as values.
  Result<std::vector<core::Value>> ExtentValues(
      const std::string& class_name) const;

  Result<types::Type> ClassType(const std::string& name) const;

  /// Reflexive-transitive subclass test.
  bool IsSubclass(const std::string& sub, const std::string& super) const;

  bool HasClass(const std::string& name) const {
    return classes_.contains(name);
  }
  std::vector<std::string> ClassNames() const;

  // --- The instance (is-a-kind-of) hierarchy, Taxis-style. ----------
  //
  // Taxis makes EMPLOYEE an *instance of* the meta-class
  // VARIABLE_CLASS as well as a subclass of PERSON. Here every defined
  // class is reified as a heap object, the two meta-classes are
  // themselves objects, and both are instances of the universal class
  // object — so programs can "move up and down the instance hierarchy"
  // as the paper's parking-lot scenarios require.

  /// The heap object reifying class `name` (a record with Name/Meta).
  Result<core::Oid> ClassObject(const std::string& name) const;

  /// The most specific class that created instance `oid` via
  /// NewInstance/Specialize.
  Result<std::string> ClassOfInstance(core::Oid oid) const;

  /// The instance chain of an object: the object itself, its class
  /// object, its meta-class object, and the universal class object —
  /// the paper's "two-level" value/type hierarchy, extended to the
  /// Taxis three-plus levels.
  Result<std::vector<core::Oid>> InstanceChain(core::Oid oid) const;

 private:
  struct ClassInfo {
    types::Type type;
    bool has_extent = false;
    std::vector<std::string> parents;
    std::vector<std::string> key;
    std::vector<core::Oid> extent;
    /// The heap object reifying this class.
    core::Oid class_object = core::kInvalidOid;
  };

  /// Lazily allocates the universal and meta-class objects.
  void EnsureMetaObjects();

  Status DefineClass(const std::string& name, types::Type type,
                     std::vector<std::string> parents,
                     std::vector<std::string> key, bool has_extent);

  /// `name` and all its ancestors, deduplicated, name first.
  std::vector<std::string> AncestorChain(const std::string& name) const;

  /// Checks `v` against the keys of class `info`'s extent.
  Status CheckKeys(const ClassInfo& info, const core::Value& v,
                   core::Oid ignore_oid) const;

  core::Heap* heap_;
  std::map<std::string, ClassInfo> classes_;
  /// Most specific creating class per instance.
  std::map<core::Oid, std::string> instance_class_;
  /// Reified meta-objects (allocated on first class definition).
  core::Oid universal_class_object_ = core::kInvalidOid;
  core::Oid variable_metaclass_object_ = core::kInvalidOid;
  core::Oid aggregate_metaclass_object_ = core::kInvalidOid;
};

}  // namespace dbpl::classes

#endif  // DBPL_CLASSES_CLASS_SYSTEM_H_
