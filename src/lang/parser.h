#ifndef DBPL_LANG_PARSER_H_
#define DBPL_LANG_PARSER_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "lang/ast.h"

namespace dbpl::lang {

/// Parses a MiniAmber program:
///
///   Program := { Decl }
///   Decl    := 'type' IDENT '=' Type ';'
///            | 'let' IDENT [':' Type] '=' Expr ';'
///            | 'let' 'rec' IDENT '(' Params ')' ':' Type '=' Expr ';'
///            | Expr ';'
///
/// Type aliases are resolved eagerly, in declaration order, so later
/// types and expressions may use earlier aliases. Types use the same
/// syntax as types/parse.h (minus quantifiers): base types, `{l: T}`
/// records, `<t: T | ...>` variants, `List[T]`, `Set[T]`, `(T,..) -> R`,
/// plus `Database` as sugar for `List[Dynamic]` — a database *is* a
/// list of dynamic values, exactly as the paper constructs it in Amber.
Result<Program> Parse(std::string_view source);

/// As above, with a caller-owned alias table that survives across calls
/// (used by the incremental interpreter / REPL).
Result<Program> Parse(std::string_view source,
                      std::map<std::string, types::Type>* aliases);

}  // namespace dbpl::lang

#endif  // DBPL_LANG_PARSER_H_
