#ifndef DBPL_LANG_INTERP_H_
#define DBPL_LANG_INTERP_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "lang/eval.h"
#include "lang/typecheck.h"
#include "lang/rt_value.h"
#include "persist/replicating_store.h"

namespace dbpl::lang {

/// MiniAmber: the small statically-typed database programming language
/// this library uses to reproduce the paper's program fragments.
///
/// Highlights (all straight from the paper):
///  * structural record types with inferred subtyping — declaring
///    `type Employee = {Name: String, Empno: Int}` makes Employee a
///    subtype of `{Name: String}` by structure alone, as in Amber;
///  * `dynamic e`, `coerce d to T`, `typeof d` — Amber's Dynamic;
///  * `database` / `insert e into db` / `get T from db` — the
///    heterogeneous database as a list of dynamics, with extents
///    *derived* by the generic Get (result type `List[Exists t <= T. t]`);
///  * `e1 join e2` — object-level information join `⊔`;
///  * `extern e as "handle"` / `intern "handle"` — replicating
///    persistence with copy semantics.
///
/// Example (the paper's dynamic/coerce fragment):
///
///   let d = dynamic 3;
///   let i = coerce d to Int;   -- 3
///   i + 1;                     -- prints 4
///
/// Each top-level expression statement's value becomes one line of the
/// program's output.
class Interp {
 public:
  /// Outputs of one program run.
  struct Output {
    /// Rendered value of each expression statement, in order.
    std::vector<std::string> values;
    /// Static type of each expression statement (same order).
    std::vector<std::string> types;
    /// Rendered static-analysis warnings (lang/analysis/) for the
    /// program, in source order. The program still ran: warnings flag
    /// well-typed code that is statically doomed or suspicious.
    std::vector<std::string> warnings;
  };

  /// An interpreter whose `extern`/`intern` use the replicating store
  /// rooted at `persist_dir`; empty disables persistence.
  explicit Interp(const std::string& persist_dir = "");
  ~Interp();

  /// Parses, type-checks, and runs a program. Static errors
  /// (TypeError) are reported before any evaluation happens.
  Result<Output> Run(std::string_view source);

  /// Runs and keeps the evaluator state, so successive calls share
  /// globals (a REPL).
  Result<Output> RunIncremental(std::string_view source);

  /// A global binding after Run/RunIncremental.
  Result<RtValue> Global(const std::string& name) const;

 private:
  std::unique_ptr<persist::ReplicatingStore> store_;
  std::map<std::string, types::Type> aliases_;
  std::unique_ptr<TypeChecker> checker_;
  std::unique_ptr<Evaluator> evaluator_;
};

}  // namespace dbpl::lang

#endif  // DBPL_LANG_INTERP_H_
