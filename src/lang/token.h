#ifndef DBPL_LANG_TOKEN_H_
#define DBPL_LANG_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "lang/span.h"

namespace dbpl::lang {

/// Token kinds of MiniAmber, the library's small database programming
/// language (see lang/interp.h for the language overview).
enum class TokenKind : uint8_t {
  kEof = 0,
  kIdent,
  kIntLit,
  kRealLit,
  kStringLit,
  // Keywords.
  kLet,
  kRec,
  kIn,
  kFun,
  kIf,
  kThen,
  kElse,
  kTrue,
  kFalse,
  kType,
  kDynamic,
  kCoerce,
  kTo,
  kTypeof,
  kJoin,
  kInsert,
  kInto,
  kGet,
  kFrom,
  kExtern,
  kIntern,
  kAs,
  kDatabase,
  kAnd,
  kOr,
  kNot,
  kCase,
  kOf,
  kEnd,
  // Punctuation and operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kLBraceBar,  // {|
  kRBraceBar,  // |}
  kComma,
  kSemicolon,
  kColon,
  kDot,
  kAssign,     // =
  kEq,         // ==
  kNe,         // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kArrow,      // ->
  kFatArrow,   // =>
  kBar,        // |
};

std::string_view TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  /// Raw text (identifier name, keyword, literal spelling; string
  /// literals hold the *unescaped* contents).
  std::string text;
  /// Source region of the token, including quotes for string literals.
  Span span = Span::Point(1, 1);

  std::string Describe() const;
};

}  // namespace dbpl::lang

#endif  // DBPL_LANG_TOKEN_H_
