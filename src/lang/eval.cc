#include "lang/eval.h"

#include "core/order.h"
#include "dyndb/dynamic.h"
#include "lang/typecheck.h"
#include "types/subtype.h"
#include "types/type_of.h"

namespace dbpl::lang {
namespace {

using core::Value;

/// Builds a list RtValue: a plain data list when every element is
/// data, a generic list otherwise.
RtValue MakeListValue(std::vector<RtValue> elems) {
  bool all_data = true;
  for (const auto& e : elems) {
    if (!e.is_data()) {
      all_data = false;
      break;
    }
  }
  if (all_data) {
    std::vector<Value> core_elems;
    core_elems.reserve(elems.size());
    for (const auto& e : elems) core_elems.push_back(e.data());
    return RtValue::Data(Value::List(std::move(core_elems)));
  }
  return RtValue::GenList(std::move(elems));
}

}  // namespace

Result<RtValue> Evaluator::EvalDecl(const Decl& decl) {
  switch (decl.kind) {
    case Decl::Kind::kTypeAlias:
      return RtValue::Data(Value::Bottom());
    case Decl::Kind::kLet: {
      DBPL_ASSIGN_OR_RETURN(RtValue v, Eval(decl.expr, nullptr));
      globals_[decl.name] = v;
      return v;
    }
    case Decl::Kind::kLetRec: {
      Closure closure;
      closure.params = decl.expr->params;
      closure.body = decl.expr->b;
      closure.env = nullptr;
      closure.self_name = decl.name;
      RtValue fn = RtValue::MakeClosure(std::move(closure));
      globals_[decl.name] = fn;
      return fn;
    }
    case Decl::Kind::kExpr:
      return Eval(decl.expr, nullptr);
  }
  return Status::Internal("unreachable decl kind");
}

Result<RtValue> Evaluator::Global(const std::string& name) const {
  auto it = globals_.find(name);
  if (it == globals_.end()) {
    return Status::NotFound("no global named '" + name + "'");
  }
  return it->second;
}

Result<RtValue> Evaluator::Eval(const ExprPtr& eptr, const EnvPtr& env) {
  const Expr& e = *eptr;
  switch (e.kind) {
    case ExprKind::kBoolLit:
      return RtValue::Data(Value::Bool(e.bool_val));
    case ExprKind::kIntLit:
      return RtValue::Data(Value::Int(e.int_val));
    case ExprKind::kRealLit:
      return RtValue::Data(Value::Real(e.real_val));
    case ExprKind::kStringLit:
      return RtValue::Data(Value::String(e.str));
    case ExprKind::kVar: {
      if (env != nullptr) {
        for (auto it = env->rbegin(); it != env->rend(); ++it) {
          if (it->first == e.str) return it->second;
        }
      }
      auto it = globals_.find(e.str);
      if (it != globals_.end()) return it->second;
      return Err(e.span.line, "unbound variable '" + e.str + "'");
    }
    case ExprKind::kRecordLit: {
      std::vector<core::RecordField> fields;
      for (const auto& [name, sub] : e.fields) {
        DBPL_ASSIGN_OR_RETURN(RtValue v, Eval(sub, env));
        Result<Value> cv = v.ToCore();
        if (!cv.ok()) {
          return Err(e.span.line, "record fields must be first-order data");
        }
        fields.push_back({name, std::move(cv).value()});
      }
      Result<Value> made = Value::Record(std::move(fields));
      if (!made.ok()) return made.status();
      return RtValue::Data(std::move(made).value());
    }
    case ExprKind::kListLit: {
      std::vector<RtValue> elems;
      for (const auto& sub : e.elems) {
        DBPL_ASSIGN_OR_RETURN(RtValue v, Eval(sub, env));
        elems.push_back(std::move(v));
      }
      return MakeListValue(std::move(elems));
    }
    case ExprKind::kSetLit: {
      std::vector<Value> elems;
      for (const auto& sub : e.elems) {
        DBPL_ASSIGN_OR_RETURN(RtValue v, Eval(sub, env));
        Result<Value> cv = v.ToCore();
        if (!cv.ok()) {
          return Err(e.span.line, "set elements must be first-order data");
        }
        elems.push_back(std::move(cv).value());
      }
      return RtValue::Data(Value::Set(std::move(elems)));
    }
    case ExprKind::kField: {
      DBPL_ASSIGN_OR_RETURN(RtValue v, Eval(e.a, env));
      if (!v.is_data() || v.data().kind() != core::ValueKind::kRecord) {
        return Err(e.span.line, "field selection on a non-record value " +
                               v.ToString());
      }
      const Value* f = v.data().FindField(e.str);
      if (f == nullptr) {
        return Err(e.span.line, "value has no field '" + e.str + "': " +
                               v.data().ToString());
      }
      return RtValue::Data(*f);
    }
    case ExprKind::kBinary:
      return EvalBinary(e, env);
    case ExprKind::kUnary: {
      DBPL_ASSIGN_OR_RETURN(RtValue v, Eval(e.a, env));
      if (e.un_op == UnaryOp::kNot) {
        return RtValue::Data(Value::Bool(!v.data().AsBool()));
      }
      if (v.data().kind() == core::ValueKind::kInt) {
        return RtValue::Data(Value::Int(-v.data().AsInt()));
      }
      return RtValue::Data(Value::Real(-v.data().AsReal()));
    }
    case ExprKind::kIf: {
      DBPL_ASSIGN_OR_RETURN(RtValue c, Eval(e.a, env));
      return c.data().AsBool() ? Eval(e.b, env) : Eval(e.c, env);
    }
    case ExprKind::kLambda: {
      Closure closure;
      closure.params = e.params;
      closure.body = e.b;
      closure.env = env;
      return RtValue::MakeClosure(std::move(closure));
    }
    case ExprKind::kCall:
      return EvalCall(e, env);
    case ExprKind::kLet: {
      DBPL_ASSIGN_OR_RETURN(RtValue bound, Eval(e.a, env));
      auto extended = std::make_shared<Env>(
          env ? *env : Env{});
      extended->emplace_back(e.str, std::move(bound));
      return Eval(e.b, extended);
    }
    case ExprKind::kDynamic: {
      DBPL_ASSIGN_OR_RETURN(RtValue v, Eval(e.a, env));
      Result<Value> cv = v.ToCore();
      if (!cv.ok()) return Err(e.span.line, cv.status().message());
      // Carry the static type recorded by the checker (Amber pairs the
      // value with its static type); fall back to the principal type.
      types::Type carried =
          e.has_type ? e.type : types::TypeOf(*cv);
      Result<dyndb::Dynamic> d = dyndb::MakeDynamicAs(*cv, carried);
      if (!d.ok()) return d.status();
      return RtValue::Dyn(std::move(d).value());
    }
    case ExprKind::kCoerce: {
      DBPL_ASSIGN_OR_RETURN(RtValue v, Eval(e.a, env));
      if (v.kind() != RtValue::Kind::kDynamic) {
        return Err(e.span.line, "'coerce' needs a dynamic value");
      }
      Result<Value> out = dyndb::Coerce(v.dyn(), e.type);
      if (!out.ok()) return out.status();
      return RtValue::Data(std::move(out).value());
    }
    case ExprKind::kTypeofE: {
      DBPL_ASSIGN_OR_RETURN(RtValue v, Eval(e.a, env));
      if (v.kind() != RtValue::Kind::kDynamic) {
        return Err(e.span.line, "'typeof' needs a dynamic value");
      }
      return RtValue::Data(Value::String(v.dyn().type.ToString()));
    }
    case ExprKind::kJoinE: {
      DBPL_ASSIGN_OR_RETURN(RtValue v1, Eval(e.a, env));
      DBPL_ASSIGN_OR_RETURN(RtValue v2, Eval(e.b, env));
      Result<Value> c1 = v1.ToCore();
      Result<Value> c2 = v2.ToCore();
      if (!c1.ok() || !c2.ok()) {
        return Err(e.span.line, "'join' needs first-order data");
      }
      Result<Value> joined = core::Join(*c1, *c2);
      if (!joined.ok()) {
        // A clash keeps its Inconsistent code (user-level failure, with
        // source position attached); anything else is an engine bug and
        // must propagate unrelabelled.
        if (joined.status().code() != StatusCode::kInconsistent) {
          return joined.status();
        }
        return Status::Inconsistent("line " + std::to_string(e.span.line) + ": " +
                                    joined.status().message());
      }
      return RtValue::Data(std::move(joined).value());
    }
    case ExprKind::kNewDb:
      return RtValue::NewDatabase();
    case ExprKind::kInsert: {
      DBPL_ASSIGN_OR_RETURN(RtValue v, Eval(e.a, env));
      DBPL_ASSIGN_OR_RETURN(RtValue db, Eval(e.b, env));
      dyndb::Dynamic d;
      if (v.kind() == RtValue::Kind::kDynamic) {
        d = v.dyn();
      } else {
        Result<Value> cv = v.ToCore();
        if (!cv.ok()) return Err(e.span.line, cv.status().message());
        types::Type carried = e.has_type ? e.type : types::TypeOf(*cv);
        Result<dyndb::Dynamic> made = dyndb::MakeDynamicAs(*cv, carried);
        if (!made.ok()) return made.status();
        d = std::move(made).value();
      }
      if (db.kind() == RtValue::Kind::kDatabase) {
        db.database()->push_back(std::move(d));
        return db;
      }
      // An immutable list of dynamics: insertion builds a new list.
      DBPL_ASSIGN_OR_RETURN(std::vector<RtValue> elems,
                            Elements(db, e.span.line, false));
      elems.push_back(RtValue::Dyn(std::move(d)));
      return RtValue::GenList(std::move(elems));
    }
    case ExprKind::kGet: {
      DBPL_ASSIGN_OR_RETURN(RtValue db, Eval(e.b, env));
      std::vector<dyndb::Dynamic> dynamics;
      if (db.kind() == RtValue::Kind::kDatabase) {
        dynamics = *db.database();
      } else {
        DBPL_ASSIGN_OR_RETURN(std::vector<RtValue> elems,
                              Elements(db, e.span.line, false));
        for (const auto& el : elems) {
          if (el.kind() != RtValue::Kind::kDynamic) {
            return Err(e.span.line, "'get' source must hold dynamic values");
          }
          dynamics.push_back(el.dyn());
        }
      }
      std::vector<RtValue> matches;
      for (const auto& d : dynamics) {
        if (types::IsSubtype(d.type, e.type)) {
          matches.push_back(RtValue::Data(d.value));
        }
      }
      return MakeListValue(std::move(matches));
    }
    case ExprKind::kExtern: {
      if (store_ == nullptr) {
        return Status::Unsupported("no persistent store configured");
      }
      DBPL_ASSIGN_OR_RETURN(RtValue v, Eval(e.a, env));
      dyndb::Dynamic d;
      if (v.kind() == RtValue::Kind::kDynamic) {
        d = v.dyn();
      } else {
        Result<Value> cv = v.ToCore();
        if (!cv.ok()) return Err(e.span.line, cv.status().message());
        types::Type carried = e.has_type ? e.type : types::TypeOf(*cv);
        Result<dyndb::Dynamic> made = dyndb::MakeDynamicAs(*cv, carried);
        if (!made.ok()) return made.status();
        d = std::move(made).value();
      }
      DBPL_RETURN_IF_ERROR(store_->Extern(e.str, d));
      return v;
    }
    case ExprKind::kIntern: {
      if (store_ == nullptr) {
        return Status::Unsupported("no persistent store configured");
      }
      Result<dyndb::Dynamic> d = store_->Intern(e.str);
      if (!d.ok()) return d.status();
      return RtValue::Dyn(std::move(d).value());
    }
    case ExprKind::kVariantLit: {
      DBPL_ASSIGN_OR_RETURN(RtValue v, Eval(e.a, env));
      Result<Value> cv = v.ToCore();
      if (!cv.ok()) return Err(e.span.line, cv.status().message());
      return RtValue::Data(Value::Tagged(e.str, std::move(cv).value()));
    }
    case ExprKind::kCase: {
      DBPL_ASSIGN_OR_RETURN(RtValue v, Eval(e.a, env));
      if (!v.is_data() || v.data().kind() != core::ValueKind::kTagged) {
        return Err(e.span.line, "'case' needs a variant value, got " +
                               v.ToString());
      }
      for (const CaseArm& arm : e.arms) {
        if (arm.tag != v.data().tag()) continue;
        auto extended = std::make_shared<Env>(env ? *env : Env{});
        extended->emplace_back(arm.binder,
                               RtValue::Data(v.data().payload()));
        return Eval(arm.body, extended);
      }
      return Err(e.span.line, "no case arm matches tag '" + v.data().tag() + "'");
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<RtValue> Evaluator::EvalCall(const Expr& e, const EnvPtr& env) {
  if (e.a->kind == ExprKind::kVar && IsBuiltinName(e.a->str) &&
      !globals_.contains(e.a->str)) {
    bool shadowed = false;
    if (env != nullptr) {
      for (const auto& [name, _] : *env) {
        if (name == e.a->str) shadowed = true;
      }
    }
    if (!shadowed) return EvalBuiltin(e, env);
  }
  DBPL_ASSIGN_OR_RETURN(RtValue fn, Eval(e.a, env));
  std::vector<RtValue> args;
  args.reserve(e.elems.size());
  for (const auto& arg : e.elems) {
    DBPL_ASSIGN_OR_RETURN(RtValue v, Eval(arg, env));
    args.push_back(std::move(v));
  }
  return Apply(fn, std::move(args), e.span.line);
}

Result<RtValue> Evaluator::Apply(const RtValue& fn, std::vector<RtValue> args,
                                 int line) {
  if (fn.kind() != RtValue::Kind::kClosure) {
    return Err(line, "calling a non-function value " + fn.ToString());
  }
  const Closure& closure = fn.closure();
  if (closure.params.size() != args.size()) {
    return Err(line, "expected " + std::to_string(closure.params.size()) +
                         " arguments, got " + std::to_string(args.size()));
  }
  auto call_env = std::make_shared<Env>(closure.env ? *closure.env : Env{});
  if (!closure.self_name.empty()) {
    call_env->emplace_back(closure.self_name, fn);
  }
  for (size_t i = 0; i < args.size(); ++i) {
    call_env->emplace_back(closure.params[i].name, std::move(args[i]));
  }
  return Eval(closure.body, call_env);
}

Result<std::vector<RtValue>> Evaluator::Elements(const RtValue& v, int line,
                                                 bool allow_set) {
  if (v.kind() == RtValue::Kind::kGenList) return v.gen_list();
  if (v.is_data()) {
    const Value& data = v.data();
    if (data.kind() == core::ValueKind::kList ||
        (allow_set && data.kind() == core::ValueKind::kSet)) {
      std::vector<RtValue> out;
      out.reserve(data.elements().size());
      for (const auto& el : data.elements()) {
        out.push_back(RtValue::Data(el));
      }
      return out;
    }
  }
  if (v.kind() == RtValue::Kind::kDatabase) {
    std::vector<RtValue> out;
    for (const auto& d : *v.database()) out.push_back(RtValue::Dyn(d));
    return out;
  }
  return Err(line, "expected a list" + std::string(allow_set ? " or set" : "") +
                       ", got " + v.ToString());
}

Result<RtValue> Evaluator::EvalBuiltin(const Expr& e, const EnvPtr& env) {
  const std::string& name = e.a->str;
  std::vector<RtValue> args;
  args.reserve(e.elems.size());
  for (const auto& arg : e.elems) {
    DBPL_ASSIGN_OR_RETURN(RtValue v, Eval(arg, env));
    args.push_back(std::move(v));
  }
  if (name == "head") {
    DBPL_ASSIGN_OR_RETURN(auto elems, Elements(args[0], e.span.line, false));
    if (elems.empty()) return Err(e.span.line, "'head' of an empty list");
    return elems[0];
  }
  if (name == "tail") {
    DBPL_ASSIGN_OR_RETURN(auto elems, Elements(args[0], e.span.line, false));
    if (elems.empty()) return Err(e.span.line, "'tail' of an empty list");
    elems.erase(elems.begin());
    return MakeListValue(std::move(elems));
  }
  if (name == "cons") {
    DBPL_ASSIGN_OR_RETURN(auto elems, Elements(args[1], e.span.line, false));
    elems.insert(elems.begin(), args[0]);
    return MakeListValue(std::move(elems));
  }
  if (name == "length") {
    DBPL_ASSIGN_OR_RETURN(auto elems, Elements(args[0], e.span.line, true));
    return RtValue::Data(Value::Int(static_cast<int64_t>(elems.size())));
  }
  if (name == "isempty") {
    DBPL_ASSIGN_OR_RETURN(auto elems, Elements(args[0], e.span.line, true));
    return RtValue::Data(Value::Bool(elems.empty()));
  }
  if (name == "nth") {
    DBPL_ASSIGN_OR_RETURN(auto elems, Elements(args[0], e.span.line, false));
    int64_t idx = args[1].data().AsInt();
    if (idx < 0 || static_cast<size_t>(idx) >= elems.size()) {
      return Err(e.span.line, "'nth' index " + std::to_string(idx) +
                             " out of range [0, " +
                             std::to_string(elems.size()) + ")");
    }
    return elems[static_cast<size_t>(idx)];
  }
  if (name == "sum") {
    DBPL_ASSIGN_OR_RETURN(auto elems, Elements(args[0], e.span.line, true));
    bool real = false;
    for (const auto& el : elems) {
      if (el.is_data() && el.data().kind() == core::ValueKind::kReal) {
        real = true;
      }
    }
    if (real) {
      double total = 0;
      for (const auto& el : elems) total += el.data().AsReal();
      return RtValue::Data(Value::Real(total));
    }
    int64_t total = 0;
    for (const auto& el : elems) total += el.data().AsInt();
    return RtValue::Data(Value::Int(total));
  }
  if (name == "map") {
    DBPL_ASSIGN_OR_RETURN(auto elems, Elements(args[1], e.span.line, false));
    std::vector<RtValue> out;
    out.reserve(elems.size());
    for (auto& el : elems) {
      DBPL_ASSIGN_OR_RETURN(RtValue v, Apply(args[0], {el}, e.span.line));
      out.push_back(std::move(v));
    }
    return MakeListValue(std::move(out));
  }
  if (name == "filter") {
    DBPL_ASSIGN_OR_RETURN(auto elems, Elements(args[1], e.span.line, false));
    std::vector<RtValue> out;
    for (auto& el : elems) {
      DBPL_ASSIGN_OR_RETURN(RtValue keep, Apply(args[0], {el}, e.span.line));
      if (keep.data().AsBool()) out.push_back(el);
    }
    return MakeListValue(std::move(out));
  }
  if (name == "fold") {
    DBPL_ASSIGN_OR_RETURN(auto elems, Elements(args[2], e.span.line, false));
    RtValue acc = args[1];
    for (auto& el : elems) {
      DBPL_ASSIGN_OR_RETURN(acc, Apply(args[0], {acc, el}, e.span.line));
    }
    return acc;
  }
  if (name == "concat") {
    DBPL_ASSIGN_OR_RETURN(auto e1, Elements(args[0], e.span.line, false));
    DBPL_ASSIGN_OR_RETURN(auto e2, Elements(args[1], e.span.line, false));
    e1.insert(e1.end(), e2.begin(), e2.end());
    return MakeListValue(std::move(e1));
  }
  if (name == "elements") {
    DBPL_ASSIGN_OR_RETURN(auto elems, Elements(args[0], e.span.line, true));
    return MakeListValue(std::move(elems));
  }
  if (name == "setof") {
    DBPL_ASSIGN_OR_RETURN(auto elems, Elements(args[0], e.span.line, false));
    std::vector<Value> core_elems;
    for (const auto& el : elems) {
      Result<Value> cv = el.ToCore();
      if (!cv.ok()) return Err(e.span.line, "set elements must be data");
      core_elems.push_back(std::move(cv).value());
    }
    return RtValue::Data(Value::Set(std::move(core_elems)));
  }
  if (name == "lesseq" || name == "consistent" || name == "meet") {
    Result<Value> a = args[0].ToCore();
    Result<Value> b = args[1].ToCore();
    if (!a.ok() || !b.ok()) {
      return Err(e.span.line, "'" + name + "' needs first-order data");
    }
    if (name == "lesseq") {
      return RtValue::Data(Value::Bool(core::LessEq(*a, *b)));
    }
    if (name == "consistent") {
      return RtValue::Data(Value::Bool(core::Consistent(*a, *b)));
    }
    return RtValue::Data(core::Meet(*a, *b));
  }
  return Err(e.span.line, "unknown builtin '" + name + "'");
}

Result<RtValue> Evaluator::EvalBinary(const Expr& e, const EnvPtr& env) {
  // Short-circuit logical operators.
  if (e.bin_op == BinaryOp::kAnd || e.bin_op == BinaryOp::kOr) {
    DBPL_ASSIGN_OR_RETURN(RtValue lhs, Eval(e.a, env));
    bool l = lhs.data().AsBool();
    if (e.bin_op == BinaryOp::kAnd && !l) {
      return RtValue::Data(Value::Bool(false));
    }
    if (e.bin_op == BinaryOp::kOr && l) {
      return RtValue::Data(Value::Bool(true));
    }
    DBPL_ASSIGN_OR_RETURN(RtValue rhs, Eval(e.b, env));
    return RtValue::Data(Value::Bool(rhs.data().AsBool()));
  }
  DBPL_ASSIGN_OR_RETURN(RtValue lhs, Eval(e.a, env));
  DBPL_ASSIGN_OR_RETURN(RtValue rhs, Eval(e.b, env));
  if (e.bin_op == BinaryOp::kEq || e.bin_op == BinaryOp::kNe) {
    Result<bool> eq = lhs.Equals(rhs);
    if (!eq.ok()) return eq.status();
    return RtValue::Data(
        Value::Bool(e.bin_op == BinaryOp::kEq ? *eq : !*eq));
  }
  const Value& a = lhs.data();
  const Value& b = rhs.data();
  switch (e.bin_op) {
    case BinaryOp::kAdd:
      if (a.kind() == core::ValueKind::kString) {
        return RtValue::Data(Value::String(a.AsString() + b.AsString()));
      }
      if (a.kind() == core::ValueKind::kInt) {
        return RtValue::Data(Value::Int(a.AsInt() + b.AsInt()));
      }
      return RtValue::Data(Value::Real(a.AsReal() + b.AsReal()));
    case BinaryOp::kSub:
      if (a.kind() == core::ValueKind::kInt) {
        return RtValue::Data(Value::Int(a.AsInt() - b.AsInt()));
      }
      return RtValue::Data(Value::Real(a.AsReal() - b.AsReal()));
    case BinaryOp::kMul:
      if (a.kind() == core::ValueKind::kInt) {
        return RtValue::Data(Value::Int(a.AsInt() * b.AsInt()));
      }
      return RtValue::Data(Value::Real(a.AsReal() * b.AsReal()));
    case BinaryOp::kDiv:
      if (a.kind() == core::ValueKind::kInt) {
        if (b.AsInt() == 0) return Err(e.span.line, "division by zero");
        return RtValue::Data(Value::Int(a.AsInt() / b.AsInt()));
      }
      return RtValue::Data(Value::Real(a.AsReal() / b.AsReal()));
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      int c = core::Compare(a, b);
      bool out = false;
      switch (e.bin_op) {
        case BinaryOp::kLt:
          out = c < 0;
          break;
        case BinaryOp::kLe:
          out = c <= 0;
          break;
        case BinaryOp::kGt:
          out = c > 0;
          break;
        default:
          out = c >= 0;
          break;
      }
      return RtValue::Data(Value::Bool(out));
    }
    default:
      return Err(e.span.line, "unreachable binary operator");
  }
}

}  // namespace dbpl::lang
