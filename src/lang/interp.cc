#include "lang/interp.h"

#include "lang/analysis/driver.h"
#include "lang/parser.h"
#include "lang/typecheck.h"

namespace dbpl::lang {

Interp::Interp(const std::string& persist_dir) {
  if (!persist_dir.empty()) {
    Result<std::unique_ptr<persist::ReplicatingStore>> store =
        persist::ReplicatingStore::Open(persist_dir);
    if (store.ok()) store_ = std::move(store).value();
  }
  checker_ = std::make_unique<TypeChecker>();
  evaluator_ = std::make_unique<Evaluator>(store_.get());
}

Interp::~Interp() = default;

Result<Interp::Output> Interp::Run(std::string_view source) {
  aliases_.clear();
  checker_ = std::make_unique<TypeChecker>();
  evaluator_ = std::make_unique<Evaluator>(store_.get());
  return RunIncremental(source);
}

Result<Interp::Output> Interp::RunIncremental(std::string_view source) {
  DBPL_ASSIGN_OR_RETURN(Program program, Parse(source, &aliases_));
  DBPL_ASSIGN_OR_RETURN(std::vector<DeclType> decl_types,
                        checker_->CheckProgram(program));
  Output output;
  AnalysisDriver linter;
  AnalysisContext ctx{program, decl_types, source};
  for (const Diagnostic& diag : linter.RunPasses(ctx)) {
    output.warnings.push_back(RenderText(diag, source));
  }
  for (size_t i = 0; i < program.decls.size(); ++i) {
    const Decl& decl = program.decls[i];
    DBPL_ASSIGN_OR_RETURN(RtValue v, evaluator_->EvalDecl(decl));
    // Expression statements are the program's outputs — except the
    // imperative commands insert/extern, which are actions.
    if (decl.kind == Decl::Kind::kExpr &&
        decl.expr->kind != ExprKind::kInsert &&
        decl.expr->kind != ExprKind::kExtern) {
      output.values.push_back(v.ToString());
      output.types.push_back(decl_types[i].type.ToString());
    }
  }
  return output;
}

Result<RtValue> Interp::Global(const std::string& name) const {
  return evaluator_->Global(name);
}

}  // namespace dbpl::lang
