#ifndef DBPL_LANG_AST_H_
#define DBPL_LANG_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lang/span.h"
#include "types/type.h"

namespace dbpl::lang {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind : uint8_t {
  kBoolLit,
  kIntLit,
  kRealLit,
  kStringLit,
  kVar,
  kRecordLit,
  kListLit,
  kSetLit,
  kField,    // a.f
  kBinary,
  kUnary,
  kIf,
  kLambda,
  kCall,
  kLet,      // let x = e1 in e2
  kDynamic,  // dynamic e
  kCoerce,   // coerce e to T
  kTypeofE,  // typeof e (renders the carried type of a dynamic)
  kJoinE,    // e1 join e2 (the information join ⊔)
  kNewDb,    // database  (a fresh empty database)
  kInsert,   // insert e into db
  kGet,      // get T from db (the paper's generic Get)
  kExtern,   // extern e as "handle"
  kIntern,   // intern "handle"
  kVariantLit,  // <tag = e> — a variant inhabitant
  kCase,        // case e of tag1(x) => e1 | ... end
};

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnaryOp : uint8_t {
  kNot,
  kNeg,
};

/// A lambda parameter with its (mandatory) type annotation.
struct Param {
  std::string name;
  types::Type type;
  /// Region of the parameter name.
  Span span;
};

/// One arm of a case expression: `tag(binder) => body`.
struct CaseArm {
  std::string tag;
  std::string binder;
  ExprPtr body;
  /// Region of the binder name.
  Span binder_span;
};

/// One AST node. A single struct with optional payloads keeps the tree
/// simple to build and walk; `kind` dictates which fields are live.
struct Expr {
  ExprKind kind;
  /// Source region of the whole expression (first to last token).
  Span span;
  /// Region of the binder name for kLet (diagnostics point here).
  Span name_span;

  // Literals and names.
  bool bool_val = false;
  int64_t int_val = 0;
  double real_val = 0;
  /// Variable / field / let-binder / extern-intern handle / string lit.
  std::string str;

  // Children.
  ExprPtr a;  // lhs / callee / condition / operand / bound expr
  ExprPtr b;  // rhs / then / body
  ExprPtr c;  // else
  std::vector<std::pair<std::string, ExprPtr>> fields;  // record literal
  std::vector<ExprPtr> elems;                           // list/set/args

  BinaryOp bin_op = BinaryOp::kAdd;
  UnaryOp un_op = UnaryOp::kNot;

  std::vector<Param> params;  // lambda
  std::vector<CaseArm> arms;  // case
  /// Coerce target, Get type, lambda return / let annotation.
  types::Type type;
  bool has_type = false;

  /// The static type the checker synthesized for this expression.
  /// Filled in by TypeCheck; consumed by the analysis passes
  /// (lang/analysis/) so they can ask lattice questions without
  /// re-running inference.
  types::Type static_type;
  bool has_static_type = false;
};

/// A top-level declaration.
struct Decl {
  enum class Kind : uint8_t {
    kTypeAlias,  // type Name = T;
    kLet,        // let x [: T] = e;
    kLetRec,     // let rec f(x: T, ...) : R = e;
    kExpr,       // e;  (evaluated; its value is a program output)
  };

  Kind kind;
  /// Source region of the whole declaration (through the ';').
  Span span;
  /// Region of the declared name (alias / binder).
  Span name_span;
  std::string name;       // alias / binder name
  types::Type type;       // alias target or let annotation
  bool has_type = false;
  ExprPtr expr;           // bound expression (a lambda for kLetRec)
};

struct Program {
  std::vector<Decl> decls;
};

}  // namespace dbpl::lang

#endif  // DBPL_LANG_AST_H_
