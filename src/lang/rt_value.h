#ifndef DBPL_LANG_RT_VALUE_H_
#define DBPL_LANG_RT_VALUE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/value.h"
#include "dyndb/dynamic.h"
#include "lang/ast.h"

namespace dbpl::lang {

class RtValue;

/// A function value: parameters, body, and the captured environment.
struct Closure {
  std::vector<Param> params;
  ExprPtr body;
  /// Captured bindings (environment snapshot at closure creation).
  std::shared_ptr<const std::vector<std::pair<std::string, RtValue>>> env;
  /// Non-empty for `let rec` closures: the closure's own name, looked
  /// up through itself (recursion).
  std::string self_name;
};

/// A run-time value of MiniAmber.
///
/// First-order data (atoms, records/lists/sets of data) is stored as a
/// `core::Value` so the library's information ordering, join and
/// serialization apply directly. Structures that the core model cannot
/// express — closures, dynamics, databases, and composites containing
/// them — get their own representations.
class RtValue {
 public:
  enum class Kind : uint8_t {
    /// First-order data, stored as a core::Value.
    kData,
    /// A function value.
    kClosure,
    /// A dynamic: a (core) value paired with its type.
    kDynamic,
    /// A generic list whose elements need not be data (e.g.
    /// List[Dynamic], the result of `get`).
    kGenList,
    /// A mutable, shared database: the value of `database`.
    kDatabase,
  };

  using Db = std::vector<dyndb::Dynamic>;

  /// Data value ⊥ by default.
  RtValue() : kind_(Kind::kData) {}

  static RtValue Data(core::Value v);
  static RtValue MakeClosure(Closure c);
  static RtValue Dyn(dyndb::Dynamic d);
  static RtValue GenList(std::vector<RtValue> elems);
  static RtValue NewDatabase();

  Kind kind() const { return kind_; }
  bool is_data() const { return kind_ == Kind::kData; }

  const core::Value& data() const;
  const Closure& closure() const;
  const dyndb::Dynamic& dyn() const;
  const std::vector<RtValue>& gen_list() const;
  const std::shared_ptr<Db>& database() const;

  /// Converts to a core value when first-order; `Unsupported` for
  /// closures, dynamics, databases and lists containing them.
  Result<core::Value> ToCore() const;

  /// Structural equality; `Unsupported` when either side is (or
  /// contains) a closure. Databases compare by identity.
  Result<bool> Equals(const RtValue& other) const;

  std::string ToString() const;

 private:
  Kind kind_;
  core::Value data_;
  std::shared_ptr<const Closure> closure_;
  std::shared_ptr<const dyndb::Dynamic> dyn_;
  std::shared_ptr<const std::vector<RtValue>> gen_list_;
  std::shared_ptr<Db> db_;
};

}  // namespace dbpl::lang

#endif  // DBPL_LANG_RT_VALUE_H_
