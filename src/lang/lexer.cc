#include "lang/lexer.h"

#include <cctype>
#include <map>

namespace dbpl::lang {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "end of input";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kIntLit:
      return "integer literal";
    case TokenKind::kRealLit:
      return "real literal";
    case TokenKind::kStringLit:
      return "string literal";
    case TokenKind::kLet:
      return "'let'";
    case TokenKind::kRec:
      return "'rec'";
    case TokenKind::kIn:
      return "'in'";
    case TokenKind::kFun:
      return "'fun'";
    case TokenKind::kIf:
      return "'if'";
    case TokenKind::kThen:
      return "'then'";
    case TokenKind::kElse:
      return "'else'";
    case TokenKind::kTrue:
      return "'true'";
    case TokenKind::kFalse:
      return "'false'";
    case TokenKind::kType:
      return "'type'";
    case TokenKind::kDynamic:
      return "'dynamic'";
    case TokenKind::kCoerce:
      return "'coerce'";
    case TokenKind::kTo:
      return "'to'";
    case TokenKind::kTypeof:
      return "'typeof'";
    case TokenKind::kJoin:
      return "'join'";
    case TokenKind::kInsert:
      return "'insert'";
    case TokenKind::kInto:
      return "'into'";
    case TokenKind::kGet:
      return "'get'";
    case TokenKind::kFrom:
      return "'from'";
    case TokenKind::kExtern:
      return "'extern'";
    case TokenKind::kIntern:
      return "'intern'";
    case TokenKind::kAs:
      return "'as'";
    case TokenKind::kDatabase:
      return "'database'";
    case TokenKind::kAnd:
      return "'and'";
    case TokenKind::kOr:
      return "'or'";
    case TokenKind::kNot:
      return "'not'";
    case TokenKind::kCase:
      return "'case'";
    case TokenKind::kOf:
      return "'of'";
    case TokenKind::kEnd:
      return "'end'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLBraceBar:
      return "'{|'";
    case TokenKind::kRBraceBar:
      return "'|}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kAssign:
      return "'='";
    case TokenKind::kEq:
      return "'=='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kFatArrow:
      return "'=>'";
    case TokenKind::kBar:
      return "'|'";
  }
  return "unknown token";
}

std::string Token::Describe() const {
  if (kind == TokenKind::kIdent || kind == TokenKind::kIntLit ||
      kind == TokenKind::kRealLit) {
    return "'" + text + "'";
  }
  if (kind == TokenKind::kStringLit) return "\"" + text + "\"";
  return std::string(TokenKindName(kind));
}

namespace {

const std::map<std::string_view, TokenKind>& Keywords() {
  static const auto* keywords = new std::map<std::string_view, TokenKind>{
      {"let", TokenKind::kLet},       {"rec", TokenKind::kRec},
      {"in", TokenKind::kIn},         {"fun", TokenKind::kFun},
      {"if", TokenKind::kIf},         {"then", TokenKind::kThen},
      {"else", TokenKind::kElse},     {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},   {"type", TokenKind::kType},
      {"dynamic", TokenKind::kDynamic}, {"coerce", TokenKind::kCoerce},
      {"to", TokenKind::kTo},         {"typeof", TokenKind::kTypeof},
      {"join", TokenKind::kJoin},     {"insert", TokenKind::kInsert},
      {"into", TokenKind::kInto},     {"get", TokenKind::kGet},
      {"from", TokenKind::kFrom},     {"extern", TokenKind::kExtern},
      {"intern", TokenKind::kIntern}, {"as", TokenKind::kAs},
      {"database", TokenKind::kDatabase}, {"and", TokenKind::kAnd},
      {"or", TokenKind::kOr},         {"not", TokenKind::kNot},
      {"case", TokenKind::kCase},     {"of", TokenKind::kOf},
      {"end", TokenKind::kEnd},
  };
  return *keywords;
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view source) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  int column = 1;
  // Start position of the token being scanned; set at the top of each
  // loop iteration so every token's span begins at its first character.
  int tok_line = 1;
  int tok_column = 1;

  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (i < source.size() && source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };
  // Emits a token spanning [tok_line:tok_column, line:column): call
  // *after* the token's characters have been consumed.
  auto make = [&](TokenKind kind, std::string text) {
    out.push_back(
        Token{kind, std::move(text), Span{tok_line, tok_column, line, column}});
  };
  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument("lex error at line " +
                                   std::to_string(line) + ":" +
                                   std::to_string(column) + ": " + msg);
  };

  while (i < source.size()) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comment: -- to end of line.
    if (c == '-' && i + 1 < source.size() && source[i + 1] == '-') {
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    tok_line = line;
    tok_column = column;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_')) {
        advance(1);
      }
      std::string word(source.substr(start, i - start));
      auto it = Keywords().find(word);
      if (it != Keywords().end()) {
        make(it->second, std::move(word));
      } else {
        make(TokenKind::kIdent, std::move(word));
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_real = false;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        advance(1);
      }
      if (i + 1 < source.size() && source[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
        is_real = true;
        advance(1);
        while (i < source.size() &&
               std::isdigit(static_cast<unsigned char>(source[i]))) {
          advance(1);
        }
      }
      make(is_real ? TokenKind::kRealLit : TokenKind::kIntLit,
           std::string(source.substr(start, i - start)));
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      advance(1);
      std::string text;
      bool closed = false;
      // String literals may span lines; `advance` keeps line/column
      // arithmetic right across the embedded newlines.
      while (i < source.size()) {
        char d = source[i];
        if (d == quote) {
          advance(1);
          closed = true;
          break;
        }
        if (d == '\\' && i + 1 < source.size()) {
          char esc = source[i + 1];
          advance(2);
          switch (esc) {
            case 'n':
              text.push_back('\n');
              break;
            case 't':
              text.push_back('\t');
              break;
            case '\\':
              text.push_back('\\');
              break;
            case '"':
              text.push_back('"');
              break;
            case '\'':
              text.push_back('\'');
              break;
            default:
              return error(std::string("unknown escape \\") + esc);
          }
          continue;
        }
        text.push_back(d);
        advance(1);
      }
      if (!closed) return error("unterminated string literal");
      make(TokenKind::kStringLit, std::move(text));
      continue;
    }
    auto two = source.substr(i, 2);
    TokenKind two_kind = TokenKind::kEof;
    if (two == "{|") two_kind = TokenKind::kLBraceBar;
    else if (two == "|}") two_kind = TokenKind::kRBraceBar;
    else if (two == "==") two_kind = TokenKind::kEq;
    else if (two == "!=") two_kind = TokenKind::kNe;
    else if (two == "<=") two_kind = TokenKind::kLe;
    else if (two == ">=") two_kind = TokenKind::kGe;
    else if (two == "->") two_kind = TokenKind::kArrow;
    else if (two == "=>") two_kind = TokenKind::kFatArrow;
    if (two_kind != TokenKind::kEof) {
      advance(2);
      make(two_kind, std::string(two));
      continue;
    }
    TokenKind one_kind;
    switch (c) {
      case '(':
        one_kind = TokenKind::kLParen;
        break;
      case ')':
        one_kind = TokenKind::kRParen;
        break;
      case '{':
        one_kind = TokenKind::kLBrace;
        break;
      case '}':
        one_kind = TokenKind::kRBrace;
        break;
      case '[':
        one_kind = TokenKind::kLBracket;
        break;
      case ']':
        one_kind = TokenKind::kRBracket;
        break;
      case ',':
        one_kind = TokenKind::kComma;
        break;
      case ';':
        one_kind = TokenKind::kSemicolon;
        break;
      case ':':
        one_kind = TokenKind::kColon;
        break;
      case '.':
        one_kind = TokenKind::kDot;
        break;
      case '=':
        one_kind = TokenKind::kAssign;
        break;
      case '<':
        one_kind = TokenKind::kLt;
        break;
      case '>':
        one_kind = TokenKind::kGt;
        break;
      case '+':
        one_kind = TokenKind::kPlus;
        break;
      case '-':
        one_kind = TokenKind::kMinus;
        break;
      case '*':
        one_kind = TokenKind::kStar;
        break;
      case '/':
        one_kind = TokenKind::kSlash;
        break;
      case '|':
        one_kind = TokenKind::kBar;
        break;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
    advance(1);
    make(one_kind, std::string(1, c));
  }
  tok_line = line;
  tok_column = column;
  out.push_back(Token{TokenKind::kEof, "", Span::Point(line, column)});
  return out;
}

}  // namespace dbpl::lang
