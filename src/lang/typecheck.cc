#include "lang/typecheck.h"

#include <set>

#include "types/lattice.h"
#include "types/subtype.h"

namespace dbpl::lang {
namespace {

using types::Type;
using types::TypeKind;

const std::set<std::string, std::less<>>& Builtins() {
  static const auto* names = new std::set<std::string, std::less<>>{
      "head", "tail",   "cons",     "length", "isempty", "nth",
      "sum",  "map",    "filter",   "fold",   "concat",  "elements",
      "setof", "lesseq", "consistent", "meet"};
  return *names;
}

/// First-order data types: what `dynamic` can wrap and a database can
/// hold. Functions and nested dynamics/existentials are excluded.
bool IsDataType(const Type& t) {
  switch (t.kind()) {
    case TypeKind::kBottom:
    case TypeKind::kTop:
    case TypeKind::kBool:
    case TypeKind::kInt:
    case TypeKind::kReal:
    case TypeKind::kString:
    case TypeKind::kVar:
      return true;
    case TypeKind::kRecord:
    case TypeKind::kVariant: {
      for (const auto& f : t.fields()) {
        if (!IsDataType(f.get())) return false;
      }
      return true;
    }
    case TypeKind::kList:
    case TypeKind::kSet:
      return IsDataType(t.element());
    case TypeKind::kMu:
      return IsDataType(t.body());
    default:
      return false;
  }
}

class Checker {
 public:
  explicit Checker(std::map<std::string, Type>* globals)
      : globals_(*globals) {}

  Result<std::vector<DeclType>> Check(Program& program) {
    std::vector<DeclType> out;
    for (Decl& decl : program.decls) {
      switch (decl.kind) {
        case Decl::Kind::kTypeAlias:
          // Resolved by the parser; recorded to keep indices aligned
          // with program.decls.
          out.push_back({decl.name, decl.type});
          break;
        case Decl::Kind::kLet: {
          DBPL_ASSIGN_OR_RETURN(Type t, Synth(decl.expr));
          if (decl.has_type) {
            DBPL_RETURN_IF_ERROR(
                Expect(t, decl.type, decl.span, "let binding"));
            t = decl.type;
          }
          globals_[decl.name] = t;
          out.push_back({decl.name, t});
          break;
        }
        case Decl::Kind::kLetRec: {
          Expr& lambda = *decl.expr;
          std::vector<Type> param_types;
          for (const auto& p : lambda.params) param_types.push_back(p.type);
          Type fn_type = Type::Func(param_types, lambda.type);
          globals_[decl.name] = fn_type;  // visible to its own body
          DBPL_ASSIGN_OR_RETURN(Type body_type, SynthLambdaBody(lambda));
          DBPL_RETURN_IF_ERROR(Expect(body_type, lambda.type, decl.span,
                                      "recursive function body"));
          out.push_back({decl.name, fn_type});
          break;
        }
        case Decl::Kind::kExpr: {
          DBPL_ASSIGN_OR_RETURN(Type t, Synth(decl.expr));
          out.push_back({"", t});
          break;
        }
      }
    }
    return out;
  }

 private:
  Status Err(const Span& span, const std::string& msg) {
    return Status::TypeError("line " + std::to_string(span.line) + ":" +
                             std::to_string(span.column) + ": " + msg);
  }

  Status Expect(const Type& actual, const Type& expected, const Span& span,
                const std::string& what) {
    if (!types::IsSubtype(actual, expected)) {
      return Err(span, what + " has type " + actual.ToString() +
                           ", expected a subtype of " + expected.ToString());
    }
    return Status::OK();
  }

  /// Resolves a type for field selection: unpacks existential packages
  /// to their bound (sound: the abstract type is below its bound).
  Type ResolveForAccess(Type t) {
    int guard = 0;
    while (guard++ < 64) {
      if (t.kind() == TypeKind::kExists) {
        // ∃v ≤ B. v → B; general bodies substitute the bound.
        t = t.body().Substitute(t.var(), t.bound());
        continue;
      }
      if (t.kind() == TypeKind::kMu) {
        t = t.Unfold();
        continue;
      }
      break;
    }
    return t;
  }

  Result<Type> SynthLambdaBody(Expr& lambda) {
    auto saved = globals_;
    for (const auto& p : lambda.params) globals_[p.name] = p.type;
    Result<Type> body = Synth(lambda.b);
    globals_ = std::move(saved);
    return body;
  }

  /// Synthesizes and *annotates*: every expression node records its
  /// static type so later analysis passes (lang/analysis/) can ask
  /// lattice questions about arbitrary subexpressions.
  Result<Type> Synth(const ExprPtr& eptr) {
    Result<Type> r = SynthImpl(eptr);
    if (r.ok()) {
      eptr->static_type = r.value();
      eptr->has_static_type = true;
    }
    return r;
  }

  Result<Type> SynthImpl(const ExprPtr& eptr) {
    Expr& e = *eptr;
    switch (e.kind) {
      case ExprKind::kBoolLit:
        return Type::Bool();
      case ExprKind::kIntLit:
        return Type::Int();
      case ExprKind::kRealLit:
        return Type::Real();
      case ExprKind::kStringLit:
        return Type::String();
      case ExprKind::kVar: {
        auto it = globals_.find(e.str);
        if (it != globals_.end()) return it->second;
        if (IsBuiltinName(e.str)) {
          return Err(e.span, "builtin '" + e.str +
                                 "' is not first-class; apply it directly");
        }
        return Err(e.span, "unbound variable '" + e.str + "'");
      }
      case ExprKind::kRecordLit: {
        std::vector<std::pair<std::string, Type>> fields;
        for (auto& [name, sub] : e.fields) {
          DBPL_ASSIGN_OR_RETURN(Type t, Synth(sub));
          fields.emplace_back(name, std::move(t));
        }
        Result<Type> made = Type::Record(std::move(fields));
        if (!made.ok()) return Err(e.span, made.status().message());
        return made;
      }
      case ExprKind::kListLit:
      case ExprKind::kSetLit: {
        Type elem = Type::Bottom();
        for (auto& sub : e.elems) {
          DBPL_ASSIGN_OR_RETURN(Type t, Synth(sub));
          elem = types::Lub(elem, t);
        }
        if (e.kind == ExprKind::kSetLit && !IsDataType(elem)) {
          return Err(e.span, "sets may only contain first-order data");
        }
        return e.kind == ExprKind::kListLit ? Type::List(std::move(elem))
                                            : Type::Set(std::move(elem));
      }
      case ExprKind::kField: {
        DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.a));
        Type resolved = ResolveForAccess(t);
        if (resolved.kind() == TypeKind::kDynamic) {
          return Err(e.span,
                     "cannot select from a Dynamic; coerce it first");
        }
        if (resolved.kind() != TypeKind::kRecord) {
          return Err(e.span, "field selection on non-record type " +
                                 t.ToString());
        }
        const Type* f = resolved.FindField(e.str);
        if (f == nullptr) {
          return Err(e.span, "type " + resolved.ToString() +
                                 " has no field '" + e.str + "'");
        }
        return *f;
      }
      case ExprKind::kBinary:
        return SynthBinary(e);
      case ExprKind::kUnary: {
        DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.a));
        if (e.un_op == UnaryOp::kNot) {
          DBPL_RETURN_IF_ERROR(Expect(t, Type::Bool(), e.span, "'not'"));
          return Type::Bool();
        }
        if (t == Type::Int() || t == Type::Real()) return t;
        return Err(e.span, "negation needs Int or Real, got " + t.ToString());
      }
      case ExprKind::kIf: {
        DBPL_ASSIGN_OR_RETURN(Type c, Synth(e.a));
        DBPL_RETURN_IF_ERROR(Expect(c, Type::Bool(), e.span, "condition"));
        DBPL_ASSIGN_OR_RETURN(Type t1, Synth(e.b));
        DBPL_ASSIGN_OR_RETURN(Type t2, Synth(e.c));
        return types::Lub(t1, t2);
      }
      case ExprKind::kLambda: {
        DBPL_ASSIGN_OR_RETURN(Type body, SynthLambdaBody(e));
        Type result = body;
        if (e.has_type) {
          DBPL_RETURN_IF_ERROR(Expect(body, e.type, e.span, "function body"));
          result = e.type;
        }
        std::vector<Type> params;
        for (const auto& p : e.params) params.push_back(p.type);
        return Type::Func(std::move(params), std::move(result));
      }
      case ExprKind::kCall:
        return SynthCall(e);
      case ExprKind::kLet: {
        DBPL_ASSIGN_OR_RETURN(Type bound, Synth(e.a));
        if (e.has_type) {
          DBPL_RETURN_IF_ERROR(Expect(bound, e.type, e.span, "let binding"));
          bound = e.type;
        }
        auto saved = globals_;
        globals_[e.str] = bound;
        Result<Type> body = Synth(e.b);
        globals_ = std::move(saved);
        return body;
      }
      case ExprKind::kDynamic: {
        DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.a));
        if (!IsDataType(t)) {
          return Err(e.span,
                     "'dynamic' needs first-order data, got " + t.ToString());
        }
        // Record the static type the dynamic will carry (Amber pairs
        // the value with its static type).
        e.type = t;
        e.has_type = true;
        return Type::Dynamic();
      }
      case ExprKind::kCoerce: {
        DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.a));
        DBPL_RETURN_IF_ERROR(
            Expect(t, Type::Dynamic(), e.span, "'coerce' operand"));
        return e.type;
      }
      case ExprKind::kTypeofE: {
        DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.a));
        DBPL_RETURN_IF_ERROR(
            Expect(t, Type::Dynamic(), e.span, "'typeof' operand"));
        return Type::String();
      }
      case ExprKind::kJoinE: {
        DBPL_ASSIGN_OR_RETURN(Type t1, Synth(e.a));
        DBPL_ASSIGN_OR_RETURN(Type t2, Synth(e.b));
        Type r1 = ResolveForAccess(t1);
        Type r2 = ResolveForAccess(t2);
        bool records = r1.kind() == TypeKind::kRecord &&
                       r2.kind() == TypeKind::kRecord;
        bool sets =
            r1.kind() == TypeKind::kSet && r2.kind() == TypeKind::kSet;
        if (!records && !sets) {
          return Err(e.span, "'join' needs two records or two sets, got " +
                                 t1.ToString() + " and " + t2.ToString());
        }
        Result<Type> glb = types::Glb(r1, r2);
        if (!glb.ok()) {
          if (sets) {
            // A set join keeps only the *consistent* pairwise joins, so
            // element types with meet ⊥ make the join statically empty —
            // well-typed (the empty set inhabits Set[Bottom]) but almost
            // certainly a mistake; the statically-inconsistent-join lint
            // pass (DL003) warns about it.
            return Type::Set(Type::Bottom());
          }
          return Err(e.span, "operands of 'join' have contradictory types: " +
                                 glb.status().message());
        }
        return glb;
      }
      case ExprKind::kNewDb:
        return Type::List(Type::Dynamic());
      case ExprKind::kInsert: {
        DBPL_ASSIGN_OR_RETURN(Type vt, Synth(e.a));
        if (!IsDataType(vt) && vt.kind() != TypeKind::kDynamic) {
          return Err(e.span, "cannot insert a value of type " + vt.ToString());
        }
        if (vt.kind() != TypeKind::kDynamic) {
          e.type = vt;  // the type the inserted dynamic will carry
          e.has_type = true;
        }
        DBPL_ASSIGN_OR_RETURN(Type dbt, Synth(e.b));
        DBPL_RETURN_IF_ERROR(Expect(dbt, Type::List(Type::Dynamic()), e.span,
                                    "'insert' target"));
        return Type::List(Type::Dynamic());
      }
      case ExprKind::kGet: {
        if (!IsDataType(e.type)) {
          return Err(e.span, "'get' needs a data type, got " +
                                 e.type.ToString());
        }
        DBPL_ASSIGN_OR_RETURN(Type dbt, Synth(e.b));
        DBPL_RETURN_IF_ERROR(Expect(dbt, Type::List(Type::Dynamic()), e.span,
                                    "'get' source"));
        // The paper's result type: List[∃t ≤ T. t].
        return Type::List(Type::Exists("t", e.type, Type::Var("t")));
      }
      case ExprKind::kExtern: {
        DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.a));
        if (!IsDataType(t) && t.kind() != TypeKind::kDynamic) {
          return Err(e.span,
                     "cannot extern a value of type " + t.ToString());
        }
        if (t.kind() != TypeKind::kDynamic) {
          e.type = t;  // the type the externed dynamic will carry
          e.has_type = true;
        }
        return t;
      }
      case ExprKind::kIntern:
        return Type::Dynamic();
      case ExprKind::kVariantLit: {
        DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.a));
        if (!IsDataType(t)) {
          return Err(e.span, "variant payload must be first-order data");
        }
        return Type::VariantOf({{e.str, std::move(t)}});
      }
      case ExprKind::kCase: {
        DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.a));
        Type scrutinee = ResolveForAccess(t);
        if (scrutinee.kind() != TypeKind::kVariant) {
          return Err(e.span, "'case' scrutinee must be a variant, got " +
                                 t.ToString());
        }
        // Every arm's tag must exist; every variant tag must be
        // covered (exhaustiveness).
        std::set<std::string> covered;
        Type result = Type::Bottom();
        for (const CaseArm& arm : e.arms) {
          const Type* payload = scrutinee.FindField(arm.tag);
          if (payload == nullptr) {
            return Err(e.span, "case arm '" + arm.tag +
                                   "' is not a tag of " +
                                   scrutinee.ToString());
          }
          if (!covered.insert(arm.tag).second) {
            return Err(e.span, "duplicate case arm '" + arm.tag + "'");
          }
          auto saved = globals_;
          globals_[arm.binder] = *payload;
          Result<Type> body = Synth(arm.body);
          globals_ = std::move(saved);
          if (!body.ok()) return body.status();
          result = types::Lub(result, *body);
        }
        for (const auto& tag : scrutinee.fields()) {
          if (!covered.contains(tag.name)) {
            return Err(e.span, "case does not cover tag '" + tag.name + "'");
          }
        }
        return result;
      }
    }
    return Err(e.span, "unreachable expression kind");
  }

  Result<Type> SynthBinary(Expr& e) {
    DBPL_ASSIGN_OR_RETURN(Type t1, Synth(e.a));
    DBPL_ASSIGN_OR_RETURN(Type t2, Synth(e.b));
    switch (e.bin_op) {
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        DBPL_RETURN_IF_ERROR(Expect(t1, Type::Bool(), e.span, "operand"));
        DBPL_RETURN_IF_ERROR(Expect(t2, Type::Bool(), e.span, "operand"));
        return Type::Bool();
      case BinaryOp::kAdd:
        if (t1 == Type::String() && t2 == Type::String()) {
          return Type::String();
        }
        [[fallthrough]];
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
        if (t1 == Type::Int() && t2 == Type::Int()) return Type::Int();
        if (t1 == Type::Real() && t2 == Type::Real()) return Type::Real();
        return Err(e.span, "arithmetic needs matching Int or Real operands, "
                           "got " +
                               t1.ToString() + " and " + t2.ToString());
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        if ((t1 == Type::Int() && t2 == Type::Int()) ||
            (t1 == Type::Real() && t2 == Type::Real()) ||
            (t1 == Type::String() && t2 == Type::String())) {
          return Type::Bool();
        }
        return Err(e.span, "comparison needs matching Int, Real or String "
                           "operands, got " +
                               t1.ToString() + " and " + t2.ToString());
      case BinaryOp::kEq:
      case BinaryOp::kNe:
        if (types::IsSubtype(t1, t2) || types::IsSubtype(t2, t1)) {
          return Type::Bool();
        }
        return Err(e.span, "equality between unrelated types " +
                               t1.ToString() + " and " + t2.ToString());
    }
    return Err(e.span, "unreachable binary op");
  }

  Result<Type> SynthCall(Expr& e) {
    // Contextual builtins.
    if (e.a->kind == ExprKind::kVar && IsBuiltinName(e.a->str) &&
        !globals_.contains(e.a->str)) {
      return SynthBuiltin(e);
    }
    DBPL_ASSIGN_OR_RETURN(Type fn, Synth(e.a));
    if (fn.kind() != TypeKind::kFunc) {
      return Err(e.span, "calling a non-function of type " + fn.ToString());
    }
    if (fn.params().size() != e.elems.size()) {
      return Err(e.span, "expected " + std::to_string(fn.params().size()) +
                             " arguments, got " +
                             std::to_string(e.elems.size()));
    }
    for (size_t i = 0; i < e.elems.size(); ++i) {
      DBPL_ASSIGN_OR_RETURN(Type arg, Synth(e.elems[i]));
      DBPL_RETURN_IF_ERROR(Expect(arg, fn.params()[i], e.span,
                                  "argument " + std::to_string(i + 1)));
    }
    return fn.result();
  }

  /// Requires the type to be a List (or Set for the set-friendly
  /// builtins), after unpacking.
  Result<Type> ExpectCollection(const Type& t, const Span& span, bool allow_set) {
    Type r = ResolveForAccess(t);
    if (r.kind() == TypeKind::kList ||
        (allow_set && r.kind() == TypeKind::kSet)) {
      return r;
    }
    return Err(span, "expected a List" + std::string(allow_set ? " or Set" : "") +
                         ", got " + t.ToString());
  }

  Result<Type> SynthBuiltin(Expr& e) {
    const std::string& name = e.a->str;
    auto arity = [&](size_t n) -> Status {
      if (e.elems.size() != n) {
        return Err(e.span, "'" + name + "' expects " + std::to_string(n) +
                               " argument(s), got " +
                               std::to_string(e.elems.size()));
      }
      return Status::OK();
    };
    if (name == "head") {
      DBPL_RETURN_IF_ERROR(arity(1));
      DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.elems[0]));
      DBPL_ASSIGN_OR_RETURN(Type l, ExpectCollection(t, e.span, false));
      return l.element();
    }
    if (name == "tail") {
      DBPL_RETURN_IF_ERROR(arity(1));
      DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.elems[0]));
      DBPL_ASSIGN_OR_RETURN(Type l, ExpectCollection(t, e.span, false));
      return l;
    }
    if (name == "cons") {
      DBPL_RETURN_IF_ERROR(arity(2));
      DBPL_ASSIGN_OR_RETURN(Type head, Synth(e.elems[0]));
      DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.elems[1]));
      DBPL_ASSIGN_OR_RETURN(Type l, ExpectCollection(t, e.span, false));
      return Type::List(types::Lub(head, l.element()));
    }
    if (name == "length") {
      DBPL_RETURN_IF_ERROR(arity(1));
      DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.elems[0]));
      DBPL_RETURN_IF_ERROR(ExpectCollection(t, e.span, true).status());
      return Type::Int();
    }
    if (name == "isempty") {
      DBPL_RETURN_IF_ERROR(arity(1));
      DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.elems[0]));
      DBPL_RETURN_IF_ERROR(ExpectCollection(t, e.span, true).status());
      return Type::Bool();
    }
    if (name == "nth") {
      DBPL_RETURN_IF_ERROR(arity(2));
      DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.elems[0]));
      DBPL_ASSIGN_OR_RETURN(Type l, ExpectCollection(t, e.span, false));
      DBPL_ASSIGN_OR_RETURN(Type i, Synth(e.elems[1]));
      DBPL_RETURN_IF_ERROR(Expect(i, Type::Int(), e.span, "index"));
      return l.element();
    }
    if (name == "sum") {
      DBPL_RETURN_IF_ERROR(arity(1));
      DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.elems[0]));
      DBPL_ASSIGN_OR_RETURN(Type l, ExpectCollection(t, e.span, true));
      if (l.element() == Type::Int() ||
          l.element() == Type::Bottom()) {
        return Type::Int();
      }
      if (l.element() == Type::Real()) return Type::Real();
      return Err(e.span, "'sum' needs Int or Real elements, got " +
                             l.element().ToString());
    }
    if (name == "map" || name == "filter") {
      DBPL_RETURN_IF_ERROR(arity(2));
      DBPL_ASSIGN_OR_RETURN(Type fn, Synth(e.elems[0]));
      DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.elems[1]));
      DBPL_ASSIGN_OR_RETURN(Type l, ExpectCollection(t, e.span, false));
      if (fn.kind() != TypeKind::kFunc || fn.params().size() != 1) {
        return Err(e.span, "'" + name + "' needs a one-argument function");
      }
      DBPL_RETURN_IF_ERROR(
          Expect(l.element(), fn.params()[0], e.span, "element type"));
      if (name == "filter") {
        DBPL_RETURN_IF_ERROR(
            Expect(fn.result(), Type::Bool(), e.span, "filter predicate"));
        return l;
      }
      return Type::List(fn.result());
    }
    if (name == "fold") {
      DBPL_RETURN_IF_ERROR(arity(3));
      DBPL_ASSIGN_OR_RETURN(Type fn, Synth(e.elems[0]));
      DBPL_ASSIGN_OR_RETURN(Type init, Synth(e.elems[1]));
      DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.elems[2]));
      DBPL_ASSIGN_OR_RETURN(Type l, ExpectCollection(t, e.span, false));
      if (fn.kind() != TypeKind::kFunc || fn.params().size() != 2) {
        return Err(e.span, "'fold' needs a two-argument function");
      }
      DBPL_RETURN_IF_ERROR(Expect(init, fn.params()[0], e.span,
                                  "fold initial value"));
      DBPL_RETURN_IF_ERROR(Expect(fn.result(), fn.params()[0], e.span,
                                  "fold accumulator"));
      DBPL_RETURN_IF_ERROR(
          Expect(l.element(), fn.params()[1], e.span, "fold element type"));
      return fn.result();
    }
    if (name == "concat") {
      DBPL_RETURN_IF_ERROR(arity(2));
      DBPL_ASSIGN_OR_RETURN(Type t1, Synth(e.elems[0]));
      DBPL_ASSIGN_OR_RETURN(Type t2, Synth(e.elems[1]));
      DBPL_ASSIGN_OR_RETURN(Type l1, ExpectCollection(t1, e.span, false));
      DBPL_ASSIGN_OR_RETURN(Type l2, ExpectCollection(t2, e.span, false));
      return Type::List(types::Lub(l1.element(), l2.element()));
    }
    if (name == "elements") {
      DBPL_RETURN_IF_ERROR(arity(1));
      DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.elems[0]));
      Type r = ResolveForAccess(t);
      if (r.kind() != TypeKind::kSet) {
        return Err(e.span, "'elements' needs a Set, got " + t.ToString());
      }
      return Type::List(r.element());
    }
    if (name == "setof") {
      DBPL_RETURN_IF_ERROR(arity(1));
      DBPL_ASSIGN_OR_RETURN(Type t, Synth(e.elems[0]));
      DBPL_ASSIGN_OR_RETURN(Type l, ExpectCollection(t, e.span, false));
      if (!IsDataType(l.element())) {
        return Err(e.span, "sets may only contain first-order data");
      }
      return Type::Set(l.element());
    }
    if (name == "lesseq" || name == "consistent" || name == "meet") {
      // The information ordering, exposed to programs: `lesseq(a, b)`
      // is the paper's a ⊑ b; `consistent(a, b)` tests whether a ⊔ b
      // exists; `meet(a, b)` computes a ⊓ b (always defined).
      DBPL_RETURN_IF_ERROR(arity(2));
      DBPL_ASSIGN_OR_RETURN(Type t1, Synth(e.elems[0]));
      DBPL_ASSIGN_OR_RETURN(Type t2, Synth(e.elems[1]));
      if (!IsDataType(t1) || !IsDataType(t2)) {
        return Err(e.span, "'" + name + "' needs first-order data");
      }
      if (name == "meet") return types::Lub(t1, t2);  // less info, higher type
      return Type::Bool();
    }
    return Err(e.span, "unknown builtin '" + name + "'");
  }

  std::map<std::string, Type>& globals_;
};

}  // namespace

bool IsBuiltinName(std::string_view name) {
  return Builtins().contains(name);
}

Result<std::vector<DeclType>> TypeCheck(Program& program) {
  std::map<std::string, Type> globals;
  Checker checker(&globals);
  return checker.Check(program);
}

Result<std::vector<DeclType>> TypeChecker::CheckProgram(Program& program) {
  Checker checker(&globals_);
  return checker.Check(program);
}

}  // namespace dbpl::lang
