#ifndef DBPL_LANG_EVAL_H_
#define DBPL_LANG_EVAL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "lang/ast.h"
#include "lang/rt_value.h"
#include "persist/replicating_store.h"

namespace dbpl::lang {

/// Evaluates type-checked MiniAmber programs.
///
/// `extern`/`intern` are backed by a `persist::ReplicatingStore` so the
/// language exhibits exactly the replicating-persistence semantics the
/// paper describes for Amber (handles name copies).
class Evaluator {
 public:
  /// `store` may be null; extern/intern then fail with Unsupported.
  explicit Evaluator(persist::ReplicatingStore* store) : store_(store) {}

  /// Evaluates one top-level declaration, updating the global
  /// environment. For expression statements the value is returned;
  /// for lets, the bound value.
  Result<RtValue> EvalDecl(const Decl& decl);

  /// Looks up a global binding (for tests and the REPL).
  Result<RtValue> Global(const std::string& name) const;

 private:
  using Env = std::vector<std::pair<std::string, RtValue>>;
  using EnvPtr = std::shared_ptr<const Env>;

  Result<RtValue> Eval(const ExprPtr& e, const EnvPtr& env);
  Result<RtValue> EvalCall(const Expr& e, const EnvPtr& env);
  Result<RtValue> EvalBuiltin(const Expr& e, const EnvPtr& env);
  Result<RtValue> EvalBinary(const Expr& e, const EnvPtr& env);
  Result<RtValue> Apply(const RtValue& fn, std::vector<RtValue> args,
                        int line);

  /// Gets the elements of a list-like value (data list, generic list),
  /// or of a data set when `allow_set`.
  Result<std::vector<RtValue>> Elements(const RtValue& v, int line,
                                        bool allow_set);

  Status Err(int line, const std::string& msg) const {
    return Status::InvalidArgument("line " + std::to_string(line) + ": " +
                                   msg);
  }

  persist::ReplicatingStore* store_;
  std::map<std::string, RtValue> globals_;
};

}  // namespace dbpl::lang

#endif  // DBPL_LANG_EVAL_H_
