#ifndef DBPL_LANG_TYPECHECK_H_
#define DBPL_LANG_TYPECHECK_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "lang/ast.h"
#include "types/type.h"

namespace dbpl::lang {

/// True for the contextual builtin functions (head, tail, cons, length,
/// isempty, nth, sum, map, filter, fold, concat, elements, setof).
/// Builtins are not first-class: they may only appear applied.
bool IsBuiltinName(std::string_view name);

/// The static type assigned to each top-level declaration.
struct DeclType {
  std::string name;  // empty for expression statements
  types::Type type;
};

/// Statically type-checks a program with subsumption (an Employee may
/// be used wherever a Person is expected), following the paper's
/// predilection for static checking with two dynamic escape hatches:
/// `dynamic`/`coerce`, and the generic `get T from db`, whose result is
/// typed `List[Exists t <= T. t]`.
///
/// Checking also *annotates* the AST: each `dynamic e` node records the
/// static type of `e` (the type the dynamic will carry, as in Amber).
Result<std::vector<DeclType>> TypeCheck(Program& program);

/// A stateful checker whose global bindings survive across programs
/// (used by the incremental interpreter / REPL).
class TypeChecker {
 public:
  Result<std::vector<DeclType>> CheckProgram(Program& program);

 private:
  std::map<std::string, types::Type> globals_;
};

}  // namespace dbpl::lang

#endif  // DBPL_LANG_TYPECHECK_H_
