#ifndef DBPL_LANG_SPAN_H_
#define DBPL_LANG_SPAN_H_

#include <string>

namespace dbpl::lang {

/// A half-open source region: from (line, column) inclusive to
/// (end_line, end_column) exclusive. Lines and columns are 1-based;
/// columns count bytes from the start of the line. A default-constructed
/// Span (all zeros) means "no position".
struct Span {
  int line = 0;
  int column = 0;
  int end_line = 0;
  int end_column = 0;

  bool valid() const { return line > 0; }

  /// A zero-width span at the start position (used when only a point is
  /// known).
  static Span Point(int line, int column) {
    return Span{line, column, line, column};
  }

  /// The region from the start of `a` to the end of `b`.
  static Span Join(const Span& a, const Span& b) {
    if (!a.valid()) return b;
    if (!b.valid()) return a;
    return Span{a.line, a.column, b.end_line, b.end_column};
  }

  /// "line:column" of the start (the conventional rendering).
  std::string ToString() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }

  bool operator==(const Span& other) const {
    return line == other.line && column == other.column &&
           end_line == other.end_line && end_column == other.end_column;
  }
  bool operator!=(const Span& other) const { return !(*this == other); }

  /// Lexicographic order by start then end; used to sort diagnostics.
  bool operator<(const Span& other) const {
    if (line != other.line) return line < other.line;
    if (column != other.column) return column < other.column;
    if (end_line != other.end_line) return end_line < other.end_line;
    return end_column < other.end_column;
  }
};

}  // namespace dbpl::lang

#endif  // DBPL_LANG_SPAN_H_
