#ifndef DBPL_LANG_LEXER_H_
#define DBPL_LANG_LEXER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "lang/token.h"

namespace dbpl::lang {

/// Tokenizes MiniAmber source. Comments run from `--` to end of line
/// (as in the paper's program fragments).
Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace dbpl::lang

#endif  // DBPL_LANG_LEXER_H_
