#include "lang/rt_value.h"

#include <cassert>
#include <sstream>

namespace dbpl::lang {

RtValue RtValue::Data(core::Value v) {
  RtValue out;
  out.kind_ = Kind::kData;
  out.data_ = std::move(v);
  return out;
}

RtValue RtValue::MakeClosure(Closure c) {
  RtValue out;
  out.kind_ = Kind::kClosure;
  out.closure_ = std::make_shared<const Closure>(std::move(c));
  return out;
}

RtValue RtValue::Dyn(dyndb::Dynamic d) {
  RtValue out;
  out.kind_ = Kind::kDynamic;
  out.dyn_ = std::make_shared<const dyndb::Dynamic>(std::move(d));
  return out;
}

RtValue RtValue::GenList(std::vector<RtValue> elems) {
  RtValue out;
  out.kind_ = Kind::kGenList;
  out.gen_list_ =
      std::make_shared<const std::vector<RtValue>>(std::move(elems));
  return out;
}

RtValue RtValue::NewDatabase() {
  RtValue out;
  out.kind_ = Kind::kDatabase;
  out.db_ = std::make_shared<Db>();
  return out;
}

const core::Value& RtValue::data() const {
  assert(kind_ == Kind::kData);
  return data_;
}

const Closure& RtValue::closure() const {
  assert(kind_ == Kind::kClosure);
  return *closure_;
}

const dyndb::Dynamic& RtValue::dyn() const {
  assert(kind_ == Kind::kDynamic);
  return *dyn_;
}

const std::vector<RtValue>& RtValue::gen_list() const {
  assert(kind_ == Kind::kGenList);
  return *gen_list_;
}

const std::shared_ptr<RtValue::Db>& RtValue::database() const {
  assert(kind_ == Kind::kDatabase);
  return db_;
}

Result<core::Value> RtValue::ToCore() const {
  switch (kind_) {
    case Kind::kData:
      return data_;
    case Kind::kClosure:
      return Status::Unsupported("a function value is not first-order data");
    case Kind::kDynamic:
      return Status::Unsupported("a dynamic value is not plain data");
    case Kind::kDatabase:
      return Status::Unsupported("a database is not plain data");
    case Kind::kGenList: {
      std::vector<core::Value> elems;
      elems.reserve(gen_list_->size());
      for (const auto& e : *gen_list_) {
        DBPL_ASSIGN_OR_RETURN(core::Value v, e.ToCore());
        elems.push_back(std::move(v));
      }
      return core::Value::List(std::move(elems));
    }
  }
  return Status::Internal("unreachable RtValue kind");
}

Result<bool> RtValue::Equals(const RtValue& other) const {
  if (kind_ == Kind::kClosure || other.kind_ == Kind::kClosure) {
    return Status::Unsupported("functions cannot be compared for equality");
  }
  if (kind_ == Kind::kDatabase || other.kind_ == Kind::kDatabase) {
    return kind_ == other.kind_ && db_ == other.db_;
  }
  if (kind_ == Kind::kDynamic && other.kind_ == Kind::kDynamic) {
    return *dyn_ == *other.dyn_;
  }
  if (kind_ == Kind::kDynamic || other.kind_ == Kind::kDynamic) {
    return false;
  }
  // Data vs generic list: convert both where possible.
  Result<core::Value> a = ToCore();
  Result<core::Value> b = other.ToCore();
  if (a.ok() && b.ok()) return *a == *b;
  if (kind_ != other.kind_) return false;
  // Generic lists containing dynamics: compare elementwise.
  const auto& la = *gen_list_;
  const auto& lb = *other.gen_list_;
  if (la.size() != lb.size()) return false;
  for (size_t i = 0; i < la.size(); ++i) {
    DBPL_ASSIGN_OR_RETURN(bool eq, la[i].Equals(lb[i]));
    if (!eq) return false;
  }
  return true;
}

std::string RtValue::ToString() const {
  switch (kind_) {
    case Kind::kData:
      return data_.ToString();
    case Kind::kClosure:
      return "<fun/" + std::to_string(closure_->params.size()) + ">";
    case Kind::kDynamic:
      return dyn_->ToString();
    case Kind::kGenList: {
      std::ostringstream os;
      os << "[";
      bool first = true;
      for (const auto& e : *gen_list_) {
        if (!first) os << ", ";
        first = false;
        os << e.ToString();
      }
      os << "]";
      return os.str();
    }
    case Kind::kDatabase: {
      std::ostringstream os;
      os << "<database with " << db_->size() << " values>";
      return os.str();
    }
  }
  return "<?>";
}

}  // namespace dbpl::lang
