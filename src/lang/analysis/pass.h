#ifndef DBPL_LANG_ANALYSIS_PASS_H_
#define DBPL_LANG_ANALYSIS_PASS_H_

#include <string_view>
#include <vector>

#include "lang/analysis/diagnostic.h"
#include "lang/ast.h"
#include "lang/typecheck.h"

namespace dbpl::lang {

/// Everything a pass may look at. The program has already been parsed
/// *and type-checked*: every reachable Expr carries `static_type` (and
/// the checker's carried-type annotations on dynamic/insert/extern), so
/// passes ask the subtype lattice about any node without re-running
/// inference.
struct AnalysisContext {
  const Program& program;
  /// Per-declaration static types, aligned with program.decls.
  const std::vector<DeclType>& decl_types;
  /// The source text (for excerpt rendering; passes rarely need it).
  std::string_view source;
};

/// One static-analysis pass over a checked program. Passes are
/// stateless between runs; diagnostics are appended to `out` in any
/// order (the driver sorts).
class Pass {
 public:
  virtual ~Pass() = default;

  /// Stable human-readable pass name, e.g. "refutable-coercion".
  virtual std::string_view name() const = 0;

  virtual void Run(const AnalysisContext& ctx,
                   std::vector<Diagnostic>* out) = 0;
};

/// Applies `fn` to each direct child expression of `e` (in source
/// order). The shared walk used by every structural pass.
template <typename Fn>
void ForEachChild(const Expr& e, Fn&& fn) {
  if (e.a) fn(*e.a);
  if (e.b) fn(*e.b);
  if (e.c) fn(*e.c);
  for (const auto& [name, sub] : e.fields) {
    if (sub) fn(*sub);
  }
  for (const auto& sub : e.elems) {
    if (sub) fn(*sub);
  }
  for (const auto& arm : e.arms) {
    if (arm.body) fn(*arm.body);
  }
}

/// Depth-first pre-order walk of a whole expression tree.
template <typename Fn>
void Walk(const Expr& e, Fn&& fn) {
  fn(e);
  ForEachChild(e, [&](const Expr& child) { Walk(child, fn); });
}

/// Walks every expression of every declaration of a program.
template <typename Fn>
void WalkProgram(const Program& program, Fn&& fn) {
  for (const Decl& decl : program.decls) {
    if (decl.expr) Walk(*decl.expr, fn);
  }
}

}  // namespace dbpl::lang

#endif  // DBPL_LANG_ANALYSIS_PASS_H_
