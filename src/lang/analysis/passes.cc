#include "lang/analysis/passes.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "types/lattice.h"
#include "types/subtype.h"
#include "types/type.h"

namespace dbpl::lang {
namespace {

using types::Type;

bool IsExempt(const std::string& name) {
  return name.empty() || name[0] == '_';
}

Span BestSpan(const Span& preferred, const Span& fallback) {
  return preferred.valid() ? preferred : fallback;
}

// ---------------------------------------------------------------------------
// DL001: refutable coercion.
// ---------------------------------------------------------------------------

/// The set of static types a Dynamic-typed expression can carry, when
/// the pass can prove it. `known == false` means "could carry anything"
/// (intern, call results, parameters, ...), which suppresses DL001.
struct Carried {
  bool known = false;
  std::vector<Type> candidates;
};

void AddCandidate(Carried* c, const Type& t) {
  for (const Type& existing : c->candidates) {
    if (types::Compare(existing, t) == 0) return;
  }
  c->candidates.push_back(t);
}

Carried MergeCarried(const Carried& a, const Carried& b) {
  Carried out;
  out.known = a.known && b.known;
  if (out.known) {
    for (const Type& t : a.candidates) AddCandidate(&out, t);
    for (const Type& t : b.candidates) AddCandidate(&out, t);
  }
  return out;
}

/// Shared abstract interpretation for the coercion passes: walks the
/// program tracking what each Dynamic-typed expression can carry, and
/// hands every `coerce` site (with its carried set) to a subclass.
/// DL001 fires when the coercion can *never* succeed; DL007 when it
/// can never *fail* — the two useless extremes of the paper's runtime
/// `coerce` check.
class CoercionAnalysisPass : public Pass {
 public:
  void Run(const AnalysisContext& ctx, std::vector<Diagnostic>* out) override {
    std::map<std::string, Carried> env;
    for (const Decl& decl : ctx.program.decls) {
      if (!decl.expr) continue;
      Carried c = Scan(*decl.expr, env, out);
      if (decl.kind == Decl::Kind::kLet) {
        env[decl.name] = std::move(c);
      } else if (decl.kind == Decl::Kind::kLetRec) {
        env.erase(decl.name);
      }
    }
  }

 protected:
  /// Judges one `coerce e to T` site given what `e` is proven to carry
  /// (`carried.known` is true and the candidate set is nonempty).
  virtual void AtCoerce(const Expr& e, const Carried& carried,
                        std::vector<Diagnostic>* out) = 0;

 private:
  /// Walks `e`, judging coercion sites, and returns what `e`
  /// carries if it evaluates to a Dynamic.
  Carried Scan(const Expr& e, std::map<std::string, Carried>& env,
               std::vector<Diagnostic>* out) {
    switch (e.kind) {
      case ExprKind::kDynamic: {
        if (e.a) Scan(*e.a, env, out);
        Carried c;
        if (e.has_type) {
          c.known = true;
          c.candidates = {e.type};
        }
        return c;
      }
      case ExprKind::kVar: {
        auto it = env.find(e.str);
        return it != env.end() ? it->second : Carried{};
      }
      case ExprKind::kLet: {
        Carried bound = Scan(*e.a, env, out);
        auto saved = Rebind(env, e.str, std::move(bound));
        Carried body = Scan(*e.b, env, out);
        Restore(env, e.str, std::move(saved));
        return body;
      }
      case ExprKind::kIf: {
        Scan(*e.a, env, out);
        Carried then_c = Scan(*e.b, env, out);
        Carried else_c = Scan(*e.c, env, out);
        return MergeCarried(then_c, else_c);
      }
      case ExprKind::kCoerce: {
        Carried c = Scan(*e.a, env, out);
        if (c.known && !c.candidates.empty()) AtCoerce(e, c, out);
        return {};
      }
      case ExprKind::kLambda: {
        std::vector<std::pair<std::string, std::optional<Carried>>> saved;
        for (const Param& p : e.params) {
          saved.emplace_back(p.name, Rebind(env, p.name, Carried{}));
        }
        Scan(*e.b, env, out);
        for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
          Restore(env, it->first, std::move(it->second));
        }
        return {};
      }
      case ExprKind::kCase: {
        Scan(*e.a, env, out);
        for (const CaseArm& arm : e.arms) {
          auto saved = Rebind(env, arm.binder, Carried{});
          if (arm.body) Scan(*arm.body, env, out);
          Restore(env, arm.binder, std::move(saved));
        }
        return {};
      }
      default: {
        ForEachChild(e, [&](const Expr& child) { Scan(child, env, out); });
        return {};
      }
    }
  }

  static std::optional<Carried> Rebind(std::map<std::string, Carried>& env,
                                       const std::string& name, Carried c) {
    std::optional<Carried> saved;
    auto it = env.find(name);
    if (it != env.end()) saved = std::move(it->second);
    env[name] = std::move(c);
    return saved;
  }

  static void Restore(std::map<std::string, Carried>& env,
                      const std::string& name, std::optional<Carried> saved) {
    if (saved.has_value()) {
      env[name] = std::move(*saved);
    } else {
      env.erase(name);
    }
  }
};

std::string DescribeCandidates(const Carried& c) {
  std::string carries;
  for (size_t i = 0; i < c.candidates.size(); ++i) {
    if (i > 0) carries += " or ";
    carries += c.candidates[i].ToString();
  }
  return carries;
}

class RefutableCoercionPass : public CoercionAnalysisPass {
 public:
  std::string_view name() const override { return "refutable-coercion"; }

 protected:
  void AtCoerce(const Expr& e, const Carried& c,
                std::vector<Diagnostic>* out) override {
    bool all_inconsistent = std::all_of(
        c.candidates.begin(), c.candidates.end(),
        [&](const Type& s) { return !types::Glb(s, e.type).ok(); });
    if (all_inconsistent) {
      out->push_back(Diagnostic{
          Severity::kWarning, e.span, "DL001",
          "coercion can never succeed: the dynamic carries " +
              DescribeCandidates(c) + ", which has no common subtype with " +
              e.type.ToString()});
    }
  }
};

class IrrefutableCoercionPass : public CoercionAnalysisPass {
 public:
  std::string_view name() const override { return "irrefutable-coercion"; }

 protected:
  void AtCoerce(const Expr& e, const Carried& c,
                std::vector<Diagnostic>* out) override {
    // Fire only on *strict* subsumption: every carried type is a
    // subtype of the target, and at least one is a proper one. The
    // runtime check `IsSubtype(carried, target)` then always passes,
    // so the coerce is dead weight — the expression already has (more
    // than) the target's interface. An *exact*-type coerce (target
    // equal to the one carried type) stays silent: that is the paper's
    // idiomatic way to move Dynamic back into static typing, and the
    // "coercion" is doing real work as a type ascription.
    bool all_subsume = std::all_of(
        c.candidates.begin(), c.candidates.end(),
        [&](const Type& s) { return types::IsSubtype(s, e.type); });
    bool some_proper = std::any_of(
        c.candidates.begin(), c.candidates.end(),
        [&](const Type& s) { return !types::IsSubtype(e.type, s); });
    if (all_subsume && some_proper) {
      out->push_back(Diagnostic{
          Severity::kWarning, e.span, "DL007",
          "coercion always succeeds: the dynamic carries " +
              DescribeCandidates(c) + ", every case a subtype of " +
              e.type.ToString() +
              " — the runtime check is irrefutable and the coerce can be "
              "dropped"});
    }
  }
};

// ---------------------------------------------------------------------------
// DL002: vacuous get.
// ---------------------------------------------------------------------------

class VacuousGetPass : public Pass {
 public:
  std::string_view name() const override { return "vacuous-get"; }

  void Run(const AnalysisContext& ctx, std::vector<Diagnostic>* out) override {
    // A "root" is a top-level `let db = database;`. Anything that makes
    // the database reachable some other way (aliasing, shadowing,
    // redefinition, dynamically-typed inserts) marks it escaped, which
    // only ever *suppresses* warnings.
    roots_.clear();
    for (const Decl& decl : ctx.program.decls) {
      if (decl.kind == Decl::Kind::kTypeAlias) continue;
      auto it = roots_.find(decl.name);
      if (it != roots_.end()) it->second.escaped = true;  // redefinition
      if (decl.kind == Decl::Kind::kLet && decl.expr &&
          decl.expr->kind == ExprKind::kNewDb) {
        roots_[decl.name];  // (re)registers; escaped flag kept if set
      }
    }
    for (const Decl& decl : ctx.program.decls) {
      if (decl.expr) Scan(*decl.expr, decl.kind == Decl::Kind::kExpr);
    }
    for (auto& [name, root] : roots_) {
      if (root.escaped) continue;
      for (const Expr* get : root.gets) {
        if (root.schema.empty()) {
          out->push_back(Diagnostic{
              Severity::kWarning, get->span, "DL002",
              "'get " + get->type.ToString() + " from " + name +
                  "' is always empty: nothing is ever inserted into '" +
                  name + "'"});
          continue;
        }
        bool any_consistent = std::any_of(
            root.schema.begin(), root.schema.end(), [&](const Type& s) {
              return types::Glb(s, get->type).ok();
            });
        if (!any_consistent) {
          std::string held;
          for (size_t i = 0; i < root.schema.size(); ++i) {
            if (i > 0) held += ", ";
            held += root.schema[i].ToString();
          }
          out->push_back(Diagnostic{
              Severity::kWarning, get->span, "DL002",
              "'get " + get->type.ToString() + " from " + name +
                  "' is always empty: '" + name + "' only ever holds " +
                  held + ", none of which has a common subtype with " +
                  get->type.ToString()});
        }
      }
    }
  }

 private:
  struct DbRoot {
    std::vector<Type> schema;  // statically-known inserted (carried) types
    std::vector<const Expr*> gets;
    bool escaped = false;
  };

  DbRoot* Root(const std::string& name) {
    auto it = roots_.find(name);
    return it != roots_.end() ? &it->second : nullptr;
  }

  /// Follows `insert v into (insert w into ... db)` chains down to the
  /// database operand; returns the root name if it is a tracked root.
  DbRoot* ChainTarget(const Expr& insert) {
    const Expr* cur = &insert;
    while (cur->kind == ExprKind::kInsert && cur->b) cur = cur->b.get();
    if (cur->kind != ExprKind::kVar) return nullptr;
    return Root(cur->str);
  }

  void Scan(const Expr& e, bool is_stmt_root) {
    switch (e.kind) {
      case ExprKind::kVar: {
        // Any use other than the insert/get positions handled below
        // lets the database escape our tracking.
        if (DbRoot* r = Root(e.str)) r->escaped = true;
        return;
      }
      case ExprKind::kInsert: {
        if (DbRoot* r = ChainTarget(e)) {
          // The insert's *value* is the database, so unless the chain
          // is a whole top-level statement it aliases the root.
          if (!is_stmt_root) r->escaped = true;
          const Expr* cur = &e;
          while (cur->kind == ExprKind::kInsert) {
            if (cur->has_type) {
              r->schema.push_back(cur->type);
            } else {
              r->escaped = true;  // dynamic of unknown carried type
            }
            if (cur->a) Scan(*cur->a, false);
            cur = cur->b.get();
          }
          return;
        }
        break;
      }
      case ExprKind::kGet: {
        if (e.b && e.b->kind == ExprKind::kVar) {
          if (DbRoot* r = Root(e.b->str)) {
            r->gets.push_back(&e);
            return;
          }
        }
        break;
      }
      case ExprKind::kLet: {
        // A local binder reusing the root's name would make later uses
        // ambiguous to this (deliberately simple) pass.
        if (DbRoot* r = Root(e.str)) r->escaped = true;
        break;
      }
      case ExprKind::kLambda: {
        for (const Param& p : e.params) {
          if (DbRoot* r = Root(p.name)) r->escaped = true;
        }
        break;
      }
      case ExprKind::kCase: {
        for (const CaseArm& arm : e.arms) {
          if (DbRoot* r = Root(arm.binder)) r->escaped = true;
        }
        break;
      }
      default:
        break;
    }
    ForEachChild(e, [&](const Expr& child) { Scan(child, false); });
  }

  std::map<std::string, DbRoot> roots_;
};

// ---------------------------------------------------------------------------
// DL003: statically-inconsistent set join.
// ---------------------------------------------------------------------------

class InconsistentJoinPass : public Pass {
 public:
  std::string_view name() const override { return "inconsistent-join"; }

  void Run(const AnalysisContext& ctx, std::vector<Diagnostic>* out) override {
    WalkProgram(ctx.program, [&](const Expr& e) {
      if (e.kind != ExprKind::kJoinE) return;
      if (!e.a || !e.b || !e.a->has_static_type || !e.b->has_static_type) {
        return;
      }
      const Type& ta = e.a->static_type;
      const Type& tb = e.b->static_type;
      if (ta.kind() != types::TypeKind::kSet ||
          tb.kind() != types::TypeKind::kSet) {
        return;
      }
      Result<Type> meet = types::Glb(ta.element(), tb.element());
      if (!meet.ok()) {
        out->push_back(Diagnostic{
            Severity::kWarning, e.span, "DL003",
            "'join' of " + ta.ToString() + " and " + tb.ToString() +
                " is always the empty set: the element types have no "
                "common subtype"});
      }
    });
  }
};

// ---------------------------------------------------------------------------
// DL004 + DL005: binding hygiene.
// ---------------------------------------------------------------------------

/// True when `name` occurs free in `e`.
bool UsesName(const Expr& e, const std::string& name) {
  switch (e.kind) {
    case ExprKind::kVar:
      return e.str == name;
    case ExprKind::kLet: {
      if (e.a && UsesName(*e.a, name)) return true;
      if (e.str == name) return false;  // shadowed in the body
      return e.b && UsesName(*e.b, name);
    }
    case ExprKind::kLambda: {
      for (const Param& p : e.params) {
        if (p.name == name) return false;
      }
      return e.b && UsesName(*e.b, name);
    }
    case ExprKind::kCase: {
      if (e.a && UsesName(*e.a, name)) return true;
      for (const CaseArm& arm : e.arms) {
        if (arm.binder == name) continue;  // shadowed in this arm
        if (arm.body && UsesName(*arm.body, name)) return true;
      }
      return false;
    }
    default: {
      bool found = false;
      ForEachChild(e, [&](const Expr& child) {
        found = found || UsesName(child, name);
      });
      return found;
    }
  }
}

class BindingHygienePass : public Pass {
 public:
  std::string_view name() const override { return "binding-hygiene"; }

  void Run(const AnalysisContext& ctx, std::vector<Diagnostic>* out) override {
    for (const Decl& decl : ctx.program.decls) {
      std::vector<std::string> locals;
      if (decl.expr) Scan(*decl.expr, locals, out);
    }
  }

 private:
  static bool InScope(const std::vector<std::string>& locals,
                      const std::string& name) {
    return std::find(locals.begin(), locals.end(), name) != locals.end();
  }

  void ReportShadow(const std::string& name, const Span& span,
                    std::vector<Diagnostic>* out) {
    out->push_back(Diagnostic{
        Severity::kWarning, span, "DL005",
        "binding of '" + name + "' shadows an earlier local binding"});
  }

  void Scan(const Expr& e, std::vector<std::string>& locals,
            std::vector<Diagnostic>* out) {
    switch (e.kind) {
      case ExprKind::kLet: {
        if (e.a) Scan(*e.a, locals, out);
        Span at = BestSpan(e.name_span, e.span);
        if (!IsExempt(e.str)) {
          if (InScope(locals, e.str)) ReportShadow(e.str, at, out);
          if (e.b && !UsesName(*e.b, e.str)) {
            out->push_back(Diagnostic{
                Severity::kWarning, at, "DL004",
                "'" + e.str + "' is bound but never used"});
          }
        }
        locals.push_back(e.str);
        if (e.b) Scan(*e.b, locals, out);
        locals.pop_back();
        return;
      }
      case ExprKind::kLambda: {
        for (const Param& p : e.params) {
          if (!IsExempt(p.name) && InScope(locals, p.name)) {
            ReportShadow(p.name, BestSpan(p.span, e.span), out);
          }
          locals.push_back(p.name);
        }
        if (e.b) Scan(*e.b, locals, out);
        locals.resize(locals.size() - e.params.size());
        return;
      }
      case ExprKind::kCase: {
        if (e.a) Scan(*e.a, locals, out);
        for (const CaseArm& arm : e.arms) {
          if (!IsExempt(arm.binder) && InScope(locals, arm.binder)) {
            ReportShadow(arm.binder, BestSpan(arm.binder_span, e.span), out);
          }
          locals.push_back(arm.binder);
          if (arm.body) Scan(*arm.body, locals, out);
          locals.pop_back();
        }
        return;
      }
      default:
        ForEachChild(e, [&](const Expr& child) { Scan(child, locals, out); });
        return;
    }
  }
};

// ---------------------------------------------------------------------------
// DL006: constant condition / dead branch.
// ---------------------------------------------------------------------------

enum class ConstBool : uint8_t { kUnknown, kTrue, kFalse };

ConstBool FoldBool(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kBoolLit:
      return e.bool_val ? ConstBool::kTrue : ConstBool::kFalse;
    case ExprKind::kUnary: {
      if (e.un_op != UnaryOp::kNot || !e.a) return ConstBool::kUnknown;
      ConstBool v = FoldBool(*e.a);
      if (v == ConstBool::kTrue) return ConstBool::kFalse;
      if (v == ConstBool::kFalse) return ConstBool::kTrue;
      return ConstBool::kUnknown;
    }
    case ExprKind::kBinary: {
      if (!e.a || !e.b) return ConstBool::kUnknown;
      if (e.bin_op == BinaryOp::kAnd) {
        ConstBool l = FoldBool(*e.a);
        ConstBool r = FoldBool(*e.b);
        if (l == ConstBool::kFalse || r == ConstBool::kFalse) {
          return ConstBool::kFalse;
        }
        if (l == ConstBool::kTrue && r == ConstBool::kTrue) {
          return ConstBool::kTrue;
        }
        return ConstBool::kUnknown;
      }
      if (e.bin_op == BinaryOp::kOr) {
        ConstBool l = FoldBool(*e.a);
        ConstBool r = FoldBool(*e.b);
        if (l == ConstBool::kTrue || r == ConstBool::kTrue) {
          return ConstBool::kTrue;
        }
        if (l == ConstBool::kFalse && r == ConstBool::kFalse) {
          return ConstBool::kFalse;
        }
        return ConstBool::kUnknown;
      }
      return ConstBool::kUnknown;
    }
    default:
      return ConstBool::kUnknown;
  }
}

class ConstantConditionPass : public Pass {
 public:
  std::string_view name() const override { return "constant-condition"; }

  void Run(const AnalysisContext& ctx, std::vector<Diagnostic>* out) override {
    WalkProgram(ctx.program, [&](const Expr& e) {
      if (e.kind != ExprKind::kIf || !e.a || !e.b || !e.c) return;
      ConstBool cond = FoldBool(*e.a);
      if (cond == ConstBool::kTrue) {
        out->push_back(Diagnostic{
            Severity::kWarning, e.c->span, "DL006",
            "condition of 'if' is always true; the 'else' branch is "
            "never taken"});
      } else if (cond == ConstBool::kFalse) {
        out->push_back(Diagnostic{
            Severity::kWarning, e.b->span, "DL006",
            "condition of 'if' is always false; the 'then' branch is "
            "never taken"});
      }
    });
  }
};

}  // namespace

std::unique_ptr<Pass> MakeRefutableCoercionPass() {
  return std::make_unique<RefutableCoercionPass>();
}

std::unique_ptr<Pass> MakeVacuousGetPass() {
  return std::make_unique<VacuousGetPass>();
}

std::unique_ptr<Pass> MakeInconsistentJoinPass() {
  return std::make_unique<InconsistentJoinPass>();
}

std::unique_ptr<Pass> MakeBindingHygienePass() {
  return std::make_unique<BindingHygienePass>();
}

std::unique_ptr<Pass> MakeConstantConditionPass() {
  return std::make_unique<ConstantConditionPass>();
}

std::unique_ptr<Pass> MakeIrrefutableCoercionPass() {
  return std::make_unique<IrrefutableCoercionPass>();
}

std::vector<std::unique_ptr<Pass>> DefaultPasses() {
  std::vector<std::unique_ptr<Pass>> passes;
  passes.push_back(MakeRefutableCoercionPass());
  passes.push_back(MakeVacuousGetPass());
  passes.push_back(MakeInconsistentJoinPass());
  passes.push_back(MakeBindingHygienePass());
  passes.push_back(MakeConstantConditionPass());
  passes.push_back(MakeIrrefutableCoercionPass());
  return passes;
}

}  // namespace dbpl::lang
