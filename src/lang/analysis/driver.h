#ifndef DBPL_LANG_ANALYSIS_DRIVER_H_
#define DBPL_LANG_ANALYSIS_DRIVER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lang/analysis/pass.h"
#include "lang/analysis/passes.h"

namespace dbpl::lang {

/// The result of analysing one program.
struct AnalysisResult {
  /// All diagnostics, sorted by position (then severity, then code).
  std::vector<Diagnostic> diagnostics;
  /// False when the front end (lex/parse/typecheck) rejected the
  /// program; the single rejection is relayed as a DL000 error and no
  /// passes run.
  bool front_end_ok = false;

  bool HasErrors() const {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Severity::kError) return true;
    }
    return false;
  }
};

/// Runs the static-analysis pipeline: lex → parse → type-check (which
/// annotates every node with its static type), then every registered
/// pass over the checked AST. Front-end failures become one DL000
/// error diagnostic instead of a Status, so tooling has a single
/// uniform stream to render.
class AnalysisDriver {
 public:
  /// A driver with the stock lattice-aware passes (DefaultPasses).
  AnalysisDriver();
  explicit AnalysisDriver(std::vector<std::unique_ptr<Pass>> passes);
  ~AnalysisDriver();

  /// Analyses a whole program from source.
  AnalysisResult Analyze(std::string_view source);

  /// Runs just the passes over an already-checked program (used by
  /// Interp, whose front end has already run). Diagnostics are sorted.
  std::vector<Diagnostic> RunPasses(const AnalysisContext& ctx);

  const std::vector<std::unique_ptr<Pass>>& passes() const { return passes_; }

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace dbpl::lang

#endif  // DBPL_LANG_ANALYSIS_DRIVER_H_
