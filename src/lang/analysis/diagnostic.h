#ifndef DBPL_LANG_ANALYSIS_DIAGNOSTIC_H_
#define DBPL_LANG_ANALYSIS_DIAGNOSTIC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "lang/span.h"

namespace dbpl::lang {

/// How serious a diagnostic is. Errors stop the program from running
/// (front-end failures: lex, parse, type); warnings flag programs that
/// are well-typed yet statically doomed or suspicious; notes attach
/// extra context to another diagnostic.
enum class Severity : uint8_t {
  kNote = 0,
  kWarning,
  kError,
};

std::string_view SeverityName(Severity severity);

/// One finding: a severity, a source region, a stable machine-readable
/// code (e.g. "DL001"), and a human-readable message.
///
/// Diagnostic codes (see DESIGN.md §7 for the full table):
///   DL000  front-end error (lex/parse/type), relayed with its span
///   DL001  refutable coercion: `coerce e to T` can never succeed
///   DL002  vacuous get: `get T from db` matches nothing ever inserted
///   DL003  statically inconsistent join: every pairwise ⊔ is ⊥
///   DL004  unused binding
///   DL005  shadowed binding
///   DL006  constant condition / dead branch
///   DL007  irrefutable coercion: `coerce e to T` can never fail
struct Diagnostic {
  Severity severity = Severity::kWarning;
  Span span;
  std::string code;
  std::string message;

  /// Orders by position, then severity (errors first), then code — the
  /// order diagnostics are presented in.
  bool operator<(const Diagnostic& other) const {
    if (span != other.span) return span < other.span;
    if (severity != other.severity) return severity > other.severity;
    return code < other.code;
  }
};

/// Renders one diagnostic the way compilers do — location, severity,
/// message and code, then the offending source line with a caret run
/// underlining the span:
///
///   prog.mam:3:9: warning: coercion can never succeed ... [DL001]
///     let i = coerce d to String;
///             ^~~~~~~~~~~~~~~~~~
///
/// `source` is the full program text the span indexes into; pass the
/// text the diagnostic was produced from. Spans that fall outside the
/// source render without an excerpt.
std::string RenderText(const Diagnostic& diag, std::string_view source,
                       std::string_view filename = "<input>");

/// Renders a whole batch as one JSON document (the `--json` output of
/// dbpl_lint). Schema (stable; see EXPERIMENTS.md tooling appendix):
///
///   {"file": "...",
///    "diagnostics": [{"severity": "warning", "code": "DL001",
///                     "line": 3, "column": 9, "endLine": 3,
///                     "endColumn": 27, "message": "..."}],
///    "errors": 0, "warnings": 1}
std::string RenderJson(const std::vector<Diagnostic>& diags,
                       std::string_view filename);

/// Converts a front-end failure `Status` (from Lex/Parse/TypeCheck) to
/// an error diagnostic, recovering the "line L:C:" position prefix the
/// front end embeds in its messages. Unknown positions map to 1:1.
Diagnostic DiagnosticFromStatus(const Status& status);

/// JSON string escaping (shared with the bench emitters' idiom).
std::string JsonEscape(std::string_view s);

}  // namespace dbpl::lang

#endif  // DBPL_LANG_ANALYSIS_DIAGNOSTIC_H_
