#include "lang/analysis/driver.h"

#include <algorithm>
#include <utility>

#include "lang/parser.h"
#include "lang/typecheck.h"

namespace dbpl::lang {

AnalysisDriver::AnalysisDriver() : passes_(DefaultPasses()) {}

AnalysisDriver::AnalysisDriver(std::vector<std::unique_ptr<Pass>> passes)
    : passes_(std::move(passes)) {}

AnalysisDriver::~AnalysisDriver() = default;

AnalysisResult AnalysisDriver::Analyze(std::string_view source) {
  AnalysisResult result;
  Result<Program> program = Parse(source);
  if (!program.ok()) {
    result.diagnostics.push_back(DiagnosticFromStatus(program.status()));
    return result;
  }
  Result<std::vector<DeclType>> decl_types = TypeCheck(*program);
  if (!decl_types.ok()) {
    result.diagnostics.push_back(DiagnosticFromStatus(decl_types.status()));
    return result;
  }
  result.front_end_ok = true;
  AnalysisContext ctx{*program, *decl_types, source};
  result.diagnostics = RunPasses(ctx);
  return result;
}

std::vector<Diagnostic> AnalysisDriver::RunPasses(const AnalysisContext& ctx) {
  std::vector<Diagnostic> diagnostics;
  for (const std::unique_ptr<Pass>& pass : passes_) {
    pass->Run(ctx, &diagnostics);
  }
  std::sort(diagnostics.begin(), diagnostics.end());
  return diagnostics;
}

}  // namespace dbpl::lang
