#ifndef DBPL_LANG_ANALYSIS_PASSES_H_
#define DBPL_LANG_ANALYSIS_PASSES_H_

#include <memory>
#include <vector>

#include "lang/analysis/pass.h"

namespace dbpl::lang {

/// DL001: `coerce e to T` where every carried type the dynamic can hold
/// has meet ⊥ with `T` — the coercion is *refutable at compile time*:
/// no run can succeed. Tracks carried types through `dynamic e`
/// annotations, let bindings and if-merges; unknown sources (intern,
/// calls, parameters) suppress the warning.
std::unique_ptr<Pass> MakeRefutableCoercionPass();

/// DL002: `get T from db` where `T` is statically incompatible (meet ⊥)
/// with every type ever inserted into `db` — the P2-style check of a
/// program against the database's type descriptions, run before the
/// program does. Databases that escape (aliased, passed, shadowed, or
/// receive dynamics of unknown carried type) are not judged.
std::unique_ptr<Pass> MakeVacuousGetPass();

/// DL003: `s1 join s2` on sets whose element types have meet ⊥ — every
/// pairwise object join is Inconsistent, so the result is always the
/// empty set. (The record analogue is a hard type error.)
std::unique_ptr<Pass> MakeInconsistentJoinPass();

/// DL004 (unused `let`-in binding) and DL005 (local binding shadowing
/// another local binding). Parameters, case binders and top-level
/// declarations are deliberately exempt from DL004, and shadowing of
/// *globals* is deliberately exempt from DL005, to keep the signal
/// high. Names starting with '_' are never reported.
std::unique_ptr<Pass> MakeBindingHygienePass();

/// DL006: `if` whose condition is a boolean constant (after folding
/// not/and/or over literals) — flags the dead branch.
std::unique_ptr<Pass> MakeConstantConditionPass();

/// DL007: `coerce e to T` that can never *fail* — the dual of DL001.
/// Fires when every type the dynamic can carry is a subtype of `T`
/// and at least one is a *proper* subtype: the runtime check is
/// irrefutable and the coerce is dead weight. Exact-type coercions
/// (target equal to the single carried type) are deliberately silent —
/// that is the idiomatic bridge from Dynamic back into static typing.
/// Shares DL001's carried-type abstract interpretation, so unknown
/// sources (intern, calls, parameters) suppress it too.
std::unique_ptr<Pass> MakeIrrefutableCoercionPass();

/// All of the above, in diagnostic-code order.
std::vector<std::unique_ptr<Pass>> DefaultPasses();

}  // namespace dbpl::lang

#endif  // DBPL_LANG_ANALYSIS_PASSES_H_
