#include "lang/analysis/diagnostic.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace dbpl::lang {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

namespace {

/// The `index`-th (1-based) line of `source`, without its newline.
std::string_view SourceLine(std::string_view source, int index) {
  int line = 1;
  size_t start = 0;
  while (line < index) {
    size_t nl = source.find('\n', start);
    if (nl == std::string_view::npos) return {};
    start = nl + 1;
    ++line;
  }
  size_t end = source.find('\n', start);
  if (end == std::string_view::npos) end = source.size();
  return source.substr(start, end - start);
}

}  // namespace

std::string RenderText(const Diagnostic& diag, std::string_view source,
                       std::string_view filename) {
  std::ostringstream os;
  os << filename << ":" << diag.span.line << ":" << diag.span.column << ": "
     << SeverityName(diag.severity) << ": " << diag.message;
  if (!diag.code.empty()) os << " [" << diag.code << "]";
  os << "\n";
  std::string_view excerpt = SourceLine(source, diag.span.line);
  if (!excerpt.empty() && diag.span.column >= 1 &&
      diag.span.column <= static_cast<int>(excerpt.size())) {
    os << "  " << excerpt << "\n";
    // Caret under the span start; tildes to the span end (clamped to
    // this line — multi-line spans underline their first line only).
    int caret_end = diag.span.end_column;
    if (diag.span.end_line != diag.span.line || caret_end <= diag.span.column) {
      caret_end = static_cast<int>(excerpt.size()) + 1;
    }
    caret_end = std::min(caret_end, static_cast<int>(excerpt.size()) + 1);
    os << "  ";
    for (int i = 1; i < diag.span.column; ++i) {
      os << (excerpt[i - 1] == '\t' ? '\t' : ' ');
    }
    os << '^';
    for (int i = diag.span.column + 1; i < caret_end; ++i) os << '~';
    os << "\n";
  }
  return std::move(os).str();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string RenderJson(const std::vector<Diagnostic>& diags,
                       std::string_view filename) {
  size_t errors = 0;
  size_t warnings = 0;
  std::ostringstream os;
  os << "{\"file\": \"" << JsonEscape(filename) << "\", \"diagnostics\": [";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (d.severity == Severity::kError) ++errors;
    if (d.severity == Severity::kWarning) ++warnings;
    if (i > 0) os << ", ";
    os << "{\"severity\": \"" << SeverityName(d.severity) << "\", "
       << "\"code\": \"" << JsonEscape(d.code) << "\", "
       << "\"line\": " << d.span.line << ", "
       << "\"column\": " << d.span.column << ", "
       << "\"endLine\": " << d.span.end_line << ", "
       << "\"endColumn\": " << d.span.end_column << ", "
       << "\"message\": \"" << JsonEscape(d.message) << "\"}";
  }
  os << "], \"errors\": " << errors << ", \"warnings\": " << warnings << "}\n";
  return std::move(os).str();
}

Diagnostic DiagnosticFromStatus(const Status& status) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.code = "DL000";
  d.span = Span::Point(1, 1);
  d.message = status.message();
  // The front ends prefix positions as "line L:C: ..." or embed
  // "... at line L:C: ...". Recover the span and strip the prefix.
  const std::string& msg = status.message();
  size_t at = msg.find("line ");
  if (at != std::string::npos) {
    size_t p = at + 5;
    int line = 0;
    while (p < msg.size() && std::isdigit(static_cast<unsigned char>(msg[p]))) {
      line = line * 10 + (msg[p] - '0');
      ++p;
    }
    int column = 1;
    if (p < msg.size() && msg[p] == ':') {
      ++p;
      int col = 0;
      while (p < msg.size() &&
             std::isdigit(static_cast<unsigned char>(msg[p]))) {
        col = col * 10 + (msg[p] - '0');
        ++p;
      }
      if (col > 0) column = col;
    }
    if (line > 0) {
      d.span = Span::Point(line, column);
      // Strip "[lex|parse error at ]line L:C: " when it leads.
      if (p < msg.size() && msg[p] == ':' && p + 1 < msg.size()) {
        size_t rest = msg.find_first_not_of(' ', p + 1);
        if (rest != std::string::npos && at <= msg.find_first_not_of(' ')) {
          d.message = msg.substr(rest);
        }
      }
    }
  }
  return d;
}

}  // namespace dbpl::lang
