#include "lang/parser.h"

#include <map>
#include <set>

#include "lang/lexer.h"

namespace dbpl::lang {
namespace {

using types::Type;

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::map<std::string, Type>* aliases)
      : tokens_(std::move(tokens)), aliases_(*aliases) {}

  Result<Program> ParseProgram() {
    Program program;
    while (!At(TokenKind::kEof)) {
      DBPL_ASSIGN_OR_RETURN(Decl decl, ParseDecl());
      program.decls.push_back(std::move(decl));
    }
    return program;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  Token Advance() {
    const Token& t = tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_];
    prev_span_ = t.span;
    return t;
  }
  bool Eat(TokenKind kind) {
    if (At(kind)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Err(const std::string& msg) {
    const Token& t = Peek();
    return Status::InvalidArgument("parse error at line " +
                                   std::to_string(t.span.line) + ":" +
                                   std::to_string(t.span.column) + ": " + msg +
                                   " (found " + t.Describe() + ")");
  }

  Status Expect(TokenKind kind) {
    if (Eat(kind)) return Status::OK();
    return Err("expected " + std::string(TokenKindName(kind)));
  }

  ExprPtr Node(ExprKind kind) {
    auto e = std::make_shared<Expr>();
    e->kind = kind;
    e->span = Peek().span;
    return e;
  }

  /// Runs a sub-parser and, on success, stamps the produced node with
  /// the span from the first token at entry through the last token
  /// consumed. Every expression-level Parse* body is wrapped so each
  /// returned node covers exactly its source region.
  template <typename F>
  Result<ExprPtr> Spanned(F&& body) {
    Span start = Peek().span;
    Result<ExprPtr> r = body();
    if (r.ok() && *r != nullptr) {
      (*r)->span = Span::Join(Span::Join(start, (*r)->span), prev_span_);
    }
    return r;
  }

  /// Completes an infix node: its span runs from its left operand's
  /// first token through the last token consumed (the right operand).
  void CloseInfix(const ExprPtr& node) {
    node->span = Span::Join(node->a->span, prev_span_);
  }

  // ------------------------------------------------------------------
  // Declarations
  // ------------------------------------------------------------------

  Result<Decl> ParseDecl() {
    Span start = Peek().span;
    Decl decl;
    decl.span = start;
    if (Eat(TokenKind::kType)) {
      decl.kind = Decl::Kind::kTypeAlias;
      if (!At(TokenKind::kIdent)) return Err("expected type alias name");
      decl.name = Advance().text;
      decl.name_span = prev_span_;
      DBPL_RETURN_IF_ERROR(Expect(TokenKind::kAssign));
      DBPL_ASSIGN_OR_RETURN(decl.type, ParseType());
      decl.has_type = true;
      DBPL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
      if (aliases_.contains(decl.name)) {
        return Status::AlreadyExists("type alias redefined: " + decl.name);
      }
      aliases_[decl.name] = decl.type;
      decl.span = Span::Join(start, prev_span_);
      return decl;
    }
    if (Eat(TokenKind::kLet)) {
      if (Eat(TokenKind::kRec)) {
        return ParseLetRec(start);
      }
      decl.kind = Decl::Kind::kLet;
      if (!At(TokenKind::kIdent)) return Err("expected binder name");
      decl.name = Advance().text;
      decl.name_span = prev_span_;
      if (Eat(TokenKind::kColon)) {
        DBPL_ASSIGN_OR_RETURN(decl.type, ParseType());
        decl.has_type = true;
      }
      DBPL_RETURN_IF_ERROR(Expect(TokenKind::kAssign));
      DBPL_ASSIGN_OR_RETURN(decl.expr, ParseExpr());
      if (Eat(TokenKind::kIn)) {
        // This was a let-in *expression* statement, not a declaration.
        ExprPtr let_expr = Node(ExprKind::kLet);
        let_expr->str = decl.name;
        let_expr->name_span = decl.name_span;
        let_expr->type = decl.type;
        let_expr->has_type = decl.has_type;
        let_expr->a = decl.expr;
        DBPL_ASSIGN_OR_RETURN(let_expr->b, ParseExpr());
        let_expr->span = Span::Join(start, prev_span_);
        decl = Decl{};
        decl.kind = Decl::Kind::kExpr;
        decl.expr = std::move(let_expr);
      }
      DBPL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
      decl.span = Span::Join(start, prev_span_);
      return decl;
    }
    decl.kind = Decl::Kind::kExpr;
    DBPL_ASSIGN_OR_RETURN(decl.expr, ParseExpr());
    DBPL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    decl.span = Span::Join(start, prev_span_);
    return decl;
  }

  Result<Decl> ParseLetRec(Span start) {
    Decl decl;
    decl.kind = Decl::Kind::kLetRec;
    decl.span = start;
    if (!At(TokenKind::kIdent)) return Err("expected function name");
    decl.name = Advance().text;
    decl.name_span = prev_span_;
    ExprPtr lambda = Node(ExprKind::kLambda);
    DBPL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (!Eat(TokenKind::kRParen)) {
      while (true) {
        if (!At(TokenKind::kIdent)) return Err("expected parameter name");
        Param p;
        p.name = Advance().text;
        p.span = prev_span_;
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
        DBPL_ASSIGN_OR_RETURN(p.type, ParseType());
        lambda->params.push_back(std::move(p));
        if (Eat(TokenKind::kRParen)) break;
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      }
    }
    DBPL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    DBPL_ASSIGN_OR_RETURN(lambda->type, ParseType());
    lambda->has_type = true;  // return annotation (required for rec)
    DBPL_RETURN_IF_ERROR(Expect(TokenKind::kAssign));
    DBPL_ASSIGN_OR_RETURN(lambda->b, ParseExpr());
    DBPL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    lambda->span = Span::Join(lambda->span, prev_span_);
    decl.expr = std::move(lambda);
    decl.span = Span::Join(start, prev_span_);
    return decl;
  }

  // ------------------------------------------------------------------
  // Types (aliases resolved eagerly)
  // ------------------------------------------------------------------

  Result<Type> ParseType() {
    DBPL_ASSIGN_OR_RETURN(Type lhs, ParseTypePrimary());
    if (Eat(TokenKind::kArrow)) {
      DBPL_ASSIGN_OR_RETURN(Type result, ParseType());
      return Type::Func({std::move(lhs)}, std::move(result));
    }
    return lhs;
  }

  Result<Type> ParseTypePrimary() {
    if (Eat(TokenKind::kLBrace)) {
      std::vector<std::pair<std::string, Type>> fields;
      if (!Eat(TokenKind::kRBrace)) {
        while (true) {
          if (!At(TokenKind::kIdent)) return Err("expected field label");
          std::string name = Advance().text;
          DBPL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
          DBPL_ASSIGN_OR_RETURN(Type t, ParseType());
          fields.emplace_back(std::move(name), std::move(t));
          if (Eat(TokenKind::kRBrace)) break;
          DBPL_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        }
      }
      Result<Type> made = Type::Record(std::move(fields));
      if (!made.ok()) return made.status();
      return made;
    }
    if (Eat(TokenKind::kLt)) {
      std::vector<std::pair<std::string, Type>> tags;
      while (true) {
        if (!At(TokenKind::kIdent)) return Err("expected variant tag");
        std::string name = Advance().text;
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
        DBPL_ASSIGN_OR_RETURN(Type t, ParseType());
        tags.emplace_back(std::move(name), std::move(t));
        if (Eat(TokenKind::kGt)) break;
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kBar));
      }
      Result<Type> made = Type::Variant(std::move(tags));
      if (!made.ok()) return made.status();
      return made;
    }
    if (Eat(TokenKind::kLParen)) {
      std::vector<Type> list;
      if (!Eat(TokenKind::kRParen)) {
        while (true) {
          DBPL_ASSIGN_OR_RETURN(Type t, ParseType());
          list.push_back(std::move(t));
          if (Eat(TokenKind::kRParen)) break;
          DBPL_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        }
      }
      if (Eat(TokenKind::kArrow)) {
        DBPL_ASSIGN_OR_RETURN(Type result, ParseType());
        return Type::Func(std::move(list), std::move(result));
      }
      if (list.size() == 1) return list[0];
      return Err("parenthesized type list must be followed by '->'");
    }
    if (At(TokenKind::kDynamic)) {
      Advance();
      return Type::Dynamic();
    }
    if (At(TokenKind::kDatabase)) {
      Advance();
      return Type::List(Type::Dynamic());
    }
    if (!At(TokenKind::kIdent)) return Err("expected a type");
    std::string name = Advance().text;
    if (name == "Mu") {
      // Recursive type: Mu v. T (v is in scope as a type variable).
      if (!At(TokenKind::kIdent)) return Err("expected Mu variable");
      std::string var = Advance().text;
      DBPL_RETURN_IF_ERROR(Expect(TokenKind::kDot));
      type_vars_.insert(var);
      Result<Type> body = ParseType();
      type_vars_.erase(var);
      if (!body.ok()) return body.status();
      return Type::Mu(std::move(var), std::move(body).value());
    }
    if (type_vars_.contains(name)) return Type::Var(name);
    if (name == "Int") return Type::Int();
    if (name == "Real") return Type::Real();
    if (name == "Bool") return Type::Bool();
    if (name == "String") return Type::String();
    if (name == "Top") return Type::Top();
    if (name == "Bottom") return Type::Bottom();
    if (name == "Dynamic") return Type::Dynamic();
    if (name == "Database") return Type::List(Type::Dynamic());
    if (name == "List" || name == "Set") {
      DBPL_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
      DBPL_ASSIGN_OR_RETURN(Type element, ParseType());
      DBPL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      return name == "List" ? Type::List(std::move(element))
                            : Type::Set(std::move(element));
    }
    auto it = aliases_.find(name);
    if (it != aliases_.end()) return it->second;
    return Err("unknown type name '" + name + "'");
  }

  // ------------------------------------------------------------------
  // Expressions (precedence climbing)
  // ------------------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    DBPL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (At(TokenKind::kOr)) {
      ExprPtr node = Node(ExprKind::kBinary);
      Advance();
      node->bin_op = BinaryOp::kOr;
      node->a = lhs;
      DBPL_ASSIGN_OR_RETURN(node->b, ParseAnd());
      CloseInfix(node);
      lhs = node;
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    DBPL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    while (At(TokenKind::kAnd)) {
      ExprPtr node = Node(ExprKind::kBinary);
      Advance();
      node->bin_op = BinaryOp::kAnd;
      node->a = lhs;
      DBPL_ASSIGN_OR_RETURN(node->b, ParseComparison());
      CloseInfix(node);
      lhs = node;
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparison() {
    DBPL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseJoin());
    while (At(TokenKind::kEq) || At(TokenKind::kNe) || At(TokenKind::kLt) ||
           At(TokenKind::kLe) || At(TokenKind::kGt) || At(TokenKind::kGe)) {
      ExprPtr node = Node(ExprKind::kBinary);
      switch (Advance().kind) {
        case TokenKind::kEq:
          node->bin_op = BinaryOp::kEq;
          break;
        case TokenKind::kNe:
          node->bin_op = BinaryOp::kNe;
          break;
        case TokenKind::kLt:
          node->bin_op = BinaryOp::kLt;
          break;
        case TokenKind::kLe:
          node->bin_op = BinaryOp::kLe;
          break;
        case TokenKind::kGt:
          node->bin_op = BinaryOp::kGt;
          break;
        default:
          node->bin_op = BinaryOp::kGe;
          break;
      }
      node->a = lhs;
      DBPL_ASSIGN_OR_RETURN(node->b, ParseJoin());
      CloseInfix(node);
      lhs = node;
    }
    return lhs;
  }

  Result<ExprPtr> ParseJoin() {
    DBPL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    while (At(TokenKind::kJoin)) {
      ExprPtr node = Node(ExprKind::kJoinE);
      Advance();
      node->a = lhs;
      DBPL_ASSIGN_OR_RETURN(node->b, ParseAdditive());
      CloseInfix(node);
      lhs = node;
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    DBPL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      ExprPtr node = Node(ExprKind::kBinary);
      node->bin_op =
          Advance().kind == TokenKind::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
      node->a = lhs;
      DBPL_ASSIGN_OR_RETURN(node->b, ParseMultiplicative());
      CloseInfix(node);
      lhs = node;
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    DBPL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (At(TokenKind::kStar) || At(TokenKind::kSlash)) {
      ExprPtr node = Node(ExprKind::kBinary);
      node->bin_op =
          Advance().kind == TokenKind::kStar ? BinaryOp::kMul : BinaryOp::kDiv;
      node->a = lhs;
      DBPL_ASSIGN_OR_RETURN(node->b, ParseUnary());
      CloseInfix(node);
      lhs = node;
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (At(TokenKind::kNot)) {
      ExprPtr node = Node(ExprKind::kUnary);
      Advance();
      node->un_op = UnaryOp::kNot;
      DBPL_ASSIGN_OR_RETURN(node->a, ParseUnary());
      node->span = Span::Join(node->span, prev_span_);
      return node;
    }
    if (At(TokenKind::kMinus)) {
      ExprPtr node = Node(ExprKind::kUnary);
      Advance();
      node->un_op = UnaryOp::kNeg;
      DBPL_ASSIGN_OR_RETURN(node->a, ParseUnary());
      node->span = Span::Join(node->span, prev_span_);
      return node;
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    DBPL_ASSIGN_OR_RETURN(ExprPtr expr, ParsePrimary());
    while (true) {
      if (At(TokenKind::kDot)) {
        ExprPtr node = Node(ExprKind::kField);
        Advance();
        if (!At(TokenKind::kIdent)) return Err("expected field name");
        node->str = Advance().text;
        node->a = expr;
        CloseInfix(node);
        expr = node;
        continue;
      }
      if (At(TokenKind::kLParen)) {
        ExprPtr node = Node(ExprKind::kCall);
        Advance();
        node->a = expr;
        if (!Eat(TokenKind::kRParen)) {
          while (true) {
            DBPL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            node->elems.push_back(std::move(arg));
            if (Eat(TokenKind::kRParen)) break;
            DBPL_RETURN_IF_ERROR(Expect(TokenKind::kComma));
          }
        }
        CloseInfix(node);
        expr = node;
        continue;
      }
      break;
    }
    return expr;
  }

  Result<ExprPtr> ParsePrimary() {
    return Spanned([&] { return ParsePrimaryImpl(); });
  }

  Result<ExprPtr> ParsePrimaryImpl() {
    switch (Peek().kind) {
      case TokenKind::kIntLit: {
        ExprPtr node = Node(ExprKind::kIntLit);
        node->int_val = std::stoll(Advance().text);
        return node;
      }
      case TokenKind::kRealLit: {
        ExprPtr node = Node(ExprKind::kRealLit);
        node->real_val = std::stod(Advance().text);
        return node;
      }
      case TokenKind::kStringLit: {
        ExprPtr node = Node(ExprKind::kStringLit);
        node->str = Advance().text;
        return node;
      }
      case TokenKind::kTrue:
      case TokenKind::kFalse: {
        ExprPtr node = Node(ExprKind::kBoolLit);
        node->bool_val = Advance().kind == TokenKind::kTrue;
        return node;
      }
      case TokenKind::kIdent: {
        ExprPtr node = Node(ExprKind::kVar);
        node->str = Advance().text;
        return node;
      }
      case TokenKind::kLParen: {
        Advance();
        DBPL_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return inner;
      }
      case TokenKind::kLBrace: {
        // Record literal {a = e, ...}.
        ExprPtr node = Node(ExprKind::kRecordLit);
        Advance();
        if (!Eat(TokenKind::kRBrace)) {
          while (true) {
            if (!At(TokenKind::kIdent)) return Err("expected field name");
            std::string name = Advance().text;
            DBPL_RETURN_IF_ERROR(Expect(TokenKind::kAssign));
            DBPL_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
            node->fields.emplace_back(std::move(name), std::move(value));
            if (Eat(TokenKind::kRBrace)) break;
            DBPL_RETURN_IF_ERROR(Expect(TokenKind::kComma));
          }
        }
        return node;
      }
      case TokenKind::kLBracket: {
        ExprPtr node = Node(ExprKind::kListLit);
        Advance();
        if (!Eat(TokenKind::kRBracket)) {
          while (true) {
            DBPL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
            node->elems.push_back(std::move(e));
            if (Eat(TokenKind::kRBracket)) break;
            DBPL_RETURN_IF_ERROR(Expect(TokenKind::kComma));
          }
        }
        return node;
      }
      case TokenKind::kLBraceBar: {
        ExprPtr node = Node(ExprKind::kSetLit);
        Advance();
        if (!Eat(TokenKind::kRBraceBar)) {
          while (true) {
            DBPL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
            node->elems.push_back(std::move(e));
            if (Eat(TokenKind::kRBraceBar)) break;
            DBPL_RETURN_IF_ERROR(Expect(TokenKind::kComma));
          }
        }
        return node;
      }
      case TokenKind::kLt: {
        // Variant literal: <tag = e>. The payload parses above
        // comparison precedence so the closing '>' is unambiguous;
        // parenthesize a comparison payload: <ok = (a > b)>.
        ExprPtr node = Node(ExprKind::kVariantLit);
        Advance();
        if (!At(TokenKind::kIdent)) return Err("expected variant tag");
        node->str = Advance().text;
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kAssign));
        DBPL_ASSIGN_OR_RETURN(node->a, ParseJoin());
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kGt));
        return node;
      }
      case TokenKind::kCase: {
        // case e of tag1(x) => e1 | tag2(y) => e2 | ... end
        ExprPtr node = Node(ExprKind::kCase);
        Advance();
        DBPL_ASSIGN_OR_RETURN(node->a, ParseExpr());
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kOf));
        while (true) {
          CaseArm arm;
          if (!At(TokenKind::kIdent)) return Err("expected case arm tag");
          arm.tag = Advance().text;
          DBPL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
          if (!At(TokenKind::kIdent)) return Err("expected arm binder");
          arm.binder = Advance().text;
          arm.binder_span = prev_span_;
          DBPL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
          DBPL_RETURN_IF_ERROR(Expect(TokenKind::kFatArrow));
          DBPL_ASSIGN_OR_RETURN(arm.body, ParseExpr());
          node->arms.push_back(std::move(arm));
          if (Eat(TokenKind::kEnd)) break;
          DBPL_RETURN_IF_ERROR(Expect(TokenKind::kBar));
        }
        return node;
      }
      case TokenKind::kIf: {
        ExprPtr node = Node(ExprKind::kIf);
        Advance();
        DBPL_ASSIGN_OR_RETURN(node->a, ParseExpr());
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kThen));
        DBPL_ASSIGN_OR_RETURN(node->b, ParseExpr());
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kElse));
        DBPL_ASSIGN_OR_RETURN(node->c, ParseExpr());
        return node;
      }
      case TokenKind::kFun: {
        // fun (x: T, ...) [: R] => body
        ExprPtr node = Node(ExprKind::kLambda);
        Advance();
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        if (!Eat(TokenKind::kRParen)) {
          while (true) {
            if (!At(TokenKind::kIdent)) return Err("expected parameter name");
            Param p;
            p.name = Advance().text;
            p.span = prev_span_;
            DBPL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
            DBPL_ASSIGN_OR_RETURN(p.type, ParseType());
            node->params.push_back(std::move(p));
            if (Eat(TokenKind::kRParen)) break;
            DBPL_RETURN_IF_ERROR(Expect(TokenKind::kComma));
          }
        }
        if (Eat(TokenKind::kColon)) {
          DBPL_ASSIGN_OR_RETURN(node->type, ParseType());
          node->has_type = true;
        }
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kFatArrow));
        DBPL_ASSIGN_OR_RETURN(node->b, ParseExpr());
        return node;
      }
      case TokenKind::kLet: {
        // let x [: T] = e1 in e2
        ExprPtr node = Node(ExprKind::kLet);
        Advance();
        if (!At(TokenKind::kIdent)) return Err("expected binder name");
        node->str = Advance().text;
        node->name_span = prev_span_;
        if (Eat(TokenKind::kColon)) {
          DBPL_ASSIGN_OR_RETURN(node->type, ParseType());
          node->has_type = true;
        }
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kAssign));
        DBPL_ASSIGN_OR_RETURN(node->a, ParseExpr());
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kIn));
        DBPL_ASSIGN_OR_RETURN(node->b, ParseExpr());
        return node;
      }
      case TokenKind::kDynamic: {
        ExprPtr node = Node(ExprKind::kDynamic);
        Advance();
        DBPL_ASSIGN_OR_RETURN(node->a, ParseUnary());
        return node;
      }
      case TokenKind::kCoerce: {
        ExprPtr node = Node(ExprKind::kCoerce);
        Advance();
        DBPL_ASSIGN_OR_RETURN(node->a, ParseExpr());
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kTo));
        DBPL_ASSIGN_OR_RETURN(node->type, ParseType());
        node->has_type = true;
        return node;
      }
      case TokenKind::kTypeof: {
        ExprPtr node = Node(ExprKind::kTypeofE);
        Advance();
        DBPL_ASSIGN_OR_RETURN(node->a, ParseUnary());
        return node;
      }
      case TokenKind::kDatabase: {
        ExprPtr node = Node(ExprKind::kNewDb);
        Advance();
        return node;
      }
      case TokenKind::kInsert: {
        ExprPtr node = Node(ExprKind::kInsert);
        Advance();
        DBPL_ASSIGN_OR_RETURN(node->a, ParseExpr());
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kInto));
        DBPL_ASSIGN_OR_RETURN(node->b, ParseExpr());
        return node;
      }
      case TokenKind::kGet: {
        ExprPtr node = Node(ExprKind::kGet);
        Advance();
        DBPL_ASSIGN_OR_RETURN(node->type, ParseType());
        node->has_type = true;
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kFrom));
        DBPL_ASSIGN_OR_RETURN(node->b, ParseExpr());
        return node;
      }
      case TokenKind::kExtern: {
        ExprPtr node = Node(ExprKind::kExtern);
        Advance();
        DBPL_ASSIGN_OR_RETURN(node->a, ParseExpr());
        DBPL_RETURN_IF_ERROR(Expect(TokenKind::kAs));
        if (!At(TokenKind::kStringLit)) return Err("expected handle string");
        node->str = Advance().text;
        return node;
      }
      case TokenKind::kIntern: {
        ExprPtr node = Node(ExprKind::kIntern);
        Advance();
        if (!At(TokenKind::kStringLit)) return Err("expected handle string");
        node->str = Advance().text;
        return node;
      }
      default:
        return Err("expected an expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  /// Span of the most recently consumed token (ends the current node).
  Span prev_span_ = Span::Point(1, 1);
  std::map<std::string, Type>& aliases_;
  /// Type variables bound by enclosing Mu binders.
  std::set<std::string> type_vars_;
};

}  // namespace

Result<Program> Parse(std::string_view source,
                      std::map<std::string, types::Type>* aliases) {
  DBPL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens), aliases);
  return parser.ParseProgram();
}

Result<Program> Parse(std::string_view source) {
  std::map<std::string, types::Type> aliases;
  return Parse(source, &aliases);
}

}  // namespace dbpl::lang
