#ifndef DBPL_TYPES_LATTICE_H_
#define DBPL_TYPES_LATTICE_H_

#include "common/result.h"
#include "types/type.h"

namespace dbpl::types {

/// Least upper bound of two types: the most specific type both are
/// subtypes of. Always exists (falling back to Top). For records the lub
/// keeps the *common* fields (a wider record is a lower type); for
/// functions it takes the glb of parameters and lub of results.
///
/// Quantified and recursive types are supported only when equivalent;
/// otherwise the lub degrades soundly to Top.
Type Lub(const Type& a, const Type& b);

/// Greatest lower bound — the "common subtype" the paper's schema-
/// evolution discussion calls *consistency*: `DBType` is consistent with
/// `DBType'` when they have a common subtype. Fails with `Inconsistent`
/// when the only common subtype is the empty type Bottom (e.g. `Int` vs
/// `String`, or records whose shared field types clash).
Result<Type> Glb(const Type& a, const Type& b);

/// True iff the two types have a common subtype other than Bottom.
bool ConsistentTypes(const Type& a, const Type& b);

}  // namespace dbpl::types

#endif  // DBPL_TYPES_LATTICE_H_
