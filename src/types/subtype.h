#ifndef DBPL_TYPES_SUBTYPE_H_
#define DBPL_TYPES_SUBTYPE_H_

#include <map>
#include <string>

#include "types/type.h"

namespace dbpl::types {

/// Bounds in scope for free type variables: `var ≤ bounds[var]`.
using BoundEnv = std::map<std::string, Type>;

/// Decides `sub ≤ sup` — "any operation we can perform on a value of
/// type `sup` can also be performed on a value of type `sub`".
///
/// Rules (Cardelli–Wegner style):
///  * `Bottom ≤ T`, `T ≤ Top`;
///  * base types and `Dynamic` only relate to themselves;
///  * records: width and depth — `sub` must have every field of `sup`,
///    each at a subtype (so `Employee = {Name, Address, Emp_no, Dept} ≤
///    Person = {Name, Address}` — the structural inference Amber makes);
///  * variants: covariant width — every tag of `sub` must exist in `sup`;
///  * `List`/`Set` covariant; `Ref` invariant (mutable);
///  * functions: contravariant parameters, covariant result;
///  * a variable `v` is a subtype of `T` when `v = T` or its bound in
///    `env` is (transitively);
///  * bounded quantifiers use the kernel-Fun rule (equivalent bounds,
///    bodies compared under a shared fresh variable);
///  * additionally `S ≤ ∃v ≤ B. T` holds when packing `S` with witness
///    `S` does: `S ≤ B` and `S ≤ T[v := S]` — this is what types the
///    elements of `Get`'s result list;
///  * `Mu` types are equi-recursive: unfolded under a coinductive
///    assumption set (Amadio–Cardelli).
bool IsSubtype(const Type& sub, const Type& sup);
bool IsSubtype(const Type& sub, const Type& sup, const BoundEnv& env);

/// Semantic equivalence: mutual subtyping (alpha- and mu-insensitive).
bool TypeEquiv(const Type& a, const Type& b);

}  // namespace dbpl::types

#endif  // DBPL_TYPES_SUBTYPE_H_
