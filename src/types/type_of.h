#ifndef DBPL_TYPES_TYPE_OF_H_
#define DBPL_TYPES_TYPE_OF_H_

#include "core/value.h"
#include "types/type.h"

namespace dbpl::types {

/// The principal (most specific) structural type of a value — Amber's
/// `typeOf` on dynamic values.
///
/// Mapping:
///  * atoms map to their base types;
///  * records map fieldwise, so a more informative object gets a *lower*
///    type — the reversed orderings the paper points out (`o ⊑ o'`
///    implies `TypeOf(o') ≤ TypeOf(o)`);
///  * `⊥` maps to Top: the wholly uninformative value has the wholly
///    uninformative type;
///  * sets and lists map to Set/List of the lub of their element types
///    (empty collections get element type Bottom, the identity of lub);
///  * references map to `Ref[Top]`: the heap, not the value, knows what
///    a reference points at.
Type TypeOf(const core::Value& v);

}  // namespace dbpl::types

#endif  // DBPL_TYPES_TYPE_OF_H_
