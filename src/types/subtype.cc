#include "types/subtype.h"

#include <set>
#include <utility>

namespace dbpl::types {
namespace {

/// Coinductive subtype checker. Assumptions record (sub, sup) pairs
/// currently being checked so that recursive (`Mu`) types terminate: if
/// the same goal recurs, it is assumed true (greatest fixed point).
class SubtypeChecker {
 public:
  explicit SubtypeChecker(const BoundEnv& env) : env_(env) {}

  bool Check(const Type& sub, const Type& sup) {
    if (depth_ > kMaxDepth) return false;  // defensive bound
    if (sub == sup) return true;
    if (sub.is_bottom()) return true;
    if (sup.is_top()) return true;

    // Coinductive assumption for recursive goals.
    auto key = std::make_pair(sub, sup);
    if (assumptions_.contains(key)) return true;

    const bool involves_mu = sub.kind() == TypeKind::kMu ||
                             sup.kind() == TypeKind::kMu;
    if (involves_mu) assumptions_.insert(key);
    ++depth_;
    bool ok = CheckStructural(sub, sup);
    --depth_;
    if (involves_mu && !ok) assumptions_.erase(key);
    return ok;
  }

 private:
  static constexpr int kMaxDepth = 512;

  bool CheckStructural(const Type& sub, const Type& sup) {
    // Unfold recursive types first (equi-recursive subtyping).
    if (sub.kind() == TypeKind::kMu) return Check(sub.Unfold(), sup);
    if (sup.kind() == TypeKind::kMu) return Check(sub, sup.Unfold());

    // A variable is below anything its declared bound is below.
    if (sub.kind() == TypeKind::kVar) {
      auto it = env_.find(sub.var());
      if (it != env_.end()) return Check(it->second, sup);
      return false;  // unknown variable: only related to itself/Top
    }

    // Packing rule: S ≤ ∃v ≤ B. T when witness S packs.
    if (sup.kind() == TypeKind::kExists &&
        sub.kind() != TypeKind::kExists) {
      return Check(sub, sup.bound()) &&
             Check(sub, sup.body().Substitute(sup.var(), sub));
    }

    // Unpacking rule: ∃v ≤ B. T ≤ S when T ≤ S holds for an abstract
    // v ≤ B (v fresh, so it cannot leak into S). This is what lets a
    // package of type ∃t ≤ Person. t be used wherever a Person can.
    if (sub.kind() == TypeKind::kExists &&
        sup.kind() != TypeKind::kExists) {
      std::string fresh = FreshName(sub, sup);
      Type body = sub.body().Substitute(sub.var(), Type::Var(fresh));
      env_[fresh] = sub.bound();
      bool ok = Check(body, sup);
      env_.erase(fresh);
      return ok;
    }

    if (sub.kind() != sup.kind()) return false;

    switch (sub.kind()) {
      case TypeKind::kBottom:
      case TypeKind::kTop:
      case TypeKind::kBool:
      case TypeKind::kInt:
      case TypeKind::kReal:
      case TypeKind::kString:
      case TypeKind::kDynamic:
        return true;
      case TypeKind::kVar:
        return false;  // distinct variables (equality handled above)
      case TypeKind::kRecord: {
        // Width + depth: sup's fields must all be present in sub.
        for (const auto& f : sup.fields()) {
          const Type* sf = sub.FindField(f.name);
          if (sf == nullptr || !Check(*sf, f.get())) return false;
        }
        return true;
      }
      case TypeKind::kVariant: {
        // Covariant width: sub's tags must all be present in sup.
        for (const auto& t : sub.fields()) {
          const Type* st = sup.FindField(t.name);
          if (st == nullptr || !Check(t.get(), *st)) return false;
        }
        return true;
      }
      case TypeKind::kList:
      case TypeKind::kSet:
        return Check(sub.element(), sup.element());
      case TypeKind::kRef:
        // Invariant: references are readable and writable.
        return Check(sub.element(), sup.element()) &&
               Check(sup.element(), sub.element());
      case TypeKind::kFunc: {
        if (sub.params().size() != sup.params().size()) return false;
        for (size_t i = 0; i < sub.params().size(); ++i) {
          if (!Check(sup.params()[i], sub.params()[i])) return false;
        }
        return Check(sub.result(), sup.result());
      }
      case TypeKind::kForall:
      case TypeKind::kExists: {
        // Kernel rule: equivalent bounds, bodies under a shared fresh
        // variable with that bound.
        if (!Check(sub.bound(), sup.bound()) ||
            !Check(sup.bound(), sub.bound())) {
          return false;
        }
        std::string fresh = FreshName(sub, sup);
        Type fresh_var = Type::Var(fresh);
        Type body_sub = sub.body().Substitute(sub.var(), fresh_var);
        Type body_sup = sup.body().Substitute(sup.var(), fresh_var);
        env_[fresh] = sub.bound();
        bool ok = Check(body_sub, body_sup);
        env_.erase(fresh);
        return ok;
      }
      case TypeKind::kMu:
        return false;  // unreachable: unfolded above
    }
    return false;
  }

  std::string FreshName(const Type& a, const Type& b) {
    std::set<std::string> avoid = a.FreeVars();
    auto fb = b.FreeVars();
    avoid.insert(fb.begin(), fb.end());
    auto add_binder = [&avoid](const Type& t) {
      if (t.kind() == TypeKind::kForall || t.kind() == TypeKind::kExists ||
          t.kind() == TypeKind::kMu) {
        avoid.insert(t.var());
      }
    };
    add_binder(a);
    add_binder(b);
    for (const auto& [k, _] : env_) avoid.insert(k);
    std::string base = "$s";
    std::string candidate = base + std::to_string(counter_++);
    while (avoid.contains(candidate)) {
      candidate = base + std::to_string(counter_++);
    }
    return candidate;
  }

  struct PairLess {
    bool operator()(const std::pair<Type, Type>& x,
                    const std::pair<Type, Type>& y) const {
      int c = Compare(x.first, y.first);
      if (c != 0) return c < 0;
      return Compare(x.second, y.second) < 0;
    }
  };

  BoundEnv env_;
  std::set<std::pair<Type, Type>, PairLess> assumptions_;
  int depth_ = 0;
  int counter_ = 0;
};

}  // namespace

bool IsSubtype(const Type& sub, const Type& sup) {
  return IsSubtype(sub, sup, BoundEnv{});
}

bool IsSubtype(const Type& sub, const Type& sup, const BoundEnv& env) {
  SubtypeChecker checker(env);
  return checker.Check(sub, sup);
}

bool TypeEquiv(const Type& a, const Type& b) {
  return IsSubtype(a, b) && IsSubtype(b, a);
}

}  // namespace dbpl::types
