#include "types/parse.h"

#include <cctype>
#include <string>
#include <vector>

namespace dbpl::types {
namespace {

/// Minimal recursive-descent parser over the type grammar in parse.h.
class TypeParser {
 public:
  explicit TypeParser(std::string_view text) : text_(text) {}

  Result<Type> Parse() {
    DBPL_ASSIGN_OR_RETURN(Type t, ParseFull());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing input after type");
    }
    return t;
  }

 private:
  Status Err(const std::string& msg) {
    return Status::InvalidArgument("type parse error at offset " +
                                   std::to_string(pos_) + ": " + msg);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) == token) {
      // Avoid matching "<=" when "<" was requested, and identifiers that
      // merely share a prefix.
      if (token == "<" && text_.substr(pos_, 2) == "<=") return false;
      pos_ += token.size();
      return true;
    }
    return false;
  }

  bool PeekIs(std::string_view token) {
    SkipSpace();
    if (token == "<" && text_.substr(pos_, 2) == "<=") return false;
    return text_.substr(pos_, token.size()) == token;
  }

  Result<std::string> ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '$' || text_[pos_] == '\'')) {
      ++pos_;
    }
    if (start == pos_) return Err("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<Type> ParseFull() {
    SkipSpace();
    if (EatKeyword("Forall")) return ParseQuantifier(/*universal=*/true);
    if (EatKeyword("Exists")) return ParseQuantifier(/*universal=*/false);
    if (EatKeyword("Mu")) return ParseMu();
    DBPL_ASSIGN_OR_RETURN(Type lhs, ParsePrimary());
    if (Eat("->")) {
      DBPL_ASSIGN_OR_RETURN(Type result, ParseFull());
      return Type::Func({std::move(lhs)}, std::move(result));
    }
    return lhs;
  }

  /// Eats `word` only when it is a whole identifier at the cursor.
  bool EatKeyword(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_, word.size()) != word) return false;
    size_t after = pos_ + word.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  Result<Type> ParseQuantifier(bool universal) {
    DBPL_ASSIGN_OR_RETURN(std::string var, ParseIdent());
    Type bound = Type::Top();
    if (Eat("<=")) {
      DBPL_ASSIGN_OR_RETURN(bound, ParseFull());
    }
    if (!Eat(".")) return Err("expected '.' after quantifier bound");
    DBPL_ASSIGN_OR_RETURN(Type body, ParseFull());
    return universal ? Type::Forall(std::move(var), std::move(bound),
                                    std::move(body))
                     : Type::Exists(std::move(var), std::move(bound),
                                    std::move(body));
  }

  Result<Type> ParseMu() {
    DBPL_ASSIGN_OR_RETURN(std::string var, ParseIdent());
    if (!Eat(".")) return Err("expected '.' after Mu variable");
    DBPL_ASSIGN_OR_RETURN(Type body, ParseFull());
    return Type::Mu(std::move(var), std::move(body));
  }

  Result<Type> ParsePrimary() {
    SkipSpace();
    if (Eat("{")) return ParseRecord();
    if (Eat("<")) return ParseVariant();
    if (Eat("(")) return ParseParenOrFunc();
    if (EatKeyword("Bottom")) return Type::Bottom();
    if (EatKeyword("Top")) return Type::Top();
    if (EatKeyword("Bool")) return Type::Bool();
    if (EatKeyword("Int")) return Type::Int();
    if (EatKeyword("Real")) return Type::Real();
    if (EatKeyword("String")) return Type::String();
    if (EatKeyword("Dynamic")) return Type::Dynamic();
    if (EatKeyword("List")) return ParseBracketed(&Type::List);
    if (EatKeyword("Set")) return ParseBracketed(&Type::Set);
    if (EatKeyword("Ref")) return ParseBracketed(&Type::RefTo);
    DBPL_ASSIGN_OR_RETURN(std::string name, ParseIdent());
    return Type::Var(std::move(name));
  }

  Result<Type> ParseBracketed(Type (*make)(Type)) {
    if (!Eat("[")) return Err("expected '['");
    DBPL_ASSIGN_OR_RETURN(Type element, ParseFull());
    if (!Eat("]")) return Err("expected ']'");
    return make(std::move(element));
  }

  Result<Type> ParseRecord() {
    std::vector<std::pair<std::string, Type>> fields;
    if (Eat("}")) return Type::Record(std::move(fields));
    while (true) {
      DBPL_ASSIGN_OR_RETURN(std::string name, ParseIdent());
      if (!Eat(":")) return Err("expected ':' after field label");
      DBPL_ASSIGN_OR_RETURN(Type t, ParseFull());
      fields.emplace_back(std::move(name), std::move(t));
      if (Eat("}")) break;
      if (!Eat(",")) return Err("expected ',' or '}' in record type");
    }
    return Type::Record(std::move(fields));
  }

  Result<Type> ParseVariant() {
    std::vector<std::pair<std::string, Type>> tags;
    while (true) {
      DBPL_ASSIGN_OR_RETURN(std::string name, ParseIdent());
      if (!Eat(":")) return Err("expected ':' after variant tag");
      DBPL_ASSIGN_OR_RETURN(Type t, ParseFull());
      tags.emplace_back(std::move(name), std::move(t));
      if (Eat(">")) break;
      if (!Eat("|")) return Err("expected '|' or '>' in variant type");
    }
    return Type::Variant(std::move(tags));
  }

  Result<Type> ParseParenOrFunc() {
    std::vector<Type> types;
    if (!Eat(")")) {
      while (true) {
        DBPL_ASSIGN_OR_RETURN(Type t, ParseFull());
        types.push_back(std::move(t));
        if (Eat(")")) break;
        if (!Eat(",")) return Err("expected ',' or ')' in type list");
      }
    }
    if (Eat("->")) {
      DBPL_ASSIGN_OR_RETURN(Type result, ParseFull());
      return Type::Func(std::move(types), std::move(result));
    }
    if (types.size() == 1) return types[0];
    return Err("parenthesized type list must be followed by '->'");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Type> ParseType(std::string_view text) {
  TypeParser parser(text);
  return parser.Parse();
}

}  // namespace dbpl::types
