#ifndef DBPL_TYPES_PARSE_H_
#define DBPL_TYPES_PARSE_H_

#include <string_view>

#include "common/result.h"
#include "types/type.h"

namespace dbpl::types {

/// Parses the textual type syntax produced by `Type::ToString`:
///
///   Bottom | Top | Bool | Int | Real | String | Dynamic
///   {l1: T1, ..., ln: Tn}            records
///   <t1: T1 | ... | tn: Tn>          variants
///   List[T]  Set[T]  Ref[T]
///   (T1, ..., Tn) -> R               functions (also `T -> R` sugar)
///   Forall v [<= B]. T               bounded universal
///   Exists v [<= B]. T               bounded existential
///   Mu v. T                          recursive
///   v                                type variable
///
/// ParseType(ToString(t)) is equivalent (syntactically equal) to t.
Result<Type> ParseType(std::string_view text);

}  // namespace dbpl::types

#endif  // DBPL_TYPES_PARSE_H_
