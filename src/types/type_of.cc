#include "types/type_of.h"

#include <vector>

#include "types/lattice.h"

namespace dbpl::types {

Type TypeOf(const core::Value& v) {
  switch (v.kind()) {
    case core::ValueKind::kBottom:
      return Type::Top();
    case core::ValueKind::kBool:
      return Type::Bool();
    case core::ValueKind::kInt:
      return Type::Int();
    case core::ValueKind::kReal:
      return Type::Real();
    case core::ValueKind::kString:
      return Type::String();
    case core::ValueKind::kRef:
      return Type::RefTo(Type::Top());
    case core::ValueKind::kRecord: {
      std::vector<std::pair<std::string, Type>> fields;
      fields.reserve(v.fields().size());
      for (const auto& f : v.fields()) {
        fields.emplace_back(f.name, TypeOf(f.value));
      }
      return Type::RecordOf(std::move(fields));
    }
    case core::ValueKind::kTagged:
      // The principal type of tag(v) is the single-tag variant, which
      // is a subtype of every wider variant carrying the tag.
      return Type::VariantOf({{v.tag(), TypeOf(v.payload())}});
    case core::ValueKind::kSet:
    case core::ValueKind::kList: {
      Type elem = Type::Bottom();
      for (const auto& e : v.elements()) elem = Lub(elem, TypeOf(e));
      return v.kind() == core::ValueKind::kSet ? Type::Set(std::move(elem))
                                               : Type::List(std::move(elem));
    }
  }
  return Type::Top();
}

}  // namespace dbpl::types
