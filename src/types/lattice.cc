#include "types/lattice.h"

#include <vector>

#include "types/subtype.h"

namespace dbpl::types {
namespace {

/// Depth bound for unfolding recursive types while computing bounds.
/// Beyond it Lub degrades soundly to Top and Glb reports Inconsistent
/// (conservative: both remain correct as bounds, merely less precise).
constexpr int kMaxLatticeDepth = 32;

Type LubAt(const Type& a, const Type& b, int depth);
Result<Type> GlbAt(const Type& a, const Type& b, int depth);

Type LubAt(const Type& a, const Type& b, int depth) {
  if (IsSubtype(a, b)) return b;
  if (IsSubtype(b, a)) return a;
  if (depth > kMaxLatticeDepth) return Type::Top();
  // Expose the structure of recursive operands.
  if (a.kind() == TypeKind::kMu) return LubAt(a.Unfold(), b, depth + 1);
  if (b.kind() == TypeKind::kMu) return LubAt(a, b.Unfold(), depth + 1);
  if (a.kind() != b.kind()) return Type::Top();
  switch (a.kind()) {
    case TypeKind::kRecord: {
      // Common fields only, each at the lub of the two field types.
      std::vector<std::pair<std::string, Type>> out;
      for (const auto& f : a.fields()) {
        if (const Type* bf = b.FindField(f.name)) {
          out.emplace_back(f.name, LubAt(f.get(), *bf, depth + 1));
        }
      }
      return Type::RecordOf(std::move(out));
    }
    case TypeKind::kVariant: {
      // Union of tags (covariant width).
      std::vector<std::pair<std::string, Type>> out;
      for (const auto& t : a.fields()) {
        if (const Type* bt = b.FindField(t.name)) {
          out.emplace_back(t.name, LubAt(t.get(), *bt, depth + 1));
        } else {
          out.emplace_back(t.name, t.get());
        }
      }
      for (const auto& t : b.fields()) {
        if (a.FindField(t.name) == nullptr) {
          out.emplace_back(t.name, t.get());
        }
      }
      return Type::VariantOf(std::move(out));
    }
    case TypeKind::kList:
      return Type::List(LubAt(a.element(), b.element(), depth + 1));
    case TypeKind::kSet:
      return Type::Set(LubAt(a.element(), b.element(), depth + 1));
    case TypeKind::kFunc: {
      if (a.params().size() != b.params().size()) return Type::Top();
      std::vector<Type> ps;
      for (size_t i = 0; i < a.params().size(); ++i) {
        Result<Type> g = GlbAt(a.params()[i], b.params()[i], depth + 1);
        if (!g.ok()) return Type::Top();
        ps.push_back(std::move(g).value());
      }
      return Type::Func(std::move(ps), LubAt(a.result(), b.result(), depth + 1));
    }
    default:
      // Distinct atoms, refs, variables, quantifiers, mus: no useful
      // common supertype below Top.
      return Type::Top();
  }
}

Result<Type> GlbAt(const Type& a, const Type& b, int depth) {
  if (IsSubtype(a, b)) return a;
  if (IsSubtype(b, a)) return b;
  if (depth > kMaxLatticeDepth) {
    return Status::Inconsistent("recursive types too deep to reconcile: " +
                                a.ToString() + " and " + b.ToString());
  }
  if (a.kind() == TypeKind::kMu) return GlbAt(a.Unfold(), b, depth + 1);
  if (b.kind() == TypeKind::kMu) return GlbAt(a, b.Unfold(), depth + 1);
  if (a.kind() != b.kind()) {
    return Status::Inconsistent("no common subtype of " + a.ToString() +
                                " and " + b.ToString());
  }
  switch (a.kind()) {
    case TypeKind::kRecord: {
      // Union of fields; shared fields at the glb of their types. This
      // is exactly the paper's schema enrichment: re-opening a database
      // at a consistent type refines its schema to the common subtype.
      std::vector<std::pair<std::string, Type>> out;
      for (const auto& f : a.fields()) {
        if (const Type* bf = b.FindField(f.name)) {
          DBPL_ASSIGN_OR_RETURN(Type g, GlbAt(f.get(), *bf, depth + 1));
          out.emplace_back(f.name, std::move(g));
        } else {
          out.emplace_back(f.name, f.get());
        }
      }
      for (const auto& f : b.fields()) {
        if (a.FindField(f.name) == nullptr) {
          out.emplace_back(f.name, f.get());
        }
      }
      return Type::RecordOf(std::move(out));
    }
    case TypeKind::kVariant: {
      // Intersection of tags.
      std::vector<std::pair<std::string, Type>> out;
      for (const auto& t : a.fields()) {
        if (const Type* bt = b.FindField(t.name)) {
          DBPL_ASSIGN_OR_RETURN(Type g, GlbAt(t.get(), *bt, depth + 1));
          out.emplace_back(t.name, std::move(g));
        }
      }
      if (out.empty()) {
        return Status::Inconsistent("variants share no tags: " + a.ToString() +
                                    " and " + b.ToString());
      }
      return Type::VariantOf(std::move(out));
    }
    case TypeKind::kList: {
      DBPL_ASSIGN_OR_RETURN(Type g, GlbAt(a.element(), b.element(), depth + 1));
      return Type::List(std::move(g));
    }
    case TypeKind::kSet: {
      DBPL_ASSIGN_OR_RETURN(Type g, GlbAt(a.element(), b.element(), depth + 1));
      return Type::Set(std::move(g));
    }
    case TypeKind::kFunc: {
      if (a.params().size() != b.params().size()) {
        return Status::Inconsistent("function arities differ");
      }
      std::vector<Type> ps;
      for (size_t i = 0; i < a.params().size(); ++i) {
        ps.push_back(LubAt(a.params()[i], b.params()[i], depth + 1));
      }
      DBPL_ASSIGN_OR_RETURN(Type r, GlbAt(a.result(), b.result(), depth + 1));
      return Type::Func(std::move(ps), std::move(r));
    }
    default:
      return Status::Inconsistent("no common subtype of " + a.ToString() +
                                  " and " + b.ToString());
  }
}

}  // namespace

Type Lub(const Type& a, const Type& b) { return LubAt(a, b, 0); }

Result<Type> Glb(const Type& a, const Type& b) { return GlbAt(a, b, 0); }

bool ConsistentTypes(const Type& a, const Type& b) { return Glb(a, b).ok(); }

}  // namespace dbpl::types
