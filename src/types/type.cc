#include "types/type.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace dbpl::types {

std::string_view TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kBottom:
      return "Bottom";
    case TypeKind::kTop:
      return "Top";
    case TypeKind::kBool:
      return "Bool";
    case TypeKind::kInt:
      return "Int";
    case TypeKind::kReal:
      return "Real";
    case TypeKind::kString:
      return "String";
    case TypeKind::kDynamic:
      return "Dynamic";
    case TypeKind::kRecord:
      return "Record";
    case TypeKind::kVariant:
      return "Variant";
    case TypeKind::kList:
      return "List";
    case TypeKind::kSet:
      return "Set";
    case TypeKind::kFunc:
      return "Func";
    case TypeKind::kRef:
      return "Ref";
    case TypeKind::kVar:
      return "Var";
    case TypeKind::kForall:
      return "Forall";
    case TypeKind::kExists:
      return "Exists";
    case TypeKind::kMu:
      return "Mu";
  }
  return "Unknown";
}

struct Type::Rep {
  TypeKind kind = TypeKind::kTop;
  /// Record fields / variant tags, sorted by name.
  std::vector<TypeField> fields;
  /// Function parameter types.
  std::vector<Type> params;
  /// Element type (list/set/ref), function result, or quantifier bound.
  Type a;
  /// Quantifier or Mu body.
  Type b;
  /// Variable name (var and binders).
  std::string name;
};

namespace {

std::shared_ptr<const Type> Box(Type t) {
  return std::make_shared<const Type>(std::move(t));
}

}  // namespace

Type Type::Top() {
  Rep rep;
  rep.kind = TypeKind::kTop;
  return Type(std::make_shared<const Rep>(std::move(rep)));
}
Type Type::Bool() {
  Rep rep;
  rep.kind = TypeKind::kBool;
  return Type(std::make_shared<const Rep>(std::move(rep)));
}
Type Type::Int() {
  Rep rep;
  rep.kind = TypeKind::kInt;
  return Type(std::make_shared<const Rep>(std::move(rep)));
}
Type Type::Real() {
  Rep rep;
  rep.kind = TypeKind::kReal;
  return Type(std::make_shared<const Rep>(std::move(rep)));
}
Type Type::String() {
  Rep rep;
  rep.kind = TypeKind::kString;
  return Type(std::make_shared<const Rep>(std::move(rep)));
}
Type Type::Dynamic() {
  Rep rep;
  rep.kind = TypeKind::kDynamic;
  return Type(std::make_shared<const Rep>(std::move(rep)));
}

namespace {

Result<std::vector<TypeField>> MakeFields(
    std::vector<std::pair<std::string, Type>> fields, const char* what) {
  std::sort(fields.begin(), fields.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  std::vector<TypeField> out;
  out.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0 && fields[i].first == fields[i - 1].first) {
      return Status::InvalidArgument(std::string("duplicate ") + what + ": " +
                                     fields[i].first);
    }
    out.push_back({fields[i].first, Box(std::move(fields[i].second))});
  }
  return out;
}

}  // namespace

Result<Type> Type::Record(std::vector<std::pair<std::string, Type>> fields) {
  DBPL_ASSIGN_OR_RETURN(std::vector<TypeField> fs,
                        MakeFields(std::move(fields), "record label"));
  Rep rep;
  rep.kind = TypeKind::kRecord;
  rep.fields = std::move(fs);
  return Type(std::make_shared<const Rep>(std::move(rep)));
}

Type Type::RecordOf(std::vector<std::pair<std::string, Type>> fields) {
  Result<Type> r = Record(std::move(fields));
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

Result<Type> Type::Variant(std::vector<std::pair<std::string, Type>> tags) {
  DBPL_ASSIGN_OR_RETURN(std::vector<TypeField> fs,
                        MakeFields(std::move(tags), "variant tag"));
  Rep rep;
  rep.kind = TypeKind::kVariant;
  rep.fields = std::move(fs);
  return Type(std::make_shared<const Rep>(std::move(rep)));
}

Type Type::VariantOf(std::vector<std::pair<std::string, Type>> tags) {
  Result<Type> r = Variant(std::move(tags));
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

Type Type::List(Type element) {
  Rep rep;
  rep.kind = TypeKind::kList;
  rep.a = std::move(element);
  return Type(std::make_shared<const Rep>(std::move(rep)));
}

Type Type::Set(Type element) {
  Rep rep;
  rep.kind = TypeKind::kSet;
  rep.a = std::move(element);
  return Type(std::make_shared<const Rep>(std::move(rep)));
}

Type Type::Func(std::vector<Type> params, Type result) {
  Rep rep;
  rep.kind = TypeKind::kFunc;
  rep.params = std::move(params);
  rep.a = std::move(result);
  return Type(std::make_shared<const Rep>(std::move(rep)));
}

Type Type::RefTo(Type target) {
  Rep rep;
  rep.kind = TypeKind::kRef;
  rep.a = std::move(target);
  return Type(std::make_shared<const Rep>(std::move(rep)));
}

Type Type::Var(std::string name) {
  Rep rep;
  rep.kind = TypeKind::kVar;
  rep.name = std::move(name);
  return Type(std::make_shared<const Rep>(std::move(rep)));
}

Type Type::Forall(std::string var, Type bound, Type body) {
  Rep rep;
  rep.kind = TypeKind::kForall;
  rep.name = std::move(var);
  rep.a = std::move(bound);
  rep.b = std::move(body);
  return Type(std::make_shared<const Rep>(std::move(rep)));
}

Type Type::Forall(std::string var, Type body) {
  return Forall(std::move(var), Top(), std::move(body));
}

Type Type::Exists(std::string var, Type bound, Type body) {
  Rep rep;
  rep.kind = TypeKind::kExists;
  rep.name = std::move(var);
  rep.a = std::move(bound);
  rep.b = std::move(body);
  return Type(std::make_shared<const Rep>(std::move(rep)));
}

Type Type::Exists(std::string var, Type body) {
  return Exists(std::move(var), Top(), std::move(body));
}

Type Type::Mu(std::string var, Type body) {
  Rep rep;
  rep.kind = TypeKind::kMu;
  rep.name = std::move(var);
  rep.b = std::move(body);
  return Type(std::make_shared<const Rep>(std::move(rep)));
}

TypeKind Type::kind() const { return rep_ ? rep_->kind : TypeKind::kBottom; }

const std::vector<TypeField>& Type::fields() const {
  assert(kind() == TypeKind::kRecord || kind() == TypeKind::kVariant);
  return rep_->fields;
}

const Type& Type::element() const {
  assert(kind() == TypeKind::kList || kind() == TypeKind::kSet ||
         kind() == TypeKind::kRef);
  return rep_->a;
}

const std::vector<Type>& Type::params() const {
  assert(kind() == TypeKind::kFunc);
  return rep_->params;
}

const Type& Type::result() const {
  assert(kind() == TypeKind::kFunc);
  return rep_->a;
}

const std::string& Type::var() const {
  assert(kind() == TypeKind::kVar || kind() == TypeKind::kForall ||
         kind() == TypeKind::kExists || kind() == TypeKind::kMu);
  return rep_->name;
}

const Type& Type::bound() const {
  assert(kind() == TypeKind::kForall || kind() == TypeKind::kExists);
  return rep_->a;
}

const Type& Type::body() const {
  assert(kind() == TypeKind::kForall || kind() == TypeKind::kExists ||
         kind() == TypeKind::kMu);
  return rep_->b;
}

const Type* Type::FindField(std::string_view name) const {
  if (kind() != TypeKind::kRecord && kind() != TypeKind::kVariant) {
    return nullptr;
  }
  const auto& fs = rep_->fields;
  auto it = std::lower_bound(
      fs.begin(), fs.end(), name,
      [](const TypeField& f, std::string_view n) { return f.name < n; });
  if (it != fs.end() && it->name == name) return it->type.get();
  return nullptr;
}

std::set<std::string> Type::FreeVars() const {
  std::set<std::string> out;
  switch (kind()) {
    case TypeKind::kVar:
      out.insert(var());
      return out;
    case TypeKind::kRecord:
    case TypeKind::kVariant:
      for (const auto& f : fields()) {
        auto sub = f.get().FreeVars();
        out.insert(sub.begin(), sub.end());
      }
      return out;
    case TypeKind::kList:
    case TypeKind::kSet:
    case TypeKind::kRef:
      return element().FreeVars();
    case TypeKind::kFunc: {
      for (const auto& p : params()) {
        auto sub = p.FreeVars();
        out.insert(sub.begin(), sub.end());
      }
      auto sub = result().FreeVars();
      out.insert(sub.begin(), sub.end());
      return out;
    }
    case TypeKind::kForall:
    case TypeKind::kExists: {
      out = bound().FreeVars();
      auto sub = body().FreeVars();
      sub.erase(var());
      out.insert(sub.begin(), sub.end());
      return out;
    }
    case TypeKind::kMu: {
      out = body().FreeVars();
      out.erase(var());
      return out;
    }
    default:
      return out;
  }
}

namespace {

/// Picks a binder name distinct from every name in `avoid`.
std::string Freshen(const std::string& base, const std::set<std::string>& avoid) {
  std::string candidate = base;
  int i = 0;
  while (avoid.contains(candidate)) {
    candidate = base + "_" + std::to_string(++i);
  }
  return candidate;
}

}  // namespace

Type Type::Substitute(std::string_view name, const Type& replacement) const {
  switch (kind()) {
    case TypeKind::kBottom:
    case TypeKind::kTop:
    case TypeKind::kBool:
    case TypeKind::kInt:
    case TypeKind::kReal:
    case TypeKind::kString:
    case TypeKind::kDynamic:
      return *this;
    case TypeKind::kVar:
      return var() == name ? replacement : *this;
    case TypeKind::kRecord:
    case TypeKind::kVariant: {
      std::vector<std::pair<std::string, Type>> out;
      out.reserve(fields().size());
      for (const auto& f : fields()) {
        out.emplace_back(f.name, f.get().Substitute(name, replacement));
      }
      return kind() == TypeKind::kRecord ? RecordOf(std::move(out))
                                         : VariantOf(std::move(out));
    }
    case TypeKind::kList:
      return List(element().Substitute(name, replacement));
    case TypeKind::kSet:
      return Set(element().Substitute(name, replacement));
    case TypeKind::kRef:
      return RefTo(element().Substitute(name, replacement));
    case TypeKind::kFunc: {
      std::vector<Type> ps;
      ps.reserve(params().size());
      for (const auto& p : params()) {
        ps.push_back(p.Substitute(name, replacement));
      }
      return Func(std::move(ps), result().Substitute(name, replacement));
    }
    case TypeKind::kForall:
    case TypeKind::kExists: {
      Type new_bound = bound().Substitute(name, replacement);
      if (var() == name) {
        // Inner occurrences are bound by this binder; only the bound is
        // in scope of the outer substitution.
        return kind() == TypeKind::kForall
                   ? Forall(var(), std::move(new_bound), body())
                   : Exists(var(), std::move(new_bound), body());
      }
      std::string binder = var();
      Type new_body = body();
      std::set<std::string> repl_free = replacement.FreeVars();
      if (repl_free.contains(binder)) {
        // Rename to avoid capturing a free variable of the replacement.
        std::set<std::string> avoid = repl_free;
        auto body_free = new_body.FreeVars();
        avoid.insert(body_free.begin(), body_free.end());
        avoid.insert(std::string(name));
        binder = Freshen(binder, avoid);
        new_body = new_body.Substitute(var(), Var(binder));
      }
      new_body = new_body.Substitute(name, replacement);
      return kind() == TypeKind::kForall
                 ? Forall(std::move(binder), std::move(new_bound),
                          std::move(new_body))
                 : Exists(std::move(binder), std::move(new_bound),
                          std::move(new_body));
    }
    case TypeKind::kMu: {
      if (var() == name) return *this;
      std::string binder = var();
      Type new_body = body();
      std::set<std::string> repl_free = replacement.FreeVars();
      if (repl_free.contains(binder)) {
        std::set<std::string> avoid = repl_free;
        auto body_free = new_body.FreeVars();
        avoid.insert(body_free.begin(), body_free.end());
        avoid.insert(std::string(name));
        binder = Freshen(binder, avoid);
        new_body = new_body.Substitute(var(), Var(binder));
      }
      return Mu(std::move(binder), new_body.Substitute(name, replacement));
    }
  }
  return *this;
}

Type Type::Unfold() const {
  assert(kind() == TypeKind::kMu);
  return body().Substitute(var(), *this);
}

bool Type::operator==(const Type& other) const {
  return Compare(*this, other) == 0;
}

namespace {

size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

size_t Type::Hash() const {
  size_t h = static_cast<size_t>(kind()) * 0x9e3779b97f4a7c15ULL + 0x2545F491;
  switch (kind()) {
    case TypeKind::kBottom:
    case TypeKind::kTop:
    case TypeKind::kBool:
    case TypeKind::kInt:
    case TypeKind::kReal:
    case TypeKind::kString:
    case TypeKind::kDynamic:
      return h;
    case TypeKind::kVar:
      return HashCombine(h, std::hash<std::string>()(var()));
    case TypeKind::kRecord:
    case TypeKind::kVariant:
      for (const auto& f : fields()) {
        h = HashCombine(h, std::hash<std::string>()(f.name));
        h = HashCombine(h, f.get().Hash());
      }
      return h;
    case TypeKind::kList:
    case TypeKind::kSet:
    case TypeKind::kRef:
      return HashCombine(h, element().Hash());
    case TypeKind::kFunc:
      for (const auto& p : params()) h = HashCombine(h, p.Hash());
      return HashCombine(h, result().Hash());
    case TypeKind::kForall:
    case TypeKind::kExists:
      h = HashCombine(h, std::hash<std::string>()(var()));
      h = HashCombine(h, bound().Hash());
      return HashCombine(h, body().Hash());
    case TypeKind::kMu:
      h = HashCombine(h, std::hash<std::string>()(var()));
      return HashCombine(h, body().Hash());
  }
  return h;
}

int Compare(const Type& a, const Type& b) {
  if (a.rep_ == b.rep_) return 0;
  if (a.kind() != b.kind()) {
    return static_cast<int>(a.kind()) < static_cast<int>(b.kind()) ? -1 : 1;
  }
  switch (a.kind()) {
    case TypeKind::kBottom:
    case TypeKind::kTop:
    case TypeKind::kBool:
    case TypeKind::kInt:
    case TypeKind::kReal:
    case TypeKind::kString:
    case TypeKind::kDynamic:
      return 0;
    case TypeKind::kVar:
      return a.var().compare(b.var());
    case TypeKind::kRecord:
    case TypeKind::kVariant: {
      const auto& fa = a.fields();
      const auto& fb = b.fields();
      size_t n = std::min(fa.size(), fb.size());
      for (size_t i = 0; i < n; ++i) {
        int c = fa[i].name.compare(fb[i].name);
        if (c != 0) return c;
        c = Compare(fa[i].get(), fb[i].get());
        if (c != 0) return c;
      }
      if (fa.size() != fb.size()) return fa.size() < fb.size() ? -1 : 1;
      return 0;
    }
    case TypeKind::kList:
    case TypeKind::kSet:
    case TypeKind::kRef:
      return Compare(a.element(), b.element());
    case TypeKind::kFunc: {
      const auto& pa = a.params();
      const auto& pb = b.params();
      if (pa.size() != pb.size()) return pa.size() < pb.size() ? -1 : 1;
      for (size_t i = 0; i < pa.size(); ++i) {
        int c = Compare(pa[i], pb[i]);
        if (c != 0) return c;
      }
      return Compare(a.result(), b.result());
    }
    case TypeKind::kForall:
    case TypeKind::kExists: {
      int c = a.var().compare(b.var());
      if (c != 0) return c;
      c = Compare(a.bound(), b.bound());
      if (c != 0) return c;
      return Compare(a.body(), b.body());
    }
    case TypeKind::kMu: {
      int c = a.var().compare(b.var());
      if (c != 0) return c;
      return Compare(a.body(), b.body());
    }
  }
  return 0;
}

}  // namespace dbpl::types
