#ifndef DBPL_TYPES_TYPE_H_
#define DBPL_TYPES_TYPE_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dbpl::types {

/// The kinds of structural types.
///
/// The type language follows the Cardelli–Wegner system the paper builds
/// on: base types, structural records and variants, lists and sets,
/// functions, mutable references, the special `Dynamic` type (Amber),
/// type variables with *bounded* universal (`∀t ≤ B. T`) and existential
/// (`∃t ≤ B. T`) quantification — the machinery that lets the generic
/// `Get : ∀t. Database → List[∃t' ≤ t. t']` be written down — plus
/// equi-recursive `μ`-types for self-referential schemas.
enum class TypeKind : uint8_t {
  /// The least type: the type of no information. Subtype of everything.
  kBottom = 0,
  /// The greatest type: every value has it. In the information-order
  /// reading of the paper, the wholly uninformative value `⊥` has type
  /// Top — less informative objects sit *higher* in the type hierarchy.
  kTop,
  kBool,
  kInt,
  kReal,
  kString,
  /// Amber's Dynamic: a value carrying its own type description.
  kDynamic,
  /// `{l1: T1, ..., ln: Tn}` — width and depth subtyping.
  kRecord,
  /// `Variant<t1: T1 | ... | tn: Tn>` — tagged union, covariant width.
  kVariant,
  kList,
  kSet,
  /// `(T1, ..., Tn) -> R` — contravariant parameters, covariant result.
  kFunc,
  /// `Ref[T]` — a heap reference; invariant in T (references are mutable).
  kRef,
  /// A type variable, bound by an enclosing quantifier.
  kVar,
  /// `Forall v <= B. T` — bounded universal quantification.
  kForall,
  /// `Exists v <= B. T` — bounded existential quantification (abstract
  /// types / the element type of `Get`'s result).
  kExists,
  /// `Mu v. T` — equi-recursive type.
  kMu,
};

std::string_view TypeKindName(TypeKind kind);

class Type;

/// One labelled component of a record or variant type.
struct TypeField {
  std::string name;
  /// Owned out-of-line so TypeField can appear inside Type's definition.
  std::shared_ptr<const Type> type;

  /// Convenience accessor.
  const Type& get() const { return *type; }
};

/// An immutable structural type. Cheap to copy (one shared pointer).
///
/// Structural equality (`operator==`, `Compare`) is syntactic and
/// binder-name-sensitive; use `TypeEquiv` in subtype.h for semantic
/// (alpha- and mu-insensitive) equivalence.
class Type {
 public:
  /// Constructs Bottom.
  Type() = default;

  static Type Bottom() { return Type(); }
  static Type Top();
  static Type Bool();
  static Type Int();
  static Type Real();
  static Type String();
  static Type Dynamic();
  /// Builds a record type; duplicate labels are rejected.
  static Result<Type> Record(std::vector<std::pair<std::string, Type>> fields);
  /// Builds a record type from distinct labels; aborts on duplicates.
  static Type RecordOf(std::vector<std::pair<std::string, Type>> fields);
  /// Builds a variant type; duplicate tags are rejected.
  static Result<Type> Variant(std::vector<std::pair<std::string, Type>> tags);
  static Type VariantOf(std::vector<std::pair<std::string, Type>> tags);
  static Type List(Type element);
  static Type Set(Type element);
  static Type Func(std::vector<Type> params, Type result);
  static Type RefTo(Type target);
  static Type Var(std::string name);
  static Type Forall(std::string var, Type bound, Type body);
  /// `Forall v. T` with the default bound Top.
  static Type Forall(std::string var, Type body);
  static Type Exists(std::string var, Type bound, Type body);
  static Type Exists(std::string var, Type body);
  static Type Mu(std::string var, Type body);

  TypeKind kind() const;
  bool is_bottom() const { return kind() == TypeKind::kBottom; }
  bool is_top() const { return kind() == TypeKind::kTop; }

  /// Record fields or variant tags, sorted by name. Requires
  /// kRecord/kVariant.
  const std::vector<TypeField>& fields() const;
  /// Element type. Requires kList/kSet/kRef.
  const Type& element() const;
  /// Parameter types. Requires kFunc.
  const std::vector<Type>& params() const;
  /// Result type. Requires kFunc.
  const Type& result() const;
  /// Variable name. Requires kVar/kForall/kExists/kMu.
  const std::string& var() const;
  /// Bound of the quantifier. Requires kForall/kExists.
  const Type& bound() const;
  /// Body of the binder. Requires kForall/kExists/kMu.
  const Type& body() const;

  /// Field type by label; nullptr when absent or not a record/variant.
  const Type* FindField(std::string_view name) const;

  /// Capture-avoiding substitution of `replacement` for free occurrences
  /// of variable `name`.
  Type Substitute(std::string_view name, const Type& replacement) const;

  /// Unfolds one level of a Mu type: `μv.T  ↦  T[v := μv.T]`.
  /// Requires kMu.
  Type Unfold() const;

  /// Free type variables.
  std::set<std::string> FreeVars() const;

  bool operator==(const Type& other) const;
  bool operator!=(const Type& other) const { return !(*this == other); }

  size_t Hash() const;

  /// Renders the type, e.g. `{Name: String, Age: Int}`,
  /// `Forall t <= {Name: String}. Database -> List[Exists u <= t. u]`.
  std::string ToString() const;

 private:
  struct Rep;
  explicit Type(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  /// nullptr encodes Bottom.
  std::shared_ptr<const Rep> rep_;

  friend int Compare(const Type& a, const Type& b);
};

/// Canonical (syntactic) total order on types.
int Compare(const Type& a, const Type& b);

std::ostream& operator<<(std::ostream& os, const Type& t);

/// Ordering functor for std::map keyed by Type.
struct TypeLess {
  bool operator()(const Type& a, const Type& b) const {
    return Compare(a, b) < 0;
  }
};

/// Hash functor for unordered containers keyed by Type.
struct TypeHash {
  size_t operator()(const Type& t) const { return t.Hash(); }
};

}  // namespace dbpl::types

#endif  // DBPL_TYPES_TYPE_H_
