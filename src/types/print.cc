#include <sstream>

#include "types/type.h"

namespace dbpl::types {
namespace {

void Render(const Type& t, std::ostream& os) {
  switch (t.kind()) {
    case TypeKind::kBottom:
      os << "Bottom";
      return;
    case TypeKind::kTop:
      os << "Top";
      return;
    case TypeKind::kBool:
      os << "Bool";
      return;
    case TypeKind::kInt:
      os << "Int";
      return;
    case TypeKind::kReal:
      os << "Real";
      return;
    case TypeKind::kString:
      os << "String";
      return;
    case TypeKind::kDynamic:
      os << "Dynamic";
      return;
    case TypeKind::kVar:
      os << t.var();
      return;
    case TypeKind::kRecord: {
      os << "{";
      bool first = true;
      for (const auto& f : t.fields()) {
        if (!first) os << ", ";
        first = false;
        os << f.name << ": ";
        Render(f.get(), os);
      }
      os << "}";
      return;
    }
    case TypeKind::kVariant: {
      os << "<";
      bool first = true;
      for (const auto& f : t.fields()) {
        if (!first) os << " | ";
        first = false;
        os << f.name << ": ";
        Render(f.get(), os);
      }
      os << ">";
      return;
    }
    case TypeKind::kList:
      os << "List[";
      Render(t.element(), os);
      os << "]";
      return;
    case TypeKind::kSet:
      os << "Set[";
      Render(t.element(), os);
      os << "]";
      return;
    case TypeKind::kRef:
      os << "Ref[";
      Render(t.element(), os);
      os << "]";
      return;
    case TypeKind::kFunc: {
      os << "(";
      bool first = true;
      for (const auto& p : t.params()) {
        if (!first) os << ", ";
        first = false;
        Render(p, os);
      }
      os << ") -> ";
      Render(t.result(), os);
      return;
    }
    case TypeKind::kForall:
    case TypeKind::kExists: {
      os << (t.kind() == TypeKind::kForall ? "Forall " : "Exists ")
         << t.var();
      if (!t.bound().is_top()) {
        os << " <= ";
        Render(t.bound(), os);
      }
      os << ". ";
      Render(t.body(), os);
      return;
    }
    case TypeKind::kMu:
      os << "Mu " << t.var() << ". ";
      Render(t.body(), os);
      return;
  }
}

}  // namespace

std::string Type::ToString() const {
  std::ostringstream os;
  Render(*this, os);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Type& t) {
  Render(t, os);
  return os;
}

}  // namespace dbpl::types
