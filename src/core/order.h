#ifndef DBPL_CORE_ORDER_H_
#define DBPL_CORE_ORDER_H_

#include "common/result.h"
#include "core/value.h"

namespace dbpl::core {

/// The information ordering `⊑` of the paper ("Inheritance on Values").
///
/// `a ⊑ b` reads "b contains at least as much information as a":
///  * `⊥ ⊑ v` for every v;
///  * atoms (Bool/Int/Real/String/Ref) form flat domains: comparable only
///    when equal;
///  * records: `a ⊑ b` iff every field of `a` is present in `b` with a
///    `⊒`-better value — a more informative object either adds fields or
///    better-defines existing ones;
///  * lists: same length, pointwise;
///  * sets are ordered as (Smyth-style) relations, exactly as the paper
///    defines: `R ⊑ R'` iff for every `o' ∈ R'` there is `o ∈ R` with
///    `o ⊑ o'`. Note the consequence the paper's lattice-theory sources
///    embrace: the empty set is the top relation;
///  * values of different kinds are incomparable.
bool LessEq(const Value& a, const Value& b);

/// Strict version of `LessEq`.
inline bool Less(const Value& a, const Value& b) {
  return LessEq(a, b) && !(a == b);
}

/// True iff `a ⊑ b` or `b ⊑ a`.
inline bool Comparable(const Value& a, const Value& b) {
  return LessEq(a, b) || LessEq(b, a);
}

/// The join `a ⊔ b`: the least value containing the information of both.
///
/// Fails with `Inconsistent` when the two values contradict each other —
/// e.g. `{Name = "J Doe"} ⊔ {Name = "K Smith"}` has no upper bound, as in
/// the paper. Record joins merge field sets and join common fields; set
/// joins are the generalized relational join (never fail; an empty result
/// means the relations were wholly contradictory).
Result<Value> Join(const Value& a, const Value& b);

/// True iff `Join(a, b)` exists ("a and b are consistent").
bool Consistent(const Value& a, const Value& b);

/// The meet `a ⊓ b`: the greatest value whose information is common to
/// both. Always exists (falling back to `⊥`).
Value Meet(const Value& a, const Value& b);

}  // namespace dbpl::core

#endif  // DBPL_CORE_ORDER_H_
