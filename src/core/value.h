#ifndef DBPL_CORE_VALUE_H_
#define DBPL_CORE_VALUE_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dbpl::core {

/// Object identifier: a stable name for a mutable object in a `Heap`.
/// `kInvalidOid` (0) never names an object.
using Oid = uint64_t;
inline constexpr Oid kInvalidOid = 0;

/// The kinds of database values.
///
/// The model follows the paper's "Inheritance on Values" section: values
/// are atoms, records whose components may themselves be records, sets,
/// lists, and references to heap objects. `kBottom` is the least element
/// of the information ordering — the wholly uninformative value.
enum class ValueKind : uint8_t {
  kBottom = 0,
  kBool,
  kInt,
  kReal,
  kString,
  kRecord,
  kSet,
  kList,
  kRef,
  /// A tagged value `tag(payload)` — an inhabitant of a variant type.
  kTagged,
};

/// Human-readable name of a value kind ("Record", "Int", ...).
std::string_view ValueKindName(ValueKind kind);

struct RecordField;

/// An immutable database value.
///
/// `Value` is a cheap-to-copy handle (one shared pointer) to an immutable
/// representation. Records keep their fields sorted by name; sets keep
/// their elements deduplicated and sorted by the *canonical* total order
/// (`Compare`), so structural equality is representation equality.
///
/// Two distinct orders exist on values and must not be confused:
///  * the canonical total order `Compare` — an arbitrary but consistent
///    ordering used for normalization, maps and sets of values;
///  * the *information* partial order `⊑` of the paper, implemented in
///    order.h (`LessEq`, `Join`, `Meet`).
class Value {
 public:
  /// A (name, value) pair inside a record (alias of core::RecordField).
  using RecordField = ::dbpl::core::RecordField;

  /// Constructs Bottom (the valueless value, `⊥`).
  Value() = default;

  static Value Bottom() { return Value(); }
  static Value Bool(bool v);
  static Value Int(int64_t v);
  static Value Real(double v);
  static Value String(std::string v);
  /// Builds a record; duplicate field names are rejected.
  static Result<Value> Record(std::vector<RecordField> fields);
  /// Builds a record from distinct field names; aborts on duplicates.
  /// Convenience for literals in tests and examples.
  static Value RecordOf(std::vector<RecordField> fields);
  /// Builds a set; elements are deduplicated and canonically sorted.
  static Value Set(std::vector<Value> elements);
  /// Builds a list (ordered, duplicates preserved).
  static Value List(std::vector<Value> elements);
  /// Builds a reference to heap object `oid`.
  static Value Ref(Oid oid);
  /// Builds a tagged value `tag(payload)` (a variant inhabitant).
  static Value Tagged(std::string tag, Value payload);

  ValueKind kind() const;
  bool is_bottom() const { return kind() == ValueKind::kBottom; }

  /// Accessors. Each requires the matching kind.
  bool AsBool() const;
  int64_t AsInt() const;
  double AsReal() const;
  const std::string& AsString() const;
  Oid AsRef() const;
  /// Record fields, sorted by name. Requires kRecord.
  const std::vector<RecordField>& fields() const;
  /// Set or list elements. Requires kSet or kList.
  const std::vector<Value>& elements() const;
  /// Variant tag. Requires kTagged.
  const std::string& tag() const;
  /// Variant payload. Requires kTagged.
  const Value& payload() const;

  /// Looks up a record field by name; nullptr when absent or not a record.
  const Value* FindField(std::string_view name) const;

  /// Returns a copy of this record with `name` bound to `v` (replacing any
  /// existing binding). Requires kRecord.
  Value WithField(std::string_view name, Value v) const;

  /// Returns this record restricted to the given field names (fields not
  /// present are simply absent in the result). Requires kRecord.
  Value Project(const std::vector<std::string>& names) const;

  /// Structural equality.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Structural hash, compatible with operator==.
  size_t Hash() const;

  /// Renders the value using the paper's notation, e.g.
  /// `{Name = "J Doe", Addr = {City = "Austin"}}`.
  std::string ToString() const;

 private:
  struct Rep;
  explicit Value(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  /// nullptr encodes Bottom; everything else points to an immutable Rep.
  std::shared_ptr<const Rep> rep_;

  friend int Compare(const Value& a, const Value& b);
};

/// A (name, value) pair inside a record.
struct RecordField {
  std::string name;
  Value value;

  bool operator==(const RecordField& other) const;
};

/// Canonical total order: negative/zero/positive like strcmp. This is a
/// normalization order, *not* the information order of the paper.
int Compare(const Value& a, const Value& b);

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace dbpl::core

#endif  // DBPL_CORE_VALUE_H_
