#ifndef DBPL_CORE_GRELATION_H_
#define DBPL_CORE_GRELATION_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/join_engine.h"
#include "core/subsumption_index.h"
#include "core/value.h"

namespace dbpl::core {

/// A generalized relation: a set of mutually `⊑`-incomparable objects
/// (a *cochain*), as defined in the paper's "Inheritance on Values"
/// section. Objects are arbitrary values but are typically records with
/// possibly-missing and possibly-nested fields, so a generalized relation
/// strictly extends a 1NF relation (which it becomes when every object is
/// a flat, total record over the same attributes).
///
/// The class maintains the cochain invariant on every operation:
/// inserting an object that is *less* informative than an existing one is
/// absorbed; inserting one that is *more* informative subsumes (replaces)
/// the objects it dominates — the paper's admission rule, verbatim.
///
/// Both the admission rule and the generalized join are index-accelerated:
/// a `SubsumptionIndex` of per-attribute posting lists narrows the
/// dominance scans of `Insert`/`Covers` to candidates sharing a ground
/// attribute, and `Join` partitions the two cochains by ground-attribute
/// signature so only hash-matched pairs are tested for consistency
/// (degenerating to a classical hash join on flat, total records). The
/// naive quadratic join survives as `JoinNaive` for differential testing.
class GRelation {
 public:
  /// What `Insert` did with the object.
  enum class InsertOutcome {
    /// The object was new and incomparable with everything present.
    kInserted,
    /// An existing object already carried at least this information;
    /// the relation is unchanged.
    kAbsorbed,
    /// The object replaced one or more existing objects it dominates.
    kSubsumed,
  };

  /// The empty relation. NOTE: in the paper's relation ordering the empty
  /// relation is the *top* element (it refines everything).
  GRelation() = default;

  /// Copies/moves transfer the member cochain only; the accelerator
  /// index is rebuilt lazily in the destination (the index guard is not
  /// transferable). A moved-from relation is empty.
  GRelation(const GRelation& other);
  GRelation(GRelation&& other) noexcept;
  GRelation& operator=(const GRelation& other);
  GRelation& operator=(GRelation&& other) noexcept;

  /// Builds a relation from arbitrary objects, reducing to maxima.
  static GRelation FromObjects(std::vector<Value> objects);

  /// Re-reads a relation from a set value, reducing to maxima.
  /// Fails unless `v` is a set.
  static Result<GRelation> FromValue(const Value& v);

  /// Inserts with subsumption (see class comment).
  InsertOutcome Insert(Value object);

  /// Exact membership.
  bool Contains(const Value& object) const;

  /// True iff some member carries at least the information of `object`
  /// (i.e. inserting it would be absorbed).
  bool Covers(const Value& object) const;

  const std::vector<Value>& objects() const { return objects_; }
  size_t size() const { return objects_.size(); }
  bool empty() const { return objects_.empty(); }

  /// The generalized natural join of the paper's Figure 1: every
  /// consistent pairwise join, reduced to maxima. Restricted to flat,
  /// total records over equal schemas this is the classical natural join
  /// — and, via the signature partitioning, it also *runs* as one.
  ///
  /// A clash between a pair of objects (an `Inconsistent` value join) is
  /// the expected no-match case and simply produces nothing; any other
  /// pairwise failure indicates a bug in the value lattice and is
  /// propagated instead of being swallowed.
  static Result<GRelation> Join(const GRelation& r1, const GRelation& r2,
                                const JoinOptions& opts = {});

  /// The pre-partitioning O(|r1|·|r2|) join, kept as the differential-
  /// testing oracle. Result and error behaviour are identical to `Join`.
  static Result<GRelation> JoinNaive(const GRelation& r1, const GRelation& r2);

  /// A pairwise value joiner, `core::Join` by default.
  using Joiner = std::function<Result<Value>(const Value&, const Value&)>;

  /// `JoinNaive` with an injectable pairwise joiner, so tests can force
  /// non-`Inconsistent` failures and verify they propagate.
  static Result<GRelation> JoinNaiveWith(const GRelation& r1,
                                         const GRelation& r2,
                                         const Joiner& joiner);

  /// The union in the information ordering (the meet of relations):
  /// maxima of the set union.
  static GRelation Merge(const GRelation& r1, const GRelation& r2);

  /// Projection: each object restricted to `attrs`, reduced to maxima.
  /// Every member must be a record; a mixed cochain fails with
  /// InvalidArgument naming the offending member (rows must not vanish
  /// silently).
  Result<GRelation> Project(const std::vector<std::string>& attrs) const;

  /// Selection by arbitrary predicate.
  GRelation Select(const std::function<bool(const Value&)>& pred) const;

  /// The paper's relation ordering: `r1 ⊑ r2` iff every object of `r2`
  /// refines some object of `r1` (Smyth-style).
  static bool LessEq(const GRelation& r1, const GRelation& r2);

  /// The "slightly different ordering on relations" the paper says the
  /// projection operator is defined from (Hoare-style): `r1 ⊑ r2` iff
  /// every object of `r1` is refined by some object of `r2`. Projection
  /// and Merge are monotone with respect to this ordering
  /// (property-tested); Join is monotone with respect to `LessEq`.
  static bool LessEqHoare(const GRelation& r1, const GRelation& r2);

  /// This relation as a set value (so relations nest inside values,
  /// deliberately violating first-normal-form as the paper proposes).
  Value ToValue() const;

  /// Verifies the cochain invariant; Internal error if violated.
  Status CheckInvariant() const;

  bool operator==(const GRelation& other) const;

  std::string ToString() const;

 private:
  /// Adopts an already-reduced antichain wholesale: sorts it once and
  /// leaves the index to be built lazily, instead of paying a sorted
  /// insert per member.
  static GRelation FromAntichain(std::vector<Value> maxima);

  /// Builds the subsumption index from `objects_` if it is stale.
  /// Safe to race from concurrent const queries: the build is
  /// double-checked under `index_mu_` and published with a
  /// release-store of `index_built_`.
  void EnsureIndex() const;

  /// Members, kept canonically sorted (by the total order) and mutually
  /// incomparable (by the information order).
  std::vector<Value> objects_;
  /// Accelerates the dominance scans of Insert/Covers; built on first
  /// use after a bulk construction (`index_built_`), in sync with
  /// `objects_` afterwards. Not part of the value (ignored by
  /// operator==); mutable so const queries can populate it.
  ///
  /// Thread safety: const queries (Contains/Covers/Join/...) may run
  /// concurrently on a shared relation — the lazy build is guarded —
  /// but `Insert` and the assignment operators require exclusive
  /// access, like any other mutation.
  mutable SubsumptionIndex index_;
  mutable std::atomic<bool> index_built_{true};
  /// Serializes the lazy index build (only; queries never hold it).
  mutable std::mutex index_mu_;
};

}  // namespace dbpl::core

#endif  // DBPL_CORE_GRELATION_H_
