#include "core/join_engine.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include <unordered_set>

#include "core/order.h"
#include "core/parallel.h"
#include "core/subsumption_index.h"

namespace dbpl::core {
namespace {

/// Detects the classical-relational special case: every element is a
/// record grounding exactly the same attribute set with atoms. Two
/// *distinct* such records always disagree at some ground attribute, so
/// they are incomparable under `⊑` and the minimal AND maximal antichain
/// is simply the set of distinct elements. Returns nullopt when the
/// input is heterogeneous (partial/nested/non-record members present).
std::optional<std::vector<Value>> HomogeneousGroundDedup(
    std::vector<Value>& vs) {
  if (vs.empty()) return std::vector<Value>{};
  const Value& first = vs.front();
  if (first.kind() != ValueKind::kRecord) return std::nullopt;
  for (const Value& v : vs) {
    if (v.kind() != ValueKind::kRecord ||
        v.fields().size() != first.fields().size()) {
      return std::nullopt;
    }
    const auto& fs = v.fields();
    const auto& gs = first.fields();
    for (size_t i = 0; i < fs.size(); ++i) {
      // Fields are name-sorted inside a record, so positional comparison
      // suffices for "same attribute set".
      if (fs[i].name != gs[i].name) return std::nullopt;
      switch (fs[i].value.kind()) {
        case ValueKind::kBool:
        case ValueKind::kInt:
        case ValueKind::kReal:
        case ValueKind::kString:
        case ValueKind::kRef:
          break;
        default:
          return std::nullopt;  // ⊥ or nested: not ground
      }
    }
  }
  std::vector<Value> out;
  out.reserve(vs.size());
  std::unordered_set<Value, ValueHash> seen;
  seen.reserve(vs.size());
  for (Value& v : vs) {
    if (seen.insert(v).second) out.push_back(std::move(v));
  }
  return out;
}

bool IsAtomKind(ValueKind k) {
  switch (k) {
    case ValueKind::kBool:
    case ValueKind::kInt:
    case ValueKind::kReal:
    case ValueKind::kString:
    case ValueKind::kRef:
      return true;
    default:
      return false;
  }
}

/// Attribute names bound by at least one record on `side`.
std::set<std::string> BoundNames(const std::vector<Value>& side) {
  std::set<std::string> names;
  for (const Value& v : side) {
    if (v.kind() != ValueKind::kRecord) continue;
    for (const auto& f : v.fields()) names.insert(f.name);
  }
  return names;
}

/// One side of the join, split into signature groups. A group holds the
/// objects whose *ground signature* — the set of overlapping attributes
/// they bind to an atom — is exactly `mask`. `residual` holds objects the
/// partitioner cannot place: non-records and records grounding none of
/// the overlapping attributes.
struct Partition {
  /// Ordered so task construction (and thus output order) is
  /// deterministic regardless of hashing.
  std::map<uint64_t, std::vector<const Value*>> groups;
  std::vector<const Value*> residual;
};

Partition MakePartition(
    const std::vector<Value>& side,
    const std::unordered_map<std::string, int>& overlap_ids) {
  Partition p;
  for (const Value& v : side) {
    uint64_t mask = 0;
    if (v.kind() == ValueKind::kRecord) {
      for (const auto& f : v.fields()) {
        if (!IsAtomKind(f.value.kind())) continue;
        auto it = overlap_ids.find(f.name);
        if (it != overlap_ids.end()) mask |= uint64_t{1} << it->second;
      }
    }
    if (mask == 0) {
      p.residual.push_back(&v);
    } else {
      p.groups[mask].push_back(&v);
    }
  }
  return p;
}

uint64_t HashSlice(const Value& v, uint64_t mask,
                   const std::vector<std::string>& overlap_names) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    int id = __builtin_ctzll(rest);
    const Value* f = v.FindField(overlap_names[static_cast<size_t>(id)]);
    h ^= f->Hash() + (h << 6) + (h >> 2);
  }
  return h;
}

bool SliceEq(const Value& a, const Value& b, uint64_t mask,
             const std::vector<std::string>& overlap_names) {
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    int id = __builtin_ctzll(rest);
    const std::string& name = overlap_names[static_cast<size_t>(id)];
    if (!(*a.FindField(name) == *b.FindField(name))) return false;
  }
  return true;
}

/// Attempts one pairwise join. Inconsistency means "no output for this
/// pair"; any other failure is a lattice bug and aborts the whole join.
Status TryJoin(const Value& x, const Value& y, std::vector<Value>* out) {
  Result<Value> j = Join(x, y);
  if (j.ok()) {
    out->push_back(std::move(j).value());
    return Status::OK();
  }
  if (j.status().code() == StatusCode::kInconsistent) return Status::OK();
  return j.status();
}

/// A unit of independent work: either a hash join of two signature
/// groups on their common ground attributes, or a pairwise sweep when no
/// common ground attribute exists to hash on.
struct Task {
  const std::vector<const Value*>* left;
  const std::vector<const Value*>* right;
  uint64_t common_mask;  // 0 = pairwise sweep
};

Status RunTask(const Task& task, const std::vector<std::string>& overlap_names,
               std::vector<Value>* out) {
  if (task.common_mask == 0) {
    for (const Value* x : *task.left) {
      for (const Value* y : *task.right) {
        DBPL_RETURN_IF_ERROR(TryJoin(*x, *y, out));
      }
    }
    return Status::OK();
  }
  // Hash join on the common ground attributes: build over the smaller
  // group, probe with the larger. Only slice-equal pairs can possibly be
  // consistent (atoms are flat), so everything else is skipped unseen.
  const bool left_builds = task.left->size() <= task.right->size();
  const std::vector<const Value*>& build = left_builds ? *task.left
                                                       : *task.right;
  const std::vector<const Value*>& probe = left_builds ? *task.right
                                                       : *task.left;
  std::unordered_map<uint64_t, std::vector<const Value*>> table;
  table.reserve(build.size());
  for (const Value* b : build) {
    table[HashSlice(*b, task.common_mask, overlap_names)].push_back(b);
  }
  for (const Value* p : probe) {
    auto it = table.find(HashSlice(*p, task.common_mask, overlap_names));
    if (it == table.end()) continue;
    for (const Value* b : it->second) {
      if (!SliceEq(*b, *p, task.common_mask, overlap_names)) continue;
      const Value& x = left_builds ? *b : *p;
      const Value& y = left_builds ? *p : *b;
      DBPL_RETURN_IF_ERROR(TryJoin(x, y, out));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Value>> PartitionedPairJoins(const std::vector<Value>& left,
                                                const std::vector<Value>& right,
                                                const JoinOptions& opts) {
  std::vector<Value> out;
  if (left.empty() || right.empty()) return out;

  // Overlapping attributes: bound by some record on each side. Only the
  // first 64 (alphabetically) participate in signatures; objects
  // grounding none of them degrade to the pairwise sweep.
  std::set<std::string> left_names = BoundNames(left);
  std::set<std::string> right_names = BoundNames(right);
  std::vector<std::string> overlap_names;
  std::unordered_map<std::string, int> overlap_ids;
  for (const std::string& n : left_names) {
    if (overlap_names.size() >= 64) break;
    if (right_names.count(n)) {
      overlap_ids.emplace(n, static_cast<int>(overlap_names.size()));
      overlap_names.push_back(n);
    }
  }

  Partition lp = MakePartition(left, overlap_ids);
  Partition rp = MakePartition(right, overlap_ids);

  // Every (x, y) pair is covered by exactly one task:
  //   residual(L) × all(R)   ∪   group(L) × residual(R)
  //   ∪   group(L) × group(R).
  std::vector<const Value*> whole_right;
  std::vector<Task> tasks;
  if (!lp.residual.empty()) {
    whole_right.reserve(right.size());
    for (const Value& v : right) whole_right.push_back(&v);
    tasks.push_back({&lp.residual, &whole_right, 0});
  }
  for (const auto& [lmask, lgroup] : lp.groups) {
    if (!rp.residual.empty()) tasks.push_back({&lgroup, &rp.residual, 0});
    for (const auto& [rmask, rgroup] : rp.groups) {
      tasks.push_back({&lgroup, &rgroup, lmask & rmask});
    }
  }

  std::vector<std::vector<Value>> results(tasks.size());
  DBPL_RETURN_IF_ERROR(
      ParallelFor(tasks.size(), opts.threads, [&](size_t i) {
        return RunTask(tasks[i], overlap_names, &results[i]);
      }));

  size_t total = 0;
  for (const auto& r : results) total += r.size();
  out.reserve(total);
  for (auto& r : results) {
    std::move(r.begin(), r.end(), std::back_inserter(out));
  }
  return out;
}

std::vector<Value> MinimalAntichain(std::vector<Value> vs) {
  if (std::optional<std::vector<Value>> flat = HomogeneousGroundDedup(vs)) {
    return *std::move(flat);
  }
  SubsumptionIndex index;
  std::vector<Value> members;
  for (Value& v : vs) {
    bool dominated = false;
    for (const Value* c : index.LowerCandidates(v)) {
      if (LessEq(*c, v)) {  // equal counts: a duplicate adds nothing
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    std::vector<Value> doomed;
    auto collect = [&](const Value& c) {
      if (LessEq(v, c) &&
          std::find(doomed.begin(), doomed.end(), c) == doomed.end()) {
        doomed.push_back(c);
      }
    };
    std::optional<std::vector<const Value*>> upper = index.UpperCandidates(v);
    if (upper.has_value()) {
      for (const Value* c : *upper) collect(*c);
    } else {
      for (const Value& m : members) collect(m);
    }
    for (const Value& d : doomed) {
      members.erase(std::find(members.begin(), members.end(), d));
      index.Remove(d);
    }
    members.push_back(std::move(v));
    index.Add(members.back());
  }
  return members;
}

std::vector<Value> MaximalAntichain(std::vector<Value> vs) {
  if (std::optional<std::vector<Value>> flat = HomogeneousGroundDedup(vs)) {
    return *std::move(flat);
  }
  SubsumptionIndex index;
  std::vector<Value> members;
  for (Value& v : vs) {
    // Absorbed: some member already carries at least v's information.
    bool absorbed = false;
    auto covers = [&](const Value& c) { return LessEq(v, c); };
    std::optional<std::vector<const Value*>> upper = index.UpperCandidates(v);
    if (upper.has_value()) {
      for (const Value* c : *upper) {
        if (covers(*c)) {
          absorbed = true;
          break;
        }
      }
    } else {
      for (const Value& m : members) {
        if (covers(m)) {
          absorbed = true;
          break;
        }
      }
    }
    if (absorbed) continue;
    // Subsumption: v replaces every member it dominates.
    std::vector<Value> doomed;
    for (const Value* c : index.LowerCandidates(v)) {
      if (LessEq(*c, v) &&
          std::find(doomed.begin(), doomed.end(), *c) == doomed.end()) {
        doomed.push_back(*c);
      }
    }
    for (const Value& d : doomed) {
      members.erase(std::find(members.begin(), members.end(), d));
      index.Remove(d);
    }
    members.push_back(std::move(v));
    index.Add(members.back());
  }
  return members;
}

}  // namespace dbpl::core
