#ifndef DBPL_CORE_PARALLEL_H_
#define DBPL_CORE_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/status.h"

namespace dbpl::core {

/// Clamps a requested worker count to [1, 64]. The shared policy of
/// every `threads` knob in the library (JoinOptions, dyndb::GetOptions).
/// The request is honoured even above the hardware concurrency: a
/// caller asking for 4 workers gets 4 OS threads on any machine, so
/// sharded paths behave (and race) identically on a laptop and a
/// many-core server — oversubscription only costs scheduling, and the
/// race-sensitive tests rely on the threads being real.
int ClampThreads(int requested);

/// Runs `fn(0) ... fn(n - 1)` — independent units of work — sharded
/// across `threads` workers (clamped via `ClampThreads`). With one
/// worker, or one task, everything runs inline on the calling thread;
/// otherwise tasks are handed out through an atomic cursor so uneven
/// task costs balance dynamically.
///
/// All `n` tasks run to completion even when some fail (a task cannot
/// be cancelled mid-flight without a barrier anyway); the returned
/// status is OK iff every task succeeded, and otherwise the failure
/// with the *lowest index*, so the error a caller observes does not
/// depend on thread scheduling.
///
/// `fn` is called concurrently from multiple threads and must only
/// touch disjoint state per index (e.g. `results[i]`).
///
/// Thread safety: the scheduler itself is lock-free (an atomic task
/// cursor plus per-index result slots), so it holds no dbpl::Mutex
/// while `fn` runs — `fn` may acquire any rank it likes. Each worker
/// thread starts with an empty held-lock stack, so the lock-rank
/// checker (common/mutex.h) applies to `fn` unchanged.
Status ParallelFor(size_t n, int threads,
                   const std::function<Status(size_t)>& fn);

}  // namespace dbpl::core

#endif  // DBPL_CORE_PARALLEL_H_
