#include "core/fd.h"

#include <algorithm>
#include <sstream>

#include "core/order.h"

namespace dbpl::core {
namespace {

bool Subset(const AttrSet& a, const AttrSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::vector<std::string> ToVec(const AttrSet& s) {
  return std::vector<std::string>(s.begin(), s.end());
}

}  // namespace

std::string FunctionalDependency::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& a : lhs) {
    if (!first) os << ",";
    first = false;
    os << a;
  }
  os << " -> ";
  first = true;
  for (const auto& a : rhs) {
    if (!first) os << ",";
    first = false;
    os << a;
  }
  return os.str();
}

AttrSet Closure(const AttrSet& attrs,
                const std::vector<FunctionalDependency>& fds) {
  AttrSet closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& fd : fds) {
      if (Subset(fd.lhs, closure)) {
        for (const auto& a : fd.rhs) {
          if (closure.insert(a).second) changed = true;
        }
      }
    }
  }
  return closure;
}

bool Implies(const std::vector<FunctionalDependency>& fds,
             const FunctionalDependency& fd) {
  return Subset(fd.rhs, Closure(fd.lhs, fds));
}

bool IsSuperkey(const AttrSet& attrs, const AttrSet& all,
                const std::vector<FunctionalDependency>& fds) {
  return Subset(all, Closure(attrs, fds));
}

std::vector<AttrSet> CandidateKeys(
    const AttrSet& all, const std::vector<FunctionalDependency>& fds) {
  std::vector<std::string> attrs = ToVec(all);
  const size_t n = attrs.size();
  std::vector<AttrSet> keys;
  // Enumerate subsets in order of increasing size so supersets of found
  // keys can be skipped.
  for (size_t size = 0; size <= n; ++size) {
    std::vector<bool> pick(n, false);
    std::fill(pick.end() - static_cast<long>(size), pick.end(), true);
    do {
      AttrSet candidate;
      for (size_t i = 0; i < n; ++i) {
        if (pick[i]) candidate.insert(attrs[i]);
      }
      bool superset_of_key = false;
      for (const auto& k : keys) {
        if (Subset(k, candidate)) {
          superset_of_key = true;
          break;
        }
      }
      if (!superset_of_key && IsSuperkey(candidate, all, fds)) {
        keys.push_back(candidate);
      }
    } while (std::next_permutation(pick.begin(), pick.end()));
  }
  return keys;
}

std::vector<FunctionalDependency> MinimalCover(
    std::vector<FunctionalDependency> fds) {
  // 1. Singleton right-hand sides.
  std::vector<FunctionalDependency> work;
  for (const auto& fd : fds) {
    for (const auto& a : fd.rhs) work.push_back({fd.lhs, {a}});
  }
  // 2. Remove extraneous left-hand attributes.
  for (auto& fd : work) {
    bool shrunk = true;
    while (shrunk && fd.lhs.size() > 1) {
      shrunk = false;
      for (const auto& a : fd.lhs) {
        AttrSet smaller = fd.lhs;
        smaller.erase(a);
        if (Subset(fd.rhs, Closure(smaller, work))) {
          fd.lhs = smaller;
          shrunk = true;
          break;
        }
      }
    }
  }
  // 3. Remove redundant dependencies.
  for (size_t i = 0; i < work.size();) {
    std::vector<FunctionalDependency> without = work;
    without.erase(without.begin() + static_cast<long>(i));
    if (Implies(without, work[i])) {
      work = std::move(without);
    } else {
      ++i;
    }
  }
  // 4. Deduplicate.
  std::sort(work.begin(), work.end(),
            [](const FunctionalDependency& a, const FunctionalDependency& b) {
              if (a.lhs != b.lhs) return a.lhs < b.lhs;
              return a.rhs < b.rhs;
            });
  work.erase(std::unique(work.begin(), work.end()), work.end());
  return work;
}

bool IsBcnf(const AttrSet& all, const std::vector<FunctionalDependency>& fds) {
  for (const auto& fd : fds) {
    if (Subset(fd.rhs, fd.lhs)) continue;  // trivial
    if (!IsSuperkey(fd.lhs, all, fds)) return false;
  }
  return true;
}

std::vector<FunctionalDependency> ProjectFds(
    const AttrSet& attrs, const std::vector<FunctionalDependency>& fds) {
  // Enumerate subsets X of attrs; the projected dependencies are
  // X → (closure(X) ∩ attrs) \ X.
  std::vector<std::string> vec = ToVec(attrs);
  const size_t n = vec.size();
  std::vector<FunctionalDependency> out;
  for (uint64_t mask = 1; mask < (1ull << n); ++mask) {
    AttrSet lhs;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) lhs.insert(vec[i]);
    }
    AttrSet closure = Closure(lhs, fds);
    AttrSet rhs;
    for (const auto& a : attrs) {
      if (closure.contains(a) && !lhs.contains(a)) rhs.insert(a);
    }
    if (!rhs.empty()) out.push_back({std::move(lhs), std::move(rhs)});
  }
  return MinimalCover(std::move(out));
}

std::vector<AttrSet> DecomposeBcnf(
    const AttrSet& all, const std::vector<FunctionalDependency>& fds) {
  std::vector<std::pair<AttrSet, std::vector<FunctionalDependency>>> work = {
      {all, ProjectFds(all, fds)}};
  std::vector<AttrSet> done;
  while (!work.empty()) {
    auto [attrs, local] = std::move(work.back());
    work.pop_back();
    const FunctionalDependency* violation = nullptr;
    for (const auto& fd : local) {
      if (!Subset(fd.rhs, fd.lhs) && !IsSuperkey(fd.lhs, attrs, local)) {
        violation = &fd;
        break;
      }
    }
    if (violation == nullptr) {
      done.push_back(std::move(attrs));
      continue;
    }
    // Split into (X ∪ X+∩attrs) and (attrs \ X+ ∪ X).
    AttrSet closure = Closure(violation->lhs, local);
    AttrSet left;
    for (const auto& a : attrs) {
      if (closure.contains(a)) left.insert(a);
    }
    AttrSet right = violation->lhs;
    for (const auto& a : attrs) {
      if (!closure.contains(a)) right.insert(a);
    }
    work.emplace_back(left, ProjectFds(left, local));
    work.emplace_back(right, ProjectFds(right, local));
  }
  std::sort(done.begin(), done.end());
  done.erase(std::unique(done.begin(), done.end()), done.end());
  // Drop fragments contained in another fragment.
  std::vector<AttrSet> out;
  for (const auto& a : done) {
    bool contained = false;
    for (const auto& b : done) {
      if (a != b && Subset(a, b)) {
        contained = true;
        break;
      }
    }
    if (!contained) out.push_back(a);
  }
  return out;
}

bool SatisfiesClassic(const GRelation& r, const FunctionalDependency& fd) {
  std::vector<std::string> lhs = ToVec(fd.lhs);
  std::vector<std::string> rhs = ToVec(fd.rhs);
  const auto& objs = r.objects();
  for (size_t i = 0; i < objs.size(); ++i) {
    if (objs[i].kind() != ValueKind::kRecord) continue;
    for (size_t j = i + 1; j < objs.size(); ++j) {
      if (objs[j].kind() != ValueKind::kRecord) continue;
      if (objs[i].Project(lhs) == objs[j].Project(lhs) &&
          objs[i].Project(rhs) != objs[j].Project(rhs)) {
        return false;
      }
    }
  }
  return true;
}

bool SatisfiesWeak(const GRelation& r, const FunctionalDependency& fd) {
  std::vector<std::string> lhs = ToVec(fd.lhs);
  std::vector<std::string> rhs = ToVec(fd.rhs);
  const auto& objs = r.objects();
  for (size_t i = 0; i < objs.size(); ++i) {
    if (objs[i].kind() != ValueKind::kRecord) continue;
    for (size_t j = i + 1; j < objs.size(); ++j) {
      if (objs[j].kind() != ValueKind::kRecord) continue;
      if (Consistent(objs[i].Project(lhs), objs[j].Project(lhs)) &&
          !Consistent(objs[i].Project(rhs), objs[j].Project(rhs))) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace dbpl::core
