#ifndef DBPL_CORE_JOIN_ENGINE_H_
#define DBPL_CORE_JOIN_ENGINE_H_

#include <vector>

#include "common/result.h"
#include "core/value.h"

namespace dbpl::core {

/// Tuning knobs for the signature-partitioned generalized join.
struct JoinOptions {
  /// Number of worker threads to shard partition pairs across (via
  /// core::ParallelFor — the same machinery behind dyndb's parallel
  /// Get). 1 (the default) runs inline on the calling thread; values
  /// are clamped to the hardware concurrency. Partitions are
  /// independent, so threading changes only wall-clock time, never the
  /// result.
  int threads = 1;
};

/// All consistent pairwise joins `x ⊔ y` for `x ∈ left`, `y ∈ right`,
/// unreduced — the raw material of the paper's Figure 1 join, which the
/// callers reduce to maxima (GRelation) or minima (the value-level set
/// join).
///
/// Instead of testing every pair, objects are partitioned by the
/// *signature* of their ground attributes: the subset of the schemas'
/// overlapping attribute names at which the object binds an atom. Two
/// records can only be consistent if they agree exactly on the atoms of
/// their common ground attributes, so within a signature-pair the join
/// degenerates to a hash join on those attributes — on flat, total
/// records over equal schemas this is *exactly* the classical hash join.
/// Objects that cannot be partitioned (non-records; records grounding no
/// overlapping attribute) fall back to pairwise testing against the
/// whole other side, preserving the naive semantics bit-for-bit.
///
/// An `Inconsistent` pairwise join is expected (the pair simply produces
/// nothing); any *other* failure is a bug in the value lattice and is
/// propagated.
Result<std::vector<Value>> PartitionedPairJoins(const std::vector<Value>& left,
                                                const std::vector<Value>& right,
                                                const JoinOptions& opts = {});

/// Reduces `vs` to its minimal elements under `⊑`, deduplicated — the
/// canonical representative of a relation under the Smyth ordering.
/// Index-accelerated equivalent of the quadratic min-reduction.
std::vector<Value> MinimalAntichain(std::vector<Value> vs);

/// Reduces `vs` to its maximal elements under `⊑`, deduplicated — the
/// paper's subsumption rule applied wholesale. Equivalent to inserting
/// every element into a GRelation, but without maintaining the sorted
/// member vector incrementally (which is quadratic in the output size).
std::vector<Value> MaximalAntichain(std::vector<Value> vs);

}  // namespace dbpl::core

#endif  // DBPL_CORE_JOIN_ENGINE_H_
