#ifndef DBPL_CORE_SUBSUMPTION_INDEX_H_
#define DBPL_CORE_SUBSUMPTION_INDEX_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/value.h"

namespace dbpl::core {

/// An index over the members of a cochain that answers the two questions
/// the admission rule asks on every insert — "is some member above this
/// object?" (absorption) and "which members are below it?" (subsumption)
/// — without scanning the whole relation.
///
/// The index exploits the flatness of atoms under `⊑`: if a record `a`
/// has an atom at field `f`, then any record above *or* below `a` that
/// also binds `f` must bind it to the *same* atom. Each member record is
/// therefore posted under every `(field, atom-value)` pair it grounds:
///
///  * candidates above `v` must ground every atom field of `v`, so they
///    all sit in the *shortest* of `v`'s posting lists;
///  * candidates below `v` ground a subset of `v`'s atom fields, so they
///    all sit in the *union* of `v`'s posting lists — except members with
///    no atom fields at all (non-records, `⊥`, records of nested values),
///    which are kept in a small side list.
///
/// Posting keys are hashes; collisions only enlarge a candidate list, and
/// every candidate is re-checked with the real `LessEq` by the caller, so
/// the index is purely an accelerator and never changes semantics.
///
/// Thread safety: the query methods (`UpperCandidates`,
/// `LowerCandidates`) are const and touch no hidden mutable state, so
/// any number of threads may query a fully-built index concurrently —
/// this is the read path under dyndb's snapshot-isolated parallel Get.
/// `Add`/`Remove`/`Clear` require exclusive access, like any other
/// mutation.
class SubsumptionIndex {
 public:
  /// Adds a member. The caller guarantees `v` is not already present.
  void Add(const Value& v);

  /// Removes a member previously added (matched by structural equality).
  void Remove(const Value& v);

  void Clear();

  /// Members that could be `⊒ v` (i.e. could absorb `v`). `nullopt`
  /// means the index cannot narrow the search (v is `⊥` or a record
  /// without atom fields) and the caller must scan all members. The
  /// pointers are into index storage and are invalidated by the next
  /// `Add`/`Remove`/`Clear`.
  std::optional<std::vector<const Value*>> UpperCandidates(
      const Value& v) const;

  /// Members that could be `⊑ v` (i.e. could be subsumed by `v`). Never
  /// needs a full scan; may contain duplicates when a member shares
  /// several atom fields with `v`. Same pointer-validity caveat as
  /// `UpperCandidates`.
  std::vector<const Value*> LowerCandidates(const Value& v) const;

 private:
  static uint64_t PostingKey(const std::string& field, const Value& atom);

  /// (field, atom value) hash -> members grounding that pair.
  std::unordered_map<uint64_t, std::vector<Value>> postings_;
  /// Members with no atom fields: non-records, `⊥`, nested-only records.
  std::vector<Value> unindexed_;
};

}  // namespace dbpl::core

#endif  // DBPL_CORE_SUBSUMPTION_INDEX_H_
