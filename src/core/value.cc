#include "core/value.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <sstream>
#include <variant>

namespace dbpl::core {

std::string_view ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kBottom:
      return "Bottom";
    case ValueKind::kBool:
      return "Bool";
    case ValueKind::kInt:
      return "Int";
    case ValueKind::kReal:
      return "Real";
    case ValueKind::kString:
      return "String";
    case ValueKind::kRecord:
      return "Record";
    case ValueKind::kSet:
      return "Set";
    case ValueKind::kList:
      return "List";
    case ValueKind::kRef:
      return "Ref";
    case ValueKind::kTagged:
      return "Tagged";
  }
  return "Unknown";
}

struct Value::Rep {
  ValueKind kind;
  std::variant<std::monostate, bool, int64_t, double, std::string,
               std::vector<RecordField>, std::vector<Value>, Oid,
               std::pair<std::string, Value>>
      payload;
};

bool RecordField::operator==(const RecordField& other) const {
  return name == other.name && value == other.value;
}

Value Value::Bool(bool v) {
  return Value(std::make_shared<const Rep>(Rep{ValueKind::kBool, v}));
}

Value Value::Int(int64_t v) {
  return Value(std::make_shared<const Rep>(Rep{ValueKind::kInt, v}));
}

Value Value::Real(double v) {
  return Value(std::make_shared<const Rep>(Rep{ValueKind::kReal, v}));
}

Value Value::String(std::string v) {
  return Value(
      std::make_shared<const Rep>(Rep{ValueKind::kString, std::move(v)}));
}

Result<Value> Value::Record(std::vector<RecordField> fields) {
  std::sort(fields.begin(), fields.end(),
            [](const RecordField& a, const RecordField& b) {
              return a.name < b.name;
            });
  for (size_t i = 1; i < fields.size(); ++i) {
    if (fields[i].name == fields[i - 1].name) {
      return Status::InvalidArgument("duplicate record field: " +
                                     fields[i].name);
    }
  }
  return Value(
      std::make_shared<const Rep>(Rep{ValueKind::kRecord, std::move(fields)}));
}

Value Value::RecordOf(std::vector<RecordField> fields) {
  Result<Value> r = Record(std::move(fields));
  if (!r.ok()) {
    // Programmer error in a literal; fail loudly.
    std::abort();
  }
  return std::move(r).value();
}

Value Value::Set(std::vector<Value> elements) {
  std::sort(elements.begin(), elements.end(),
            [](const Value& a, const Value& b) { return Compare(a, b) < 0; });
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  return Value(
      std::make_shared<const Rep>(Rep{ValueKind::kSet, std::move(elements)}));
}

Value Value::List(std::vector<Value> elements) {
  return Value(
      std::make_shared<const Rep>(Rep{ValueKind::kList, std::move(elements)}));
}

Value Value::Ref(Oid oid) {
  return Value(std::make_shared<const Rep>(Rep{ValueKind::kRef, oid}));
}

Value Value::Tagged(std::string tag, Value payload) {
  return Value(std::make_shared<const Rep>(
      Rep{ValueKind::kTagged,
          std::make_pair(std::move(tag), std::move(payload))}));
}

ValueKind Value::kind() const {
  return rep_ ? rep_->kind : ValueKind::kBottom;
}

bool Value::AsBool() const {
  assert(kind() == ValueKind::kBool);
  return std::get<bool>(rep_->payload);
}

int64_t Value::AsInt() const {
  assert(kind() == ValueKind::kInt);
  return std::get<int64_t>(rep_->payload);
}

double Value::AsReal() const {
  assert(kind() == ValueKind::kReal);
  return std::get<double>(rep_->payload);
}

const std::string& Value::AsString() const {
  assert(kind() == ValueKind::kString);
  return std::get<std::string>(rep_->payload);
}

Oid Value::AsRef() const {
  assert(kind() == ValueKind::kRef);
  return std::get<Oid>(rep_->payload);
}

const std::vector<Value::RecordField>& Value::fields() const {
  assert(kind() == ValueKind::kRecord);
  return std::get<std::vector<RecordField>>(rep_->payload);
}

const std::vector<Value>& Value::elements() const {
  assert(kind() == ValueKind::kSet || kind() == ValueKind::kList);
  return std::get<std::vector<Value>>(rep_->payload);
}

const std::string& Value::tag() const {
  assert(kind() == ValueKind::kTagged);
  return std::get<std::pair<std::string, Value>>(rep_->payload).first;
}

const Value& Value::payload() const {
  assert(kind() == ValueKind::kTagged);
  return std::get<std::pair<std::string, Value>>(rep_->payload).second;
}

const Value* Value::FindField(std::string_view name) const {
  if (kind() != ValueKind::kRecord) return nullptr;
  const auto& fs = fields();
  auto it = std::lower_bound(
      fs.begin(), fs.end(), name,
      [](const RecordField& f, std::string_view n) { return f.name < n; });
  if (it != fs.end() && it->name == name) return &it->value;
  return nullptr;
}

Value Value::WithField(std::string_view name, Value v) const {
  assert(kind() == ValueKind::kRecord);
  std::vector<RecordField> fs = fields();
  bool replaced = false;
  for (auto& f : fs) {
    if (f.name == name) {
      f.value = std::move(v);
      replaced = true;
      break;
    }
  }
  if (!replaced) fs.push_back({std::string(name), std::move(v)});
  return RecordOf(std::move(fs));
}

Value Value::Project(const std::vector<std::string>& names) const {
  assert(kind() == ValueKind::kRecord);
  std::vector<RecordField> out;
  for (const auto& n : names) {
    if (const Value* v = FindField(n)) out.push_back({n, *v});
  }
  return RecordOf(std::move(out));
}

bool Value::operator==(const Value& other) const {
  return Compare(*this, other) == 0;
}

namespace {

size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

size_t Value::Hash() const {
  size_t h = static_cast<size_t>(kind()) * 0x9e3779b97f4a7c15ULL + 1;
  switch (kind()) {
    case ValueKind::kBottom:
      return h;
    case ValueKind::kBool:
      return HashCombine(h, AsBool() ? 2 : 1);
    case ValueKind::kInt:
      return HashCombine(h, std::hash<int64_t>()(AsInt()));
    case ValueKind::kReal:
      return HashCombine(h, std::hash<double>()(AsReal()));
    case ValueKind::kString:
      return HashCombine(h, std::hash<std::string>()(AsString()));
    case ValueKind::kRef:
      return HashCombine(h, std::hash<Oid>()(AsRef()));
    case ValueKind::kRecord: {
      for (const auto& f : fields()) {
        h = HashCombine(h, std::hash<std::string>()(f.name));
        h = HashCombine(h, f.value.Hash());
      }
      return h;
    }
    case ValueKind::kSet:
    case ValueKind::kList: {
      for (const auto& e : elements()) h = HashCombine(h, e.Hash());
      return h;
    }
    case ValueKind::kTagged:
      h = HashCombine(h, std::hash<std::string>()(tag()));
      return HashCombine(h, payload().Hash());
  }
  return h;
}

int Compare(const Value& a, const Value& b) {
  if (a.rep_ == b.rep_) return 0;  // covers Bottom==Bottom and shared reps
  if (a.kind() != b.kind()) {
    return static_cast<int>(a.kind()) < static_cast<int>(b.kind()) ? -1 : 1;
  }
  switch (a.kind()) {
    case ValueKind::kBottom:
      return 0;
    case ValueKind::kBool:
      return static_cast<int>(a.AsBool()) - static_cast<int>(b.AsBool());
    case ValueKind::kInt: {
      int64_t x = a.AsInt(), y = b.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ValueKind::kReal: {
      double x = a.AsReal(), y = b.AsReal();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ValueKind::kString:
      return a.AsString().compare(b.AsString());
    case ValueKind::kRef: {
      Oid x = a.AsRef(), y = b.AsRef();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ValueKind::kRecord: {
      const auto& fa = a.fields();
      const auto& fb = b.fields();
      size_t n = std::min(fa.size(), fb.size());
      for (size_t i = 0; i < n; ++i) {
        int c = fa[i].name.compare(fb[i].name);
        if (c != 0) return c;
        c = Compare(fa[i].value, fb[i].value);
        if (c != 0) return c;
      }
      if (fa.size() != fb.size()) return fa.size() < fb.size() ? -1 : 1;
      return 0;
    }
    case ValueKind::kSet:
    case ValueKind::kList: {
      const auto& ea = a.elements();
      const auto& eb = b.elements();
      size_t n = std::min(ea.size(), eb.size());
      for (size_t i = 0; i < n; ++i) {
        int c = Compare(ea[i], eb[i]);
        if (c != 0) return c;
      }
      if (ea.size() != eb.size()) return ea.size() < eb.size() ? -1 : 1;
      return 0;
    }
    case ValueKind::kTagged: {
      int c = a.tag().compare(b.tag());
      if (c != 0) return c;
      return Compare(a.payload(), b.payload());
    }
  }
  return 0;
}

namespace {

void Render(const Value& v, std::ostream& os) {
  switch (v.kind()) {
    case ValueKind::kBottom:
      os << "_|_";
      return;
    case ValueKind::kBool:
      os << (v.AsBool() ? "true" : "false");
      return;
    case ValueKind::kInt:
      os << v.AsInt();
      return;
    case ValueKind::kReal:
      os << v.AsReal();
      return;
    case ValueKind::kString:
      os << '"' << v.AsString() << '"';
      return;
    case ValueKind::kRef:
      os << "@" << v.AsRef();
      return;
    case ValueKind::kRecord: {
      os << "{";
      bool first = true;
      for (const auto& f : v.fields()) {
        if (!first) os << ", ";
        first = false;
        os << f.name << " = ";
        Render(f.value, os);
      }
      os << "}";
      return;
    }
    case ValueKind::kSet: {
      os << "{|";
      bool first = true;
      for (const auto& e : v.elements()) {
        if (!first) os << ", ";
        first = false;
        Render(e, os);
      }
      os << "|}";
      return;
    }
    case ValueKind::kList: {
      os << "[";
      bool first = true;
      for (const auto& e : v.elements()) {
        if (!first) os << ", ";
        first = false;
        Render(e, os);
      }
      os << "]";
      return;
    }
    case ValueKind::kTagged:
      os << v.tag() << "(";
      Render(v.payload(), os);
      os << ")";
      return;
  }
}

}  // namespace

std::string Value::ToString() const {
  std::ostringstream os;
  Render(*this, os);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  Render(v, os);
  return os;
}

}  // namespace dbpl::core
