#ifndef DBPL_CORE_HEAP_H_
#define DBPL_CORE_HEAP_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "core/value.h"

namespace dbpl::core {

/// A heap of mutable, identity-bearing objects.
///
/// The paper distinguishes values (identified by intrinsic properties, as
/// in a relation) from objects (with identity independent of content, as
/// in object-oriented databases). A `Heap` provides the latter: each
/// `Allocate` yields a fresh `Oid` that keeps naming the same object
/// however its value evolves, so two objects with identical — or
/// comparable — values can coexist (the paper's two-identical-cars
/// parking-lot scenario).
///
/// Object-level inheritance ("turning a Person into an Employee") is
/// `Extend`: the object's value is replaced by its join with new
/// information, in place, so every existing reference sees the upgrade —
/// precisely the operation the paper notes Amber lacks.
class Heap {
 public:
  Heap() = default;
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;
  Heap(Heap&&) = default;
  Heap& operator=(Heap&&) = default;

  /// Creates a new object holding `v`; returns its identity.
  Oid Allocate(Value v);

  /// Creates an object with a caller-chosen id (used when re-loading a
  /// persisted heap). Fails with AlreadyExists on collision.
  Status AllocateWithOid(Oid oid, Value v);

  /// Current value of object `oid`.
  Result<Value> Get(Oid oid) const;

  /// Replaces the value of `oid`.
  Status Put(Oid oid, Value v);

  /// Object-level inheritance: replaces the value of `oid` with
  /// `old ⊔ extra` and returns the new value. Fails with `Inconsistent`
  /// when the new information contradicts the old.
  Result<Value> Extend(Oid oid, const Value& extra);

  /// Removes the object. References elsewhere become dangling; `Get`
  /// on them reports NotFound.
  Status Delete(Oid oid);

  bool Contains(Oid oid) const { return objects_.contains(oid); }
  size_t size() const { return objects_.size(); }

  /// All oids, ascending.
  std::vector<Oid> Oids() const;

  /// Transitive closure of `roots` under kRef edges (through records,
  /// sets and lists), sorted ascending. Dangling references are ignored.
  /// This is the reachability relation intrinsic persistence is built on.
  std::vector<Oid> ReachableFrom(const std::vector<Oid>& roots) const;

  /// Deletes every object not reachable from `roots`; returns the number
  /// reclaimed.
  size_t CollectGarbage(const std::vector<Oid>& roots);

 private:
  std::map<Oid, Value> objects_;
  Oid next_oid_ = 1;
};

/// Appends every Oid referenced (transitively through the value structure,
/// not through the heap) by `v` to `out`.
void CollectRefs(const Value& v, std::vector<Oid>* out);

}  // namespace dbpl::core

#endif  // DBPL_CORE_HEAP_H_
