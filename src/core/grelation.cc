#include "core/grelation.h"

#include <algorithm>
#include <sstream>

#include "core/order.h"

namespace dbpl::core {
namespace {

bool CanonicalLess(const Value& a, const Value& b) {
  return Compare(a, b) < 0;
}

}  // namespace

GRelation GRelation::FromObjects(std::vector<Value> objects) {
  GRelation r;
  for (Value& v : objects) r.Insert(std::move(v));
  return r;
}

Result<GRelation> GRelation::FromValue(const Value& v) {
  if (v.kind() != ValueKind::kSet) {
    return Status::InvalidArgument("relation must be built from a set, got " +
                                   std::string(ValueKindName(v.kind())));
  }
  return FromObjects(v.elements());
}

GRelation::InsertOutcome GRelation::Insert(Value object) {
  for (const Value& o : objects_) {
    if (dbpl::core::LessEq(object, o)) return InsertOutcome::kAbsorbed;
  }
  bool subsumed_any = false;
  auto dominated = [&](const Value& o) {
    if (dbpl::core::LessEq(o, object)) {
      subsumed_any = true;
      return true;
    }
    return false;
  };
  objects_.erase(std::remove_if(objects_.begin(), objects_.end(), dominated),
                 objects_.end());
  auto it = std::lower_bound(objects_.begin(), objects_.end(), object,
                             CanonicalLess);
  objects_.insert(it, std::move(object));
  return subsumed_any ? InsertOutcome::kSubsumed : InsertOutcome::kInserted;
}

bool GRelation::Contains(const Value& object) const {
  return std::binary_search(objects_.begin(), objects_.end(), object,
                            CanonicalLess);
}

bool GRelation::Covers(const Value& object) const {
  for (const Value& o : objects_) {
    if (dbpl::core::LessEq(object, o)) return true;
  }
  return false;
}

GRelation GRelation::Join(const GRelation& r1, const GRelation& r2) {
  GRelation out;
  for (const Value& x : r1.objects_) {
    for (const Value& y : r2.objects_) {
      Result<Value> j = dbpl::core::Join(x, y);
      if (j.ok()) out.Insert(std::move(j).value());
    }
  }
  return out;
}

GRelation GRelation::Merge(const GRelation& r1, const GRelation& r2) {
  GRelation out = r1;
  for (const Value& y : r2.objects_) out.Insert(y);
  return out;
}

GRelation GRelation::Project(const std::vector<std::string>& attrs) const {
  GRelation out;
  for (const Value& o : objects_) {
    if (o.kind() == ValueKind::kRecord) {
      out.Insert(o.Project(attrs));
    }
  }
  return out;
}

GRelation GRelation::Select(
    const std::function<bool(const Value&)>& pred) const {
  GRelation out;
  for (const Value& o : objects_) {
    if (pred(o)) out.Insert(o);
  }
  return out;
}

bool GRelation::LessEq(const GRelation& r1, const GRelation& r2) {
  for (const Value& op : r2.objects_) {
    bool found = false;
    for (const Value& o : r1.objects_) {
      if (dbpl::core::LessEq(o, op)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool GRelation::LessEqHoare(const GRelation& r1, const GRelation& r2) {
  for (const Value& o : r1.objects_) {
    bool found = false;
    for (const Value& op : r2.objects_) {
      if (dbpl::core::LessEq(o, op)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

Value GRelation::ToValue() const { return Value::Set(objects_); }

Status GRelation::CheckInvariant() const {
  for (size_t i = 0; i < objects_.size(); ++i) {
    for (size_t j = 0; j < objects_.size(); ++j) {
      if (i == j) continue;
      if (dbpl::core::LessEq(objects_[i], objects_[j])) {
        return Status::Internal("cochain violated: " + objects_[i].ToString() +
                                " ⊑ " + objects_[j].ToString());
      }
    }
  }
  for (size_t i = 1; i < objects_.size(); ++i) {
    if (Compare(objects_[i - 1], objects_[i]) >= 0) {
      return Status::Internal("canonical order violated");
    }
  }
  return Status::OK();
}

bool GRelation::operator==(const GRelation& other) const {
  return objects_ == other.objects_;
}

std::string GRelation::ToString() const {
  std::ostringstream os;
  os << "{\n";
  for (const Value& o : objects_) os << "  " << o << "\n";
  os << "}";
  return os.str();
}

}  // namespace dbpl::core
