#include "core/grelation.h"

#include <algorithm>
#include <sstream>

#include "core/order.h"

namespace dbpl::core {
namespace {

bool CanonicalLess(const Value& a, const Value& b) {
  return Compare(a, b) < 0;
}

}  // namespace

GRelation::GRelation(const GRelation& other) : objects_(other.objects_) {
  index_built_.store(objects_.empty(), std::memory_order_relaxed);
}

GRelation::GRelation(GRelation&& other) noexcept
    : objects_(std::move(other.objects_)) {
  index_built_.store(objects_.empty(), std::memory_order_relaxed);
  other.objects_.clear();
  other.index_.Clear();
  other.index_built_.store(true, std::memory_order_relaxed);
}

GRelation& GRelation::operator=(const GRelation& other) {
  if (this != &other) {
    objects_ = other.objects_;
    index_.Clear();
    index_built_.store(objects_.empty(), std::memory_order_relaxed);
  }
  return *this;
}

GRelation& GRelation::operator=(GRelation&& other) noexcept {
  if (this != &other) {
    objects_ = std::move(other.objects_);
    index_.Clear();
    index_built_.store(objects_.empty(), std::memory_order_relaxed);
    other.objects_.clear();
    other.index_.Clear();
    other.index_built_.store(true, std::memory_order_relaxed);
  }
  return *this;
}

GRelation GRelation::FromAntichain(std::vector<Value> maxima) {
  GRelation r;
  std::sort(maxima.begin(), maxima.end(), CanonicalLess);
  r.objects_ = std::move(maxima);
  // Built on first Insert/Covers (possibly from several reader threads
  // at once — EnsureIndex double-checks under its mutex).
  r.index_built_.store(r.objects_.empty(), std::memory_order_relaxed);
  return r;
}

void GRelation::EnsureIndex() const {
  if (index_built_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(index_mu_);
  if (index_built_.load(std::memory_order_relaxed)) return;
  index_.Clear();
  for (const Value& v : objects_) index_.Add(v);
  index_built_.store(true, std::memory_order_release);
}

GRelation GRelation::FromObjects(std::vector<Value> objects) {
  return FromAntichain(MaximalAntichain(std::move(objects)));
}

Result<GRelation> GRelation::FromValue(const Value& v) {
  if (v.kind() != ValueKind::kSet) {
    return Status::InvalidArgument("relation must be built from a set, got " +
                                   std::string(ValueKindName(v.kind())));
  }
  return FromObjects(v.elements());
}

GRelation::InsertOutcome GRelation::Insert(Value object) {
  EnsureIndex();
  if (Covers(object)) return InsertOutcome::kAbsorbed;
  // Subsumption: remove every member the new object dominates. The index
  // narrows the scan to members sharing a ground attribute (plus the
  // unindexed ones); candidates can repeat across posting lists, hence
  // the dedup against `doomed`.
  std::vector<Value> doomed;
  for (const Value* c : index_.LowerCandidates(object)) {
    if (dbpl::core::LessEq(*c, object) &&
        std::find(doomed.begin(), doomed.end(), *c) == doomed.end()) {
      doomed.push_back(*c);
    }
  }
  for (const Value& d : doomed) {
    auto it = std::lower_bound(objects_.begin(), objects_.end(), d,
                               CanonicalLess);
    objects_.erase(it);
    index_.Remove(d);
  }
  index_.Add(object);
  auto it = std::lower_bound(objects_.begin(), objects_.end(), object,
                             CanonicalLess);
  objects_.insert(it, std::move(object));
  return doomed.empty() ? InsertOutcome::kInserted : InsertOutcome::kSubsumed;
}

bool GRelation::Contains(const Value& object) const {
  return std::binary_search(objects_.begin(), objects_.end(), object,
                            CanonicalLess);
}

bool GRelation::Covers(const Value& object) const {
  EnsureIndex();
  std::optional<std::vector<const Value*>> upper =
      index_.UpperCandidates(object);
  if (upper.has_value()) {
    for (const Value* c : *upper) {
      if (dbpl::core::LessEq(object, *c)) return true;
    }
    return false;
  }
  for (const Value& o : objects_) {
    if (dbpl::core::LessEq(object, o)) return true;
  }
  return false;
}

Result<GRelation> GRelation::Join(const GRelation& r1, const GRelation& r2,
                                  const JoinOptions& opts) {
  DBPL_ASSIGN_OR_RETURN(
      std::vector<Value> pairs,
      PartitionedPairJoins(r1.objects_, r2.objects_, opts));
  return FromAntichain(MaximalAntichain(std::move(pairs)));
}

Result<GRelation> GRelation::JoinNaive(const GRelation& r1,
                                       const GRelation& r2) {
  return JoinNaiveWith(r1, r2, [](const Value& x, const Value& y) {
    return dbpl::core::Join(x, y);
  });
}

Result<GRelation> GRelation::JoinNaiveWith(const GRelation& r1,
                                           const GRelation& r2,
                                           const Joiner& joiner) {
  GRelation out;
  for (const Value& x : r1.objects_) {
    for (const Value& y : r2.objects_) {
      Result<Value> j = joiner(x, y);
      if (j.ok()) {
        out.Insert(std::move(j).value());
      } else if (j.status().code() != StatusCode::kInconsistent) {
        // A clash is the expected no-match case; anything else is a bug
        // in the value lattice and must not be silently dropped.
        return j.status();
      }
    }
  }
  return out;
}

GRelation GRelation::Merge(const GRelation& r1, const GRelation& r2) {
  GRelation out = r1;
  for (const Value& y : r2.objects_) out.Insert(y);
  return out;
}

Result<GRelation> GRelation::Project(
    const std::vector<std::string>& attrs) const {
  GRelation out;
  for (const Value& o : objects_) {
    if (o.kind() != ValueKind::kRecord) {
      return Status::InvalidArgument(
          "cannot project a non-record member of a generalized relation: " +
          o.ToString());
    }
    out.Insert(o.Project(attrs));
  }
  return out;
}

GRelation GRelation::Select(
    const std::function<bool(const Value&)>& pred) const {
  GRelation out;
  for (const Value& o : objects_) {
    if (pred(o)) out.Insert(o);
  }
  return out;
}

bool GRelation::LessEq(const GRelation& r1, const GRelation& r2) {
  for (const Value& op : r2.objects_) {
    bool found = false;
    for (const Value& o : r1.objects_) {
      if (dbpl::core::LessEq(o, op)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool GRelation::LessEqHoare(const GRelation& r1, const GRelation& r2) {
  for (const Value& o : r1.objects_) {
    bool found = false;
    for (const Value& op : r2.objects_) {
      if (dbpl::core::LessEq(o, op)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

Value GRelation::ToValue() const { return Value::Set(objects_); }

Status GRelation::CheckInvariant() const {
  for (size_t i = 0; i < objects_.size(); ++i) {
    for (size_t j = 0; j < objects_.size(); ++j) {
      if (i == j) continue;
      if (dbpl::core::LessEq(objects_[i], objects_[j])) {
        return Status::Internal("cochain violated: " + objects_[i].ToString() +
                                " ⊑ " + objects_[j].ToString());
      }
    }
  }
  for (size_t i = 1; i < objects_.size(); ++i) {
    if (Compare(objects_[i - 1], objects_[i]) >= 0) {
      return Status::Internal("canonical order violated");
    }
  }
  return Status::OK();
}

bool GRelation::operator==(const GRelation& other) const {
  return objects_ == other.objects_;
}

std::string GRelation::ToString() const {
  std::ostringstream os;
  os << "{\n";
  for (const Value& o : objects_) os << "  " << o << "\n";
  os << "}";
  return os.str();
}

}  // namespace dbpl::core
