#ifndef DBPL_CORE_KEYED_GRELATION_H_
#define DBPL_CORE_KEYED_GRELATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/grelation.h"
#include "core/value.h"

namespace dbpl::core {

/// Keys for generalized relations — an account of the open problem the
/// paper leaves ("we have not given an account of keys for generalized
/// relations").
///
/// The design follows the paper's two observations:
///  1. in the classical model, a key identifies a tuple by an intrinsic
///     property;
///  2. imposing a key "will also prevent comparable values (under ⊑)
///     from coexisting in the same set", because comparable objects
///     necessarily agree on the key.
///
/// Generalizing to partial objects, two objects with *consistent*
/// (joinable) key projections describe the same entity, so:
///  * inserting an object whose key projection is consistent with an
///    existing member **merges** the two by joining them (information
///    accumulates on the entity) — the upsert semantics classical keys
///    approximate with update-in-place;
///  * if the join of the two objects fails, the insert is rejected as a
///    key violation: same entity, contradictory facts;
///  * an object missing part of its key is rejected outright (an entity
///    must be identified to be admitted).
///
/// With total, flat records this degenerates exactly to classical key
/// enforcement (equal keys → reject unless the tuples are identical),
/// which the tests verify against relational::Relation.
class KeyedGRelation {
 public:
  /// `key` must be non-empty.
  static Result<KeyedGRelation> Make(std::vector<std::string> key);

  enum class InsertOutcome {
    /// A new entity.
    kInserted,
    /// Merged (joined) with an existing entity sharing its key.
    kMerged,
    /// The information was already present.
    kAbsorbed,
  };

  /// Inserts with entity-merging semantics (see class comment).
  Result<InsertOutcome> Insert(const Value& object);

  /// The object whose key projection is consistent with `key_probe`'s
  /// (a record over the key attributes), or NotFound.
  Result<Value> Lookup(const Value& key_probe) const;

  const std::vector<std::string>& key() const { return key_; }
  const GRelation& relation() const { return relation_; }
  size_t size() const { return relation_.size(); }

  /// Verifies the keyed invariant: all members are mutually
  /// incomparable AND have pairwise-inconsistent key projections.
  Status CheckInvariant() const;

 private:
  explicit KeyedGRelation(std::vector<std::string> key)
      : key_(std::move(key)) {}

  /// The key projection of `object`; fails if any key attribute is
  /// missing or the object is not a record.
  Result<Value> KeyOf(const Value& object) const;

  std::vector<std::string> key_;
  GRelation relation_;
};

}  // namespace dbpl::core

#endif  // DBPL_CORE_KEYED_GRELATION_H_
