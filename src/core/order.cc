#include "core/order.h"

#include <vector>

#include "core/join_engine.h"

// Under the Smyth-style relation ordering the paper uses (`R ⊑ R'` iff
// every object of R' refines some object of R), the canonical
// representative of a relation's order-equivalence class is its set of
// *minimal* elements, and the least upper bound of two antichains is the
// min-reduction of their pairwise joins — both computed here with the
// index-accelerated engine of join_engine.h. (The *operational*
// relations in grelation.h instead keep maximal elements, the paper's
// subsumption rule; see the discussion there.)

namespace dbpl::core {

bool LessEq(const Value& a, const Value& b) {
  if (a.is_bottom()) return true;
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case ValueKind::kBottom:
      return true;
    case ValueKind::kBool:
    case ValueKind::kInt:
    case ValueKind::kReal:
    case ValueKind::kString:
    case ValueKind::kRef:
      return a == b;  // flat domains
    case ValueKind::kRecord: {
      for (const auto& f : a.fields()) {
        const Value* bf = b.FindField(f.name);
        if (bf == nullptr || !LessEq(f.value, *bf)) return false;
      }
      return true;
    }
    case ValueKind::kList: {
      const auto& ea = a.elements();
      const auto& eb = b.elements();
      if (ea.size() != eb.size()) return false;
      for (size_t i = 0; i < ea.size(); ++i) {
        if (!LessEq(ea[i], eb[i])) return false;
      }
      return true;
    }
    case ValueKind::kTagged:
      return a.tag() == b.tag() && LessEq(a.payload(), b.payload());
    case ValueKind::kSet: {
      // R ⊑ R' iff every object of R' refines some object of R.
      for (const auto& op : b.elements()) {
        bool found = false;
        for (const auto& o : a.elements()) {
          if (LessEq(o, op)) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      return true;
    }
  }
  return false;
}

Result<Value> Join(const Value& a, const Value& b) {
  if (a.is_bottom()) return b;
  if (b.is_bottom()) return a;
  if (a.kind() != b.kind()) {
    return Status::Inconsistent("cannot join " +
                                std::string(ValueKindName(a.kind())) +
                                " with " +
                                std::string(ValueKindName(b.kind())));
  }
  switch (a.kind()) {
    case ValueKind::kBottom:
      return a;
    case ValueKind::kBool:
    case ValueKind::kInt:
    case ValueKind::kReal:
    case ValueKind::kString:
    case ValueKind::kRef: {
      if (a == b) return a;
      return Status::Inconsistent("atoms disagree: " + a.ToString() + " vs " +
                                  b.ToString());
    }
    case ValueKind::kRecord: {
      std::vector<Value::RecordField> out = a.fields();
      for (const auto& f : b.fields()) {
        const Value* av = a.FindField(f.name);
        if (av == nullptr) {
          out.push_back(f);
        } else {
          Result<Value> j = Join(*av, f.value);
          if (!j.ok()) {
            return Status::Inconsistent("field " + f.name + ": " +
                                        j.status().message());
          }
          for (auto& of : out) {
            if (of.name == f.name) {
              of.value = std::move(j).value();
              break;
            }
          }
        }
      }
      return Value::Record(std::move(out));
    }
    case ValueKind::kList: {
      const auto& ea = a.elements();
      const auto& eb = b.elements();
      if (ea.size() != eb.size()) {
        return Status::Inconsistent("lists of different length");
      }
      std::vector<Value> out;
      out.reserve(ea.size());
      for (size_t i = 0; i < ea.size(); ++i) {
        DBPL_ASSIGN_OR_RETURN(Value j, Join(ea[i], eb[i]));
        out.push_back(std::move(j));
      }
      return Value::List(std::move(out));
    }
    case ValueKind::kTagged: {
      if (a.tag() != b.tag()) {
        return Status::Inconsistent("variant tags disagree: " + a.tag() +
                                    " vs " + b.tag());
      }
      DBPL_ASSIGN_OR_RETURN(Value j, Join(a.payload(), b.payload()));
      return Value::Tagged(a.tag(), std::move(j));
    }
    case ValueKind::kSet: {
      // Generalized relational join: all consistent pairwise joins,
      // reduced to the minimal antichain (the least upper bound under
      // the Smyth-style ordering). Contradictory pairs simply produce
      // nothing (if every pair clashes, the join is the empty, top
      // relation); a non-Inconsistent pairwise failure is a lattice bug
      // and propagates.
      DBPL_ASSIGN_OR_RETURN(
          std::vector<Value> pairs,
          PartitionedPairJoins(a.elements(), b.elements()));
      return Value::Set(MinimalAntichain(std::move(pairs)));
    }
  }
  return Status::Internal("unreachable join case");
}

bool Consistent(const Value& a, const Value& b) { return Join(a, b).ok(); }

Value Meet(const Value& a, const Value& b) {
  if (a.is_bottom() || b.is_bottom()) return Value::Bottom();
  if (a.kind() != b.kind()) return Value::Bottom();
  switch (a.kind()) {
    case ValueKind::kBottom:
      return Value::Bottom();
    case ValueKind::kBool:
    case ValueKind::kInt:
    case ValueKind::kReal:
    case ValueKind::kString:
    case ValueKind::kRef:
      return a == b ? a : Value::Bottom();
    case ValueKind::kRecord: {
      // Common fields, with the meet of their values. A field whose
      // values' meet is ⊥ is retained: `{x = ⊥}` still records that an
      // x-component exists, and is above `{}` in the ordering.
      std::vector<Value::RecordField> out;
      for (const auto& f : a.fields()) {
        if (const Value* bv = b.FindField(f.name)) {
          out.push_back({f.name, Meet(f.value, *bv)});
        }
      }
      return Value::RecordOf(std::move(out));
    }
    case ValueKind::kList: {
      const auto& ea = a.elements();
      const auto& eb = b.elements();
      if (ea.size() != eb.size()) return Value::Bottom();
      std::vector<Value> out;
      out.reserve(ea.size());
      for (size_t i = 0; i < ea.size(); ++i) out.push_back(Meet(ea[i], eb[i]));
      return Value::List(std::move(out));
    }
    case ValueKind::kTagged:
      if (a.tag() != b.tag()) return Value::Bottom();
      return Value::Tagged(a.tag(), Meet(a.payload(), b.payload()));
    case ValueKind::kSet: {
      // Greatest lower bound of two relations: the minimal antichain of
      // their union.
      std::vector<Value> all = a.elements();
      const auto& eb = b.elements();
      all.insert(all.end(), eb.begin(), eb.end());
      return Value::Set(MinimalAntichain(std::move(all)));
    }
  }
  return Value::Bottom();
}

}  // namespace dbpl::core
