#ifndef DBPL_CORE_FD_H_
#define DBPL_CORE_FD_H_

#include <set>
#include <string>
#include <vector>

#include "core/grelation.h"

namespace dbpl::core {

/// A set of attribute names.
using AttrSet = std::set<std::string>;

/// A functional dependency `lhs → rhs`.
///
/// The paper points at [Bune86], where the interaction of the relation
/// ordering and a projection ordering "allows us to derive the basic
/// results of the theory of functional dependencies"; this module
/// implements that classical theory (Armstrong closure, implication,
/// covers, keys) plus two satisfaction semantics on generalized
/// relations: the classical equality semantics and the domain-theoretic
/// *consistency* semantics appropriate to partial objects.
struct FunctionalDependency {
  AttrSet lhs;
  AttrSet rhs;

  bool operator==(const FunctionalDependency& other) const = default;
  std::string ToString() const;
};

/// The closure `attrs+` of an attribute set under `fds` (Armstrong).
AttrSet Closure(const AttrSet& attrs, const std::vector<FunctionalDependency>& fds);

/// True iff `fds ⊨ fd` (fd is derivable from fds).
bool Implies(const std::vector<FunctionalDependency>& fds,
             const FunctionalDependency& fd);

/// True iff `attrs` functionally determines every attribute in `all`.
bool IsSuperkey(const AttrSet& attrs, const AttrSet& all,
                const std::vector<FunctionalDependency>& fds);

/// All minimal superkeys of a schema (exponential; intended for the small
/// schemas of tests and examples).
std::vector<AttrSet> CandidateKeys(const AttrSet& all,
                                   const std::vector<FunctionalDependency>& fds);

/// A minimal cover: singleton right-hand sides, no extraneous left-hand
/// attributes, no redundant dependencies.
std::vector<FunctionalDependency> MinimalCover(
    std::vector<FunctionalDependency> fds);

/// Classical satisfaction: any two objects whose `lhs` projections are
/// equal have equal `rhs` projections.
bool SatisfiesClassic(const GRelation& r, const FunctionalDependency& fd);

/// Domain-theoretic (weak) satisfaction for partial objects: any two
/// objects whose `lhs` projections are *consistent* (joinable) have
/// consistent `rhs` projections. On total flat records this coincides
/// with classical satisfaction.
bool SatisfiesWeak(const GRelation& r, const FunctionalDependency& fd);

/// True iff every dependency is trivial or has a superkey left-hand
/// side — the Boyce–Codd normal form condition on schema `all`.
bool IsBcnf(const AttrSet& all, const std::vector<FunctionalDependency>& fds);

/// A BCNF decomposition of `all` under `fds` (the classical lossless
/// algorithm: repeatedly split on a violating dependency, projecting
/// the dependencies onto each fragment). The result is a set of
/// attribute sets, each in BCNF under the projected dependencies.
std::vector<AttrSet> DecomposeBcnf(const AttrSet& all,
                                   const std::vector<FunctionalDependency>& fds);

/// The projection of `fds` onto the attribute subset `attrs`: every
/// implied dependency X → A with X ∪ {A} ⊆ attrs (computed via
/// closures; exponential in |attrs|, fine for test-sized schemas).
std::vector<FunctionalDependency> ProjectFds(
    const AttrSet& attrs, const std::vector<FunctionalDependency>& fds);

}  // namespace dbpl::core

#endif  // DBPL_CORE_FD_H_
