#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace dbpl::core {

int ClampThreads(int requested) { return std::clamp(requested, 1, 64); }

Status ParallelFor(size_t n, int threads,
                   const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  int nthreads = ClampThreads(threads);
  if (nthreads <= 1 || n <= 1) {
    Status first = Status::OK();
    for (size_t i = 0; i < n; ++i) {
      Status s = fn(i);
      if (!s.ok() && first.ok()) first = s;
    }
    return first;
  }

  std::vector<Status> statuses(n);
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      statuses[i] = fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(nthreads) - 1);
  for (int t = 1; t < nthreads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();

  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace dbpl::core
