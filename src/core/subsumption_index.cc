#include "core/subsumption_index.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <string>

namespace dbpl::core {
namespace {

bool IsAtomKind(ValueKind k) {
  switch (k) {
    case ValueKind::kBool:
    case ValueKind::kInt:
    case ValueKind::kReal:
    case ValueKind::kString:
    case ValueKind::kRef:
      return true;
    default:
      return false;
  }
}

/// Calls `fn(field_name, atom_value)` for each atom-valued field of `v`
/// (none if `v` is not a record).
template <typename Fn>
void ForEachAtomField(const Value& v, Fn&& fn) {
  if (v.kind() != ValueKind::kRecord) return;
  for (const auto& f : v.fields()) {
    if (IsAtomKind(f.value.kind())) fn(f.name, f.value);
  }
}

bool HasAtomField(const Value& v) {
  bool found = false;
  ForEachAtomField(v, [&](const std::string&, const Value&) { found = true; });
  return found;
}

}  // namespace

uint64_t SubsumptionIndex::PostingKey(const std::string& field,
                                      const Value& atom) {
  uint64_t h = std::hash<std::string>()(field);
  h ^= atom.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

void SubsumptionIndex::Add(const Value& v) {
  if (!HasAtomField(v)) {
    unindexed_.push_back(v);
    return;
  }
  ForEachAtomField(v, [&](const std::string& name, const Value& atom) {
    postings_[PostingKey(name, atom)].push_back(v);
  });
}

void SubsumptionIndex::Remove(const Value& v) {
  if (!HasAtomField(v)) {
    auto it = std::find(unindexed_.begin(), unindexed_.end(), v);
    if (it != unindexed_.end()) unindexed_.erase(it);
    return;
  }
  ForEachAtomField(v, [&](const std::string& name, const Value& atom) {
    auto list = postings_.find(PostingKey(name, atom));
    if (list == postings_.end()) return;
    auto it = std::find(list->second.begin(), list->second.end(), v);
    if (it != list->second.end()) list->second.erase(it);
    if (list->second.empty()) postings_.erase(list);
  });
}

void SubsumptionIndex::Clear() {
  postings_.clear();
  unindexed_.clear();
}

namespace {

std::vector<const Value*> PointersInto(const std::vector<Value>& vs) {
  std::vector<const Value*> out;
  out.reserve(vs.size());
  for (const Value& v : vs) out.push_back(&v);
  return out;
}

}  // namespace

std::optional<std::vector<const Value*>> SubsumptionIndex::UpperCandidates(
    const Value& v) const {
  if (v.is_bottom()) return std::nullopt;  // everything is above ⊥
  if (v.kind() != ValueKind::kRecord) {
    // Atoms/lists/sets/tagged values are only comparable with members of
    // the same kind, all of which are unindexed.
    return PointersInto(unindexed_);
  }
  // A member above `v` must ground every atom field of `v` identically,
  // so it lies in each of `v`'s posting lists; search the shortest.
  const std::vector<Value>* best = nullptr;
  bool any_atom = false;
  bool missing_list = false;
  ForEachAtomField(v, [&](const std::string& name, const Value& atom) {
    any_atom = true;
    auto it = postings_.find(PostingKey(name, atom));
    if (it == postings_.end()) {
      missing_list = true;
      return;
    }
    if (best == nullptr || it->second.size() < best->size()) {
      best = &it->second;
    }
  });
  if (!any_atom) return std::nullopt;  // nested-only record: cannot narrow
  if (missing_list) {
    return std::vector<const Value*>{};  // no member grounds it
  }
  return PointersInto(*best);
}

std::vector<const Value*> SubsumptionIndex::LowerCandidates(
    const Value& v) const {
  // Members below `v` ground a subset of `v`'s atom fields (union of its
  // posting lists) or ground nothing at all (unindexed).
  std::vector<const Value*> out = PointersInto(unindexed_);
  ForEachAtomField(v, [&](const std::string& name, const Value& atom) {
    auto it = postings_.find(PostingKey(name, atom));
    if (it == postings_.end()) return;
    for (const Value& c : it->second) out.push_back(&c);
  });
  return out;
}

}  // namespace dbpl::core
