#include "core/heap.h"

#include <algorithm>
#include <set>

#include "core/order.h"

namespace dbpl::core {

Oid Heap::Allocate(Value v) {
  Oid oid = next_oid_++;
  objects_.emplace(oid, std::move(v));
  return oid;
}

Status Heap::AllocateWithOid(Oid oid, Value v) {
  if (oid == kInvalidOid) return Status::InvalidArgument("oid 0 is reserved");
  if (objects_.contains(oid)) {
    return Status::AlreadyExists("oid already in use: " + std::to_string(oid));
  }
  objects_.emplace(oid, std::move(v));
  if (oid >= next_oid_) next_oid_ = oid + 1;
  return Status::OK();
}

Result<Value> Heap::Get(Oid oid) const {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("no object with oid " + std::to_string(oid));
  }
  return it->second;
}

Status Heap::Put(Oid oid, Value v) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("no object with oid " + std::to_string(oid));
  }
  it->second = std::move(v);
  return Status::OK();
}

Result<Value> Heap::Extend(Oid oid, const Value& extra) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("no object with oid " + std::to_string(oid));
  }
  DBPL_ASSIGN_OR_RETURN(Value joined, Join(it->second, extra));
  it->second = joined;
  return joined;
}

Status Heap::Delete(Oid oid) {
  if (objects_.erase(oid) == 0) {
    return Status::NotFound("no object with oid " + std::to_string(oid));
  }
  return Status::OK();
}

std::vector<Oid> Heap::Oids() const {
  std::vector<Oid> out;
  out.reserve(objects_.size());
  for (const auto& [oid, _] : objects_) out.push_back(oid);
  return out;
}

void CollectRefs(const Value& v, std::vector<Oid>* out) {
  switch (v.kind()) {
    case ValueKind::kRef:
      out->push_back(v.AsRef());
      return;
    case ValueKind::kRecord:
      for (const auto& f : v.fields()) CollectRefs(f.value, out);
      return;
    case ValueKind::kSet:
    case ValueKind::kList:
      for (const auto& e : v.elements()) CollectRefs(e, out);
      return;
    case ValueKind::kTagged:
      CollectRefs(v.payload(), out);
      return;
    default:
      return;
  }
}

std::vector<Oid> Heap::ReachableFrom(const std::vector<Oid>& roots) const {
  std::set<Oid> seen;
  std::vector<Oid> work;
  for (Oid r : roots) {
    if (objects_.contains(r) && seen.insert(r).second) work.push_back(r);
  }
  while (!work.empty()) {
    Oid oid = work.back();
    work.pop_back();
    std::vector<Oid> refs;
    CollectRefs(objects_.at(oid), &refs);
    for (Oid r : refs) {
      if (objects_.contains(r) && seen.insert(r).second) work.push_back(r);
    }
  }
  return std::vector<Oid>(seen.begin(), seen.end());
}

size_t Heap::CollectGarbage(const std::vector<Oid>& roots) {
  std::vector<Oid> live = ReachableFrom(roots);
  std::set<Oid> live_set(live.begin(), live.end());
  size_t reclaimed = 0;
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (!live_set.contains(it->first)) {
      it = objects_.erase(it);
      ++reclaimed;
    } else {
      ++it;
    }
  }
  return reclaimed;
}

}  // namespace dbpl::core
