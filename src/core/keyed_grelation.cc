#include "core/keyed_grelation.h"

#include "core/order.h"

namespace dbpl::core {

Result<KeyedGRelation> KeyedGRelation::Make(std::vector<std::string> key) {
  if (key.empty()) {
    return Status::InvalidArgument("a key needs at least one attribute");
  }
  return KeyedGRelation(std::move(key));
}

Result<Value> KeyedGRelation::KeyOf(const Value& object) const {
  if (object.kind() != ValueKind::kRecord) {
    return Status::InvalidArgument("keyed relations hold records, got " +
                                   object.ToString());
  }
  Value proj = object.Project(key_);
  for (const auto& k : key_) {
    if (proj.FindField(k) == nullptr) {
      return Status::InvalidArgument("object is missing key attribute " + k +
                                     ": " + object.ToString());
    }
  }
  return proj;
}

Result<KeyedGRelation::InsertOutcome> KeyedGRelation::Insert(
    const Value& object) {
  DBPL_ASSIGN_OR_RETURN(Value key_proj, KeyOf(object));
  // Find the entity (at most one, by the invariant) with a consistent
  // key projection.
  const Value* match = nullptr;
  for (const Value& member : relation_.objects()) {
    if (Consistent(member.Project(key_), key_proj)) {
      match = &member;
      break;
    }
  }
  if (match == nullptr) {
    relation_.Insert(object);
    return InsertOutcome::kInserted;
  }
  if (LessEq(object, *match)) return InsertOutcome::kAbsorbed;
  Result<Value> merged = Join(*match, object);
  if (!merged.ok()) {
    return Status::Inconsistent(
        "key violation: object " + object.ToString() +
        " contradicts the existing entity with the same key: " +
        merged.status().message());
  }
  relation_.Insert(std::move(merged).value());  // subsumes the old member
  return InsertOutcome::kMerged;
}

Result<Value> KeyedGRelation::Lookup(const Value& key_probe) const {
  for (const Value& member : relation_.objects()) {
    if (Consistent(member.Project(key_), key_probe)) {
      return member;
    }
  }
  return Status::NotFound("no entity with key " + key_probe.ToString());
}

Status KeyedGRelation::CheckInvariant() const {
  DBPL_RETURN_IF_ERROR(relation_.CheckInvariant());
  const auto& objs = relation_.objects();
  for (size_t i = 0; i < objs.size(); ++i) {
    DBPL_ASSIGN_OR_RETURN(Value ki, KeyOf(objs[i]));
    for (size_t j = i + 1; j < objs.size(); ++j) {
      DBPL_ASSIGN_OR_RETURN(Value kj, KeyOf(objs[j]));
      if (Consistent(ki, kj)) {
        return Status::Internal("two entities share a key: " +
                                ki.ToString() + " and " + kj.ToString());
      }
    }
  }
  return Status::OK();
}

}  // namespace dbpl::core
