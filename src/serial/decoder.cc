#include "serial/decoder.h"

#include "serial/encoder.h"

#include <vector>

namespace dbpl::serial {
namespace {

/// Defensive bound on recursion so a corrupted deeply-nested payload
/// cannot blow the stack.
constexpr int kMaxDepth = 256;

Result<types::Type> DecodeTypeAt(ByteReader* in, int depth);
Result<core::Value> DecodeValueAt(ByteReader* in, int depth);

Result<types::Type> DecodeTypeAt(ByteReader* in, int depth) {
  using types::Type;
  using types::TypeKind;
  if (depth > kMaxDepth) return Status::Corruption("type nesting too deep");
  DBPL_ASSIGN_OR_RETURN(uint8_t tag, in->ReadU8());
  if (tag > static_cast<uint8_t>(TypeKind::kMu)) {
    return Status::Corruption("unknown type tag " + std::to_string(tag));
  }
  TypeKind kind = static_cast<TypeKind>(tag);
  switch (kind) {
    case TypeKind::kBottom:
      return Type::Bottom();
    case TypeKind::kTop:
      return Type::Top();
    case TypeKind::kBool:
      return Type::Bool();
    case TypeKind::kInt:
      return Type::Int();
    case TypeKind::kReal:
      return Type::Real();
    case TypeKind::kString:
      return Type::String();
    case TypeKind::kDynamic:
      return Type::Dynamic();
    case TypeKind::kVar: {
      DBPL_ASSIGN_OR_RETURN(std::string name, in->ReadString());
      return Type::Var(std::move(name));
    }
    case TypeKind::kRecord:
    case TypeKind::kVariant: {
      DBPL_ASSIGN_OR_RETURN(uint64_t n, in->ReadVarint());
      if (n > in->remaining()) {
        return Status::Corruption("field count exceeds payload");
      }
      std::vector<std::pair<std::string, Type>> fields;
      fields.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        DBPL_ASSIGN_OR_RETURN(std::string name, in->ReadString());
        DBPL_ASSIGN_OR_RETURN(Type t, DecodeTypeAt(in, depth + 1));
        fields.emplace_back(std::move(name), std::move(t));
      }
      Result<Type> made = kind == TypeKind::kRecord
                              ? Type::Record(std::move(fields))
                              : Type::Variant(std::move(fields));
      if (!made.ok()) {
        return Status::Corruption("malformed composite type: " +
                                  made.status().message());
      }
      return made;
    }
    case TypeKind::kList: {
      DBPL_ASSIGN_OR_RETURN(Type e, DecodeTypeAt(in, depth + 1));
      return Type::List(std::move(e));
    }
    case TypeKind::kSet: {
      DBPL_ASSIGN_OR_RETURN(Type e, DecodeTypeAt(in, depth + 1));
      return Type::Set(std::move(e));
    }
    case TypeKind::kRef: {
      DBPL_ASSIGN_OR_RETURN(Type e, DecodeTypeAt(in, depth + 1));
      return Type::RefTo(std::move(e));
    }
    case TypeKind::kFunc: {
      DBPL_ASSIGN_OR_RETURN(uint64_t n, in->ReadVarint());
      if (n > in->remaining()) {
        return Status::Corruption("param count exceeds payload");
      }
      std::vector<Type> params;
      params.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        DBPL_ASSIGN_OR_RETURN(Type p, DecodeTypeAt(in, depth + 1));
        params.push_back(std::move(p));
      }
      DBPL_ASSIGN_OR_RETURN(Type r, DecodeTypeAt(in, depth + 1));
      return Type::Func(std::move(params), std::move(r));
    }
    case TypeKind::kForall:
    case TypeKind::kExists: {
      DBPL_ASSIGN_OR_RETURN(std::string var, in->ReadString());
      DBPL_ASSIGN_OR_RETURN(Type bound, DecodeTypeAt(in, depth + 1));
      DBPL_ASSIGN_OR_RETURN(Type body, DecodeTypeAt(in, depth + 1));
      return kind == TypeKind::kForall
                 ? Type::Forall(std::move(var), std::move(bound),
                                std::move(body))
                 : Type::Exists(std::move(var), std::move(bound),
                                std::move(body));
    }
    case TypeKind::kMu: {
      DBPL_ASSIGN_OR_RETURN(std::string var, in->ReadString());
      DBPL_ASSIGN_OR_RETURN(Type body, DecodeTypeAt(in, depth + 1));
      return Type::Mu(std::move(var), std::move(body));
    }
  }
  return Status::Corruption("unreachable type tag");
}

Result<core::Value> DecodeValueAt(ByteReader* in, int depth) {
  using core::Value;
  using core::ValueKind;
  if (depth > kMaxDepth) return Status::Corruption("value nesting too deep");
  DBPL_ASSIGN_OR_RETURN(uint8_t tag, in->ReadU8());
  if (tag > static_cast<uint8_t>(ValueKind::kTagged)) {
    return Status::Corruption("unknown value tag " + std::to_string(tag));
  }
  ValueKind kind = static_cast<ValueKind>(tag);
  switch (kind) {
    case ValueKind::kBottom:
      return Value::Bottom();
    case ValueKind::kBool: {
      DBPL_ASSIGN_OR_RETURN(uint8_t b, in->ReadU8());
      if (b > 1) return Status::Corruption("malformed bool");
      return Value::Bool(b == 1);
    }
    case ValueKind::kInt: {
      DBPL_ASSIGN_OR_RETURN(int64_t i, in->ReadVarintSigned());
      return Value::Int(i);
    }
    case ValueKind::kReal: {
      DBPL_ASSIGN_OR_RETURN(double r, in->ReadDouble());
      return Value::Real(r);
    }
    case ValueKind::kString: {
      DBPL_ASSIGN_OR_RETURN(std::string s, in->ReadString());
      return Value::String(std::move(s));
    }
    case ValueKind::kRef: {
      DBPL_ASSIGN_OR_RETURN(uint64_t oid, in->ReadVarint());
      return Value::Ref(oid);
    }
    case ValueKind::kRecord: {
      DBPL_ASSIGN_OR_RETURN(uint64_t n, in->ReadVarint());
      if (n > in->remaining()) {
        return Status::Corruption("record field count exceeds payload");
      }
      std::vector<core::RecordField> fields;
      fields.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        DBPL_ASSIGN_OR_RETURN(std::string name, in->ReadString());
        DBPL_ASSIGN_OR_RETURN(Value v, DecodeValueAt(in, depth + 1));
        fields.push_back({std::move(name), std::move(v)});
      }
      Result<Value> made = Value::Record(std::move(fields));
      if (!made.ok()) {
        return Status::Corruption("malformed record: " +
                                  made.status().message());
      }
      return made;
    }
    case ValueKind::kSet:
    case ValueKind::kList: {
      DBPL_ASSIGN_OR_RETURN(uint64_t n, in->ReadVarint());
      if (n > in->remaining()) {
        return Status::Corruption("element count exceeds payload");
      }
      std::vector<Value> elems;
      elems.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        DBPL_ASSIGN_OR_RETURN(Value v, DecodeValueAt(in, depth + 1));
        elems.push_back(std::move(v));
      }
      return kind == ValueKind::kSet ? Value::Set(std::move(elems))
                                     : Value::List(std::move(elems));
    }
    case ValueKind::kTagged: {
      DBPL_ASSIGN_OR_RETURN(std::string vtag, in->ReadString());
      DBPL_ASSIGN_OR_RETURN(Value payload, DecodeValueAt(in, depth + 1));
      return Value::Tagged(std::move(vtag), std::move(payload));
    }
  }
  return Status::Corruption("unreachable value tag");
}

}  // namespace

Status DecodeHeader(ByteReader* in) {
  DBPL_ASSIGN_OR_RETURN(uint32_t magic, in->ReadU32());
  if (magic != kMagic) return Status::Corruption("bad magic number");
  DBPL_ASSIGN_OR_RETURN(uint32_t version, in->ReadU32());
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported format version " +
                              std::to_string(version));
  }
  return Status::OK();
}

Result<types::Type> DecodeType(ByteReader* in) { return DecodeTypeAt(in, 0); }

Result<core::Value> DecodeValue(ByteReader* in) {
  return DecodeValueAt(in, 0);
}

Result<dyndb::Dynamic> DecodeDynamic(ByteReader* in) {
  DBPL_RETURN_IF_ERROR(DecodeHeader(in));
  DBPL_ASSIGN_OR_RETURN(types::Type t, DecodeType(in));
  DBPL_ASSIGN_OR_RETURN(core::Value v, DecodeValue(in));
  return dyndb::Dynamic{std::move(v), std::move(t)};
}

}  // namespace dbpl::serial
