#include "serial/encoder.h"

namespace dbpl::serial {

void EncodeHeader(ByteBuffer* out) {
  out->PutU32(kMagic);
  out->PutU32(kFormatVersion);
}

void EncodeType(const types::Type& t, ByteBuffer* out) {
  using types::TypeKind;
  out->PutU8(static_cast<uint8_t>(t.kind()));
  switch (t.kind()) {
    case TypeKind::kBottom:
    case TypeKind::kTop:
    case TypeKind::kBool:
    case TypeKind::kInt:
    case TypeKind::kReal:
    case TypeKind::kString:
    case TypeKind::kDynamic:
      return;
    case TypeKind::kVar:
      out->PutString(t.var());
      return;
    case TypeKind::kRecord:
    case TypeKind::kVariant: {
      out->PutVarint(t.fields().size());
      for (const auto& f : t.fields()) {
        out->PutString(f.name);
        EncodeType(f.get(), out);
      }
      return;
    }
    case TypeKind::kList:
    case TypeKind::kSet:
    case TypeKind::kRef:
      EncodeType(t.element(), out);
      return;
    case TypeKind::kFunc: {
      out->PutVarint(t.params().size());
      for (const auto& p : t.params()) EncodeType(p, out);
      EncodeType(t.result(), out);
      return;
    }
    case TypeKind::kForall:
    case TypeKind::kExists:
      out->PutString(t.var());
      EncodeType(t.bound(), out);
      EncodeType(t.body(), out);
      return;
    case TypeKind::kMu:
      out->PutString(t.var());
      EncodeType(t.body(), out);
      return;
  }
}

void EncodeValue(const core::Value& v, ByteBuffer* out) {
  using core::ValueKind;
  out->PutU8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kBottom:
      return;
    case ValueKind::kBool:
      out->PutU8(v.AsBool() ? 1 : 0);
      return;
    case ValueKind::kInt:
      out->PutVarintSigned(v.AsInt());
      return;
    case ValueKind::kReal:
      out->PutDouble(v.AsReal());
      return;
    case ValueKind::kString:
      out->PutString(v.AsString());
      return;
    case ValueKind::kRef:
      out->PutVarint(v.AsRef());
      return;
    case ValueKind::kRecord: {
      out->PutVarint(v.fields().size());
      for (const auto& f : v.fields()) {
        out->PutString(f.name);
        EncodeValue(f.value, out);
      }
      return;
    }
    case ValueKind::kSet:
    case ValueKind::kList: {
      out->PutVarint(v.elements().size());
      for (const auto& e : v.elements()) EncodeValue(e, out);
      return;
    }
    case ValueKind::kTagged:
      out->PutString(v.tag());
      EncodeValue(v.payload(), out);
      return;
  }
}

void EncodeDynamic(const dyndb::Dynamic& d, ByteBuffer* out) {
  EncodeHeader(out);
  EncodeType(d.type, out);
  EncodeValue(d.value, out);
}

}  // namespace dbpl::serial
