#ifndef DBPL_SERIAL_ENCODER_H_
#define DBPL_SERIAL_ENCODER_H_

#include "common/bytes.h"
#include "core/value.h"
#include "dyndb/dynamic.h"
#include "types/type.h"

namespace dbpl::serial {

/// Current binary format version. Bumped on incompatible changes; the
/// decoder rejects unknown versions with `Corruption`.
inline constexpr uint32_t kFormatVersion = 1;

/// Magic number at the head of self-describing payloads ("DBPL").
inline constexpr uint32_t kMagic = 0x4C504244;

/// Appends a format header (magic + version).
void EncodeHeader(ByteBuffer* out);

/// Appends the binary encoding of a type.
void EncodeType(const types::Type& t, ByteBuffer* out);

/// Appends the binary encoding of a value (without its type).
void EncodeValue(const core::Value& v, ByteBuffer* out);

/// Appends a *self-describing* encoding: header, type, then value.
/// This realizes the paper's second persistence principle — "while a
/// value persists, so should its description (type)" — so data can never
/// be written as one type and silently read back as another.
void EncodeDynamic(const dyndb::Dynamic& d, ByteBuffer* out);

}  // namespace dbpl::serial

#endif  // DBPL_SERIAL_ENCODER_H_
