#ifndef DBPL_SERIAL_DECODER_H_
#define DBPL_SERIAL_DECODER_H_

#include "common/bytes.h"
#include "common/result.h"
#include "core/value.h"
#include "dyndb/dynamic.h"
#include "types/type.h"

namespace dbpl::serial {

/// Reads and validates a format header written by `EncodeHeader`.
Status DecodeHeader(ByteReader* in);

/// Reads a type written by `EncodeType`.
Result<types::Type> DecodeType(ByteReader* in);

/// Reads a value written by `EncodeValue`.
Result<core::Value> DecodeValue(ByteReader* in);

/// Reads a self-describing payload written by `EncodeDynamic`.
Result<dyndb::Dynamic> DecodeDynamic(ByteReader* in);

}  // namespace dbpl::serial

#endif  // DBPL_SERIAL_DECODER_H_
