#ifndef DBPL_BENCH_PROVENANCE_H_
#define DBPL_BENCH_PROVENANCE_H_

#include <sstream>
#include <string>
#include <thread>

// Stamped by bench/CMakeLists.txt from `git rev-parse --short HEAD`;
// "unknown" outside a git checkout (e.g. a source tarball).
#if !defined(DBPL_BENCH_GIT_COMMIT)
#define DBPL_BENCH_GIT_COMMIT "unknown"
#endif

namespace dbpl::bench {

#if defined(__clang__)
inline constexpr const char* kCompiler = "clang " __VERSION__;
#elif defined(__GNUC__)
inline constexpr const char* kCompiler = "gcc " __VERSION__;
#else
inline constexpr const char* kCompiler = "unknown";
#endif

/// The provenance object every BENCH_*.json leads with, so a result
/// file is never divorced from the machine, toolchain and commit that
/// produced it (EXPERIMENTS.md: numbers without provenance are
/// anecdotes). Kept to facts that are cheap and portable to collect:
/// host core count, compiler version, git commit.
inline std::string ProvenanceJson() {
  std::ostringstream out;
  out << "{\"host_cores\": " << std::thread::hardware_concurrency()
      << ", \"compiler\": \"" << kCompiler << "\", \"git_commit\": \""
      << DBPL_BENCH_GIT_COMMIT << "\"}";
  return out.str();
}

}  // namespace dbpl::bench

#endif  // DBPL_BENCH_PROVENANCE_H_
