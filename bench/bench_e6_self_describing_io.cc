// E6 — principle P2: "while a value persists, so should its
// description (type)". What does carrying the type descriptor cost?
//
//  * EncodeValue / DecodeValue — raw value bytes only (what a Pascal
//    file would hold; reading at the wrong type is silent corruption);
//  * EncodeDynamic / DecodeDynamic — self-describing: header + type +
//    value;
//  * SchemaCheckedRead — decode a dynamic and verify its carried type
//    against a requested (super)type, the paper's safe read.
//
// Expected shape: the descriptor adds bytes proportional to the *type*
// size, not the data size, so its relative overhead vanishes as values
// grow — type-safe persistence is essentially free at database scale.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "dyndb/dynamic.h"
#include "serial/decoder.h"
#include "serial/encoder.h"
#include "types/subtype.h"
#include "types/type_of.h"

namespace {

using dbpl::ByteBuffer;
using dbpl::ByteReader;
using dbpl::core::Value;

/// A list of n employee records.
Value MakeData(int64_t n) {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    out.push_back(Value::RecordOf(
        {{"Name", Value::String("employee-" + std::to_string(i))},
         {"Empno", Value::Int(i)},
         {"Dept", Value::String(i % 2 == 0 ? "Sales" : "Manuf")}}));
  }
  return Value::List(std::move(out));
}

void BM_EncodeValueOnly(benchmark::State& state) {
  Value v = MakeData(state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    ByteBuffer buf;
    dbpl::serial::EncodeValue(v, &buf);
    bytes = buf.size();
    benchmark::DoNotOptimize(buf);
  }
  state.counters["records"] = static_cast<double>(state.range(0));
  state.counters["bytes"] = static_cast<double>(bytes);
}

void BM_EncodeSelfDescribing(benchmark::State& state) {
  dbpl::dyndb::Dynamic d = dbpl::dyndb::MakeDynamic(MakeData(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    ByteBuffer buf;
    dbpl::serial::EncodeDynamic(d, &buf);
    bytes = buf.size();
    benchmark::DoNotOptimize(buf);
  }
  state.counters["records"] = static_cast<double>(state.range(0));
  state.counters["bytes"] = static_cast<double>(bytes);
}

void BM_DecodeValueOnly(benchmark::State& state) {
  ByteBuffer buf;
  dbpl::serial::EncodeValue(MakeData(state.range(0)), &buf);
  for (auto _ : state) {
    ByteReader in(buf);
    auto v = dbpl::serial::DecodeValue(&in);
    benchmark::DoNotOptimize(v);
  }
  state.counters["records"] = static_cast<double>(state.range(0));
}

void BM_DecodeSelfDescribing(benchmark::State& state) {
  ByteBuffer buf;
  dbpl::serial::EncodeDynamic(dbpl::dyndb::MakeDynamic(MakeData(state.range(0))),
                              &buf);
  for (auto _ : state) {
    ByteReader in(buf);
    auto d = dbpl::serial::DecodeDynamic(&in);
    benchmark::DoNotOptimize(d);
  }
  state.counters["records"] = static_cast<double>(state.range(0));
}

void BM_SchemaCheckedRead(benchmark::State& state) {
  // Decode and verify the carried type against the evolved supertype a
  // recompiled program requests.
  ByteBuffer buf;
  dbpl::serial::EncodeDynamic(dbpl::dyndb::MakeDynamic(MakeData(state.range(0))),
                              &buf);
  dbpl::types::Type requested = dbpl::types::Type::List(
      dbpl::types::Type::RecordOf({{"Name", dbpl::types::Type::String()}}));
  for (auto _ : state) {
    ByteReader in(buf);
    auto d = dbpl::serial::DecodeDynamic(&in);
    bool ok = d.ok() && dbpl::types::IsSubtype(d->type, requested);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["records"] = static_cast<double>(state.range(0));
}

}  // namespace

BENCHMARK(BM_EncodeValueOnly)->RangeMultiplier(4)->Range(16, 16384)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EncodeSelfDescribing)->RangeMultiplier(4)->Range(16, 16384)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DecodeValueOnly)->RangeMultiplier(4)->Range(16, 16384)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DecodeSelfDescribing)->RangeMultiplier(4)->Range(16, 16384)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SchemaCheckedRead)->RangeMultiplier(4)->Range(16, 16384)
    ->Unit(benchmark::kMicrosecond);
