// E12 — WAL shipping (DESIGN.md §9.2, EXPERIMENTS.md §E12).
//
// The claims under test: a persist::Replica converges through the same
// idempotent replay path as recovery at log-replay speed; replication
// lag under a streaming follower stays bounded (measured in epochs
// behind the primary, p50/p99); and follower reads scale with the
// follower count because each follower is a full dyndb::Database whose
// reads are lock-free snapshots — the primary's write load shifts to
// the followers' poll loops, not to its readers.
//
//  * BM_ReplicaCatchUp        — a fresh follower attaches to a primary
//    holding n committed records: bootstrap + full replay, reported as
//    records/sec shipped.
//  * BM_ReplicaShipBatch      — steady-state shipping: the primary
//    group-commits a batch, one follower poll applies it.
//  * BM_ReplicaLag            — a streaming follower (1 ms cadence)
//    tails a continuously writing primary; each write samples
//    primary-epoch minus follower-epoch. Counters: lag_p50 / lag_p99.
//  * BM_FollowerReads         — aggregate read throughput over
//    1/2/4/8 converged followers, reads-only vs mixed (the primary
//    keeps writing and followers keep polling between reads).
//
// All I/O goes through the production VFS into a fresh temp directory
// per run. Own main: writes BENCH_E12.json (override with
// DBPL_BENCH_E12_JSON) with one record per run so the EXPERIMENTS.md
// §E12 tables regenerate mechanically.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/value.h"
#include "dyndb/database.h"
#include "persist/replica.h"
#include "persist/wal_database.h"

#include "provenance.h"

namespace {

using dbpl::core::Value;
using dbpl::dyndb::Database;
using dbpl::persist::CommitPolicy;
using dbpl::persist::Replica;
using dbpl::persist::WalDatabase;

Value MakeRec(int64_t i) {
  return Value::RecordOf({{"seq", Value::Int(i)},
                          {"name", Value::String("r" + std::to_string(i % 97))},
                          {"flag", Value::Bool((i & 1) != 0)}});
}

std::string FreshDir() {
  static int counter = 0;
  std::string dir = std::filesystem::temp_directory_path() /
                    ("dbpl_bench_e12_" + std::to_string(::getpid()) + "_" +
                     std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir;
}

struct Ctx {
  std::string dir;
  std::unique_ptr<WalDatabase> wdb;
  std::vector<std::unique_ptr<Replica>> followers;
  int64_t next = 0;
};

Ctx* g_ctx = nullptr;

void SetupPrimary(const benchmark::State& state, CommitPolicy policy,
                  int64_t seed_n, int followers) {
  g_ctx = new Ctx;
  g_ctx->dir = FreshDir();
  auto wdb = WalDatabase::Open(g_ctx->dir, policy);
  if (!wdb.ok()) {
    std::cerr << "bench_e12: open failed: " << wdb.status() << "\n";
    std::abort();
  }
  g_ctx->wdb = std::move(*wdb);
  for (int64_t i = 0; i < seed_n; ++i) {
    (void)g_ctx->wdb->InsertValue(MakeRec(i));
  }
  if (seed_n > 0 && !g_ctx->wdb->Commit().ok()) std::abort();
  g_ctx->next = seed_n;
  for (int f = 0; f < followers; ++f) {
    g_ctx->followers.push_back(std::make_unique<Replica>());
    if (!g_ctx->followers.back()->Attach(g_ctx->wdb->shipper()).ok()) {
      std::abort();
    }
  }
  (void)state;
}

void SetupCatchUp(const benchmark::State& state) {
  SetupPrimary(state, CommitPolicy{64, true}, state.range(0), 0);
}

void SetupShipBatch(const benchmark::State& state) {
  SetupPrimary(state, CommitPolicy{static_cast<uint64_t>(state.range(0)), true},
               0, 1);
}

void SetupLag(const benchmark::State& state) {
  SetupPrimary(state, CommitPolicy{8, true}, 0, 0);
}

void SetupReads(const benchmark::State& state) {
  SetupPrimary(state, CommitPolicy{16, true}, 4096,
               static_cast<int>(state.range(0)));
}

void Teardown(const benchmark::State&) {
  g_ctx->followers.clear();
  g_ctx->wdb.reset();
  std::filesystem::remove_all(g_ctx->dir);
  delete g_ctx;
  g_ctx = nullptr;
}

// A fresh follower bootstraps and replays the primary's whole history.
void BM_ReplicaCatchUp(benchmark::State& state) {
  for (auto _ : state) {
    Replica follower;
    if (!follower.Attach(g_ctx->wdb->shipper()).ok()) {
      state.SkipWithError("attach failed");
      return;
    }
    if (follower.Epoch() != g_ctx->wdb->db().epoch()) {
      state.SkipWithError("follower did not converge");
      return;
    }
    benchmark::DoNotOptimize(follower.db().size());
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["records_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * state.range(0)),
      benchmark::Counter::kIsRate);
}

// Steady state: the primary commits a batch, one poll ships it.
void BM_ReplicaShipBatch(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Replica* follower = g_ctx->followers[0].get();
  for (auto _ : state) {
    for (int64_t i = 0; i < batch; ++i) {
      (void)g_ctx->wdb->InsertValue(MakeRec(g_ctx->next++));
    }
    if (!follower->Poll().ok()) {
      state.SkipWithError("poll failed");
      return;
    }
  }
  if (follower->Epoch() != g_ctx->wdb->db().epoch()) {
    state.SkipWithError("follower did not converge");
    return;
  }
  state.counters["n"] = static_cast<double>(batch);
  state.counters["records_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * batch),
      benchmark::Counter::kIsRate);
}

// Streaming follower lag, in epochs behind the primary, sampled after
// every primary write.
void BM_ReplicaLag(benchmark::State& state) {
  Replica follower;
  if (!follower
           .Attach(g_ctx->wdb->shipper(), {std::chrono::milliseconds(1)})
           .ok()) {
    state.SkipWithError("attach failed");
    return;
  }
  std::vector<uint64_t> lags;
  lags.reserve(4096);
  for (auto _ : state) {
    (void)g_ctx->wdb->InsertValue(MakeRec(g_ctx->next++));
    const uint64_t p = g_ctx->wdb->db().epoch();
    const uint64_t f = follower.Epoch();
    lags.push_back(p - std::min(p, f));
  }
  if (!g_ctx->wdb->Commit().ok()) {
    state.SkipWithError("final commit failed");
    return;
  }
  const uint64_t target = g_ctx->wdb->db().epoch();
  if (!follower.WaitForEpoch(target, std::chrono::seconds(30)).ok()) {
    state.SkipWithError("follower never converged");
    return;
  }
  follower.Detach();
  std::sort(lags.begin(), lags.end());
  auto pct = [&](double q) {
    if (lags.empty()) return 0.0;
    size_t idx = static_cast<size_t>(q * static_cast<double>(lags.size() - 1));
    return static_cast<double>(lags[idx]);
  };
  state.counters["lag_p50"] = pct(0.50);
  state.counters["lag_p99"] = pct(0.99);
  state.counters["n"] = static_cast<double>(state.range(0));
}

// Aggregate follower read throughput, round-robin over k converged
// followers. mixed=1 interleaves primary writes + follower polls with
// the reads; mixed=0 reads a quiesced fleet.
void BM_FollowerReads(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const bool mixed = state.range(1) != 0;
  size_t turn = 0;
  for (auto _ : state) {
    Replica* follower = g_ctx->followers[turn % k].get();
    Database::Snapshot snap = follower->db().GetSnapshot();
    benchmark::DoNotOptimize(snap.Get(turn % snap.size())->value);
    if (mixed && turn % 64 == 0) {
      (void)g_ctx->wdb->InsertValue(MakeRec(g_ctx->next++));
      (void)follower->Poll();
    }
    ++turn;
  }
  state.counters["followers"] = static_cast<double>(k);
  state.counters["mixed"] = mixed ? 1 : 0;
  state.counters["reads_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

/// Console reporter that also collects every run and dumps them as a
/// JSON array when the binary exits (same scheme as bench_e11).
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Record rec;
      rec.name = run.benchmark_name();
      rec.ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9
              : 0.0;
      rec.n = Counter(run, "n");
      rec.followers = Counter(run, "followers");
      rec.mixed = Counter(run, "mixed");
      rec.records_per_sec = Counter(run, "records_per_sec");
      rec.reads_per_sec = Counter(run, "reads_per_sec");
      rec.lag_p50 = Counter(run, "lag_p50");
      rec.lag_p99 = Counter(run, "lag_p99");
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void WriteJson(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::cerr << "bench_e12: cannot open " << path << " for writing\n";
      return;
    }
    out << "{\"provenance\": " << dbpl::bench::ProvenanceJson()
        << ",\n \"results\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::string variant = r.name.substr(0, r.name.find('/'));
      out << "  {\"name\": \"" << r.name << "\", \"variant\": \"" << variant
          << "\", \"n\": " << static_cast<int64_t>(r.n)
          << ", \"followers\": " << static_cast<int64_t>(r.followers)
          << ", \"mixed\": " << static_cast<int64_t>(r.mixed)
          << ", \"ns_per_op\": " << r.ns_per_op
          << ", \"records_per_sec\": " << r.records_per_sec
          << ", \"reads_per_sec\": " << r.reads_per_sec
          << ", \"lag_p50\": " << r.lag_p50
          << ", \"lag_p99\": " << r.lag_p99 << "}"
          << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "]}\n";
  }

 private:
  struct Record {
    std::string name;
    double n = 0, followers = 0, mixed = 0, ns_per_op = 0;
    double records_per_sec = 0, reads_per_sec = 0, lag_p50 = 0, lag_p99 = 0;
  };

  static double Counter(const Run& run, const char* key) {
    auto it = run.counters.find(key);
    return it == run.counters.end() ? 0.0
                                    : static_cast<double>(it->second.value);
  }

  std::vector<Record> records_;
};

}  // namespace

BENCHMARK(BM_ReplicaCatchUp)
    ->Arg(256)
    ->Arg(4096)
    ->UseRealTime()
    ->Setup(SetupCatchUp)
    ->Teardown(Teardown)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ReplicaShipBatch)
    ->Arg(16)
    ->Arg(256)
    ->UseRealTime()
    ->Setup(SetupShipBatch)
    ->Teardown(Teardown)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ReplicaLag)
    ->Arg(0)
    ->UseRealTime()
    ->Setup(SetupLag)
    ->Teardown(Teardown);
BENCHMARK(BM_FollowerReads)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->UseRealTime()
    ->Setup(SetupReads)
    ->Teardown(Teardown);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once from main before
  // any worker thread exists.
  const char* path = std::getenv("DBPL_BENCH_E12_JSON");
  reporter.WriteJson(path != nullptr ? path : "BENCH_E12.json");
  return 0;
}
