// E8 — "we ask whether the notion of class is fundamental or whether
// it can be derived from more primitive constructs": what does the
// *derived* class construct cost?
//
// Creating n instances under:
//  * ClassSystem::NewInstance into a hierarchy of depth d (type check
//    + key checks + insertion into every ancestor extent);
//  * raw heap allocation plus manual extent push (no checks);
//  * plain vector push (no identity at all).
//
// Expected shape: the derived class construct costs one subtype check
// plus d extent insertions per instance — linear bookkeeping, i.e. the
// construct is sugar, not a necessary primitive.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "classes/class_system.h"
#include "core/heap.h"
#include "types/type.h"

namespace {

using dbpl::core::Heap;
using dbpl::core::Oid;
using dbpl::core::Value;
using dbpl::types::Type;

/// A chain of classes C0 ⊇ C1 ⊇ ... ⊇ C(depth-1); returns the leaf
/// class name. Class Ci has fields f0..fi.
std::string DefineChain(dbpl::classes::ClassSystem& classes, int64_t depth) {
  std::string prev;
  for (int64_t i = 0; i < depth; ++i) {
    std::vector<std::pair<std::string, Type>> fields;
    for (int64_t j = 0; j <= i; ++j) {
      fields.emplace_back("f" + std::to_string(j), Type::Int());
    }
    std::string name = "C" + std::to_string(i);
    std::vector<std::string> parents;
    if (!prev.empty()) parents.push_back(prev);
    (void)classes.DefineVariableClass(name, Type::RecordOf(std::move(fields)),
                                      parents);
    prev = name;
  }
  return prev;
}

Value LeafInstance(int64_t depth, int64_t i) {
  std::vector<dbpl::core::RecordField> fields;
  for (int64_t j = 0; j < depth; ++j) {
    fields.push_back({"f" + std::to_string(j), Value::Int(i + j)});
  }
  return Value::RecordOf(std::move(fields));
}

void BM_ClassNewInstance(benchmark::State& state) {
  int64_t depth = state.range(0);
  constexpr int64_t kInstances = 512;
  for (auto _ : state) {
    state.PauseTiming();
    Heap heap;
    dbpl::classes::ClassSystem classes(&heap);
    std::string leaf = DefineChain(classes, depth);
    state.ResumeTiming();
    for (int64_t i = 0; i < kInstances; ++i) {
      benchmark::DoNotOptimize(
          classes.NewInstance(leaf, LeafInstance(depth, i)));
    }
  }
  state.counters["hierarchy_depth"] = static_cast<double>(depth);
  state.SetItemsProcessed(state.iterations() * kInstances);
}

void BM_RawHeapPlusExtent(benchmark::State& state) {
  int64_t depth = state.range(0);
  constexpr int64_t kInstances = 512;
  for (auto _ : state) {
    state.PauseTiming();
    Heap heap;
    std::vector<std::vector<Oid>> extents(static_cast<size_t>(depth));
    state.ResumeTiming();
    for (int64_t i = 0; i < kInstances; ++i) {
      Oid oid = heap.Allocate(LeafInstance(depth, i));
      for (auto& extent : extents) extent.push_back(oid);
      benchmark::DoNotOptimize(oid);
    }
    benchmark::DoNotOptimize(extents);
  }
  state.counters["hierarchy_depth"] = static_cast<double>(depth);
  state.SetItemsProcessed(state.iterations() * kInstances);
}

void BM_PlainVectorPush(benchmark::State& state) {
  int64_t depth = state.range(0);
  constexpr int64_t kInstances = 512;
  for (auto _ : state) {
    std::vector<Value> values;
    values.reserve(kInstances);
    for (int64_t i = 0; i < kInstances; ++i) {
      values.push_back(LeafInstance(depth, i));
    }
    benchmark::DoNotOptimize(values);
  }
  state.counters["record_width"] = static_cast<double>(depth);
  state.SetItemsProcessed(state.iterations() * kInstances);
}

/// Keys amplify the cost: each insert scans the extent for agreement.
void BM_ClassNewInstanceWithKey(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    Heap heap;
    dbpl::classes::ClassSystem classes(&heap);
    (void)classes.DefineVariableClass(
        "Keyed", Type::RecordOf({{"f0", Type::Int()}}), {}, {"f0"});
    state.ResumeTiming();
    for (int64_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(classes.NewInstance(
          "Keyed", Value::RecordOf({{"f0", Value::Int(i)}})));
    }
  }
  state.counters["n"] = static_cast<double>(n);
}

}  // namespace

BENCHMARK(BM_ClassNewInstance)->DenseRange(1, 6, 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RawHeapPlusExtent)->DenseRange(1, 6, 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PlainVectorPush)->DenseRange(1, 6, 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ClassNewInstanceWithKey)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
