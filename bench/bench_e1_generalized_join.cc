// E1 — Figure 1: the generalized natural join of partial, nested
// objects vs the classical 1NF natural join (the baseline model).
//
// Workload: r1(A, B), r2(B, C) with |r1| = |r2| = n and a shared join
// attribute B drawn from a domain of size n/4 (so the output stays
// linear in n). The generalized join additionally runs with a fraction
// p of partial records (missing A or C), which no 1NF relation can
// even represent.
//
// Variants:
//  * BM_GeneralizedJoin        — the signature-partitioned engine
//    (core::PartitionedPairJoins via GRelation::Join): objects are
//    bucketed by a hash of their ground values on the overlap
//    attributes, so only possibly-consistent pairs are tested.
//  * BM_GeneralizedJoinThreads — the same engine sharded over a small
//    thread pool (JoinOptions{threads}).
//  * BM_GeneralizedJoinNaive   — the all-pairs O(n^2) reference join
//    (GRelation::JoinNaive), kept for differential testing; capped at
//    n = 1024 because it is quadratic.
//  * BM_ClassicalNaturalJoin   — the flat relational hash join on the
//    same data with total records only.
//
// Expected shape (recorded in EXPERIMENTS.md): the naive generalized
// join is O(n^2); partitioning recovers hash-join-like behaviour on
// the ground part of each object, degenerating to a classical hash
// join when all records are flat and total.
//
// This binary has its own main: besides the usual console output it
// writes BENCH_E1.json (override the path with the DBPL_BENCH_E1_JSON
// environment variable) with one record per run — name, variant, n,
// partial_pct, threads, ns_per_op, out_tuples — so EXPERIMENTS.md
// tables can be regenerated mechanically.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/grelation.h"
#include "core/join_engine.h"
#include "core/value.h"
#include "relational/ops.h"
#include "relational/relation.h"

#include "provenance.h"

namespace {

using dbpl::core::GRelation;
using dbpl::core::JoinOptions;
using dbpl::core::Value;

/// Deterministic xorshift generator.
uint64_t Next(uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

/// r1 objects: {A, B}; with probability p (percent) drop A.
std::vector<Value> MakeLeft(int64_t n, int64_t partial_pct, uint64_t seed) {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(n));
  int64_t domain = n / 4 + 1;
  for (int64_t i = 0; i < n; ++i) {
    std::vector<dbpl::core::RecordField> fields;
    if (Next(seed) % 100 >= static_cast<uint64_t>(partial_pct)) {
      fields.push_back({"A", Value::Int(i)});
    }
    fields.push_back(
        {"B", Value::Int(static_cast<int64_t>(Next(seed) % domain))});
    out.push_back(Value::RecordOf(std::move(fields)));
  }
  return out;
}

/// r2 objects: {B, C}; with probability p (percent) drop C.
std::vector<Value> MakeRight(int64_t n, int64_t partial_pct, uint64_t seed) {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(n));
  int64_t domain = n / 4 + 1;
  for (int64_t i = 0; i < n; ++i) {
    std::vector<dbpl::core::RecordField> fields;
    fields.push_back(
        {"B", Value::Int(static_cast<int64_t>(Next(seed) % domain))});
    if (Next(seed) % 100 >= static_cast<uint64_t>(partial_pct)) {
      fields.push_back({"C", Value::Int(i + 1000000)});
    }
    out.push_back(Value::RecordOf(std::move(fields)));
  }
  return out;
}

void RunGeneralized(benchmark::State& state, const JoinOptions& opts) {
  int64_t n = state.range(0);
  int64_t partial_pct = state.range(1);
  GRelation r1 = GRelation::FromObjects(MakeLeft(n, partial_pct, 42));
  GRelation r2 = GRelation::FromObjects(MakeRight(n, partial_pct, 1042));
  size_t out_size = 0;
  for (auto _ : state) {
    auto joined = GRelation::Join(r1, r2, opts);
    if (!joined.ok()) {
      state.SkipWithError(joined.status().message().c_str());
      return;
    }
    out_size = joined->size();
    benchmark::DoNotOptimize(*joined);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["partial_pct"] = static_cast<double>(partial_pct);
  state.counters["threads"] = static_cast<double>(opts.threads);
  state.counters["out_tuples"] = static_cast<double>(out_size);
}

void BM_GeneralizedJoin(benchmark::State& state) {
  RunGeneralized(state, JoinOptions{});
}

void BM_GeneralizedJoinThreads(benchmark::State& state) {
  RunGeneralized(state, JoinOptions{.threads = 4});
}

void BM_GeneralizedJoinNaive(benchmark::State& state) {
  int64_t n = state.range(0);
  int64_t partial_pct = state.range(1);
  GRelation r1 = GRelation::FromObjects(MakeLeft(n, partial_pct, 42));
  GRelation r2 = GRelation::FromObjects(MakeRight(n, partial_pct, 1042));
  size_t out_size = 0;
  for (auto _ : state) {
    auto joined = GRelation::JoinNaive(r1, r2);
    if (!joined.ok()) {
      state.SkipWithError(joined.status().message().c_str());
      return;
    }
    out_size = joined->size();
    benchmark::DoNotOptimize(*joined);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["partial_pct"] = static_cast<double>(partial_pct);
  state.counters["out_tuples"] = static_cast<double>(out_size);
}

void BM_ClassicalNaturalJoin(benchmark::State& state) {
  using dbpl::relational::AtomType;
  using dbpl::relational::Relation;
  using dbpl::relational::Schema;
  int64_t n = state.range(0);
  // Same data, total records only (1NF cannot hold partial tuples).
  Relation r1(Schema::Of({{"A", AtomType::kInt}, {"B", AtomType::kInt}}));
  Relation r2(Schema::Of({{"B", AtomType::kInt}, {"C", AtomType::kInt}}));
  for (const Value& v : MakeLeft(n, 0, 42)) {
    (void)r1.InsertRecord(v);
  }
  for (const Value& v : MakeRight(n, 0, 1042)) {
    (void)r2.InsertRecord(v);
  }
  size_t out_size = 0;
  for (auto _ : state) {
    auto joined = dbpl::relational::NaturalJoin(r1, r2);
    out_size = joined->size();
    benchmark::DoNotOptimize(joined);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["out_tuples"] = static_cast<double>(out_size);
}

/// Console reporter that also collects every per-iteration run and
/// dumps them as a JSON array when the binary exits.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Record rec;
      rec.name = run.benchmark_name();
      rec.ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations) *
                    1e9
              : 0.0;
      rec.n = Counter(run, "n");
      rec.partial_pct = Counter(run, "partial_pct");
      rec.threads = CounterOr(run, "threads", 1.0);
      rec.out_tuples = Counter(run, "out_tuples");
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void WriteJson(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::cerr << "bench_e1: cannot open " << path << " for writing\n";
      return;
    }
    out << "{\"provenance\": " << dbpl::bench::ProvenanceJson()
        << ",\n \"results\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::string variant = r.name.substr(0, r.name.find('/'));
      out << "  {\"name\": \"" << r.name << "\", \"variant\": \"" << variant
          << "\", \"n\": " << static_cast<int64_t>(r.n)
          << ", \"partial_pct\": " << static_cast<int64_t>(r.partial_pct)
          << ", \"threads\": " << static_cast<int64_t>(r.threads)
          << ", \"ns_per_op\": " << r.ns_per_op
          << ", \"out_tuples\": " << static_cast<int64_t>(r.out_tuples) << "}"
          << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "]}\n";
  }

 private:
  struct Record {
    std::string name;
    double n = 0, partial_pct = 0, threads = 1, out_tuples = 0;
    double ns_per_op = 0;
  };

  static double Counter(const Run& run, const char* key) {
    return CounterOr(run, key, 0.0);
  }
  static double CounterOr(const Run& run, const char* key, double fallback) {
    auto it = run.counters.find(key);
    return it == run.counters.end() ? fallback
                                    : static_cast<double>(it->second.value);
  }

  std::vector<Record> records_;
};

}  // namespace

BENCHMARK(BM_GeneralizedJoin)
    ->ArgsProduct({{64, 256, 1024, 4096, 16384}, {0, 25, 50}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GeneralizedJoinThreads)
    ->ArgsProduct({{1024, 4096, 16384}, {0, 50}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_GeneralizedJoinNaive)
    ->ArgsProduct({{64, 256, 1024}, {0, 50}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClassicalNaturalJoin)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once from main before
  // any worker thread exists.
  const char* path = std::getenv("DBPL_BENCH_E1_JSON");
  reporter.WriteJson(path != nullptr ? path : "BENCH_E1.json");
  return 0;
}
