// E1 — Figure 1: the generalized natural join of partial, nested
// objects vs the classical 1NF natural join (the baseline model).
//
// Workload: r1(A, B), r2(B, C) with |r1| = |r2| = n and a shared join
// attribute B drawn from a domain of size n/4 (so the output stays
// linear in n). The generalized join additionally runs with a fraction
// p of partial records (missing A or C), which no 1NF relation can
// even represent.
//
// Expected shape (recorded in EXPERIMENTS.md): the classical hash join
// is O(n) and the generalized join is O(n^2) pairwise-consistency
// checking — generality is paid for in asymptotics, which is exactly
// why the paper keeps the flat relational algebra as the optimizable
// special case.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/grelation.h"
#include "core/value.h"
#include "relational/ops.h"
#include "relational/relation.h"

namespace {

using dbpl::core::GRelation;
using dbpl::core::Value;

/// Deterministic xorshift generator.
uint64_t Next(uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

/// r1 objects: {A, B}; with probability p (percent) drop A.
std::vector<Value> MakeLeft(int64_t n, int64_t partial_pct, uint64_t seed) {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(n));
  int64_t domain = n / 4 + 1;
  for (int64_t i = 0; i < n; ++i) {
    std::vector<dbpl::core::RecordField> fields;
    if (Next(seed) % 100 >= static_cast<uint64_t>(partial_pct)) {
      fields.push_back({"A", Value::Int(i)});
    }
    fields.push_back(
        {"B", Value::Int(static_cast<int64_t>(Next(seed) % domain))});
    out.push_back(Value::RecordOf(std::move(fields)));
  }
  return out;
}

/// r2 objects: {B, C}; with probability p (percent) drop C.
std::vector<Value> MakeRight(int64_t n, int64_t partial_pct, uint64_t seed) {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(n));
  int64_t domain = n / 4 + 1;
  for (int64_t i = 0; i < n; ++i) {
    std::vector<dbpl::core::RecordField> fields;
    fields.push_back(
        {"B", Value::Int(static_cast<int64_t>(Next(seed) % domain))});
    if (Next(seed) % 100 >= static_cast<uint64_t>(partial_pct)) {
      fields.push_back({"C", Value::Int(i + 1000000)});
    }
    out.push_back(Value::RecordOf(std::move(fields)));
  }
  return out;
}

void BM_GeneralizedJoin(benchmark::State& state) {
  int64_t n = state.range(0);
  int64_t partial_pct = state.range(1);
  GRelation r1 = GRelation::FromObjects(MakeLeft(n, partial_pct, 42));
  GRelation r2 = GRelation::FromObjects(MakeRight(n, partial_pct, 1042));
  size_t out_size = 0;
  for (auto _ : state) {
    GRelation joined = GRelation::Join(r1, r2);
    out_size = joined.size();
    benchmark::DoNotOptimize(joined);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["partial_pct"] = static_cast<double>(partial_pct);
  state.counters["out_tuples"] = static_cast<double>(out_size);
}

void BM_ClassicalNaturalJoin(benchmark::State& state) {
  using dbpl::relational::AtomType;
  using dbpl::relational::Relation;
  using dbpl::relational::Schema;
  int64_t n = state.range(0);
  // Same data, total records only (1NF cannot hold partial tuples).
  Relation r1(Schema::Of({{"A", AtomType::kInt}, {"B", AtomType::kInt}}));
  Relation r2(Schema::Of({{"B", AtomType::kInt}, {"C", AtomType::kInt}}));
  for (const Value& v : MakeLeft(n, 0, 42)) {
    (void)r1.InsertRecord(v);
  }
  for (const Value& v : MakeRight(n, 0, 1042)) {
    (void)r2.InsertRecord(v);
  }
  size_t out_size = 0;
  for (auto _ : state) {
    auto joined = dbpl::relational::NaturalJoin(r1, r2);
    out_size = joined->size();
    benchmark::DoNotOptimize(joined);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["out_tuples"] = static_cast<double>(out_size);
}

}  // namespace

BENCHMARK(BM_GeneralizedJoin)
    ->ArgsProduct({{64, 128, 256, 512, 1024}, {0, 25, 50}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClassicalNaturalJoin)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);
