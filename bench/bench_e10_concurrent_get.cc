// E10 — concurrent Get under snapshot isolation (DESIGN.md §8,
// EXPERIMENTS.md §E10).
//
// Workloads, all over a database of n self-describing records spread
// across several principal types:
//  * BM_SnapshotScanPinned      — k benchmark threads each repeatedly
//    GetScan a snapshot pinned at setup; no writer. The reader-scaling
//    baseline.
//  * BM_SnapshotScanWithWriter  — the same scan fan-out while one
//    background writer thread keeps inserting. Scans stay on their
//    pinned epoch (stable work per iteration) while the writer
//    publishes newer ones — the acceptance workload: aggregate
//    `scan_items_per_sec` at 8 reader threads vs 1.
//  * BM_ParallelGetScan         — one caller sharding a single scan
//    across GetOptions{threads} workers (core::ParallelFor).
//  * BM_ParallelGetViaIndex     — the principal-type index walk,
//    sharded one task per distinct type.
//  * BM_SnapshotAcquire         — the cost of GetSnapshot() itself
//    while a writer races it (a shared_ptr copy under the publication
//    mutex).
//
// This binary has its own main: besides the console output it writes
// BENCH_E10.json (override with DBPL_BENCH_E10_JSON) with one record
// per run — name, n, bench_threads, opt_threads, ns_per_op,
// scan_items_per_sec — so the EXPERIMENTS.md §E10 table can be
// regenerated mechanically.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/value.h"
#include "dyndb/database.h"
#include "types/type.h"

#include "provenance.h"

namespace {

using dbpl::core::Value;
using dbpl::dyndb::Database;
using dbpl::dyndb::GetOptions;
using dbpl::types::Type;

/// Record i: always carries {seq: Int}; one of eight shapes adds extra
/// fields, so the principal-type index holds several distinct groups.
Value MakeRec(int64_t i) {
  std::vector<dbpl::core::RecordField> fields;
  fields.push_back({"seq", Value::Int(i)});
  switch (i % 8) {
    case 0:
      break;
    case 1:
      fields.push_back({"a", Value::Int(i * 3)});
      break;
    case 2:
      fields.push_back({"b", Value::String("x")});
      break;
    case 3:
      fields.push_back({"a", Value::Int(i)});
      fields.push_back({"b", Value::String("y")});
      break;
    case 4:
      fields.push_back({"c", Value::Bool((i & 1) != 0)});
      break;
    case 5:
      fields.push_back({"a", Value::Int(i)});
      fields.push_back({"c", Value::Bool(true)});
      break;
    case 6:
      fields.push_back({"d", Value::Int(-i)});
      break;
    default:
      fields.push_back({"a", Value::Int(i)});
      fields.push_back({"d", Value::Int(i + 7)});
      break;
  }
  return Value::RecordOf(std::move(fields));
}

/// Every MakeRec value inhabits this type (record width subtyping).
Type QueryT() { return Type::RecordOf({{"seq", Type::Int()}}); }

/// Per-run shared context: the database, a snapshot pinned at setup,
/// and an optional background writer. Setup/Teardown run once per
/// benchmark run, before threads start and after they join.
struct Ctx {
  Database db;
  std::optional<Database::Snapshot> snap;
  std::thread writer;
  std::atomic<bool> stop{false};
};

Ctx* g_ctx = nullptr;

void SetupPinnedScan(const benchmark::State& state) {
  g_ctx = new Ctx;
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) g_ctx->db.MustInsertValue(MakeRec(i));
  g_ctx->snap = g_ctx->db.GetSnapshot();
}

void SetupScanWithWriter(const benchmark::State& state) {
  SetupPinnedScan(state);
  g_ctx->writer = std::thread([ctx = g_ctx] {
    int64_t j = 1 << 24;
    while (!ctx->stop.load(std::memory_order_relaxed)) {
      ctx->db.MustInsertValue(MakeRec(j++));
      std::this_thread::yield();  // writer pressure, not writer monopoly
    }
  });
}

void TeardownScan(const benchmark::State&) {
  if (g_ctx->writer.joinable()) {
    g_ctx->stop.store(true, std::memory_order_relaxed);
    g_ctx->writer.join();
  }
  delete g_ctx;
  g_ctx = nullptr;
}

void ScanLoop(benchmark::State& state) {
  const Type t = QueryT();
  const int64_t n = state.range(0);
  for (auto _ : state) {
    std::vector<Value> out = g_ctx->snap->GetScan(t);
    benchmark::DoNotOptimize(out);
    if (out.size() != static_cast<size_t>(n)) {
      state.SkipWithError("pinned snapshot changed size");
      return;
    }
  }
  state.counters["n"] =
      benchmark::Counter(static_cast<double>(n), benchmark::Counter::kAvgThreads);
  // Rate counters are summed across threads then divided by real time:
  // the aggregate number of entries scanned per second.
  state.counters["scan_items_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n),
      benchmark::Counter::kIsRate);
}

void BM_SnapshotScanPinned(benchmark::State& state) { ScanLoop(state); }

void BM_SnapshotScanWithWriter(benchmark::State& state) { ScanLoop(state); }

void BM_ParallelGetScan(benchmark::State& state) {
  const Type t = QueryT();
  const int64_t n = state.range(0);
  const GetOptions opts{.threads = static_cast<int>(state.range(1))};
  for (auto _ : state) {
    std::vector<Value> out = g_ctx->snap->GetScan(t, opts);
    benchmark::DoNotOptimize(out);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["opt_threads"] = static_cast<double>(opts.threads);
  state.counters["scan_items_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n),
      benchmark::Counter::kIsRate);
}

void BM_ParallelGetViaIndex(benchmark::State& state) {
  const Type t = QueryT();
  const int64_t n = state.range(0);
  const GetOptions opts{.threads = static_cast<int>(state.range(1))};
  for (auto _ : state) {
    std::vector<Value> out = g_ctx->snap->GetViaIndex(t, opts);
    benchmark::DoNotOptimize(out);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["opt_threads"] = static_cast<double>(opts.threads);
  state.counters["scan_items_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n),
      benchmark::Counter::kIsRate);
}

void BM_SnapshotAcquire(benchmark::State& state) {
  for (auto _ : state) {
    Database::Snapshot snap = g_ctx->db.GetSnapshot();
    benchmark::DoNotOptimize(snap);
  }
  state.counters["n"] = benchmark::Counter(static_cast<double>(state.range(0)),
                                           benchmark::Counter::kAvgThreads);
}

/// Console reporter that also collects every run and dumps them as a
/// JSON array when the binary exits (same scheme as bench_e1).
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Record rec;
      rec.name = run.benchmark_name();
      rec.threads = run.threads;
      rec.ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations) *
                    1e9
              : 0.0;
      rec.n = Counter(run, "n");
      rec.opt_threads = CounterOr(run, "opt_threads", 1.0);
      rec.items_per_sec = Counter(run, "scan_items_per_sec");
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void WriteJson(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::cerr << "bench_e10: cannot open " << path << " for writing\n";
      return;
    }
    out << "{\"provenance\": " << dbpl::bench::ProvenanceJson()
        << ",\n \"results\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::string variant = r.name.substr(0, r.name.find('/'));
      out << "  {\"name\": \"" << r.name << "\", \"variant\": \"" << variant
          << "\", \"n\": " << static_cast<int64_t>(r.n)
          << ", \"bench_threads\": " << r.threads
          << ", \"opt_threads\": " << static_cast<int64_t>(r.opt_threads)
          << ", \"ns_per_op\": " << r.ns_per_op
          << ", \"scan_items_per_sec\": " << r.items_per_sec << "}"
          << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "]}\n";
  }

 private:
  struct Record {
    std::string name;
    int threads = 1;
    double n = 0, opt_threads = 1, ns_per_op = 0, items_per_sec = 0;
  };

  static double Counter(const Run& run, const char* key) {
    return CounterOr(run, key, 0.0);
  }
  static double CounterOr(const Run& run, const char* key, double fallback) {
    auto it = run.counters.find(key);
    return it == run.counters.end() ? fallback
                                    : static_cast<double>(it->second.value);
  }

  std::vector<Record> records_;
};

}  // namespace

BENCHMARK(BM_SnapshotScanPinned)
    ->Arg(256)
    ->Arg(16384)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Setup(SetupPinnedScan)
    ->Teardown(TeardownScan)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotScanWithWriter)
    ->Arg(256)
    ->Arg(16384)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Setup(SetupScanWithWriter)
    ->Teardown(TeardownScan)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelGetScan)
    ->ArgsProduct({{256, 16384}, {1, 2, 4, 8}})
    ->UseRealTime()
    ->Setup(SetupPinnedScan)
    ->Teardown(TeardownScan)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelGetViaIndex)
    ->ArgsProduct({{256, 16384}, {1, 2, 4, 8}})
    ->UseRealTime()
    ->Setup(SetupPinnedScan)
    ->Teardown(TeardownScan)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotAcquire)
    ->Arg(16384)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Setup(SetupScanWithWriter)
    ->Teardown(TeardownScan);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once from main before
  // any worker thread exists.
  const char* path = std::getenv("DBPL_BENCH_E10_JSON");
  reporter.WriteJson(path != nullptr ? path : "BENCH_E10.json");
  return 0;
}
