// E4 — the bill-of-materials example: memoizing TotalCost by attaching
// transient fields to persistent Part objects.
//
// The parts explosion is a ladder DAG of depth d (each assembly uses
// the previous one twice), so the naive recursion visits 2^d parts
// while the memoized version visits each part once.
//
// Expected shape: naive time doubles per depth step; memoized time is
// linear in d — the paper's motivation for letting transient
// information attach to persistent structures.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/heap.h"
#include "core/value.h"

namespace {

using dbpl::core::Heap;
using dbpl::core::Oid;
using dbpl::core::Value;

Value BasePart(double price) {
  return Value::RecordOf({{"IsBase", Value::Bool(true)},
                          {"PurchasePrice", Value::Real(price)},
                          {"Components", Value::List({})}});
}

Value Assembly(double cost, const std::vector<std::pair<Oid, double>>& cs) {
  std::vector<Value> comps;
  for (const auto& [oid, qty] : cs) {
    comps.push_back(Value::RecordOf(
        {{"SubPart", Value::Ref(oid)}, {"Qty", Value::Real(qty)}}));
  }
  return Value::RecordOf({{"IsBase", Value::Bool(false)},
                          {"ManufacturingCost", Value::Real(cost)},
                          {"Components", Value::List(std::move(comps))}});
}

Oid BuildLadder(Heap& heap, int64_t depth) {
  Oid level = heap.Allocate(BasePart(0.5));
  for (int64_t i = 0; i < depth; ++i) {
    level = heap.Allocate(Assembly(1.0, {{level, 1.0}, {level, 1.0}}));
  }
  return level;
}

double TotalCostNaive(const Heap& heap, Oid part, uint64_t* visits) {
  ++*visits;
  Value p = *heap.Get(part);
  if (p.FindField("IsBase")->AsBool()) {
    return p.FindField("PurchasePrice")->AsReal();
  }
  double total = p.FindField("ManufacturingCost")->AsReal();
  for (const Value& c : p.FindField("Components")->elements()) {
    total += c.FindField("Qty")->AsReal() *
             TotalCostNaive(heap, c.FindField("SubPart")->AsRef(), visits);
  }
  return total;
}

double TotalCostMemo(Heap& heap, Oid part, uint64_t* visits) {
  ++*visits;
  Value p = *heap.Get(part);
  if (const Value* memo = p.FindField("Memo")) return memo->AsReal();
  double total;
  if (p.FindField("IsBase")->AsBool()) {
    total = p.FindField("PurchasePrice")->AsReal();
  } else {
    total = p.FindField("ManufacturingCost")->AsReal();
    for (const Value& c : p.FindField("Components")->elements()) {
      total += c.FindField("Qty")->AsReal() *
               TotalCostMemo(heap, c.FindField("SubPart")->AsRef(), visits);
    }
  }
  (void)heap.Extend(part, Value::RecordOf({{"Memo", Value::Real(total)}}));
  return total;
}

void StripMemos(Heap& heap) {
  for (Oid oid : heap.Oids()) {
    Value v = *heap.Get(oid);
    if (v.FindField("Memo") == nullptr) continue;
    std::vector<std::string> keep;
    for (const auto& f : v.fields()) {
      if (f.name != "Memo") keep.push_back(f.name);
    }
    (void)heap.Put(oid, v.Project(keep));
  }
}

void BM_TotalCostNaive(benchmark::State& state) {
  Heap heap;
  Oid root = BuildLadder(heap, state.range(0));
  uint64_t visits = 0;
  for (auto _ : state) {
    visits = 0;
    double total = TotalCostNaive(heap, root, &visits);
    benchmark::DoNotOptimize(total);
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
  state.counters["part_visits"] = static_cast<double>(visits);
}

void BM_TotalCostMemoized(benchmark::State& state) {
  Heap heap;
  Oid root = BuildLadder(heap, state.range(0));
  uint64_t visits = 0;
  for (auto _ : state) {
    state.PauseTiming();
    StripMemos(heap);  // forget previous iterations' transient fields
    state.ResumeTiming();
    visits = 0;
    double total = TotalCostMemo(heap, root, &visits);
    benchmark::DoNotOptimize(total);
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
  state.counters["part_visits"] = static_cast<double>(visits);
}

}  // namespace

BENCHMARK(BM_TotalCostNaive)
    ->DenseRange(8, 20, 4)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TotalCostMemoized)
    ->DenseRange(8, 20, 4)
    ->Unit(benchmark::kMicrosecond);
