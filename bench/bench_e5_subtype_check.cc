// E5 — "a certain amount of computation has to take place at the level
// of types": the cost of the subtype checks that every Get, coerce and
// class operation performs.
//
// Sweeps record width and nesting depth, plus the quantified and
// recursive checks (existential packing, mu-unfolding) that the
// Cardelli–Wegner machinery adds.
//
// Expected shape: record checks are O(width · depth); mu and
// existential checks add a constant factor via the coinductive
// assumption set — cheap enough to justify the paper's claim that the
// class hierarchy can be *computed* from the type hierarchy.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "types/subtype.h"
#include "types/type.h"

namespace {

using dbpl::types::Type;

/// A record with `width` Int fields plus, when depth > 1, one nested
/// record of (width, depth-1).
Type WideRecord(int64_t width, int64_t depth) {
  std::vector<std::pair<std::string, Type>> fields;
  for (int64_t i = 0; i < width; ++i) {
    fields.emplace_back("f" + std::to_string(i), Type::Int());
  }
  if (depth > 1) {
    fields.emplace_back("nested", WideRecord(width, depth - 1));
  }
  return Type::RecordOf(std::move(fields));
}

/// The subtype: every field of WideRecord plus `extra` more.
Type WiderRecord(int64_t width, int64_t depth, int64_t extra) {
  std::vector<std::pair<std::string, Type>> fields;
  for (int64_t i = 0; i < width + extra; ++i) {
    fields.emplace_back("f" + std::to_string(i), Type::Int());
  }
  if (depth > 1) {
    fields.emplace_back("nested", WiderRecord(width, depth - 1, extra));
  }
  return Type::RecordOf(std::move(fields));
}

void BM_RecordSubtypeWidth(benchmark::State& state) {
  Type sup = WideRecord(state.range(0), 1);
  Type sub = WiderRecord(state.range(0), 1, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dbpl::types::IsSubtype(sub, sup));
  }
  state.counters["width"] = static_cast<double>(state.range(0));
}

void BM_RecordSubtypeDepth(benchmark::State& state) {
  Type sup = WideRecord(4, state.range(0));
  Type sub = WiderRecord(4, state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dbpl::types::IsSubtype(sub, sup));
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}

void BM_RecordSubtypeNegative(benchmark::State& state) {
  // Failing checks (missing one field) cost about the same: the search
  // stops at the first absent field.
  Type sup = WideRecord(state.range(0), 1);
  Type sub = WideRecord(state.range(0) - 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dbpl::types::IsSubtype(sub, sup));
  }
  state.counters["width"] = static_cast<double>(state.range(0));
}

void BM_ExistentialPacking(benchmark::State& state) {
  // Employee ≤ ∃t ≤ Person. t — the element check of Get's result type.
  Type person = WideRecord(state.range(0), 2);
  Type employee = WiderRecord(state.range(0), 2, 4);
  Type package = Type::Exists("t", person, Type::Var("t"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dbpl::types::IsSubtype(employee, package));
  }
  state.counters["width"] = static_cast<double>(state.range(0));
}

void BM_RecursiveSubtype(benchmark::State& state) {
  // Streams of wider records vs streams of records (equi-recursive).
  Type sup = Type::Mu("s", Type::RecordOf({{"head", WideRecord(state.range(0), 1)},
                                           {"tail", Type::Var("s")}}));
  Type sub = Type::Mu("s", Type::RecordOf(
                               {{"head", WiderRecord(state.range(0), 1, 4)},
                                {"tail", Type::Var("s")}}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dbpl::types::IsSubtype(sub, sup));
  }
  state.counters["width"] = static_cast<double>(state.range(0));
}

void BM_TypeEquivalence(benchmark::State& state) {
  Type a = WideRecord(state.range(0), 4);
  Type b = WideRecord(state.range(0), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dbpl::types::TypeEquiv(a, b));
  }
  state.counters["width"] = static_cast<double>(state.range(0));
}

}  // namespace

BENCHMARK(BM_RecordSubtypeWidth)->RangeMultiplier(2)->Range(2, 64);
BENCHMARK(BM_RecordSubtypeDepth)->DenseRange(1, 8, 1);
BENCHMARK(BM_RecordSubtypeNegative)->RangeMultiplier(2)->Range(2, 64);
BENCHMARK(BM_ExistentialPacking)->RangeMultiplier(2)->Range(2, 64);
BENCHMARK(BM_RecursiveSubtype)->RangeMultiplier(2)->Range(2, 64);
BENCHMARK(BM_TypeEquivalence)->RangeMultiplier(2)->Range(2, 16);
