// E3 — the three persistence models: cost of "touch k objects, then
// make the state durable" as the database grows.
//
//  * all-or-nothing (SnapshotStore): rewrite the whole image;
//  * replicating (ReplicatingStore): re-extern the whole reachable
//    structure behind the handle (a copy, per the paper);
//  * intrinsic (IntrinsicStore): commit writes only the delta through
//    the write-ahead log.
//
// Expected shape: snapshot and replicating grow linearly with database
// size even though only k = 16 objects changed; intrinsic stays flat —
// the quantitative version of the paper's argument for intrinsic
// persistence.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/heap.h"
#include "dyndb/dynamic.h"
#include "persist/intrinsic_store.h"
#include "persist/replicating_store.h"
#include "persist/snapshot_store.h"

namespace {

using dbpl::core::Heap;
using dbpl::core::Oid;
using dbpl::core::Value;

constexpr int64_t kTouched = 16;

std::string TempPath(const std::string& name) {
  return "/tmp/dbpl_bench_e3_" + name + "_" + std::to_string(::getpid());
}

Value MakeObject(int64_t i) {
  return Value::RecordOf({{"Name", Value::String("obj" + std::to_string(i))},
                          {"Seq", Value::Int(i)},
                          {"Flag", Value::Bool((i & 1) != 0)}});
}

/// Builds a heap of n objects plus a root list referencing all of them;
/// returns the root oid.
Oid FillHeap(Heap& heap, int64_t n, std::vector<Oid>* oids) {
  std::vector<Value> refs;
  for (int64_t i = 0; i < n; ++i) {
    Oid oid = heap.Allocate(MakeObject(i));
    oids->push_back(oid);
    refs.push_back(Value::Ref(oid));
  }
  return heap.Allocate(Value::List(std::move(refs)));
}

void TouchSome(Heap& heap, const std::vector<Oid>& oids, int64_t round) {
  for (int64_t k = 0; k < kTouched; ++k) {
    Oid target = oids[static_cast<size_t>(
        (round * 7919 + k * 104729) % static_cast<int64_t>(oids.size()))];
    (void)heap.Put(target, MakeObject(round * 1000 + k));
  }
}

void BM_SnapshotPersistence(benchmark::State& state) {
  int64_t n = state.range(0);
  const std::string path = TempPath("snapshot");
  Heap heap;
  std::vector<Oid> oids;
  Oid root = FillHeap(heap, n, &oids);
  std::map<std::string, Oid> roots = {{"root", root}};
  int64_t round = 0;
  for (auto _ : state) {
    TouchSome(heap, oids, round++);
    benchmark::DoNotOptimize(
        dbpl::persist::SnapshotStore::Save(path, heap, roots));
  }
  std::remove(path.c_str());
  state.counters["n"] = static_cast<double>(n);
}

void BM_ReplicatingPersistence(benchmark::State& state) {
  int64_t n = state.range(0);
  const std::string dir = TempPath("repl");
  auto store = dbpl::persist::ReplicatingStore::Open(dir);
  Heap heap;
  std::vector<Oid> oids;
  Oid root = FillHeap(heap, n, &oids);
  dbpl::dyndb::Dynamic handle = dbpl::dyndb::MakeDynamic(Value::Ref(root));
  int64_t round = 0;
  for (auto _ : state) {
    TouchSome(heap, oids, round++);
    benchmark::DoNotOptimize((*store)->Extern("db", handle, &heap));
  }
  std::string cmd = "rm -rf " + dir;
  (void)std::system(cmd.c_str());
  state.counters["n"] = static_cast<double>(n);
}

void BM_IntrinsicPersistence(benchmark::State& state) {
  int64_t n = state.range(0);
  const std::string path = TempPath("intrinsic");
  std::remove(path.c_str());
  auto store = dbpl::persist::IntrinsicStore::Open(path);
  Heap& heap = (*store)->heap();
  std::vector<Oid> oids;
  Oid root = FillHeap(heap, n, &oids);
  (void)(*store)->SetRoot("root", root);
  (void)(*store)->Commit();
  int64_t round = 0;
  for (auto _ : state) {
    TouchSome(heap, oids, round++);
    benchmark::DoNotOptimize((*store)->Commit());
  }
  uint64_t log_bytes = (*store)->kv().log_bytes();
  std::remove(path.c_str());
  state.counters["n"] = static_cast<double>(n);
  state.counters["log_bytes"] = static_cast<double>(log_bytes);
}

/// The intrinsic model's deferred cost: log growth vs compaction.
void BM_IntrinsicCompaction(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    const std::string path = TempPath("compact");
    std::remove(path.c_str());
    auto store = dbpl::persist::IntrinsicStore::Open(path);
    Heap& heap = (*store)->heap();
    std::vector<Oid> oids;
    Oid root = FillHeap(heap, n, &oids);
    (void)(*store)->SetRoot("root", root);
    for (int round = 0; round < 32; ++round) {
      TouchSome(heap, oids, round);
      (void)(*store)->Commit();
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize((*store)->CompactStorage());
    state.PauseTiming();
    std::remove(path.c_str());
    state.ResumeTiming();
  }
  state.counters["n"] = static_cast<double>(n);
}

}  // namespace

BENCHMARK(BM_SnapshotPersistence)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReplicatingPersistence)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IntrinsicPersistence)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IntrinsicCompaction)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);
