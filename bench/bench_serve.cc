// E14 — dbpl-serve under closed-loop load (DESIGN.md §12,
// EXPERIMENTS.md §E14).
//
// A closed-loop generator against a real dbpl_serve server over
// loopback TCP: C connections, one thread per connection, each thread
// issuing its next request only after the previous response arrived.
// Per-request latency is measured around the full wire round trip
// (encode → TCP → server execute → TCP → decode), aggregated into
// p50/p99 per configuration.
//
//  * workload "reads"  — point Get of a random preloaded entry;
//    resolves against a lock-free snapshot on the server.
//  * workload "mixed"  — 90% Get / 10% Insert; writes funnel through
//    the WAL group-commit path (every_n = 64, sync off: the fsync cost
//    of the durability ladder is E11's subject, not the protocol's).
//  * overload          — more connections offered than max_sessions:
//    counts how many were admitted vs shed with kUnavailable. Shed
//    connections get an explicit error frame, never a hang.
//
// Results go to BENCH_SERVE.json (override with DBPL_BENCH_SERVE_JSON)
// with provenance. Honesty note: this host serializes everything —
// clients, workers, dispatcher — onto its core count (see
// "host_cores" in the provenance stamp); with 1 core the connection
// sweep measures protocol + scheduling overhead under contention, not
// parallel speedup. The closed loop means offered load self-throttles:
// latency, not drop rate, is what degrades as C grows.
//
// Own main: no google-benchmark loop fits a percentile-over-
// connections sweep, so the binary drives itself (--smoke runs a
// seconds-scale subset for `ctest -L bench-smoke`).

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/value.h"
#include "persist/wal_database.h"
#include "serve/client.h"
#include "serve/server.h"
#include "storage/vfs.h"

#include "provenance.h"

namespace {

using dbpl::core::Value;
using dbpl::persist::WalDatabase;
using dbpl::persist::WalOptions;
using dbpl::serve::Client;
using dbpl::serve::ServeOptions;
using dbpl::serve::Server;

constexpr int kPreload = 8192;
// Point reads target this prefix of the id space: with hash-routed
// shards the top of [0, kPreload) can be sparsely assigned (ids encode
// shard sequence), and a NotFound would pollute the latency sample.
constexpr int kQueryRange = kPreload - 512;
constexpr uint64_t kTotalOpsPerConfig = 24000;  // split across connections

Value Rec(int64_t i) {
  return Value::RecordOf(
      {{"Seq", Value::Int(i)},
       {"Payload", Value::String("p" + std::to_string(i % 97))}});
}

/// xorshift; one per thread, no shared state.
struct Rng {
  uint64_t s;
  explicit Rng(uint64_t seed) : s(seed * 2654435761u + 1) {}
  uint64_t Next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

struct SweepResult {
  std::string workload;
  int connections = 0;
  uint64_t ops = 0;
  uint64_t errors = 0;
  double p50_us = 0, p99_us = 0, throughput_rps = 0;
};

double PercentileUs(std::vector<uint64_t>& ns, double q) {
  if (ns.empty()) return 0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(ns.size() - 1));
  std::nth_element(ns.begin(), ns.begin() + static_cast<long>(idx), ns.end());
  return static_cast<double>(ns[idx]) / 1000.0;
}

/// One closed-loop sweep: `connections` threads, each its own TCP
/// connection, each issuing `ops_per_conn` sequential requests.
SweepResult RunSweep(uint16_t port, const std::string& workload,
                     int connections, uint64_t ops_per_conn) {
  SweepResult result;
  result.workload = workload;
  result.connections = connections;
  const bool mixed = workload == "mixed";

  std::vector<std::vector<uint64_t>> latencies(
      static_cast<size_t>(connections));
  std::vector<uint64_t> errors(static_cast<size_t>(connections), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(connections));
  const auto wall_start = std::chrono::steady_clock::now();
  for (int t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        errors[static_cast<size_t>(t)] = ops_per_conn;
        return;
      }
      Rng rng(static_cast<uint64_t>(t) + 12345);
      auto& lat = latencies[static_cast<size_t>(t)];
      lat.reserve(ops_per_conn);
      for (uint64_t i = 0; i < ops_per_conn; ++i) {
        const auto start = std::chrono::steady_clock::now();
        bool ok;
        if (mixed && rng.Next() % 10 == 0) {
          ok = client->InsertValue(Rec(static_cast<int64_t>(rng.Next()))).ok();
        } else {
          ok = client->Get(rng.Next() % kQueryRange).ok();
        }
        const auto end = std::chrono::steady_clock::now();
        if (!ok) {
          ++errors[static_cast<size_t>(t)];
          continue;
        }
        lat.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count()));
      }
    });
  }
  for (auto& th : threads) th.join();
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  std::vector<uint64_t> all;
  for (auto& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  for (uint64_t e : errors) result.errors += e;
  result.ops = all.size();
  result.p50_us = PercentileUs(all, 0.50);
  result.p99_us = PercentileUs(all, 0.99);
  result.throughput_rps =
      wall_s > 0 ? static_cast<double>(result.ops) / wall_s : 0;
  return result;
}

struct OverloadResult {
  int offered = 0, max_sessions = 0;
  int served = 0, shed = 0, other_error = 0;
};

/// Offers `offered` concurrent connections to a server admitting at
/// most `max_sessions`; each tries one Ping. Sheds must surface as
/// kUnavailable, not hangs or resets.
OverloadResult RunOverload(WalDatabase* wdb, int max_sessions, int offered) {
  OverloadResult result;
  result.offered = offered;
  result.max_sessions = max_sessions;
  ServeOptions opts;
  opts.workers = 4;
  opts.max_sessions = max_sessions;
  opts.listen = true;
  opts.backlog = offered;
  auto server = Server::Start(wdb, opts);
  if (!server.ok()) {
    std::cerr << "overload server start: " << server.status() << "\n";
    return result;
  }
  std::vector<int> outcome(static_cast<size_t>(offered), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(offered));
  for (int t = 0; t < offered; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", (*server)->port());
      if (!client.ok()) {
        outcome[static_cast<size_t>(t)] = 2;
        return;
      }
      // Hold the session across everyone's attempt so admissions
      // actually accumulate to the cap.
      dbpl::Status ping = client->Ping();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (ping.ok()) {
        outcome[static_cast<size_t>(t)] = 0;
      } else if (ping.code() == dbpl::StatusCode::kUnavailable) {
        outcome[static_cast<size_t>(t)] = 1;
      } else {
        outcome[static_cast<size_t>(t)] = 2;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int o : outcome) {
    if (o == 0) ++result.served;
    else if (o == 1) ++result.shed;
    else ++result.other_error;
  }
  return result;
}

/// Raises RLIMIT_NOFILE towards `want` fds; returns the usable cap.
uint64_t RaiseFdLimit(uint64_t want) {
  struct rlimit lim;
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return 1024;
  if (lim.rlim_cur < want && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = std::min<rlim_t>(want, lim.rlim_max);
    (void)setrlimit(RLIMIT_NOFILE, &lim);
    (void)getrlimit(RLIMIT_NOFILE, &lim);
  }
  return lim.rlim_cur;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("dbpl_bench_serve_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  // Durability knobs are E11's subject; here the WAL runs with group
  // markers but no fsync so the wire protocol is what's measured.
  auto wdb = WalDatabase::Open(dbpl::storage::Vfs::Default(), dir,
                               WalOptions{{64, false}, 2});
  if (!wdb.ok()) {
    std::cerr << "bench_serve: open: " << wdb.status() << "\n";
    return 1;
  }
  for (int64_t i = 0; i < kPreload; ++i) {
    (void)(*wdb)->InsertValue(Rec(i));
  }

  std::vector<int> conn_sweep =
      smoke ? std::vector<int>{1, 4}
            : std::vector<int>{1, 4, 16, 64, 256, 1024};
  // Each connection is one client fd + one server session fd, plus
  // headroom for the process itself.
  const uint64_t fd_cap = RaiseFdLimit(
      static_cast<uint64_t>(2 * conn_sweep.back() + 256));

  ServeOptions opts;
  opts.workers = 4;
  opts.max_sessions = conn_sweep.back() + 16;
  opts.listen = true;
  opts.backlog = conn_sweep.back();
  auto server = Server::Start(wdb->get(), opts);
  if (!server.ok()) {
    std::cerr << "bench_serve: start: " << server.status() << "\n";
    return 1;
  }

  std::vector<SweepResult> sweeps;
  for (const char* workload : {"reads", "mixed"}) {
    for (int c : conn_sweep) {
      if (static_cast<uint64_t>(2 * c + 64) > fd_cap) {
        std::cerr << "bench_serve: skipping " << workload << "/" << c
                  << " connections (fd limit " << fd_cap << ")\n";
        continue;
      }
      const uint64_t per_conn = std::max<uint64_t>(
          smoke ? 25 : 40, (smoke ? 200 : kTotalOpsPerConfig) /
                               static_cast<uint64_t>(c));
      SweepResult r = RunSweep((*server)->port(), workload, c, per_conn);
      std::printf(
          "%-5s conns=%-5d ops=%-7llu p50=%8.1fus p99=%9.1fus "
          "thrpt=%9.0f rps errors=%llu\n",
          r.workload.c_str(), r.connections,
          static_cast<unsigned long long>(r.ops), r.p50_us, r.p99_us,
          r.throughput_rps, static_cast<unsigned long long>(r.errors));
      sweeps.push_back(std::move(r));
    }
  }
  (*server)->Stop();

  OverloadResult overload =
      smoke ? RunOverload(wdb->get(), 4, 16) : RunOverload(wdb->get(), 64, 256);
  std::printf(
      "overload: offered=%d cap=%d served=%d shed(kUnavailable)=%d "
      "other=%d\n",
      overload.offered, overload.max_sessions, overload.served,
      overload.shed, overload.other_error);

  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once after all workers
  // joined.
  const char* json_path = std::getenv("DBPL_BENCH_SERVE_JSON");
  std::ofstream out(json_path != nullptr ? json_path : "BENCH_SERVE.json",
                    std::ios::trunc);
  out << "{\"provenance\": " << dbpl::bench::ProvenanceJson() << ",\n"
      << " \"note\": \"closed-loop, loopback TCP, 1 thread/connection; "
         "WAL group markers without fsync; on a low-core host the sweep "
         "measures protocol+scheduling overhead under contention, not "
         "parallel speedup\",\n"
      << " \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << " \"results\": [\n";
  for (size_t i = 0; i < sweeps.size(); ++i) {
    const SweepResult& r = sweeps[i];
    out << "  {\"workload\": \"" << r.workload
        << "\", \"connections\": " << r.connections << ", \"ops\": " << r.ops
        << ", \"errors\": " << r.errors << ", \"p50_us\": " << r.p50_us
        << ", \"p99_us\": " << r.p99_us
        << ", \"throughput_rps\": " << r.throughput_rps << "}"
        << (i + 1 < sweeps.size() ? "," : "") << "\n";
  }
  out << " ],\n \"overload\": {\"offered\": " << overload.offered
      << ", \"max_sessions\": " << overload.max_sessions
      << ", \"served\": " << overload.served << ", \"shed\": " << overload.shed
      << ", \"other_error\": " << overload.other_error << "}}\n";
  out.close();

  std::filesystem::remove_all(dir);
  return 0;
}
