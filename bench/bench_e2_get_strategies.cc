// E2 — deriving extents from the type hierarchy: the cost of the
// generic Get under the three strategies the paper's efficiency
// discussion anticipates.
//
//  * GetScan        — "traverse the whole database ... check the
//                      structure of each value": one subtype test per
//                      stored value;
//  * GetViaIndex    — group values by principal type: one subtype test
//                      per *distinct* type;
//  * GetViaExtent   — "keep a set of (statically) typed lists":
//                      maintained extents, O(result) reads but paying
//                      subtype tests on every insert.
//
// Expected shape: scan grows linearly with database size regardless of
// result size; the index amortizes to the number of distinct types;
// extents are the fastest reads but InsertWithExtents shows the insert
// penalty growing with the number of registered extents.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "dyndb/database.h"
#include "types/parse.h"

namespace {

using dbpl::core::Value;
using dbpl::dyndb::Database;
using dbpl::types::ParseType;
using dbpl::types::Type;

Type PersonT() { return *ParseType("{Name: String}"); }
Type EmployeeT() { return *ParseType("{Name: String, Empno: Int, Dept: String}"); }

/// Fills a database with `n` values; `sel_pct` percent are employees
/// (the Get targets), the rest spread over `hier` other record shapes.
Database MakeDb(int64_t n, int64_t sel_pct, int64_t hier) {
  Database db;
  uint64_t s = 88172645463325252ULL;
  auto next = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (int64_t i = 0; i < n; ++i) {
    if (next() % 100 < static_cast<uint64_t>(sel_pct)) {
      db.MustInsertValue(Value::RecordOf(
          {{"Name", Value::String("e" + std::to_string(i))},
           {"Empno", Value::Int(i)},
           {"Dept", Value::String("Sales")}}));
    } else {
      // One of `hier` sibling shapes, none a subtype of Employee.
      int64_t shape = static_cast<int64_t>(next() % static_cast<uint64_t>(hier));
      db.MustInsertValue(Value::RecordOf(
          {{"Name", Value::String("p" + std::to_string(i))},
           {"Extra" + std::to_string(shape), Value::Int(i)}}));
    }
  }
  return db;
}

void BM_GetScan(benchmark::State& state) {
  Database db = MakeDb(state.range(0), state.range(1), 8);
  Type t = EmployeeT();
  size_t found = 0;
  for (auto _ : state) {
    auto result = db.GetScan(t);
    found = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["sel_pct"] = static_cast<double>(state.range(1));
  state.counters["found"] = static_cast<double>(found);
}

void BM_GetViaIndex(benchmark::State& state) {
  Database db = MakeDb(state.range(0), state.range(1), 8);
  Type t = EmployeeT();
  size_t found = 0;
  for (auto _ : state) {
    auto result = db.GetViaIndex(t);
    found = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["distinct_types"] = static_cast<double>(db.DistinctTypeCount());
  state.counters["found"] = static_cast<double>(found);
}

void BM_GetViaExtent(benchmark::State& state) {
  Database db = MakeDb(state.range(0), state.range(1), 8);
  (void)db.RegisterExtent("employees", EmployeeT());
  size_t found = 0;
  for (auto _ : state) {
    auto result = db.GetViaExtent(EmployeeT());
    found = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["found"] = static_cast<double>(found);
}

/// The hidden cost of maintained extents: every insert pays one
/// subtype check per registered extent.
void BM_InsertWithExtents(benchmark::State& state) {
  int64_t extents = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    for (int64_t k = 0; k < extents; ++k) {
      (void)db.RegisterExtent(
          "x" + std::to_string(k),
          *ParseType("{Name: String, Extra" + std::to_string(k) + ": Int}"));
    }
    state.ResumeTiming();
    for (int64_t i = 0; i < 1024; ++i) {
      db.MustInsertValue(Value::RecordOf(
          {{"Name", Value::String("e")},
           {"Empno", Value::Int(i)},
           {"Dept", Value::String("Sales")}}));
    }
    benchmark::DoNotOptimize(db);
  }
  state.counters["registered_extents"] = static_cast<double>(extents);
  state.SetItemsProcessed(state.iterations() * 1024);
}

}  // namespace

BENCHMARK(BM_GetScan)
    ->ArgsProduct({{256, 1024, 4096, 16384, 65536}, {1, 10, 50}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GetViaIndex)
    ->ArgsProduct({{256, 1024, 4096, 16384, 65536}, {1, 10, 50}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GetViaExtent)
    ->ArgsProduct({{256, 1024, 4096, 16384, 65536}, {1, 10, 50}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InsertWithExtents)
    ->Arg(0)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);
