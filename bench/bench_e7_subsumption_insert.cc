// E7 — the cochain admission rule: "we will not admit an object o into
// a relation R if there is already an object in R which contains as
// much information as o, and if it is more informative ... we will
// subsume those objects".
//
// Compares the cost of building a collection of n objects under:
//  * GRelation::Insert — subsumption (O(|R|) dominance scans);
//  * plain set insert  — structural equality only (the 1NF semantics);
//  * keyed 1NF insert  — hash-based key enforcement.
//
// The comparability rate is controlled by how often a record is a
// refined copy of an earlier one (extra fields added).
//
// Expected shape: subsumption insert is quadratic overall where the
// flat inserts are ~constant per element — the price of the richer
// semantics, and the reason keys matter in practice.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/grelation.h"
#include "core/value.h"
#include "relational/relation.h"

namespace {

using dbpl::core::GRelation;
using dbpl::core::Value;

/// n records; with probability refine_pct, record i is a strictly more
/// informative copy of an earlier record (same Name, extra field).
std::vector<Value> MakeObjects(int64_t n, int64_t refine_pct) {
  std::vector<Value> out;
  uint64_t s = 2463534242ULL;
  auto next = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (int64_t i = 0; i < n; ++i) {
    bool refine = !out.empty() &&
                  next() % 100 < static_cast<uint64_t>(refine_pct);
    if (refine) {
      const Value& base = out[next() % out.size()];
      out.push_back(base.WithField(
          "Extra" + std::to_string(next() % 4),
          Value::Int(static_cast<int64_t>(next() % 100))));
    } else {
      out.push_back(Value::RecordOf(
          {{"Name", Value::String("n" + std::to_string(i))},
           {"Dept", Value::String(i % 2 == 0 ? "Sales" : "Manuf")}}));
    }
  }
  return out;
}

void BM_SubsumptionInsert(benchmark::State& state) {
  auto objects = MakeObjects(state.range(0), state.range(1));
  size_t final_size = 0;
  for (auto _ : state) {
    GRelation r;
    for (const Value& o : objects) r.Insert(o);
    final_size = r.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["refine_pct"] = static_cast<double>(state.range(1));
  state.counters["final_size"] = static_cast<double>(final_size);
}

void BM_PlainSetInsert(benchmark::State& state) {
  auto objects = MakeObjects(state.range(0), state.range(1));
  size_t final_size = 0;
  for (auto _ : state) {
    // The 1NF reading: a set keyed on the whole value; refined copies
    // coexist with their originals (no subsumption).
    std::vector<Value> elems = objects;
    Value set = Value::Set(std::move(elems));
    final_size = set.elements().size();
    benchmark::DoNotOptimize(set);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["final_size"] = static_cast<double>(final_size);
}

void BM_Keyed1NFInsert(benchmark::State& state) {
  using dbpl::relational::AtomType;
  using dbpl::relational::Relation;
  using dbpl::relational::Schema;
  int64_t n = state.range(0);
  // Flat total tuples only: the keyed baseline.
  for (auto _ : state) {
    auto r = Relation::WithKey(
        Schema::Of({{"Name", AtomType::kString}, {"Dept", AtomType::kString}}),
        {"Name"});
    for (int64_t i = 0; i < n; ++i) {
      (void)r->Insert({Value::String("n" + std::to_string(i)),
                       Value::String(i % 2 == 0 ? "Sales" : "Manuf")});
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = static_cast<double>(n);
}

}  // namespace

BENCHMARK(BM_SubsumptionInsert)
    ->ArgsProduct({{64, 256, 1024, 4096}, {0, 25, 50}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PlainSetInsert)
    ->ArgsProduct({{64, 256, 1024, 4096}, {0, 50}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Keyed1NFInsert)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
