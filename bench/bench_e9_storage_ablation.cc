// E9 (ablation) — why the intrinsic store is log-structured: in-place
// paged updates vs WAL-backed batches, on the same workload.
//
//  * PagedStore: one page per record, in-place update, flush = write
//    dirty pages + fsync. No atomicity across records (see
//    storage_ablation_test for the torn-batch demonstration).
//  * KvStore: append records + commit marker + fsync; atomic batches,
//    but the log grows until compaction.
//
// Expected shape: for small batches both are fsync-bound and
// comparable; the paged store wins on re-reads of a hot working set
// (buffer pool) while the log store wins on bulk sequential writes —
// and only the log store gives the commit semantics persistence needs.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "storage/kv_store.h"
#include "storage/paged_store.h"

namespace {

using dbpl::storage::KvStore;
using dbpl::storage::PagedStore;
using dbpl::storage::WriteBatch;

std::string TempPath(const std::string& name) {
  return "/tmp/dbpl_bench_e9_" + name + "_" + std::to_string(::getpid());
}

std::string ValueFor(int64_t i) {
  return "value-" + std::to_string(i) + std::string(64, 'x');
}

void BM_PagedStoreCommit(benchmark::State& state) {
  int64_t batch_size = state.range(0);
  const std::string path = TempPath("paged");
  std::remove(path.c_str());
  auto store = PagedStore::Open(path);
  int64_t round = 0;
  for (auto _ : state) {
    for (int64_t i = 0; i < batch_size; ++i) {
      (void)(*store)->Put("key" + std::to_string(i),
                          ValueFor(round * batch_size + i));
    }
    benchmark::DoNotOptimize((*store)->Flush());
    ++round;
  }
  std::remove(path.c_str());
  state.counters["batch"] = static_cast<double>(batch_size);
}

void BM_LogStoreCommit(benchmark::State& state) {
  int64_t batch_size = state.range(0);
  const std::string path = TempPath("log");
  std::remove(path.c_str());
  auto store = KvStore::Open(path);
  int64_t round = 0;
  for (auto _ : state) {
    WriteBatch batch;
    for (int64_t i = 0; i < batch_size; ++i) {
      batch.Put("key" + std::to_string(i), ValueFor(round * batch_size + i));
    }
    benchmark::DoNotOptimize((*store)->Apply(batch));
    ++round;
  }
  std::remove(path.c_str());
  state.counters["batch"] = static_cast<double>(batch_size);
}

void BM_PagedStoreHotReads(benchmark::State& state) {
  const std::string path = TempPath("paged_read");
  std::remove(path.c_str());
  auto store = PagedStore::Open(path);
  for (int64_t i = 0; i < 1024; ++i) {
    (void)(*store)->Put("key" + std::to_string(i), ValueFor(i));
  }
  (void)(*store)->Flush();
  int64_t i = 0;
  for (auto _ : state) {
    auto v = (*store)->Get("key" + std::to_string(i % 64));  // hot set
    benchmark::DoNotOptimize(v);
    ++i;
  }
  std::remove(path.c_str());
}

void BM_LogStoreHotReads(benchmark::State& state) {
  const std::string path = TempPath("log_read");
  std::remove(path.c_str());
  auto store = KvStore::Open(path);
  WriteBatch batch;
  for (int64_t i = 0; i < 1024; ++i) {
    batch.Put("key" + std::to_string(i), ValueFor(i));
  }
  (void)(*store)->Apply(batch);
  int64_t i = 0;
  for (auto _ : state) {
    auto v = (*store)->Get("key" + std::to_string(i % 64));
    benchmark::DoNotOptimize(v);
    ++i;
  }
  std::remove(path.c_str());
}

void BM_LogStoreRecovery(benchmark::State& state) {
  // Replay cost after many overwrites — the log's deferred price.
  int64_t rounds = state.range(0);
  const std::string path = TempPath("recovery");
  std::remove(path.c_str());
  {
    auto store = KvStore::Open(path);
    for (int64_t r = 0; r < rounds; ++r) {
      WriteBatch batch;
      for (int64_t i = 0; i < 64; ++i) {
        batch.Put("key" + std::to_string(i), ValueFor(r));
      }
      (void)(*store)->Apply(batch);
    }
  }
  for (auto _ : state) {
    auto store = KvStore::Open(path);
    benchmark::DoNotOptimize(store);
  }
  std::remove(path.c_str());
  state.counters["overwrite_rounds"] = static_cast<double>(rounds);
}

void BM_PagedStoreRecovery(benchmark::State& state) {
  int64_t rounds = state.range(0);
  const std::string path = TempPath("paged_recovery");
  std::remove(path.c_str());
  {
    auto store = PagedStore::Open(path);
    for (int64_t r = 0; r < rounds; ++r) {
      for (int64_t i = 0; i < 64; ++i) {
        (void)(*store)->Put("key" + std::to_string(i), ValueFor(r));
      }
      (void)(*store)->Flush();
    }
  }
  for (auto _ : state) {
    auto store = PagedStore::Open(path);
    benchmark::DoNotOptimize(store);
  }
  std::remove(path.c_str());
  state.counters["overwrite_rounds"] = static_cast<double>(rounds);
}

}  // namespace

BENCHMARK(BM_PagedStoreCommit)->Arg(1)->Arg(16)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LogStoreCommit)->Arg(1)->Arg(16)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PagedStoreHotReads);
BENCHMARK(BM_LogStoreHotReads);
BENCHMARK(BM_LogStoreRecovery)->Arg(16)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PagedStoreRecovery)->Arg(16)->Arg(128)
    ->Unit(benchmark::kMillisecond);
