// E15 — WAL shipping over the wire (DESIGN.md §9.3, EXPERIMENTS.md §E15).
//
// The claims under test: an unmodified persist::Replica tails a
// dbpl-serve primary across a real TCP socket through
// serve::RemoteShipper, so network shipping pays only the transport —
// the replay path is byte-for-byte the one the in-process crash matrix
// proves; and the extra hop keeps replication lag (measured in epochs
// behind the primary, p50/p99) bounded under a streaming follower.
//
//  * BM_WireCatchUp      — a fresh follower dials the primary over
//    loopback and bootstraps n committed records: kShipBounds
//    handshake + chunked checkpoint/WAL reads + replay, reported as
//    records/sec shipped (compare BM_ReplicaCatchUp for the in-process
//    baseline).
//  * BM_WireShipBatch    — steady-state shipping over the socket: the
//    primary group-commits a batch, one wire poll applies it.
//  * BM_WireFollowerLag  — a streaming wire follower (1 ms cadence)
//    tails a continuously writing primary over loopback TCP; each
//    write samples primary-epoch minus follower-epoch. Counters:
//    lag_p50 / lag_p99.
//
// The primary's I/O goes through the production VFS into a fresh temp
// directory per run; the follower reads only through the wire. Own
// main: writes BENCH_E15.json (override with DBPL_BENCH_E15_JSON) with
// one record per run so the EXPERIMENTS.md §E15 tables regenerate
// mechanically.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/value.h"
#include "persist/replica.h"
#include "persist/wal_database.h"
#include "serve/remote_shipper.h"
#include "serve/server.h"

#include "provenance.h"

namespace {

using dbpl::core::Value;
using dbpl::persist::CommitPolicy;
using dbpl::persist::Replica;
using dbpl::persist::WalDatabase;
using dbpl::serve::RemoteShipper;
using dbpl::serve::ServeOptions;
using dbpl::serve::Server;

Value MakeRec(int64_t i) {
  return Value::RecordOf({{"seq", Value::Int(i)},
                          {"name", Value::String("r" + std::to_string(i % 97))},
                          {"flag", Value::Bool((i & 1) != 0)}});
}

std::string FreshDir() {
  static int counter = 0;
  std::string dir = std::filesystem::temp_directory_path() /
                    ("dbpl_bench_e15_" + std::to_string(::getpid()) + "_" +
                     std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir;
}

struct Ctx {
  std::string dir;
  std::unique_ptr<WalDatabase> wdb;
  std::unique_ptr<Server> server;
  std::unique_ptr<RemoteShipper> shipper;
  std::unique_ptr<Replica> follower;
  int64_t next = 0;
};

Ctx* g_ctx = nullptr;

// Dials a fresh shipper at the benchmark's primary. Lag RPCs are
// loopback round trips, so a tight receive deadline keeps a wedged run
// from hanging the whole suite.
std::unique_ptr<RemoteShipper> Dial() {
  RemoteShipper::Options opts;
  opts.recv_timeout = std::chrono::milliseconds(10000);
  auto shipper =
      RemoteShipper::Connect("127.0.0.1", g_ctx->server->port(), opts);
  if (!shipper.ok()) {
    std::cerr << "bench_e15: connect failed: " << shipper.status() << "\n";
    std::abort();
  }
  return std::move(*shipper);
}

void SetupPrimary(const benchmark::State& state, CommitPolicy policy,
                  int64_t seed_n, bool wire_follower) {
  g_ctx = new Ctx;
  g_ctx->dir = FreshDir();
  auto wdb = WalDatabase::Open(g_ctx->dir, policy);
  if (!wdb.ok()) {
    std::cerr << "bench_e15: open failed: " << wdb.status() << "\n";
    std::abort();
  }
  g_ctx->wdb = std::move(*wdb);
  for (int64_t i = 0; i < seed_n; ++i) {
    (void)g_ctx->wdb->InsertValue(MakeRec(i));
  }
  if (seed_n > 0 && !g_ctx->wdb->Commit().ok()) std::abort();
  g_ctx->next = seed_n;

  ServeOptions opts;
  opts.listen = true;
  opts.port = 0;  // ephemeral
  opts.workers = 2;
  auto server = Server::Start(g_ctx->wdb.get(), opts);
  if (!server.ok()) {
    std::cerr << "bench_e15: server start failed: " << server.status() << "\n";
    std::abort();
  }
  g_ctx->server = std::move(*server);
  g_ctx->shipper = Dial();
  if (wire_follower) {
    g_ctx->follower = std::make_unique<Replica>();
    if (!g_ctx->follower->Attach(g_ctx->shipper.get()).ok()) std::abort();
  }
  (void)state;
}

void SetupCatchUp(const benchmark::State& state) {
  SetupPrimary(state, CommitPolicy{64, true}, state.range(0), false);
}

void SetupShipBatch(const benchmark::State& state) {
  SetupPrimary(state, CommitPolicy{static_cast<uint64_t>(state.range(0)), true},
               0, true);
}

void SetupLag(const benchmark::State& state) {
  SetupPrimary(state, CommitPolicy{8, true}, 0, false);
}

void Teardown(const benchmark::State&) {
  g_ctx->follower.reset();
  g_ctx->shipper.reset();
  g_ctx->server.reset();
  g_ctx->wdb.reset();
  std::filesystem::remove_all(g_ctx->dir);
  delete g_ctx;
  g_ctx = nullptr;
}

// A fresh follower dials the primary and replays its whole history
// over the socket.
void BM_WireCatchUp(benchmark::State& state) {
  for (auto _ : state) {
    std::unique_ptr<RemoteShipper> shipper = Dial();
    Replica follower;
    if (!follower.Attach(shipper.get()).ok()) {
      state.SkipWithError("attach failed");
      return;
    }
    if (follower.Epoch() != g_ctx->wdb->db().epoch()) {
      state.SkipWithError("follower did not converge");
      return;
    }
    benchmark::DoNotOptimize(follower.db().size());
    follower.Detach();
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["records_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * state.range(0)),
      benchmark::Counter::kIsRate);
}

// Steady state: the primary commits a batch, one wire poll ships it.
void BM_WireShipBatch(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Replica* follower = g_ctx->follower.get();
  for (auto _ : state) {
    for (int64_t i = 0; i < batch; ++i) {
      (void)g_ctx->wdb->InsertValue(MakeRec(g_ctx->next++));
    }
    if (!follower->Poll().ok()) {
      state.SkipWithError("poll failed");
      return;
    }
  }
  if (follower->Epoch() != g_ctx->wdb->db().epoch()) {
    state.SkipWithError("follower did not converge");
    return;
  }
  state.counters["n"] = static_cast<double>(batch);
  state.counters["records_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * batch),
      benchmark::Counter::kIsRate);
}

// Streaming wire follower lag, in epochs behind the primary, sampled
// after every primary write.
void BM_WireFollowerLag(benchmark::State& state) {
  Replica follower;
  if (!follower
           .Attach(g_ctx->shipper.get(), {std::chrono::milliseconds(1)})
           .ok()) {
    state.SkipWithError("attach failed");
    return;
  }
  std::vector<uint64_t> lags;
  lags.reserve(4096);
  for (auto _ : state) {
    (void)g_ctx->wdb->InsertValue(MakeRec(g_ctx->next++));
    const uint64_t p = g_ctx->wdb->db().epoch();
    const uint64_t f = follower.Epoch();
    lags.push_back(p - std::min(p, f));
  }
  if (!g_ctx->wdb->Commit().ok()) {
    state.SkipWithError("final commit failed");
    return;
  }
  const uint64_t target = g_ctx->wdb->db().epoch();
  if (!follower.WaitForEpoch(target, std::chrono::seconds(30)).ok()) {
    state.SkipWithError("follower never converged");
    return;
  }
  follower.Detach();
  std::sort(lags.begin(), lags.end());
  auto pct = [&](double q) {
    if (lags.empty()) return 0.0;
    size_t idx = static_cast<size_t>(q * static_cast<double>(lags.size() - 1));
    return static_cast<double>(lags[idx]);
  };
  state.counters["lag_p50"] = pct(0.50);
  state.counters["lag_p99"] = pct(0.99);
  state.counters["n"] = static_cast<double>(state.range(0));
  const RemoteShipper::Stats ss = g_ctx->shipper->stats();
  state.counters["rpcs"] = static_cast<double>(ss.rpcs);
}

/// Console reporter that also collects every run and dumps them as a
/// JSON array when the binary exits (same scheme as bench_e12).
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Record rec;
      rec.name = run.benchmark_name();
      rec.ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9
              : 0.0;
      rec.n = Counter(run, "n");
      rec.records_per_sec = Counter(run, "records_per_sec");
      rec.lag_p50 = Counter(run, "lag_p50");
      rec.lag_p99 = Counter(run, "lag_p99");
      rec.rpcs = Counter(run, "rpcs");
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void WriteJson(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::cerr << "bench_e15: cannot open " << path << " for writing\n";
      return;
    }
    out << "{\"provenance\": " << dbpl::bench::ProvenanceJson()
        << ",\n \"results\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::string variant = r.name.substr(0, r.name.find('/'));
      out << "  {\"name\": \"" << r.name << "\", \"variant\": \"" << variant
          << "\", \"n\": " << static_cast<int64_t>(r.n)
          << ", \"ns_per_op\": " << r.ns_per_op
          << ", \"records_per_sec\": " << r.records_per_sec
          << ", \"lag_p50\": " << r.lag_p50
          << ", \"lag_p99\": " << r.lag_p99
          << ", \"rpcs\": " << static_cast<int64_t>(r.rpcs) << "}"
          << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "]}\n";
  }

 private:
  struct Record {
    std::string name;
    double n = 0, ns_per_op = 0;
    double records_per_sec = 0, lag_p50 = 0, lag_p99 = 0, rpcs = 0;
  };

  static double Counter(const Run& run, const char* key) {
    auto it = run.counters.find(key);
    return it == run.counters.end() ? 0.0
                                    : static_cast<double>(it->second.value);
  }

  std::vector<Record> records_;
};

}  // namespace

BENCHMARK(BM_WireCatchUp)
    ->Arg(256)
    ->Arg(4096)
    ->UseRealTime()
    ->Setup(SetupCatchUp)
    ->Teardown(Teardown)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WireShipBatch)
    ->Arg(16)
    ->Arg(256)
    ->UseRealTime()
    ->Setup(SetupShipBatch)
    ->Teardown(Teardown)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WireFollowerLag)
    ->Arg(0)
    ->UseRealTime()
    ->Setup(SetupLag)
    ->Teardown(Teardown);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once from main before
  // any worker thread exists.
  const char* path = std::getenv("DBPL_BENCH_E15_JSON");
  reporter.WriteJson(path != nullptr ? path : "BENCH_E15.json");
  return 0;
}
