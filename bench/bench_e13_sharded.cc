// E13 — sharded multi-writer entry log (DESIGN.md §8/§9,
// EXPERIMENTS.md §E13).
//
// The claim under test: partitioning the append-only entry log into K
// hash-routed shards — each with its own writer mutex, chunk spine and
// WAL segment — removes the single writer lock from the insert path,
// so concurrent writers stop serializing on one mutex. On a
// many-core machine that buys parallel insert scaling; on one core it
// still shows up as lower lock-handoff overhead. Readers are
// unaffected either way (snapshots stay lock-free).
//
//  * BM_ShardedInsert/K/threads:T       — in-memory dyndb inserts, K
//    shards, T concurrent writer threads. The K=1/T>1 rows are the
//    single-mutex baseline the sharded rows are read against.
//  * BM_ShardedWalInsert/K/threads:T    — the same through
//    persist::WalDatabase with group commit (sync, every_n=8): lane
//    appends happen under per-shard mutexes and one leader batches
//    the fsyncs for everyone.
//  * BM_ShardedCheckpoint/K/n           — the once-per-checkpoint cost
//    at size n: snapshot save + rotating all K lane segments.
//
// WAL I/O goes through the production VFS into a fresh temp directory
// per run. This binary has its own main: besides the console output it
// writes BENCH_E13.json (override with DBPL_BENCH_E13_JSON) with one
// record per run — name, shards, threads, n, ns_per_op,
// inserts_per_sec — so the EXPERIMENTS.md §E13 table can be
// regenerated mechanically.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/value.h"
#include "dyndb/database.h"
#include "persist/wal_database.h"
#include "storage/vfs.h"

#include "provenance.h"

namespace {

using dbpl::core::Value;
using dbpl::dyndb::Database;
using dbpl::dyndb::DatabaseOptions;
using dbpl::persist::CommitPolicy;
using dbpl::persist::WalDatabase;
using dbpl::persist::WalOptions;

Value MakeRec(int64_t i) {
  return Value::RecordOf({{"seq", Value::Int(i)},
                          {"name", Value::String("r" + std::to_string(i % 97))},
                          {"flag", Value::Bool((i & 1) != 0)}});
}

std::string FreshDir() {
  static int counter = 0;
  std::string dir = std::filesystem::temp_directory_path() /
                    ("dbpl_bench_e13_" + std::to_string(::getpid()) + "_" +
                     std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir;
}

struct Ctx {
  std::string dir;
  std::unique_ptr<Database> db;
  std::unique_ptr<WalDatabase> wdb;
};

Ctx* g_ctx = nullptr;

void SetupMemory(const benchmark::State& state) {
  g_ctx = new Ctx;
  g_ctx->db = std::make_unique<Database>(
      DatabaseOptions{static_cast<int>(state.range(0))});
}

void SetupWal(const benchmark::State& state) {
  g_ctx = new Ctx;
  g_ctx->dir = FreshDir();
  auto wdb = WalDatabase::Open(
      dbpl::storage::Vfs::Default(), g_ctx->dir,
      WalOptions{CommitPolicy{8, true}, static_cast<int>(state.range(0))});
  if (!wdb.ok()) {
    std::cerr << "bench_e13: open failed: " << wdb.status() << "\n";
    std::abort();
  }
  g_ctx->wdb = std::move(*wdb);
}

void SetupCheckpoint(const benchmark::State& state) {
  g_ctx = new Ctx;
  g_ctx->dir = FreshDir();
  auto wdb = WalDatabase::Open(
      dbpl::storage::Vfs::Default(), g_ctx->dir,
      WalOptions{CommitPolicy{64, true}, static_cast<int>(state.range(0))});
  if (!wdb.ok()) std::abort();
  g_ctx->wdb = std::move(*wdb);
  const int64_t n = state.range(1);
  for (int64_t i = 0; i < n; ++i) {
    (void)g_ctx->wdb->InsertValue(MakeRec(i));
  }
}

void Teardown(const benchmark::State&) {
  g_ctx->wdb.reset();
  if (!g_ctx->dir.empty()) std::filesystem::remove_all(g_ctx->dir);
  delete g_ctx;
  g_ctx = nullptr;
}

void AddWriterCounters(benchmark::State& state, int64_t shards) {
  // Config counters must not be summed across threads (the default
  // aggregation); the throughput counter must be (total inserts / s).
  state.counters["shards"] = benchmark::Counter(
      static_cast<double>(shards), benchmark::Counter::kAvgThreads);
  state.counters["threads"] = benchmark::Counter(
      static_cast<double>(state.threads()), benchmark::Counter::kAvgThreads);
  state.counters["inserts_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_ShardedInsert(benchmark::State& state) {
  // Distinct value streams per thread so the hash routing spreads work
  // the same way a real multi-writer workload would.
  int64_t i = static_cast<int64_t>(state.thread_index()) << 32;
  for (auto _ : state) {
    g_ctx->db->MustInsertValue(MakeRec(i++));
  }
  AddWriterCounters(state, state.range(0));
}

void BM_ShardedWalInsert(benchmark::State& state) {
  int64_t i = static_cast<int64_t>(state.thread_index()) << 32;
  for (auto _ : state) {
    auto id = g_ctx->wdb->InsertValue(MakeRec(i++));
    if (!id.ok()) {
      state.SkipWithError("insert failed");
      return;
    }
  }
  AddWriterCounters(state, state.range(0));
}

void BM_ShardedCheckpoint(benchmark::State& state) {
  int64_t i = state.range(1);
  for (auto _ : state) {
    (void)g_ctx->wdb->InsertValue(MakeRec(i++));
    if (!g_ctx->wdb->Checkpoint().ok()) {
      state.SkipWithError("checkpoint failed");
      return;
    }
  }
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["threads"] = 1;
  state.counters["n"] = static_cast<double>(state.range(1));
}

/// Console reporter that also collects every run and dumps them as a
/// JSON array when the binary exits (same scheme as bench_e11).
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Record rec;
      rec.name = run.benchmark_name();
      rec.ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations) *
                    1e9
              : 0.0;
      rec.shards = Counter(run, "shards");
      rec.threads = CounterOr(run, "threads", 1.0);
      rec.n = Counter(run, "n");
      rec.inserts_per_sec = Counter(run, "inserts_per_sec");
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void WriteJson(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::cerr << "bench_e13: cannot open " << path << " for writing\n";
      return;
    }
    out << "{\"provenance\": " << dbpl::bench::ProvenanceJson()
        << ",\n \"results\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::string variant = r.name.substr(0, r.name.find('/'));
      out << "  {\"name\": \"" << r.name << "\", \"variant\": \"" << variant
          << "\", \"shards\": " << static_cast<int64_t>(r.shards)
          << ", \"threads\": " << static_cast<int64_t>(r.threads)
          << ", \"n\": " << static_cast<int64_t>(r.n)
          << ", \"ns_per_op\": " << r.ns_per_op
          << ", \"inserts_per_sec\": " << r.inserts_per_sec << "}"
          << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "]}\n";
  }

 private:
  struct Record {
    std::string name;
    double shards = 1, threads = 1, n = 0, ns_per_op = 0, inserts_per_sec = 0;
  };

  static double Counter(const Run& run, const char* key) {
    return CounterOr(run, key, 0.0);
  }
  static double CounterOr(const Run& run, const char* key, double fallback) {
    auto it = run.counters.find(key);
    return it == run.counters.end() ? fallback
                                    : static_cast<double>(it->second.value);
  }

  std::vector<Record> records_;
};

}  // namespace

BENCHMARK(BM_ShardedInsert)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime()
    ->Setup(SetupMemory)
    ->Teardown(Teardown);
BENCHMARK(BM_ShardedWalInsert)
    ->Arg(1)
    ->Arg(4)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime()
    ->Setup(SetupWal)
    ->Teardown(Teardown);
BENCHMARK(BM_ShardedCheckpoint)
    ->Args({1, 4096})
    ->Args({4, 4096})
    ->UseRealTime()
    ->Setup(SetupCheckpoint)
    ->Teardown(Teardown)
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once from main before
  // any worker thread exists.
  const char* path = std::getenv("DBPL_BENCH_E13_JSON");
  reporter.WriteJson(path != nullptr ? path : "BENCH_E13.json");
  return 0;
}
