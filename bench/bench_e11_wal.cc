// E11 — write-ahead durability (DESIGN.md §9, EXPERIMENTS.md §E11).
//
// The claim under test: with persist::WalDatabase the cost of making
// one insert durable is O(1) — append a redo record + commit marker and
// fsync — independent of how large the database already is, whereas the
// snapshot model (persist::SaveDatabase) rewrites the whole image, so
// its per-insert durability cost grows with n.
//
//  * BM_WalInsertCommit        — insert + synced commit per iteration,
//    against a database pre-seeded with n entries. Flat in n.
//  * BM_WalInsertGroupCommit   — the same with CommitPolicy{every_n},
//    amortizing the marker + fsync over a batch (every_n 1/16/128).
//  * BM_SnapshotSaveAfterInsert — the baseline: insert, then persist by
//    rewriting the whole snapshot. Linear in n.
//  * BM_WalCheckpoint          — the cost WalDatabase pays *once per
//    checkpoint* (not per insert) to bound log growth: save the
//    snapshot and rotate the log.
//
// All I/O goes through the production VFS into a fresh temp directory
// per run. This binary has its own main: besides the console output it
// writes BENCH_E11.json (override with DBPL_BENCH_E11_JSON) with one
// record per run — name, n, every_n, ns_per_op — so the EXPERIMENTS.md
// §E11 table can be regenerated mechanically.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/value.h"
#include "dyndb/database.h"
#include "persist/database_io.h"
#include "persist/wal_database.h"

#include "provenance.h"

namespace {

using dbpl::core::Value;
using dbpl::dyndb::Database;
using dbpl::persist::CommitPolicy;
using dbpl::persist::WalDatabase;

Value MakeRec(int64_t i) {
  return Value::RecordOf({{"seq", Value::Int(i)},
                          {"name", Value::String("r" + std::to_string(i % 97))},
                          {"flag", Value::Bool((i & 1) != 0)}});
}

std::string FreshDir() {
  static int counter = 0;
  std::string dir = std::filesystem::temp_directory_path() /
                    ("dbpl_bench_e11_" + std::to_string(::getpid()) + "_" +
                     std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir;
}

/// Per-run context: a WAL database pre-seeded with n entries and then
/// checkpointed, so the measured loop starts from an empty log.
struct Ctx {
  std::string dir;
  std::unique_ptr<WalDatabase> wdb;
  Database db;  // for the snapshot-save baseline
  int64_t next = 0;
};

Ctx* g_ctx = nullptr;

void SetupWal(const benchmark::State& state, CommitPolicy policy) {
  g_ctx = new Ctx;
  g_ctx->dir = FreshDir();
  auto wdb = WalDatabase::Open(g_ctx->dir, policy);
  if (!wdb.ok()) {
    std::cerr << "bench_e11: open failed: " << wdb.status() << "\n";
    std::abort();
  }
  g_ctx->wdb = std::move(*wdb);
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    (void)g_ctx->wdb->InsertValue(MakeRec(i));
  }
  if (!g_ctx->wdb->Checkpoint().ok()) std::abort();
  g_ctx->next = n;
}

void SetupWalSynced(const benchmark::State& state) {
  SetupWal(state, CommitPolicy{1, true});
}

void SetupWalGrouped(const benchmark::State& state) {
  SetupWal(state, CommitPolicy{static_cast<uint64_t>(state.range(1)), true});
}

void SetupSnapshotBaseline(const benchmark::State& state) {
  g_ctx = new Ctx;
  g_ctx->dir = FreshDir();
  std::filesystem::create_directories(g_ctx->dir);
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) g_ctx->db.MustInsertValue(MakeRec(i));
  g_ctx->next = n;
}

void Teardown(const benchmark::State&) {
  g_ctx->wdb.reset();
  std::filesystem::remove_all(g_ctx->dir);
  delete g_ctx;
  g_ctx = nullptr;
}

void BM_WalInsertCommit(benchmark::State& state) {
  for (auto _ : state) {
    auto id = g_ctx->wdb->InsertValue(MakeRec(g_ctx->next++));
    if (!id.ok()) {
      state.SkipWithError("insert failed");
      return;
    }
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["every_n"] = 1;
  state.counters["commits_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_WalInsertGroupCommit(benchmark::State& state) {
  for (auto _ : state) {
    auto id = g_ctx->wdb->InsertValue(MakeRec(g_ctx->next++));
    if (!id.ok()) {
      state.SkipWithError("insert failed");
      return;
    }
  }
  // Close the open batch so every measured insert is eventually durable.
  if (!g_ctx->wdb->Commit().ok()) state.SkipWithError("final commit failed");
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["every_n"] = static_cast<double>(state.range(1));
  state.counters["commits_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_SnapshotSaveAfterInsert(benchmark::State& state) {
  const std::string path = g_ctx->dir + "/image.dbpl";
  for (auto _ : state) {
    g_ctx->db.MustInsertValue(MakeRec(g_ctx->next++));
    if (!dbpl::persist::SaveDatabase(path, g_ctx->db).ok()) {
      state.SkipWithError("save failed");
      return;
    }
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["every_n"] = 1;
  state.counters["commits_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_WalCheckpoint(benchmark::State& state) {
  for (auto _ : state) {
    // Each iteration logs one insert and then pays the full checkpoint:
    // snapshot save + log rotation at size ~n.
    (void)g_ctx->wdb->InsertValue(MakeRec(g_ctx->next++));
    if (!g_ctx->wdb->Checkpoint().ok()) {
      state.SkipWithError("checkpoint failed");
      return;
    }
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["every_n"] = 1;
}

/// Console reporter that also collects every run and dumps them as a
/// JSON array when the binary exits (same scheme as bench_e10).
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Record rec;
      rec.name = run.benchmark_name();
      rec.ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations) *
                    1e9
              : 0.0;
      rec.n = Counter(run, "n");
      rec.every_n = CounterOr(run, "every_n", 1.0);
      rec.commits_per_sec = Counter(run, "commits_per_sec");
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void WriteJson(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::cerr << "bench_e11: cannot open " << path << " for writing\n";
      return;
    }
    out << "{\"provenance\": " << dbpl::bench::ProvenanceJson()
        << ",\n \"results\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::string variant = r.name.substr(0, r.name.find('/'));
      out << "  {\"name\": \"" << r.name << "\", \"variant\": \"" << variant
          << "\", \"n\": " << static_cast<int64_t>(r.n)
          << ", \"every_n\": " << static_cast<int64_t>(r.every_n)
          << ", \"ns_per_op\": " << r.ns_per_op
          << ", \"commits_per_sec\": " << r.commits_per_sec << "}"
          << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "]}\n";
  }

 private:
  struct Record {
    std::string name;
    double n = 0, every_n = 1, ns_per_op = 0, commits_per_sec = 0;
  };

  static double Counter(const Run& run, const char* key) {
    return CounterOr(run, key, 0.0);
  }
  static double CounterOr(const Run& run, const char* key, double fallback) {
    auto it = run.counters.find(key);
    return it == run.counters.end() ? fallback
                                    : static_cast<double>(it->second.value);
  }

  std::vector<Record> records_;
};

}  // namespace

BENCHMARK(BM_WalInsertCommit)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(32768)
    ->UseRealTime()
    ->Setup(SetupWalSynced)
    ->Teardown(Teardown);
BENCHMARK(BM_WalInsertGroupCommit)
    ->ArgsProduct({{4096}, {1, 16, 128}})
    ->UseRealTime()
    ->Setup(SetupWalGrouped)
    ->Teardown(Teardown);
BENCHMARK(BM_SnapshotSaveAfterInsert)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(32768)
    ->UseRealTime()
    ->Setup(SetupSnapshotBaseline)
    ->Teardown(Teardown)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WalCheckpoint)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(32768)
    ->UseRealTime()
    ->Setup(SetupWalSynced)
    ->Teardown(Teardown)
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once from main before
  // any worker thread exists.
  const char* path = std::getenv("DBPL_BENCH_E11_JSON");
  reporter.WriteJson(path != nullptr ? path : "BENCH_E11.json");
  return 0;
}
