# Empty dependencies file for storage_ablation_test.
# This may be replaced when dependencies are built.
