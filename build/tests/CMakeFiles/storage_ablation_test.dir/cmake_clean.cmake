file(REMOVE_RECURSE
  "CMakeFiles/storage_ablation_test.dir/storage_ablation_test.cc.o"
  "CMakeFiles/storage_ablation_test.dir/storage_ablation_test.cc.o.d"
  "storage_ablation_test"
  "storage_ablation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_ablation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
