# Empty dependencies file for type_of_test.
# This may be replaced when dependencies are built.
