file(REMOVE_RECURSE
  "CMakeFiles/type_of_test.dir/type_of_test.cc.o"
  "CMakeFiles/type_of_test.dir/type_of_test.cc.o.d"
  "type_of_test"
  "type_of_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_of_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
