# Empty compiler generated dependencies file for grelation_test.
# This may be replaced when dependencies are built.
