file(REMOVE_RECURSE
  "CMakeFiles/grelation_test.dir/grelation_test.cc.o"
  "CMakeFiles/grelation_test.dir/grelation_test.cc.o.d"
  "grelation_test"
  "grelation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grelation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
