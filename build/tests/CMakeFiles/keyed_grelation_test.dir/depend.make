# Empty dependencies file for keyed_grelation_test.
# This may be replaced when dependencies are built.
