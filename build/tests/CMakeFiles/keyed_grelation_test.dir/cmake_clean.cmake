file(REMOVE_RECURSE
  "CMakeFiles/keyed_grelation_test.dir/keyed_grelation_test.cc.o"
  "CMakeFiles/keyed_grelation_test.dir/keyed_grelation_test.cc.o.d"
  "keyed_grelation_test"
  "keyed_grelation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyed_grelation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
