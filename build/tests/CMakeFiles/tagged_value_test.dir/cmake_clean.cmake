file(REMOVE_RECURSE
  "CMakeFiles/tagged_value_test.dir/tagged_value_test.cc.o"
  "CMakeFiles/tagged_value_test.dir/tagged_value_test.cc.o.d"
  "tagged_value_test"
  "tagged_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagged_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
