# Empty compiler generated dependencies file for tagged_value_test.
# This may be replaced when dependencies are built.
