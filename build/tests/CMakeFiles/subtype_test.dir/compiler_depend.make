# Empty compiler generated dependencies file for subtype_test.
# This may be replaced when dependencies are built.
