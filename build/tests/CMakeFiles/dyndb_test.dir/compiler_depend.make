# Empty compiler generated dependencies file for dyndb_test.
# This may be replaced when dependencies are built.
