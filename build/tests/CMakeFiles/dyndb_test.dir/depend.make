# Empty dependencies file for dyndb_test.
# This may be replaced when dependencies are built.
