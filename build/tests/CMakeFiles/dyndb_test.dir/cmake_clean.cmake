file(REMOVE_RECURSE
  "CMakeFiles/dyndb_test.dir/dyndb_test.cc.o"
  "CMakeFiles/dyndb_test.dir/dyndb_test.cc.o.d"
  "dyndb_test"
  "dyndb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyndb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
