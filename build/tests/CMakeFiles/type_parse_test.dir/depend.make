# Empty dependencies file for type_parse_test.
# This may be replaced when dependencies are built.
