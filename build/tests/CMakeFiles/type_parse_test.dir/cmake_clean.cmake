file(REMOVE_RECURSE
  "CMakeFiles/type_parse_test.dir/type_parse_test.cc.o"
  "CMakeFiles/type_parse_test.dir/type_parse_test.cc.o.d"
  "type_parse_test"
  "type_parse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_parse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
