# Empty compiler generated dependencies file for classes_test.
# This may be replaced when dependencies are built.
