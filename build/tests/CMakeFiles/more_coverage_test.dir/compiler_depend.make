# Empty compiler generated dependencies file for more_coverage_test.
# This may be replaced when dependencies are built.
