file(REMOVE_RECURSE
  "CMakeFiles/more_coverage_test.dir/more_coverage_test.cc.o"
  "CMakeFiles/more_coverage_test.dir/more_coverage_test.cc.o.d"
  "more_coverage_test"
  "more_coverage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/more_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
