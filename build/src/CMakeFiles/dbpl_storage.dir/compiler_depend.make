# Empty compiler generated dependencies file for dbpl_storage.
# This may be replaced when dependencies are built.
