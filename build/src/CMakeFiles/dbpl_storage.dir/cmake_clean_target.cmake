file(REMOVE_RECURSE
  "libdbpl_storage.a"
)
