file(REMOVE_RECURSE
  "CMakeFiles/dbpl_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/dbpl_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/dbpl_storage.dir/storage/kv_store.cc.o"
  "CMakeFiles/dbpl_storage.dir/storage/kv_store.cc.o.d"
  "CMakeFiles/dbpl_storage.dir/storage/log.cc.o"
  "CMakeFiles/dbpl_storage.dir/storage/log.cc.o.d"
  "CMakeFiles/dbpl_storage.dir/storage/paged_store.cc.o"
  "CMakeFiles/dbpl_storage.dir/storage/paged_store.cc.o.d"
  "CMakeFiles/dbpl_storage.dir/storage/pager.cc.o"
  "CMakeFiles/dbpl_storage.dir/storage/pager.cc.o.d"
  "libdbpl_storage.a"
  "libdbpl_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpl_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
