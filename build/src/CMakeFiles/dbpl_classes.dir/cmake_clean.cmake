file(REMOVE_RECURSE
  "CMakeFiles/dbpl_classes.dir/classes/class_system.cc.o"
  "CMakeFiles/dbpl_classes.dir/classes/class_system.cc.o.d"
  "libdbpl_classes.a"
  "libdbpl_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpl_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
