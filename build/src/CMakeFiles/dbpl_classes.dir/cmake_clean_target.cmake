file(REMOVE_RECURSE
  "libdbpl_classes.a"
)
