# Empty dependencies file for dbpl_classes.
# This may be replaced when dependencies are built.
