file(REMOVE_RECURSE
  "libdbpl_core.a"
)
