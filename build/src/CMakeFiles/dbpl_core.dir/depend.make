# Empty dependencies file for dbpl_core.
# This may be replaced when dependencies are built.
