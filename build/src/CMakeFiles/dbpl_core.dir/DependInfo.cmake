
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fd.cc" "src/CMakeFiles/dbpl_core.dir/core/fd.cc.o" "gcc" "src/CMakeFiles/dbpl_core.dir/core/fd.cc.o.d"
  "/root/repo/src/core/grelation.cc" "src/CMakeFiles/dbpl_core.dir/core/grelation.cc.o" "gcc" "src/CMakeFiles/dbpl_core.dir/core/grelation.cc.o.d"
  "/root/repo/src/core/heap.cc" "src/CMakeFiles/dbpl_core.dir/core/heap.cc.o" "gcc" "src/CMakeFiles/dbpl_core.dir/core/heap.cc.o.d"
  "/root/repo/src/core/keyed_grelation.cc" "src/CMakeFiles/dbpl_core.dir/core/keyed_grelation.cc.o" "gcc" "src/CMakeFiles/dbpl_core.dir/core/keyed_grelation.cc.o.d"
  "/root/repo/src/core/order.cc" "src/CMakeFiles/dbpl_core.dir/core/order.cc.o" "gcc" "src/CMakeFiles/dbpl_core.dir/core/order.cc.o.d"
  "/root/repo/src/core/value.cc" "src/CMakeFiles/dbpl_core.dir/core/value.cc.o" "gcc" "src/CMakeFiles/dbpl_core.dir/core/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
