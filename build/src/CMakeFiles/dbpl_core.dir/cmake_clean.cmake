file(REMOVE_RECURSE
  "CMakeFiles/dbpl_core.dir/core/fd.cc.o"
  "CMakeFiles/dbpl_core.dir/core/fd.cc.o.d"
  "CMakeFiles/dbpl_core.dir/core/grelation.cc.o"
  "CMakeFiles/dbpl_core.dir/core/grelation.cc.o.d"
  "CMakeFiles/dbpl_core.dir/core/heap.cc.o"
  "CMakeFiles/dbpl_core.dir/core/heap.cc.o.d"
  "CMakeFiles/dbpl_core.dir/core/keyed_grelation.cc.o"
  "CMakeFiles/dbpl_core.dir/core/keyed_grelation.cc.o.d"
  "CMakeFiles/dbpl_core.dir/core/order.cc.o"
  "CMakeFiles/dbpl_core.dir/core/order.cc.o.d"
  "CMakeFiles/dbpl_core.dir/core/value.cc.o"
  "CMakeFiles/dbpl_core.dir/core/value.cc.o.d"
  "libdbpl_core.a"
  "libdbpl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
