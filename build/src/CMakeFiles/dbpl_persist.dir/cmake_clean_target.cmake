file(REMOVE_RECURSE
  "libdbpl_persist.a"
)
