
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/persist/database_io.cc" "src/CMakeFiles/dbpl_persist.dir/persist/database_io.cc.o" "gcc" "src/CMakeFiles/dbpl_persist.dir/persist/database_io.cc.o.d"
  "/root/repo/src/persist/file_util.cc" "src/CMakeFiles/dbpl_persist.dir/persist/file_util.cc.o" "gcc" "src/CMakeFiles/dbpl_persist.dir/persist/file_util.cc.o.d"
  "/root/repo/src/persist/intrinsic_store.cc" "src/CMakeFiles/dbpl_persist.dir/persist/intrinsic_store.cc.o" "gcc" "src/CMakeFiles/dbpl_persist.dir/persist/intrinsic_store.cc.o.d"
  "/root/repo/src/persist/replicating_store.cc" "src/CMakeFiles/dbpl_persist.dir/persist/replicating_store.cc.o" "gcc" "src/CMakeFiles/dbpl_persist.dir/persist/replicating_store.cc.o.d"
  "/root/repo/src/persist/schema_compat.cc" "src/CMakeFiles/dbpl_persist.dir/persist/schema_compat.cc.o" "gcc" "src/CMakeFiles/dbpl_persist.dir/persist/schema_compat.cc.o.d"
  "/root/repo/src/persist/snapshot_store.cc" "src/CMakeFiles/dbpl_persist.dir/persist/snapshot_store.cc.o" "gcc" "src/CMakeFiles/dbpl_persist.dir/persist/snapshot_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbpl_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_dyndb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
