file(REMOVE_RECURSE
  "CMakeFiles/dbpl_persist.dir/persist/database_io.cc.o"
  "CMakeFiles/dbpl_persist.dir/persist/database_io.cc.o.d"
  "CMakeFiles/dbpl_persist.dir/persist/file_util.cc.o"
  "CMakeFiles/dbpl_persist.dir/persist/file_util.cc.o.d"
  "CMakeFiles/dbpl_persist.dir/persist/intrinsic_store.cc.o"
  "CMakeFiles/dbpl_persist.dir/persist/intrinsic_store.cc.o.d"
  "CMakeFiles/dbpl_persist.dir/persist/replicating_store.cc.o"
  "CMakeFiles/dbpl_persist.dir/persist/replicating_store.cc.o.d"
  "CMakeFiles/dbpl_persist.dir/persist/schema_compat.cc.o"
  "CMakeFiles/dbpl_persist.dir/persist/schema_compat.cc.o.d"
  "CMakeFiles/dbpl_persist.dir/persist/snapshot_store.cc.o"
  "CMakeFiles/dbpl_persist.dir/persist/snapshot_store.cc.o.d"
  "libdbpl_persist.a"
  "libdbpl_persist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpl_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
