# Empty dependencies file for dbpl_persist.
# This may be replaced when dependencies are built.
