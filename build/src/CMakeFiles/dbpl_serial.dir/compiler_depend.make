# Empty compiler generated dependencies file for dbpl_serial.
# This may be replaced when dependencies are built.
