file(REMOVE_RECURSE
  "libdbpl_serial.a"
)
