file(REMOVE_RECURSE
  "CMakeFiles/dbpl_serial.dir/serial/decoder.cc.o"
  "CMakeFiles/dbpl_serial.dir/serial/decoder.cc.o.d"
  "CMakeFiles/dbpl_serial.dir/serial/encoder.cc.o"
  "CMakeFiles/dbpl_serial.dir/serial/encoder.cc.o.d"
  "libdbpl_serial.a"
  "libdbpl_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpl_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
