file(REMOVE_RECURSE
  "CMakeFiles/dbpl_common.dir/common/bytes.cc.o"
  "CMakeFiles/dbpl_common.dir/common/bytes.cc.o.d"
  "CMakeFiles/dbpl_common.dir/common/crc32c.cc.o"
  "CMakeFiles/dbpl_common.dir/common/crc32c.cc.o.d"
  "CMakeFiles/dbpl_common.dir/common/status.cc.o"
  "CMakeFiles/dbpl_common.dir/common/status.cc.o.d"
  "libdbpl_common.a"
  "libdbpl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
