# Empty compiler generated dependencies file for dbpl_common.
# This may be replaced when dependencies are built.
