file(REMOVE_RECURSE
  "libdbpl_common.a"
)
