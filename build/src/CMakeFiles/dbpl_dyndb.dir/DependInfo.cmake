
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dyndb/database.cc" "src/CMakeFiles/dbpl_dyndb.dir/dyndb/database.cc.o" "gcc" "src/CMakeFiles/dbpl_dyndb.dir/dyndb/database.cc.o.d"
  "/root/repo/src/dyndb/dynamic.cc" "src/CMakeFiles/dbpl_dyndb.dir/dyndb/dynamic.cc.o" "gcc" "src/CMakeFiles/dbpl_dyndb.dir/dyndb/dynamic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbpl_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
