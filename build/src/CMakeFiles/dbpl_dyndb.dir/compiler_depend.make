# Empty compiler generated dependencies file for dbpl_dyndb.
# This may be replaced when dependencies are built.
