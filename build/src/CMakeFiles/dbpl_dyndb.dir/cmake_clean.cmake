file(REMOVE_RECURSE
  "CMakeFiles/dbpl_dyndb.dir/dyndb/database.cc.o"
  "CMakeFiles/dbpl_dyndb.dir/dyndb/database.cc.o.d"
  "CMakeFiles/dbpl_dyndb.dir/dyndb/dynamic.cc.o"
  "CMakeFiles/dbpl_dyndb.dir/dyndb/dynamic.cc.o.d"
  "libdbpl_dyndb.a"
  "libdbpl_dyndb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpl_dyndb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
