file(REMOVE_RECURSE
  "libdbpl_dyndb.a"
)
