# Empty compiler generated dependencies file for dbpl_types.
# This may be replaced when dependencies are built.
