file(REMOVE_RECURSE
  "libdbpl_types.a"
)
