
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/types/lattice.cc" "src/CMakeFiles/dbpl_types.dir/types/lattice.cc.o" "gcc" "src/CMakeFiles/dbpl_types.dir/types/lattice.cc.o.d"
  "/root/repo/src/types/parse.cc" "src/CMakeFiles/dbpl_types.dir/types/parse.cc.o" "gcc" "src/CMakeFiles/dbpl_types.dir/types/parse.cc.o.d"
  "/root/repo/src/types/print.cc" "src/CMakeFiles/dbpl_types.dir/types/print.cc.o" "gcc" "src/CMakeFiles/dbpl_types.dir/types/print.cc.o.d"
  "/root/repo/src/types/subtype.cc" "src/CMakeFiles/dbpl_types.dir/types/subtype.cc.o" "gcc" "src/CMakeFiles/dbpl_types.dir/types/subtype.cc.o.d"
  "/root/repo/src/types/type.cc" "src/CMakeFiles/dbpl_types.dir/types/type.cc.o" "gcc" "src/CMakeFiles/dbpl_types.dir/types/type.cc.o.d"
  "/root/repo/src/types/type_of.cc" "src/CMakeFiles/dbpl_types.dir/types/type_of.cc.o" "gcc" "src/CMakeFiles/dbpl_types.dir/types/type_of.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbpl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
