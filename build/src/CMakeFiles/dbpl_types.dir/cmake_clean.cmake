file(REMOVE_RECURSE
  "CMakeFiles/dbpl_types.dir/types/lattice.cc.o"
  "CMakeFiles/dbpl_types.dir/types/lattice.cc.o.d"
  "CMakeFiles/dbpl_types.dir/types/parse.cc.o"
  "CMakeFiles/dbpl_types.dir/types/parse.cc.o.d"
  "CMakeFiles/dbpl_types.dir/types/print.cc.o"
  "CMakeFiles/dbpl_types.dir/types/print.cc.o.d"
  "CMakeFiles/dbpl_types.dir/types/subtype.cc.o"
  "CMakeFiles/dbpl_types.dir/types/subtype.cc.o.d"
  "CMakeFiles/dbpl_types.dir/types/type.cc.o"
  "CMakeFiles/dbpl_types.dir/types/type.cc.o.d"
  "CMakeFiles/dbpl_types.dir/types/type_of.cc.o"
  "CMakeFiles/dbpl_types.dir/types/type_of.cc.o.d"
  "libdbpl_types.a"
  "libdbpl_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpl_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
