file(REMOVE_RECURSE
  "CMakeFiles/dbpl_lang.dir/lang/eval.cc.o"
  "CMakeFiles/dbpl_lang.dir/lang/eval.cc.o.d"
  "CMakeFiles/dbpl_lang.dir/lang/interp.cc.o"
  "CMakeFiles/dbpl_lang.dir/lang/interp.cc.o.d"
  "CMakeFiles/dbpl_lang.dir/lang/lexer.cc.o"
  "CMakeFiles/dbpl_lang.dir/lang/lexer.cc.o.d"
  "CMakeFiles/dbpl_lang.dir/lang/parser.cc.o"
  "CMakeFiles/dbpl_lang.dir/lang/parser.cc.o.d"
  "CMakeFiles/dbpl_lang.dir/lang/rt_value.cc.o"
  "CMakeFiles/dbpl_lang.dir/lang/rt_value.cc.o.d"
  "CMakeFiles/dbpl_lang.dir/lang/typecheck.cc.o"
  "CMakeFiles/dbpl_lang.dir/lang/typecheck.cc.o.d"
  "libdbpl_lang.a"
  "libdbpl_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpl_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
