# Empty dependencies file for dbpl_lang.
# This may be replaced when dependencies are built.
