file(REMOVE_RECURSE
  "libdbpl_lang.a"
)
