
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/eval.cc" "src/CMakeFiles/dbpl_lang.dir/lang/eval.cc.o" "gcc" "src/CMakeFiles/dbpl_lang.dir/lang/eval.cc.o.d"
  "/root/repo/src/lang/interp.cc" "src/CMakeFiles/dbpl_lang.dir/lang/interp.cc.o" "gcc" "src/CMakeFiles/dbpl_lang.dir/lang/interp.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/CMakeFiles/dbpl_lang.dir/lang/lexer.cc.o" "gcc" "src/CMakeFiles/dbpl_lang.dir/lang/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/CMakeFiles/dbpl_lang.dir/lang/parser.cc.o" "gcc" "src/CMakeFiles/dbpl_lang.dir/lang/parser.cc.o.d"
  "/root/repo/src/lang/rt_value.cc" "src/CMakeFiles/dbpl_lang.dir/lang/rt_value.cc.o" "gcc" "src/CMakeFiles/dbpl_lang.dir/lang/rt_value.cc.o.d"
  "/root/repo/src/lang/typecheck.cc" "src/CMakeFiles/dbpl_lang.dir/lang/typecheck.cc.o" "gcc" "src/CMakeFiles/dbpl_lang.dir/lang/typecheck.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbpl_dyndb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_persist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
