# Empty compiler generated dependencies file for dbpl_relational.
# This may be replaced when dependencies are built.
