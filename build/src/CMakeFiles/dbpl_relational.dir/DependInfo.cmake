
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/ops.cc" "src/CMakeFiles/dbpl_relational.dir/relational/ops.cc.o" "gcc" "src/CMakeFiles/dbpl_relational.dir/relational/ops.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/CMakeFiles/dbpl_relational.dir/relational/relation.cc.o" "gcc" "src/CMakeFiles/dbpl_relational.dir/relational/relation.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/dbpl_relational.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/dbpl_relational.dir/relational/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbpl_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
