file(REMOVE_RECURSE
  "libdbpl_relational.a"
)
