file(REMOVE_RECURSE
  "CMakeFiles/dbpl_relational.dir/relational/ops.cc.o"
  "CMakeFiles/dbpl_relational.dir/relational/ops.cc.o.d"
  "CMakeFiles/dbpl_relational.dir/relational/relation.cc.o"
  "CMakeFiles/dbpl_relational.dir/relational/relation.cc.o.d"
  "CMakeFiles/dbpl_relational.dir/relational/schema.cc.o"
  "CMakeFiles/dbpl_relational.dir/relational/schema.cc.o.d"
  "libdbpl_relational.a"
  "libdbpl_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpl_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
