# Empty dependencies file for relational_toolkit.
# This may be replaced when dependencies are built.
