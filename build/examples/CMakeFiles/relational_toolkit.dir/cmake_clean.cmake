file(REMOVE_RECURSE
  "CMakeFiles/relational_toolkit.dir/relational_toolkit.cpp.o"
  "CMakeFiles/relational_toolkit.dir/relational_toolkit.cpp.o.d"
  "relational_toolkit"
  "relational_toolkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_toolkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
