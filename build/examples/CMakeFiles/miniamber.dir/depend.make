# Empty dependencies file for miniamber.
# This may be replaced when dependencies are built.
