file(REMOVE_RECURSE
  "CMakeFiles/miniamber.dir/miniamber.cpp.o"
  "CMakeFiles/miniamber.dir/miniamber.cpp.o.d"
  "miniamber"
  "miniamber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miniamber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
