file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_generalized_join.dir/bench_e1_generalized_join.cc.o"
  "CMakeFiles/bench_e1_generalized_join.dir/bench_e1_generalized_join.cc.o.d"
  "bench_e1_generalized_join"
  "bench_e1_generalized_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_generalized_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
