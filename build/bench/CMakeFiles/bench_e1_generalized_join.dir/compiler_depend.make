# Empty compiler generated dependencies file for bench_e1_generalized_join.
# This may be replaced when dependencies are built.
