# Empty dependencies file for bench_e5_subtype_check.
# This may be replaced when dependencies are built.
