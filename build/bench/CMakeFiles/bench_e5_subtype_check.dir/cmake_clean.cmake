file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_subtype_check.dir/bench_e5_subtype_check.cc.o"
  "CMakeFiles/bench_e5_subtype_check.dir/bench_e5_subtype_check.cc.o.d"
  "bench_e5_subtype_check"
  "bench_e5_subtype_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_subtype_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
