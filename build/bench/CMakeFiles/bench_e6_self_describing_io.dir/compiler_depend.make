# Empty compiler generated dependencies file for bench_e6_self_describing_io.
# This may be replaced when dependencies are built.
