file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_self_describing_io.dir/bench_e6_self_describing_io.cc.o"
  "CMakeFiles/bench_e6_self_describing_io.dir/bench_e6_self_describing_io.cc.o.d"
  "bench_e6_self_describing_io"
  "bench_e6_self_describing_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_self_describing_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
