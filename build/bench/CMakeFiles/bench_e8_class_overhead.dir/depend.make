# Empty dependencies file for bench_e8_class_overhead.
# This may be replaced when dependencies are built.
