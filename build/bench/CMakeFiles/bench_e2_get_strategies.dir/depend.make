# Empty dependencies file for bench_e2_get_strategies.
# This may be replaced when dependencies are built.
