file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_get_strategies.dir/bench_e2_get_strategies.cc.o"
  "CMakeFiles/bench_e2_get_strategies.dir/bench_e2_get_strategies.cc.o.d"
  "bench_e2_get_strategies"
  "bench_e2_get_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_get_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
