# Empty dependencies file for bench_e9_storage_ablation.
# This may be replaced when dependencies are built.
