file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_bom_memoization.dir/bench_e4_bom_memoization.cc.o"
  "CMakeFiles/bench_e4_bom_memoization.dir/bench_e4_bom_memoization.cc.o.d"
  "bench_e4_bom_memoization"
  "bench_e4_bom_memoization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_bom_memoization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
