# Empty compiler generated dependencies file for bench_e4_bom_memoization.
# This may be replaced when dependencies are built.
