file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_subsumption_insert.dir/bench_e7_subsumption_insert.cc.o"
  "CMakeFiles/bench_e7_subsumption_insert.dir/bench_e7_subsumption_insert.cc.o.d"
  "bench_e7_subsumption_insert"
  "bench_e7_subsumption_insert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_subsumption_insert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
