# Empty dependencies file for bench_e7_subsumption_insert.
# This may be replaced when dependencies are built.
