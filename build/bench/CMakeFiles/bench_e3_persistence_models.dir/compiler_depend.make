# Empty compiler generated dependencies file for bench_e3_persistence_models.
# This may be replaced when dependencies are built.
