#!/usr/bin/env bash
# Statically proves the locking discipline (DESIGN.md §10) with Clang's
# capability analysis, without needing a full Clang build tree:
#
#  1. every translation unit of the concurrent core must compile with
#     -Wthread-safety{,-beta} promoted to errors, and
#  2. tests/thread_safety_violation.cc — a file of deliberate
#     violations — must FAIL to compile under the same flags, proving
#     the analysis is actually on (a toolchain that silently dropped
#     the attributes would pass step 1 for the wrong reason).
#
# Usage: tools/run_thread_safety.sh [clang++]
#
# Exit status: 0 proven, 1 violation found (or the gate is toothless),
# 77 no Clang available (the ctest SKIP_RETURN_CODE, so `ctest -L
# analyze` reports a skip, not a failure, on GCC-only machines — GCC
# compiles the annotations to no-ops).
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cxx="${1:-clang++}"

if ! command -v "$cxx" >/dev/null 2>&1; then
  echo "$cxx not found; skipping thread-safety analysis" >&2
  exit 77
fi
if ! "$cxx" --version 2>/dev/null | grep -qi clang; then
  echo "$cxx is not Clang; -Wthread-safety needs Clang, skipping" >&2
  exit 77
fi

flags=(-std=c++20 -fsyntax-only -I"$repo_root/src"
       -Wall -Wextra
       -Wthread-safety -Wthread-safety-beta
       -Werror=thread-safety -Werror=thread-safety-beta)

# The concurrent core: every file that takes a dbpl::Mutex, plus the
# primitives themselves. Headers are checked transitively.
core=(
  src/common/mutex.cc
  src/core/parallel.cc
  src/dyndb/database.cc
  src/persist/wal.cc
  src/persist/wal_database.cc
  src/persist/replica.cc
  src/storage/log.cc
  src/serve/server.cc
  src/serve/remote_shipper.cc
)

status=0
for f in "${core[@]}"; do
  if ! "$cxx" "${flags[@]}" "$repo_root/$f"; then
    echo "thread-safety: VIOLATION in $f" >&2
    status=1
  fi
done

# Teeth check: the seeded-violation file must NOT compile.
if "$cxx" "${flags[@]}" "$repo_root/tests/thread_safety_violation.cc" \
    2>/dev/null; then
  echo "thread-safety: tests/thread_safety_violation.cc compiled cleanly" \
       "— the analysis is not running; gate is broken" >&2
  status=1
else
  echo "thread-safety: seeded violations correctly rejected" >&2
fi

if [ "$status" -eq 0 ]; then
  echo "thread-safety: locking discipline proven over ${#core[@]} TUs" >&2
fi
exit $status
