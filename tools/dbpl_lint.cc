// dbpl_lint: the MiniAmber static analyser, as a command-line tool.
//
// Usage:
//   dbpl_lint [options] <file.mam>... | -
//
// Options:
//   --json         emit machine-readable JSON (one document per file;
//                  schema documented in lang/analysis/diagnostic.h and
//                  the EXPERIMENTS.md tooling appendix)
//   --Werror       treat warnings as errors (exit 1 on any finding)
//   --extract-cpp  treat inputs as C++ sources; lint every raw string
//                  literal (R"( ... )") that parses as a MiniAmber
//                  program, remapping spans to the C++ file's lines
//
// Exit status: 0 clean, 1 findings (errors; warnings too under
// --Werror), 2 usage or I/O error.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "lang/analysis/driver.h"

namespace {

using dbpl::lang::AnalysisDriver;
using dbpl::lang::AnalysisResult;
using dbpl::lang::Diagnostic;
using dbpl::lang::RenderJson;
using dbpl::lang::RenderText;
using dbpl::lang::Severity;

struct Options {
  bool json = false;
  bool werror = false;
  bool extract_cpp = false;
  std::vector<std::string> files;
};

int Usage() {
  std::cerr << "usage: dbpl_lint [--json] [--Werror] [--extract-cpp] "
               "<file.mam>... | -\n";
  return 2;
}

bool ReadAll(const std::string& path, std::string* out) {
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    *out = buf.str();
    return true;
  }
  std::ifstream file(path);
  if (!file) return false;
  std::ostringstream buf;
  buf << file.rdbuf();
  *out = buf.str();
  return true;
}

/// One raw string literal found in a C++ file: its contents plus the
/// 1-based line and column (in the C++ file) where the contents begin.
struct Fragment {
  std::string text;
  int line = 1;
  int column = 1;
};

/// Extracts the contents of every `R"delim( ... )delim"` literal.
std::vector<Fragment> ExtractRawStrings(std::string_view source) {
  std::vector<Fragment> fragments;
  int line = 1;
  int column = 1;
  for (size_t i = 0; i < source.size(); ++i) {
    char c = source[i];
    if (c == 'R' && i + 1 < source.size() && source[i + 1] == '"') {
      size_t open = source.find('(', i + 2);
      if (open == std::string::npos) break;
      std::string delim(source.substr(i + 2, open - (i + 2)));
      std::string closer = ")" + delim + "\"";
      size_t close = source.find(closer, open + 1);
      if (close == std::string::npos) break;
      Fragment frag;
      frag.text = std::string(source.substr(open + 1, close - (open + 1)));
      // Position of the first content character.
      frag.line = line;
      frag.column = column + static_cast<int>(open + 1 - i);
      fragments.push_back(std::move(frag));
      // Advance the cursor past the literal.
      for (size_t j = i; j < close + closer.size(); ++j) {
        if (source[j] == '\n') {
          ++line;
          column = 1;
        } else {
          ++column;
        }
      }
      i = close + closer.size() - 1;
      continue;
    }
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return fragments;
}

/// Shifts a fragment-relative span to the enclosing C++ file.
void Remap(Diagnostic* d, const Fragment& frag) {
  auto shift = [&](int* ln, int* col) {
    if (*ln == 1) *col += frag.column - 1;
    *ln += frag.line - 1;
  };
  shift(&d->span.line, &d->span.column);
  shift(&d->span.end_line, &d->span.end_column);
}

/// Lints one input; returns its diagnostics (remapped for C++ inputs).
std::vector<Diagnostic> LintFile(AnalysisDriver& driver,
                                 const std::string& source,
                                 const Options& opts) {
  if (!opts.extract_cpp) {
    return driver.Analyze(source).diagnostics;
  }
  std::vector<Diagnostic> all;
  for (const Fragment& frag : ExtractRawStrings(source)) {
    AnalysisResult result = driver.Analyze(frag.text);
    // Raw strings that the front end rejects are (almost always) not
    // MiniAmber programs at all — skip them rather than relay DL000.
    if (!result.front_end_ok) continue;
    for (Diagnostic d : result.diagnostics) {
      Remap(&d, frag);
      all.push_back(std::move(d));
    }
  }
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--Werror") {
      opts.werror = true;
    } else if (arg == "--extract-cpp") {
      opts.extract_cpp = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-' && arg != "-") {
      std::cerr << "unknown option: " << arg << "\n";
      return Usage();
    } else {
      opts.files.emplace_back(arg);
    }
  }
  if (opts.files.empty()) return Usage();

  AnalysisDriver driver;
  bool any_error = false;
  bool any_finding = false;
  for (const std::string& path : opts.files) {
    std::string source;
    if (!ReadAll(path, &source)) {
      std::cerr << "cannot open " << path << "\n";
      return 2;
    }
    std::vector<Diagnostic> diags = LintFile(driver, source, opts);
    const std::string filename = path == "-" ? "<stdin>" : path;
    if (opts.json) {
      std::cout << RenderJson(diags, filename);
    } else {
      for (const Diagnostic& d : diags) {
        // In extract mode spans index the C++ file, so excerpts come
        // from the file we actually read either way.
        std::cout << RenderText(d, source, filename);
      }
    }
    for (const Diagnostic& d : diags) {
      any_finding = true;
      if (d.severity == Severity::kError) any_error = true;
    }
  }
  if (any_error || (opts.werror && any_finding)) return 1;
  return 0;
}
