#!/usr/bin/env bash
# Time-boxed coverage-guided fuzz campaign over every fuzz target in
# tests/fuzz/ — the long-running counterpart of `ctest -L fuzz-smoke`
# (which only replays corpora / does a 30 s smoke).
#
# For each target, runs libFuzzer against its committed seed corpus for
# a fixed budget, accumulating any *new* coverage-increasing inputs in
# tests/fuzz/corpus/<target>/ (commit the keepers). Crashing inputs
# land in tests/fuzz/crashes/<target>/, where the regression harness
# replays them forever after — minimize with `-minimize_crash=1`
# before committing.
#
# Usage: tools/run_fuzz_campaign.sh [build_dir] [seconds_per_target]
#   build_dir           default: build
#   seconds_per_target  default: 300
#
# Exit status: 0 campaign finished with no crashes, 1 a target found a
# crash (artifact committed to its crashes/ dir), 77 the build tree has
# no libFuzzer-instrumented targets (GCC or plain-Clang configure; the
# driver-mode binaries replay corpora but cannot search). 77 matches
# the ctest SKIP_RETURN_CODE convention used by the other gated tools.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
budget="${2:-300}"

fuzz_root="$repo_root/tests/fuzz"

# target -> extra seed dirs beyond its own corpus/ + crashes/ pair.
targets=(fuzz_miniamber fuzz_decode_dynamic fuzz_serve_frame
         fuzz_wal_replay)
extra_seeds_fuzz_miniamber="$repo_root/tests/lint_corpus"

status=0
ran=0
for target in "${targets[@]}"; do
  bin="$build_dir/tests/fuzz/$target"
  if [ ! -x "$bin" ]; then
    echo "fuzz-campaign: $target not built ($bin missing), skipping" >&2
    continue
  fi
  # Driver-mode binaries (non-Clang builds) just replay their args;
  # only a real libFuzzer binary understands -help=1.
  if ! "$bin" -help=1 2>&1 | grep -q libFuzzer; then
    echo "fuzz-campaign: $target is a corpus-replay build, not" \
         "libFuzzer; reconfigure with Clang to run a campaign" >&2
    continue
  fi
  ran=1

  corpus="$fuzz_root/corpus/${target#fuzz_}"
  crashes="$fuzz_root/crashes/${target#fuzz_}"
  mkdir -p "$corpus" "$crashes"
  seeds=()
  extra_var="extra_seeds_$target"
  [ -n "${!extra_var:-}" ] && seeds+=("${!extra_var}")

  echo "fuzz-campaign: $target for ${budget}s (corpus: $corpus)" >&2
  # The first positional dir receives new inputs; the rest seed only.
  if ! "$bin" -max_total_time="$budget" \
       -artifact_prefix="$crashes/" \
       "$corpus" "$crashes" ${seeds[@]+"${seeds[@]}"}; then
    echo "fuzz-campaign: $target CRASHED — artifact in $crashes/" >&2
    status=1
  fi
done

if [ "$ran" -eq 0 ]; then
  echo "fuzz-campaign: no libFuzzer targets in $build_dir; skipping" >&2
  exit 77
fi
exit $status
