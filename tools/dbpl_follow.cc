// dbpl_follow: a read-only network follower.
//
// Dials a dbpl_serve primary, attaches an in-memory persist::Replica
// through serve::RemoteShipper, and tails the primary's WAL over the
// wire until SIGINT/SIGTERM. Periodically reports the follower's
// position (size, epoch) and the shipping counters; survives primary
// restarts by reconnecting and re-bootstrapping.
//
// Usage:
//   dbpl_follow --primary <host:port> [--poll-ms 100] [--report-ms 1000]
//
// Exit status: 0 on clean shutdown, 1 on a startup error.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "persist/replica.h"
#include "serve/remote_shipper.h"

namespace {

// Signal flag + self-pipe so the main loop can sleep in poll(2)
// instead of spinning.
volatile std::sig_atomic_t g_stop = 0;
int g_stop_pipe[2] = {-1, -1};

void OnSignal(int /*sig*/) {
  g_stop = 1;
  char byte = 1;
  (void)!::write(g_stop_pipe[1], &byte, 1);
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --primary <host:port> [--poll-ms N] "
               "[--report-ms N]\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string primary;
  int poll_ms = 100;
  int report_ms = 1000;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--primary") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      primary = v;
    } else if (arg == "--poll-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      poll_ms = std::atoi(v);
    } else if (arg == "--report-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      report_ms = std::atoi(v);
    } else {
      return Usage(argv[0]);
    }
  }
  const size_t colon = primary.rfind(':');
  if (primary.empty() || colon == std::string::npos) return Usage(argv[0]);
  const std::string host = primary.substr(0, colon);
  const int port = std::atoi(primary.c_str() + colon + 1);
  if (port <= 0 || port > 65535 || poll_ms <= 0) return Usage(argv[0]);

  auto shipper = dbpl::serve::RemoteShipper::Connect(
      host, static_cast<uint16_t>(port));
  if (!shipper.ok()) {
    std::fprintf(stderr, "dbpl_follow: connect %s: %s\n", primary.c_str(),
                 shipper.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "dbpl_follow: connected to %s (%d shard(s))\n",
               primary.c_str(), (*shipper)->shard_count());

  dbpl::persist::Replica follower;
  dbpl::Status attached = follower.Attach(shipper->get());
  if (!attached.ok()) {
    std::fprintf(stderr, "dbpl_follow: attach: %s\n",
                 attached.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "dbpl_follow: bootstrapped (%llu entries, epoch %llu)\n",
               static_cast<unsigned long long>(follower.db().size()),
               static_cast<unsigned long long>(follower.Epoch()));

  if (::pipe(g_stop_pipe) != 0) {
    std::fprintf(stderr, "dbpl_follow: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  // Manual polling loop (rather than Replica's streaming thread) so
  // the signal can interrupt a sleep immediately and transient poll
  // errors can be logged with context.
  int since_report_ms = report_ms;  // report immediately on first lap
  while (g_stop == 0) {
    dbpl::Status polled = follower.Poll();
    if (!polled.ok()) {
      std::fprintf(stderr, "dbpl_follow: poll: %s\n",
                   polled.ToString().c_str());
    }
    if (since_report_ms >= report_ms) {
      since_report_ms = 0;
      const dbpl::persist::ReplicaStats rs = follower.stats();
      const dbpl::serve::RemoteShipper::Stats ss = (*shipper)->stats();
      std::fprintf(
          stderr,
          "dbpl_follow: size=%llu epoch=%llu bootstraps=%llu "
          "batches=%llu resyncs=%llu rpcs=%llu reconnects=%llu\n",
          static_cast<unsigned long long>(follower.db().size()),
          static_cast<unsigned long long>(follower.Epoch()),
          static_cast<unsigned long long>(rs.bootstraps),
          static_cast<unsigned long long>(rs.batches_applied),
          static_cast<unsigned long long>(rs.resyncs),
          static_cast<unsigned long long>(ss.rpcs),
          static_cast<unsigned long long>(ss.reconnects));
    }
    struct pollfd pfd = {g_stop_pipe[0], POLLIN, 0};
    (void)::poll(&pfd, 1, poll_ms);
    since_report_ms += poll_ms;
  }

  std::fprintf(stderr, "dbpl_follow: detaching\n");
  follower.Detach();
  return 0;
}
