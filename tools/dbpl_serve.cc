// dbpl_serve: the network front-end binary.
//
// Opens (or creates) a WAL-backed database directory and serves the
// dbpl-serve wire protocol (src/serve/protocol.h) over TCP until
// SIGINT/SIGTERM, then shuts down cleanly: stop accepting, drain
// workers, flush the WAL.
//
// Usage:
//   dbpl_serve --dir <path> [--host 127.0.0.1] [--port 7474]
//              [--workers 4] [--max-sessions 1024]
//              [--commit-every-n 1] [--no-sync] [--shards 0]
//
// Exit status: 0 on clean shutdown, 1 on a startup or serve error.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "persist/wal_database.h"
#include "serve/server.h"

namespace {

// Signal flag + self-pipe so the main thread can sleep in poll(2)
// instead of spinning.
volatile std::sig_atomic_t g_stop = 0;
int g_stop_pipe[2] = {-1, -1};

void OnSignal(int /*sig*/) {
  g_stop = 1;
  char byte = 1;
  (void)!::write(g_stop_pipe[1], &byte, 1);
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --dir <path> [--host H] [--port P] [--workers N]\n"
      "          [--max-sessions N] [--commit-every-n N] [--no-sync]\n"
      "          [--shards K]\n",
      argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  dbpl::serve::ServeOptions serve_opts;
  serve_opts.listen = true;
  serve_opts.port = 7474;
  dbpl::persist::WalOptions wal_opts;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      dir = v;
    } else if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      serve_opts.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      serve_opts.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      serve_opts.workers = std::atoi(v);
    } else if (arg == "--max-sessions") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      serve_opts.max_sessions = std::atoi(v);
    } else if (arg == "--commit-every-n") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      wal_opts.commit.every_n = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--no-sync") {
      wal_opts.commit.sync = false;
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      wal_opts.shards = std::atoi(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (dir.empty()) return Usage(argv[0]);

  auto wdb = dbpl::persist::WalDatabase::Open(dbpl::storage::Vfs::Default(),
                                              dir, wal_opts);
  if (!wdb.ok()) {
    std::fprintf(stderr, "dbpl_serve: open %s: %s\n", dir.c_str(),
                 wdb.status().ToString().c_str());
    return 1;
  }
  const dbpl::persist::WalRecoveryStats& rec = (*wdb)->recovery_stats();
  std::fprintf(stderr,
               "dbpl_serve: recovered %s (%llu entries; +%llu inserts, "
               "+%llu extents replayed%s)\n",
               dir.c_str(),
               static_cast<unsigned long long>((*wdb)->db().size()),
               static_cast<unsigned long long>(rec.replayed_inserts),
               static_cast<unsigned long long>(rec.replayed_extents),
               rec.corrupt_tail ? "; torn tail healed" : "");

  auto server = dbpl::serve::Server::Start(wdb->get(), serve_opts);
  if (!server.ok()) {
    std::fprintf(stderr, "dbpl_serve: start: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "dbpl_serve: listening on %s:%u (%d workers)\n",
               serve_opts.host.c_str(), (*server)->port(),
               serve_opts.workers);

  if (::pipe(g_stop_pipe) != 0) {
    std::fprintf(stderr, "dbpl_serve: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    struct pollfd pfd = {g_stop_pipe[0], POLLIN, 0};
    (void)::poll(&pfd, 1, -1);
  }

  std::fprintf(stderr, "dbpl_serve: shutting down\n");
  (*server)->Stop();
  dbpl::Status flush = (*wdb)->Commit();
  if (!flush.ok()) {
    std::fprintf(stderr, "dbpl_serve: final commit: %s\n",
                 flush.ToString().c_str());
    return 1;
  }
  return 0;
}
