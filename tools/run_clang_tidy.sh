#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the C++
# sources, using the compile database of the given build directory.
#
# Usage: tools/run_clang_tidy.sh [build_dir]
#
# Exit status: 0 clean, 1 findings, 77 clang-tidy unavailable (the
# ctest SKIP_RETURN_CODE, so `ctest -L lint` reports a skip, not a
# failure, on machines without clang-tidy).
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not found; skipping" >&2
  exit 77
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "no compile_commands.json in $build_dir;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 77
fi

# src/ covers every library (including the sharded multi-writer core
# src/dyndb/database.cc, src/core/parallel, and the WAL + replication
# layer src/persist/{wal,replica}* with its per-shard segment and
# group-commit paths); bench/ is included so the benchmark harnesses
# (through bench_e13_sharded) stay lint-clean too; examples/ uses the
# .cpp extension (the paper-walkthrough programs ship as examples).
files=$(find "$repo_root/src" "$repo_root/tools" "$repo_root/bench" \
             "$repo_root/examples" \( -name '*.cc' -o -name '*.cpp' \) \
             | sort)

status=0
for f in $files; do
  clang-tidy -p "$build_dir" --quiet "$f" || status=1
done
exit $status
