// Quickstart: a ten-minute tour of the library following the paper's
// storyline — values and their information ordering, structural types
// and subtyping, the heterogeneous database with the generic Get, and
// intrinsic persistence.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/order.h"
#include "core/value.h"
#include "dyndb/database.h"
#include "lang/interp.h"
#include "persist/intrinsic_store.h"
#include "types/parse.h"
#include "types/subtype.h"
#include "types/type_of.h"

using dbpl::core::Value;
using dbpl::types::Type;

int main() {
  // -------------------------------------------------------------------
  // 1. Values and object-level inheritance (the paper's o1 ⊑ o2).
  // -------------------------------------------------------------------
  Value o1 = Value::RecordOf(
      {{"Name", Value::String("J Doe")},
       {"Address", Value::RecordOf({{"City", Value::String("Austin")}})}});
  Value o2 = o1.WithField("Emp_no", Value::Int(1234));

  std::cout << "o1 = " << o1 << "\n";
  std::cout << "o2 = " << o2 << "\n";
  std::cout << "o1 [= o2 (o2 is more informative): " << std::boolalpha
            << dbpl::core::LessEq(o1, o2) << "\n";

  // Joining adds information; contradictions are errors.
  auto joined = dbpl::core::Join(
      o2, Value::RecordOf(
              {{"Address",
                Value::RecordOf({{"Zip", Value::Int(78759)}})}}));
  std::cout << "o2 |_| {Address = {Zip}} = " << *joined << "\n";
  auto clash = dbpl::core::Join(
      o1, Value::RecordOf({{"Name", Value::String("K Smith")}}));
  std::cout << "join with {Name = \"K Smith\"}: " << clash.status() << "\n\n";

  // -------------------------------------------------------------------
  // 2. Types: the hierarchy is structural, not declared.
  // -------------------------------------------------------------------
  Type person = *dbpl::types::ParseType("{Name: String}");
  Type employee = *dbpl::types::ParseType("{Name: String, Empno: Int}");
  std::cout << "Employee <= Person: "
            << dbpl::types::IsSubtype(employee, person) << "\n";
  std::cout << "typeof(o2) = " << dbpl::types::TypeOf(o2) << "\n\n";

  // -------------------------------------------------------------------
  // 3. The heterogeneous database and the generic Get.
  // -------------------------------------------------------------------
  dbpl::dyndb::Database db;
  db.MustInsertValue(Value::RecordOf({{"Name", Value::String("p1")}}));
  db.MustInsertValue(Value::RecordOf(
      {{"Name", Value::String("e1")}, {"Empno", Value::Int(1)}}));
  db.MustInsertValue(Value::Int(42));  // anything goes: it is a list of dynamics

  std::cout << "Get[Person]   -> " << db.GetScan(person).size()
            << " values\n";
  std::cout << "Get[Employee] -> " << db.GetScan(employee).size()
            << " values\n";
  std::cout << "Get[Int]      -> " << db.GetScan(Type::Int()).size()
            << " values\n\n";

  // -------------------------------------------------------------------
  // 4. Intrinsic persistence: naming a root is all it takes.
  // -------------------------------------------------------------------
  const std::string path = "/tmp/dbpl_quickstart.db";
  std::remove(path.c_str());
  {
    auto store = dbpl::persist::IntrinsicStore::Open(path);
    auto oid = (*store)->heap().Allocate(o2);
    (void)(*store)->SetRoot("employee_of_the_month", oid);
    (void)(*store)->Commit();
  }
  {
    auto store = dbpl::persist::IntrinsicStore::Open(path);
    auto oid = (*store)->GetRoot("employee_of_the_month");
    std::cout << "reloaded: " << *(*store)->heap().Get(*oid) << "\n\n";
  }
  std::remove(path.c_str());

  // -------------------------------------------------------------------
  // 5. The same story in MiniAmber.
  // -------------------------------------------------------------------
  dbpl::lang::Interp interp;
  auto out = interp.Run(R"(
    type Person = {Name: String};
    type Employee = {Name: String, Empno: Int};
    let db = database;
    insert {Name = "p1"} into db;
    insert {Name = "e1", Empno = 1} into db;
    let d = dynamic 3;
    coerce d to Int;
    length(get Person from db);
    {Name = "J Doe"} join {Empno = 1234};
  )");
  if (!out.ok()) {
    std::cerr << "MiniAmber error: " << out.status() << "\n";
    return 1;
  }
  std::cout << "MiniAmber outputs:\n";
  for (size_t i = 0; i < out->values.size(); ++i) {
    std::cout << "  " << out->values[i] << " : " << out->types[i] << "\n";
  }
  return 0;
}
