// The paper's two instance-hierarchy scenarios:
//
//  1. The university parking lot: a car is an *instance of* a
//     make-and-model; the length lives on the make-and-model, not the
//     car. Deleting the registration tag leaves two indistinguishable
//     cars that must nevertheless coexist — object identity.
//
//  2. The manufacturing plant: products above a price are individuals
//     (objects with their own weight and completion date); below it
//     they are classes with number-in-stock — the level in the
//     instance hierarchy depends on an attribute.
//
// Build & run:  ./build/examples/parking_lot

#include <iostream>

#include "classes/class_system.h"
#include "core/heap.h"
#include "core/order.h"
#include "types/parse.h"

using dbpl::core::Value;

int main() {
  using dbpl::types::ParseType;
  dbpl::core::Heap heap;
  dbpl::classes::ClassSystem classes(&heap);

  // -------------------------------------------------------------------
  // Scenario 1: cars and make-and-models.
  // Make-and-model is itself represented as data (one level up the
  // instance hierarchy); cars reference it, so "the Chevy Nova weighs
  // 3,000 pounds" is asked of the model, not the car.
  // -------------------------------------------------------------------
  (void)classes.DefineVariableClass(
      "MakeModel", *ParseType("{Model: String, LengthFt: Int, WeightLb: Int}"));
  (void)classes.DefineVariableClass(
      "Car", *ParseType("{Tag: String, Model: {Model: String}}"));

  auto nova = classes.NewInstance(
      "MakeModel", Value::RecordOf({{"Model", Value::String("Chevy Nova")},
                                    {"LengthFt", Value::Int(15)},
                                    {"WeightLb", Value::Int(3000)}}));

  auto car1 = classes.NewInstance(
      "Car", Value::RecordOf(
                 {{"Tag", Value::String("PA-1234")},
                  {"Model", Value::RecordOf(
                                {{"Model", Value::String("Chevy Nova")}})}}));
  (void)car1;

  // Switching levels: "My car is a Chevy Nova. The Chevy Nova weighs
  // 3,000 pounds." — resolve the car's model against the model extent.
  Value car = *heap.Get(*car1);
  const Value* model_key = car.FindField("Model");
  auto models = classes.ExtentValues("MakeModel");
  for (const auto& m : *models) {
    if (dbpl::core::LessEq(*model_key, m)) {
      std::cout << "car " << *car.FindField("Tag") << " is a "
                << *m.FindField("Model") << " weighing "
                << m.FindField("WeightLb")->AsInt() << " lb\n";
    }
  }
  (void)nova;

  // Without tags, two identical cars must coexist: objects are not
  // identified by intrinsic properties.
  Value bare = Value::RecordOf(
      {{"Model",
        Value::RecordOf({{"Model", Value::String("Chevy Nova")}})}});
  dbpl::core::Oid twin1 = heap.Allocate(bare);
  dbpl::core::Oid twin2 = heap.Allocate(bare);
  std::cout << "two identical cars coexist: oids " << twin1 << " and "
            << twin2 << ", values equal: " << std::boolalpha
            << (*heap.Get(twin1) == *heap.Get(twin2)) << "\n\n";

  // -------------------------------------------------------------------
  // Scenario 2: expensive products are individuals; cheap ones are
  // classes with stock counts. The "level" is decided by Price.
  // -------------------------------------------------------------------
  (void)classes.DefineVariableClass(
      "ProductKind",
      *ParseType("{Sku: String, Price: Real, WeightLb: Int, InStock: Int}"));
  (void)classes.DefineVariableClass(
      "ProductUnit",
      *ParseType("{Sku: String, Price: Real, WeightLb: Int, "
                 "Completed: String}"));

  struct Incoming {
    const char* sku;
    double price;
    int weight;
  };
  const Incoming incoming[] = {
      {"bolt-3in", 0.45, 1}, {"turbine-9", 125000.0, 4200},
      {"nut-3in", 0.15, 1},  {"press-2", 89000.0, 9800},
  };
  const double kIndividualThreshold = 1000.0;

  for (const auto& item : incoming) {
    if (item.price >= kIndividualThreshold) {
      // An individual: one object per physical unit.
      (void)classes.NewInstance(
          "ProductUnit",
          Value::RecordOf({{"Sku", Value::String(item.sku)},
                           {"Price", Value::Real(item.price)},
                           {"WeightLb", Value::Int(item.weight)},
                           {"Completed", Value::String("2026-07-06")}}));
    } else {
      // A class: stock is a property of the kind.
      (void)classes.NewInstance(
          "ProductKind",
          Value::RecordOf({{"Sku", Value::String(item.sku)},
                           {"Price", Value::Real(item.price)},
                           {"WeightLb", Value::Int(item.weight)},
                           {"InStock", Value::Int(100)}}));
    }
  }

  std::cout << "individually-tracked products:\n";
  auto units = classes.ExtentValues("ProductUnit");
  for (const auto& v : *units) {
    std::cout << "  " << v << "\n";
  }
  std::cout << "class-tracked products:\n";
  auto kinds = classes.ExtentValues("ProductKind");
  for (const auto& v : *kinds) {
    std::cout << "  " << v << "\n";
  }
  return 0;
}
