// An employee database built two ways, demonstrating the paper's
// central claim: the class construct (Taxis / Adaplex) is *derivable*
// from the orthogonal primitives — types, extents and persistence.
//
//  Part 1 uses the ClassSystem (the Taxis/Adaplex surface):
//    VARIABLE_CLASS EMPLOYEE isa PERSON with Empno, Dept.
//  Part 2 derives the same extents from a heterogeneous database with
//    the generic Get — no classes anywhere.
//
// Build & run:  ./build/examples/employee_db

#include <iostream>

#include "classes/class_system.h"
#include "core/heap.h"
#include "dyndb/database.h"
#include "types/parse.h"

using dbpl::core::Value;

namespace {

Value Person(const char* name) {
  return Value::RecordOf({{"Name", Value::String(name)}});
}

Value Employee(const char* name, int64_t no, const char* dept) {
  return Value::RecordOf({{"Name", Value::String(name)},
                          {"Empno", Value::Int(no)},
                          {"Dept", Value::String(dept)}});
}

}  // namespace

int main() {
  using dbpl::types::ParseType;

  // -------------------------------------------------------------------
  // Part 1: the Taxis declaration, built from primitives.
  //
  //   VARIABLE_CLASS EMPLOYEE isa PERSON with
  //     characteristics Empno: integer, Department: char(8)
  // -------------------------------------------------------------------
  dbpl::core::Heap heap;
  dbpl::classes::ClassSystem classes(&heap);
  (void)classes.DefineVariableClass("Person", *ParseType("{Name: String}"),
                                    {}, {"Name"});
  (void)classes.DefineVariableClass(
      "Employee", *ParseType("{Name: String, Empno: Int, Dept: String}"),
      {"Person"});

  (void)classes.NewInstance("Person", Person("P Plain"));
  (void)classes.NewInstance("Employee", Employee("E Vance", 1, "Sales"));
  auto doe = classes.NewInstance("Person", Person("J Doe"));

  // Object-level inheritance: J Doe gets hired — same object, new class.
  auto hired = classes.Specialize(
      *doe, "Employee",
      Value::RecordOf(
          {{"Empno", Value::Int(1234)}, {"Dept", Value::String("Sales")}}));
  std::cout << "J Doe hired (same oid " << *doe << " == " << *hired
            << "): " << *heap.Get(*doe) << "\n";

  // The key on Person rejects a second J Doe.
  auto dup = classes.NewInstance("Person", Person("J Doe"));
  std::cout << "second J Doe rejected: " << dup.status() << "\n";

  std::cout << "\nclass extents (Employee subset of Person, by "
               "construction):\n";
  for (const char* cls : {"Person", "Employee"}) {
    auto extent = classes.ExtentValues(cls);
    std::cout << "  " << cls << " (" << extent->size() << "):\n";
    for (const auto& v : *extent) std::cout << "    " << v << "\n";
  }

  // -------------------------------------------------------------------
  // Part 2: no classes — the extents fall out of the type hierarchy.
  // -------------------------------------------------------------------
  dbpl::dyndb::Database db;
  db.MustInsertValue(Person("P Plain"));
  db.MustInsertValue(Employee("E Vance", 1, "Sales"));
  db.MustInsertValue(Employee("J Doe", 1234, "Sales"));
  db.MustInsertValue(Value::String("stray value — the db is unconstrained"));

  std::cout << "\nderived extents via Get (no class construct):\n";
  for (const char* type_text :
       {"{Name: String}", "{Name: String, Empno: Int, Dept: String}"}) {
    auto t = *ParseType(type_text);
    auto values = db.GetScan(t);
    std::cout << "  Get[" << type_text << "] (" << values.size() << "):\n";
    for (const auto& v : values) std::cout << "    " << v << "\n";
  }

  // And the paper's typed result: List[∃t ≤ Person. t].
  auto packages = db.GetPackages(*ParseType("{Name: String}"));
  std::cout << "\nfirst Get package, as typed by the paper:\n  "
            << packages.front().ToString() << "\n";
  return 0;
}
