// Merrett's point, which the paper cites approvingly: relational
// algebra over *non-persistent* extents is a general computational
// toolkit — transient relations are ordinary values, further evidence
// that extent and persistence must not be welded to type.
//
// This example solves a small scheduling problem with nothing but the
// algebra: which reviewers can cover every topic of some submission,
// and per-topic workload statistics.
//
// Build & run:  ./build/examples/relational_toolkit

#include <iostream>

#include "relational/ops.h"
#include "relational/relation.h"
#include "relational/schema.h"

using dbpl::core::Value;
using dbpl::relational::AggFunc;
using dbpl::relational::AtomType;
using dbpl::relational::Relation;
using dbpl::relational::Schema;

namespace {

Value S(const char* s) { return Value::String(s); }

}  // namespace

int main() {
  // Transient relations — never persisted, never tied to a class.
  Relation expertise(Schema::Of({{"Reviewer", AtomType::kString},
                                 {"Topic", AtomType::kString}}));
  for (auto [r, t] : std::initializer_list<std::pair<const char*, const char*>>{
           {"ada", "types"},   {"ada", "persistence"}, {"ada", "algebra"},
           {"bob", "types"},   {"bob", "algebra"},
           {"cyd", "persistence"}, {"cyd", "algebra"},
       }) {
    (void)expertise.Insert({S(r), S(t)});
  }

  Relation submission(Schema::Of({{"Topic", AtomType::kString}}));
  (void)submission.Insert({S("types")});
  (void)submission.Insert({S("persistence")});

  // Division: reviewers whose expertise covers EVERY submission topic.
  auto qualified = dbpl::relational::Divide(expertise, submission);
  std::cout << "reviewers covering every topic of the submission:\n";
  for (const auto& t : qualified->tuples()) {
    std::cout << "  " << t[0] << "\n";
  }

  // Semi-join: the expertise rows relevant to this submission...
  auto relevant = dbpl::relational::SemiJoin(expertise, submission);
  // ...and aggregation: how many candidate reviewers per topic.
  auto load = dbpl::relational::GroupBy(
      *relevant, {"Topic"}, {{AggFunc::kCount, "", "Reviewers"}});
  std::cout << "\ncandidate reviewers per submission topic:\n";
  for (const auto& t : load->tuples()) {
    std::cout << "  " << t[0] << ": " << t[1] << "\n";
  }

  // Anti-join: topics in the catalogue nobody on this panel covers.
  Relation catalogue(Schema::Of({{"Topic", AtomType::kString}}));
  for (const char* t : {"types", "persistence", "algebra", "hardware"}) {
    (void)catalogue.Insert({S(t)});
  }
  auto uncovered = dbpl::relational::AntiJoin(catalogue, expertise);
  std::cout << "\ncatalogue topics with no reviewer at all:\n";
  for (const auto& t : uncovered->tuples()) {
    std::cout << "  " << t[0] << "\n";
  }

  // A whole-relation fold: total expertise rows and alphabetically
  // first reviewer — the algebra as a general-purpose language.
  auto stats = dbpl::relational::GroupBy(
      expertise, {},
      {{AggFunc::kCount, "", "Rows"}, {AggFunc::kMin, "Reviewer", "First"}});
  std::cout << "\nfold over the whole relation: rows="
            << stats->tuples()[0][0] << ", first reviewer="
            << stats->tuples()[0][1] << "\n";
  return 0;
}
