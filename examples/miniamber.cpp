// MiniAmber runner: executes a .mam program file, or the built-in demo
// program (a condensed tour of every paper feature) when no file is
// given.
//
// Usage:
//   ./build/examples/miniamber [program.mam [persist_dir]]
//   ./build/examples/miniamber -i          # interactive REPL

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "lang/interp.h"

namespace {

constexpr char kDemo[] = R"(
-- MiniAmber demo: the paper's features in one program.

-- Structural types; Employee <= Person is inferred, not declared.
type Person = {Name: String, Address: {City: String}};
type Employee = {Name: String, Address: {City: String},
                 Empno: Int, Dept: String};

-- Amber's Dynamic.
let d = dynamic 3;
coerce d to Int;                       -- 3
typeof (dynamic {Name = "J Doe"});     -- the carried type

-- The heterogeneous database and the generic Get.
let db = database;
insert {Name = "p1", Address = {City = "Moose"}} into db;
insert {Name = "e1", Address = {City = "Austin"},
        Empno = 1, Dept = "Sales"} into db;
insert {Name = "e2", Address = {City = "Austin"},
        Empno = 2, Dept = "Manuf"} into db;
insert 42 into db;                     -- anything goes

length(get Person from db);            -- 3
length(get Employee from db);          -- 2
map(fun (p: Person) : String => p.Name, get Person from db);

-- Object-level inheritance: the information join.
let o1 = {Name = "J Doe", Address = {City = "Austin"}};
o1 join {Emp_no = 1234};

-- A recursive function over data.
let rec fact(n: Int) : Int = if n <= 1 then 1 else n * fact(n - 1);
fact(10);

-- Variants with exhaustiveness-checked case, over a recursive Mu type.
type IntList = Mu l. <nil: {} | cons: {head: Int, tail: l}>;
let rec total(l: IntList) : Int =
  case l of nil(u) => 0 | cons(c) => c.head + total(c.tail) end;
total(<cons = {head = 1, tail = <cons = {head = 2, tail = <nil = {}>}>}>);
)";

}  // namespace

int RunRepl() {
  dbpl::lang::Interp interp("/tmp/dbpl_repl_store");
  std::cout << "MiniAmber REPL — end each statement with ';', Ctrl-D to "
               "quit.\n";
  std::string buffer;
  std::string line;
  std::cout << "> " << std::flush;
  while (std::getline(std::cin, line)) {
    buffer += line;
    buffer += "\n";
    // Execute once the input ends with a semicolon.
    auto last = buffer.find_last_not_of(" \t\n");
    if (last != std::string::npos && buffer[last] == ';') {
      auto out = interp.RunIncremental(buffer);
      if (!out.ok()) {
        std::cout << "error: " << out.status() << "\n";
      } else {
        for (const std::string& warning : out->warnings) {
          std::cout << warning;
        }
        for (size_t i = 0; i < out->values.size(); ++i) {
          std::cout << out->values[i] << " : " << out->types[i] << "\n";
        }
      }
      buffer.clear();
      std::cout << "> " << std::flush;
    } else {
      std::cout << "... " << std::flush;
    }
  }
  std::cout << "\n";
  return 0;
}

int main(int argc, char** argv) {
  std::string source = kDemo;
  std::string persist_dir;
  if (argc > 1 && std::string(argv[1]) == "-i") {
    return RunRepl();
  }
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << file.rdbuf();
    source = buf.str();
  }
  if (argc > 2) persist_dir = argv[2];

  dbpl::lang::Interp interp(persist_dir);
  auto out = interp.Run(source);
  if (!out.ok()) {
    std::cerr << "error: " << out.status() << "\n";
    return 1;
  }
  for (const std::string& warning : out->warnings) {
    std::cerr << warning;
  }
  for (size_t i = 0; i < out->values.size(); ++i) {
    std::cout << out->values[i] << " : " << out->types[i] << "\n";
  }
  return 0;
}
