// The paper's closing example: the bill-of-materials computation, and
// why "adding transient information to a persistent structure can be
// quite useful".
//
// Parts form a DAG (shared sub-assemblies), stored persistently in an
// IntrinsicStore. TotalCost is computed twice:
//   * naively — exponential re-computation on shared subparts;
//   * memoized — a *transient* memo field is joined onto each part
//     object during the computation and stripped before commit, so the
//     extra information never persists, exactly as the paper asks.
//
// Build & run:  ./build/examples/bill_of_materials

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "core/heap.h"
#include "core/order.h"
#include "persist/intrinsic_store.h"

using dbpl::core::Heap;
using dbpl::core::Oid;
using dbpl::core::Value;

namespace {

uint64_t g_naive_visits = 0;
uint64_t g_memo_visits = 0;

/// A base part: bought, not manufactured.
Value BasePart(const char* name, double price) {
  return Value::RecordOf({{"Name", Value::String(name)},
                          {"IsBase", Value::Bool(true)},
                          {"PurchasePrice", Value::Real(price)},
                          {"Components", Value::List({})}});
}

/// A manufactured part with components (subpart oid, quantity).
Value Assembly(const char* name, double cost,
               const std::vector<std::pair<Oid, double>>& components) {
  std::vector<Value> comps;
  comps.reserve(components.size());
  for (const auto& [oid, qty] : components) {
    comps.push_back(Value::RecordOf(
        {{"SubPart", Value::Ref(oid)}, {"Qty", Value::Real(qty)}}));
  }
  return Value::RecordOf({{"Name", Value::String(name)},
                          {"IsBase", Value::Bool(false)},
                          {"ManufacturingCost", Value::Real(cost)},
                          {"Components", Value::List(std::move(comps))}});
}

/// The paper's recursive TotalCost, with needless recomputation on
/// DAG-shaped part explosions.
double TotalCostNaive(const Heap& heap, Oid part) {
  ++g_naive_visits;
  Value p = *heap.Get(part);
  if (p.FindField("IsBase")->AsBool()) {
    return p.FindField("PurchasePrice")->AsReal();
  }
  double total = p.FindField("ManufacturingCost")->AsReal();
  for (const Value& comp : p.FindField("Components")->elements()) {
    total += comp.FindField("Qty")->AsReal() *
             TotalCostNaive(heap, comp.FindField("SubPart")->AsRef());
  }
  return total;
}

/// The memoized version: the intermediate result is attached to the
/// part *object* as an extra field (object-level inheritance — the
/// value is joined with {MemoTotalCost = x}), then checked on re-entry.
double TotalCostMemoized(Heap& heap, Oid part) {
  ++g_memo_visits;
  Value p = *heap.Get(part);
  if (const Value* memo = p.FindField("MemoTotalCost")) {
    return memo->AsReal();
  }
  double total;
  if (p.FindField("IsBase")->AsBool()) {
    total = p.FindField("PurchasePrice")->AsReal();
  } else {
    total = p.FindField("ManufacturingCost")->AsReal();
    for (const Value& comp : p.FindField("Components")->elements()) {
      total += comp.FindField("Qty")->AsReal() *
               TotalCostMemoized(heap, comp.FindField("SubPart")->AsRef());
    }
  }
  // Join the transient field onto the persistent object.
  (void)heap.Extend(part, Value::RecordOf(
                              {{"MemoTotalCost", Value::Real(total)}}));
  return total;
}

/// Strips the transient memo fields: "there is no need for the
/// additional information to persist".
void StripMemos(Heap& heap) {
  for (Oid oid : heap.Oids()) {
    Value v = *heap.Get(oid);
    if (v.kind() != dbpl::core::ValueKind::kRecord ||
        v.FindField("MemoTotalCost") == nullptr) {
      continue;
    }
    std::vector<std::string> keep;
    for (const auto& f : v.fields()) {
      if (f.name != "MemoTotalCost") keep.push_back(f.name);
    }
    (void)heap.Put(oid, v.Project(keep));
  }
}

}  // namespace

int main() {
  const std::string path = "/tmp/dbpl_bom.db";
  std::remove(path.c_str());
  auto store = dbpl::persist::IntrinsicStore::Open(path);
  Heap& heap = (*store)->heap();

  // Build a parts DAG with heavy sharing: each level uses the previous
  // level twice (a ladder), so the explosion diagram is a DAG, not a
  // tree — the case the paper says causes needless recomputation.
  Oid bolt = heap.Allocate(BasePart("bolt", 0.5));
  Oid nut = heap.Allocate(BasePart("nut", 0.25));
  Oid level = heap.Allocate(Assembly("clamp", 1.0, {{bolt, 4}, {nut, 4}}));
  for (int i = 0; i < 18; ++i) {
    level = heap.Allocate(Assembly(("asm-" + std::to_string(i)).c_str(), 2.0,
                                   {{level, 1}, {level, 1}}));
  }
  (void)(*store)->SetRoot("product", level);
  (void)(*store)->Commit();

  double naive = TotalCostNaive(heap, level);
  double memo = TotalCostMemoized(heap, level);
  std::cout << "total cost (naive):    " << naive << "  ["
            << g_naive_visits << " part visits]\n";
  std::cout << "total cost (memoized): " << memo << "  [" << g_memo_visits
            << " part visits]\n";
  std::cout << "speedup factor: "
            << static_cast<double>(g_naive_visits) /
                   static_cast<double>(g_memo_visits)
            << "x\n";

  // The memo fields exist right now — but they are transient: strip
  // them before commit so the persistent store never sees them.
  StripMemos(heap);
  (void)(*store)->Commit();
  std::cout << "after strip+commit, uncommitted changes: " << std::boolalpha
            << (*store)->HasUncommittedChanges() << "\n";

  // Reopen and verify no memo ever persisted.
  store->reset();
  auto reopened = dbpl::persist::IntrinsicStore::Open(path);
  bool any_memo = false;
  for (Oid oid : (*reopened)->heap().Oids()) {
    Value v = *(*reopened)->heap().Get(oid);
    if (v.kind() == dbpl::core::ValueKind::kRecord &&
        v.FindField("MemoTotalCost") != nullptr) {
      any_memo = true;
    }
  }
  std::cout << "memo fields in the persistent store: " << any_memo << "\n";
  std::remove(path.c_str());
  return 0;
}
