// The paper's "Persistent Pascal" sketch: a program declares
//
//   type DBType = ...;  var DB: DBType handle DBHandle;
//
// and is later *recompiled* with a modified DBType'. Opening succeeds
// when DBType' is a supertype (a view) or merely consistent (schema
// enrichment); a contradictory redefinition is rejected. This example
// plays three successive "program versions" against one intrinsic
// store.
//
// Build & run:  ./build/examples/schema_evolution

#include <cstdio>
#include <iostream>

#include "core/value.h"
#include "persist/intrinsic_store.h"
#include "persist/schema_compat.h"
#include "types/parse.h"

using dbpl::core::Value;
using dbpl::persist::IntrinsicStore;
using dbpl::types::ParseType;

int main() {
  const std::string path = "/tmp/dbpl_schema_evolution.db";
  std::remove(path.c_str());

  auto v1 = *ParseType("{Employees: Set[{Name: String}]}");
  auto v2 = *ParseType(
      "{Employees: Set[{Name: String}], Departments: Set[{Dept: String}]}");
  auto v3 = *ParseType(
      "{Employees: Set[{Name: String, Empno: Int}]}");
  auto bad = *ParseType("{Employees: Int}");

  // ---- Program version 1: create the database at schema v1. --------
  {
    auto store = IntrinsicStore::Open(path);
    auto db = (*store)->heap().Allocate(Value::RecordOf(
        {{"Employees",
          Value::Set({Value::RecordOf({{"Name", Value::String("J Doe")}})})}}));
    (void)(*store)->SetRootTyped("DB", db, v1);
    (void)(*store)->Commit();
    std::cout << "v1 created database with schema:\n  " << v1 << "\n\n";
  }

  // ---- Program version 2: recompiled with new fields (enrichment). -
  {
    auto store = IntrinsicStore::Open(path);
    std::cout << "opening stored v1 at v2 is classified as: "
              << dbpl::persist::SchemaCompatName(
                     dbpl::persist::ClassifySchema(v1, v2))
              << "\n";
    auto oid = (*store)->OpenRootChecked("DB", v2);
    if (!oid.ok()) {
      std::cerr << "unexpected failure: " << oid.status() << "\n";
      return 1;
    }
    std::cout << "schema evolved to:\n  " << *(*store)->RootType("DB")
              << "\n\n";
    (void)(*store)->Commit();
  }

  // ---- Program version 3: a *sibling* enrichment (v3 deepens
  //      Employees); the recorded schema becomes the common subtype. --
  {
    auto store = IntrinsicStore::Open(path);
    auto stored = *(*store)->RootType("DB");
    std::cout << "opening stored schema at v3 is classified as: "
              << dbpl::persist::SchemaCompatName(
                     dbpl::persist::ClassifySchema(stored, v3))
              << "\n";
    auto oid = (*store)->OpenRootChecked("DB", v3);
    if (!oid.ok()) {
      std::cerr << "unexpected failure: " << oid.status() << "\n";
      return 1;
    }
    std::cout << "schema evolved to:\n  " << *(*store)->RootType("DB")
              << "\n\n";
    (void)(*store)->Commit();
  }

  // ---- Re-opening at the ORIGINAL v1 still works: it is a view. ----
  {
    auto store = IntrinsicStore::Open(path);
    auto oid = (*store)->OpenRootChecked("DB", v1);
    std::cout << "re-opening at the original v1: "
              << (oid.ok() ? "OK (a view; nothing was lost)" : "FAILED")
              << "\n";
    // And the recorded schema keeps every enrichment.
    std::cout << "schema after the v1 view:\n  " << *(*store)->RootType("DB")
              << "\n\n";
  }

  // ---- A contradictory recompilation is rejected. -------------------
  {
    auto store = IntrinsicStore::Open(path);
    auto oid = (*store)->OpenRootChecked("DB", bad);
    std::cout << "opening at {Employees: Int}: " << oid.status() << "\n";
  }

  std::remove(path.c_str());
  return 0;
}
