#include "core/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "test_util.h"

namespace dbpl::core {
namespace {

using RecordField = Value::RecordField;

TEST(ValueTest, DefaultIsBottom) {
  Value v;
  EXPECT_TRUE(v.is_bottom());
  EXPECT_EQ(v.kind(), ValueKind::kBottom);
  EXPECT_EQ(v, Value::Bottom());
}

TEST(ValueTest, AtomAccessors) {
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_EQ(Value::Ref(42).AsRef(), 42u);
}

TEST(ValueTest, RecordFieldsAreSortedByName) {
  Value v = Value::RecordOf({{"z", Value::Int(1)},
                             {"a", Value::Int(2)},
                             {"m", Value::Int(3)}});
  ASSERT_EQ(v.fields().size(), 3u);
  EXPECT_EQ(v.fields()[0].name, "a");
  EXPECT_EQ(v.fields()[1].name, "m");
  EXPECT_EQ(v.fields()[2].name, "z");
}

TEST(ValueTest, DuplicateFieldNamesRejected) {
  Result<Value> r =
      Value::Record({{"x", Value::Int(1)}, {"x", Value::Int(2)}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValueTest, FieldOrderDoesNotAffectEquality) {
  Value a = Value::RecordOf({{"x", Value::Int(1)}, {"y", Value::Int(2)}});
  Value b = Value::RecordOf({{"y", Value::Int(2)}, {"x", Value::Int(1)}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ValueTest, SetsDeduplicateAndNormalize) {
  Value a = Value::Set({Value::Int(3), Value::Int(1), Value::Int(3)});
  Value b = Value::Set({Value::Int(1), Value::Int(3)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.elements().size(), 2u);
}

TEST(ValueTest, ListsPreserveOrderAndDuplicates) {
  Value a = Value::List({Value::Int(3), Value::Int(1), Value::Int(3)});
  EXPECT_EQ(a.elements().size(), 3u);
  Value b = Value::List({Value::Int(1), Value::Int(3), Value::Int(3)});
  EXPECT_NE(a, b);
}

TEST(ValueTest, SetAndListAreDistinct) {
  Value s = Value::Set({Value::Int(1)});
  Value l = Value::List({Value::Int(1)});
  EXPECT_NE(s, l);
}

TEST(ValueTest, FindField) {
  Value v = Value::RecordOf(
      {{"Name", Value::String("J Doe")}, {"Age", Value::Int(40)}});
  ASSERT_NE(v.FindField("Name"), nullptr);
  EXPECT_EQ(v.FindField("Name")->AsString(), "J Doe");
  EXPECT_EQ(v.FindField("Missing"), nullptr);
  EXPECT_EQ(Value::Int(1).FindField("x"), nullptr);
}

TEST(ValueTest, WithFieldReplacesAndAdds) {
  Value v = Value::RecordOf({{"x", Value::Int(1)}});
  Value w = v.WithField("x", Value::Int(2));
  EXPECT_EQ(w.FindField("x")->AsInt(), 2);
  Value u = v.WithField("y", Value::Int(3));
  EXPECT_EQ(u.FindField("x")->AsInt(), 1);
  EXPECT_EQ(u.FindField("y")->AsInt(), 3);
  // Original unchanged (values are immutable).
  EXPECT_EQ(v.FindField("x")->AsInt(), 1);
  EXPECT_EQ(v.FindField("y"), nullptr);
}

TEST(ValueTest, ProjectKeepsOnlyNamedFields) {
  Value v = Value::RecordOf({{"a", Value::Int(1)},
                             {"b", Value::Int(2)},
                             {"c", Value::Int(3)}});
  Value p = v.Project({"a", "c", "zz"});
  EXPECT_EQ(p, Value::RecordOf({{"a", Value::Int(1)}, {"c", Value::Int(3)}}));
}

TEST(ValueTest, NestedRecordEquality) {
  Value a = Value::RecordOf(
      {{"Addr", Value::RecordOf({{"City", Value::String("Austin")}})}});
  Value b = Value::RecordOf(
      {{"Addr", Value::RecordOf({{"City", Value::String("Austin")}})}});
  EXPECT_EQ(a, b);
  Value c = Value::RecordOf(
      {{"Addr", Value::RecordOf({{"City", Value::String("Moose")}})}});
  EXPECT_NE(a, c);
}

TEST(ValueTest, ToStringUsesPaperNotation) {
  Value o1 = Value::RecordOf(
      {{"Name", Value::String("J Doe")},
       {"Addr", Value::RecordOf({{"City", Value::String("Austin")}})}});
  EXPECT_EQ(o1.ToString(), "{Addr = {City = \"Austin\"}, Name = \"J Doe\"}");
  EXPECT_EQ(Value::Bottom().ToString(), "_|_");
  EXPECT_EQ(Value::Set({Value::Int(1)}).ToString(), "{|1|}");
  EXPECT_EQ(Value::List({Value::Int(1)}).ToString(), "[1]");
  EXPECT_EQ(Value::Ref(9).ToString(), "@9");
}

TEST(ValueTest, CompareIsATotalOrderOnCorpus) {
  auto corpus = dbpl::testing::Corpus(1234, 60, 2);
  for (const auto& a : corpus) {
    EXPECT_EQ(Compare(a, a), 0);
    for (const auto& b : corpus) {
      int ab = Compare(a, b);
      int ba = Compare(b, a);
      EXPECT_EQ(ab == 0, ba == 0);
      if (ab != 0) EXPECT_EQ(ab > 0, ba < 0);
      if (ab == 0) {
        EXPECT_EQ(a, b);
        EXPECT_EQ(a.Hash(), b.Hash());
      }
      for (const auto& c : corpus) {
        if (Compare(a, b) <= 0 && Compare(b, c) <= 0) {
          EXPECT_LE(Compare(a, c), 0);
        }
      }
    }
  }
}

TEST(ValueTest, HashDistributesAcrossCorpus) {
  auto corpus = dbpl::testing::Corpus(99, 200, 2);
  std::unordered_set<size_t> hashes;
  size_t distinct_values = 0;
  std::unordered_set<Value, ValueHash> seen;
  for (const auto& v : corpus) {
    if (seen.insert(v).second) {
      ++distinct_values;
      hashes.insert(v.Hash());
    }
  }
  // Collisions allowed, but hashing must not collapse the corpus.
  EXPECT_GE(hashes.size() * 2, distinct_values);
}

TEST(ValueTest, ValueUsableInUnorderedSet) {
  std::unordered_set<Value, ValueHash> s;
  s.insert(Value::Int(1));
  s.insert(Value::Int(1));
  s.insert(Value::Int(2));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(Value::Int(2)));
  EXPECT_FALSE(s.contains(Value::Int(3)));
}

TEST(ValueTest, EmptyRecordAndEmptySetAreDistinctAndNotBottom) {
  Value er = Value::RecordOf({});
  Value es = Value::Set({});
  EXPECT_NE(er, es);
  EXPECT_FALSE(er.is_bottom());
  EXPECT_FALSE(es.is_bottom());
  EXPECT_NE(er, Value::Bottom());
}

}  // namespace
}  // namespace dbpl::core
