// Differential and regression tests for the signature-partitioned
// generalized join (core/join_engine.h) against the naive all-pairs
// oracle, plus the status-propagation contract of GRelation::Join and
// the strictness of GRelation::Project.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/grelation.h"
#include "core/join_engine.h"
#include "core/order.h"
#include "core/value.h"
#include "relational/ops.h"
#include "relational/relation.h"
#include "test_util.h"

namespace dbpl::core {
namespace {

using dbpl::testing::Corpus;
using dbpl::testing::MinReduceForTest;
using dbpl::testing::RecordCorpus;
using dbpl::testing::Rng;

/// Asserts the two relations are equal and both satisfy the cochain
/// invariant.
void ExpectSameRelation(const Result<GRelation>& fast,
                        const Result<GRelation>& naive) {
  ASSERT_TRUE(fast.ok()) << fast.status().message();
  ASSERT_TRUE(naive.ok()) << naive.status().message();
  ASSERT_TRUE(fast->CheckInvariant().ok());
  ASSERT_TRUE(naive->CheckInvariant().ok());
  EXPECT_EQ(*fast, *naive) << "partitioned:\n"
                           << fast->ToString() << "\nnaive:\n"
                           << naive->ToString();
}

TEST(PartitionedJoinProperty, MatchesNaiveOnFlatRecords) {
  Rng rng(0xE11);
  for (int trial = 0; trial < 40; ++trial) {
    for (int bottom_pct : {0, 50}) {
      GRelation r1 =
          GRelation::FromObjects(RecordCorpus(rng, 12, bottom_pct, false));
      GRelation r2 =
          GRelation::FromObjects(RecordCorpus(rng, 12, bottom_pct, false));
      ExpectSameRelation(GRelation::Join(r1, r2), GRelation::JoinNaive(r1, r2));
    }
  }
}

TEST(PartitionedJoinProperty, MatchesNaiveOnNestedRecords) {
  Rng rng(0xE12);
  for (int trial = 0; trial < 40; ++trial) {
    for (int bottom_pct : {0, 50}) {
      GRelation r1 =
          GRelation::FromObjects(RecordCorpus(rng, 10, bottom_pct, true));
      GRelation r2 =
          GRelation::FromObjects(RecordCorpus(rng, 10, bottom_pct, true));
      ExpectSameRelation(GRelation::Join(r1, r2), GRelation::JoinNaive(r1, r2));
    }
  }
}

TEST(PartitionedJoinProperty, MatchesNaiveOnArbitraryValues) {
  // Mixed cochains — sets, lists, tagged values, atoms — exercise the
  // residual (unpartitionable) path.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    GRelation r1 = GRelation::FromObjects(Corpus(seed, 8, 2));
    GRelation r2 = GRelation::FromObjects(Corpus(seed + 1000, 8, 2));
    ExpectSameRelation(GRelation::Join(r1, r2), GRelation::JoinNaive(r1, r2));
  }
}

TEST(PartitionedJoinProperty, ThreadedMatchesSequential) {
  Rng rng(0xE13);
  for (int trial = 0; trial < 10; ++trial) {
    GRelation r1 = GRelation::FromObjects(RecordCorpus(rng, 24, 25, true));
    GRelation r2 = GRelation::FromObjects(RecordCorpus(rng, 24, 25, true));
    ExpectSameRelation(GRelation::Join(r1, r2, JoinOptions{.threads = 4}),
                       GRelation::Join(r1, r2));
  }
}

TEST(PartitionedJoinProperty, FlatTotalRecordsMatchClassicalJoin) {
  // On flat, total records the generalized join must coincide with the
  // classical relational natural join — the paper's degeneration claim,
  // checked end-to-end through the relational bridge.
  using relational::AtomType;
  using relational::Relation;
  using relational::Schema;
  Rng rng(0xE14);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r1(Schema::Of({{"A", AtomType::kInt}, {"B", AtomType::kInt}}));
    Relation r2(Schema::Of({{"B", AtomType::kInt}, {"C", AtomType::kInt}}));
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(
          r1.InsertRecord(Value::RecordOf(
                              {{"A", Value::Int(static_cast<int64_t>(
                                         rng.Below(8)))},
                               {"B", Value::Int(static_cast<int64_t>(
                                         rng.Below(4)))}}))
              .ok());
      ASSERT_TRUE(
          r2.InsertRecord(Value::RecordOf(
                              {{"B", Value::Int(static_cast<int64_t>(
                                         rng.Below(4)))},
                               {"C", Value::Int(static_cast<int64_t>(
                                         rng.Below(8)))}}))
              .ok());
    }
    Result<Relation> classical = relational::NaturalJoin(r1, r2);
    Result<Relation> generalized = relational::GeneralizedNaturalJoin(r1, r2);
    ASSERT_TRUE(classical.ok());
    ASSERT_TRUE(generalized.ok()) << generalized.status().message();
    EXPECT_EQ(classical->ToGRelation(), generalized->ToGRelation());
  }
}

TEST(MinimalAntichainProperty, MatchesNaiveMinReduce) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    std::vector<Value> vs = Corpus(seed, 14, 2);
    // The naive oracle keeps duplicates (neither copy strictly
    // dominates); MinimalAntichain deduplicates. Compare on
    // duplicate-free input.
    std::sort(vs.begin(), vs.end(),
              [](const Value& a, const Value& b) { return Compare(a, b) < 0; });
    vs.erase(std::unique(vs.begin(), vs.end()), vs.end());

    std::vector<Value> fast = MinimalAntichain(vs);
    std::vector<Value> naive = MinReduceForTest(vs);
    auto less = [](const Value& a, const Value& b) {
      return Compare(a, b) < 0;
    };
    std::sort(fast.begin(), fast.end(), less);
    std::sort(naive.begin(), naive.end(), less);
    EXPECT_EQ(fast, naive) << "seed " << seed;
  }
}

TEST(JoinStatusRegression, NonInconsistentJoinerErrorPropagates) {
  // The original bug: GRelation::Join treated *every* pairwise failure
  // as "no match" and dropped it. Only Inconsistent may be dropped.
  GRelation r1 = GRelation::FromObjects({Value::Int(1)});
  GRelation r2 = GRelation::FromObjects({Value::Int(2)});
  Result<GRelation> joined = GRelation::JoinNaiveWith(
      r1, r2, [](const Value&, const Value&) -> Result<Value> {
        return Status::Internal("lattice bug");
      });
  ASSERT_FALSE(joined.ok());
  EXPECT_EQ(joined.status().code(), StatusCode::kInternal);
  EXPECT_NE(joined.status().message().find("lattice bug"), std::string::npos);
}

TEST(JoinStatusRegression, InconsistentPairsAreDroppedNotFatal) {
  GRelation r1 = GRelation::FromObjects({Value::Int(1)});
  GRelation r2 = GRelation::FromObjects({Value::Int(2)});
  Result<GRelation> joined = GRelation::JoinNaiveWith(
      r1, r2, [](const Value&, const Value&) -> Result<Value> {
        return Status::Inconsistent("no match");
      });
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->empty());
}

TEST(JoinStatusRegression, RealJoinAgreesWithInjectedDefault) {
  // JoinNaiveWith(core::Join) is exactly JoinNaive.
  Rng rng(0xE15);
  GRelation r1 = GRelation::FromObjects(RecordCorpus(rng, 8, 25, true));
  GRelation r2 = GRelation::FromObjects(RecordCorpus(rng, 8, 25, true));
  Result<GRelation> a = GRelation::JoinNaive(r1, r2);
  Result<GRelation> b = GRelation::JoinNaiveWith(
      r1, r2,
      [](const Value& x, const Value& y) { return core::Join(x, y); });
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(ProjectRegression, NonRecordMemberIsAnErrorNotDropped) {
  // The original bug: Project silently skipped non-record members, so a
  // mixed cochain projected to fewer rows with no indication.
  GRelation r;
  r.Insert(Value::RecordOf({{"Name", Value::String("ada")},
                            {"Dept", Value::String("cs")}}));
  r.Insert(Value::Int(7));
  Result<GRelation> p = r.Project({"Name"});
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(p.status().message().find("non-record"), std::string::npos);
}

TEST(ProjectRegression, AllRecordCochainStillProjects) {
  GRelation r;
  r.Insert(Value::RecordOf({{"Name", Value::String("ada")},
                            {"Dept", Value::String("cs")}}));
  r.Insert(Value::RecordOf({{"Name", Value::String("bob")},
                            {"Dept", Value::String("ee")}}));
  Result<GRelation> p = r.Project({"Dept"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 2u);
}

TEST(PartitionedJoinFigure1, PaperExample) {
  // Figure 1 of the paper: joining a relation carrying partial
  // information about people with one carrying department data.
  auto rec = [](std::vector<Value::RecordField> fs) {
    return Value::RecordOf(std::move(fs));
  };
  GRelation r1 = GRelation::FromObjects({
      rec({{"Name", Value::String("Smith")}, {"Dept", Value::String("Sales")}}),
      rec({{"Name", Value::String("Jones")}}),
  });
  GRelation r2 = GRelation::FromObjects({
      rec({{"Dept", Value::String("Sales")}, {"Floor", Value::Int(1)}}),
      rec({{"Dept", Value::String("Toys")}, {"Floor", Value::Int(2)}}),
  });
  Result<GRelation> fast = GRelation::Join(r1, r2);
  Result<GRelation> naive = GRelation::JoinNaive(r1, r2);
  ExpectSameRelation(fast, naive);
  // Smith joins only the Sales tuple; the partial Jones record is
  // consistent with both department tuples.
  EXPECT_EQ(fast->size(), 3u);
  EXPECT_TRUE(fast->Contains(rec({{"Name", Value::String("Smith")},
                                  {"Dept", Value::String("Sales")},
                                  {"Floor", Value::Int(1)}})));
  EXPECT_TRUE(fast->Contains(rec({{"Name", Value::String("Jones")},
                                  {"Dept", Value::String("Sales")},
                                  {"Floor", Value::Int(1)}})));
  EXPECT_TRUE(fast->Contains(rec({{"Name", Value::String("Jones")},
                                  {"Dept", Value::String("Toys")},
                                  {"Floor", Value::Int(2)}})));
}

}  // namespace
}  // namespace dbpl::core
